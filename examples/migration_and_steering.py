#!/usr/bin/env python
"""Two more capabilities the DRMS primitives enable (paper Sections 1
and 3.2): migrating a checkpointed state between *different* parallel
systems, and computational steering / inter-application communication
through distribution-independent array sections.

Run:  python examples/migration_and_steering.py
"""

import numpy as np

from repro import DRMSApplication, Machine, MachineParams, PIOFS
from repro.apps.stencil import StencilApp
from repro.arrays import Range, Slice
from repro.drms.steering import app_transfer, steer_read, steer_write

if __name__ == "__main__":
    # ---- Migration between machines of different sizes ----------------
    # A shared file system (think: archive storage) carries the state.
    shared_fs = PIOFS(machine=Machine(MachineParams(num_nodes=16)))
    stencil = StencilApp(shape=(24, 24), checkpoint_every=4)

    big_machine = Machine(MachineParams(num_nodes=16))
    big_app = stencil.build_application(machine=big_machine, pfs=shared_fs)
    print("running on the 16-node system with 12 tasks...")
    ref = big_app.start(12, args=(10, "mig"))

    small_machine = Machine(MachineParams(num_nodes=4, mem_mb_per_node=64))
    small_app = stencil.build_application(machine=small_machine, pfs=shared_fs)
    print("migrating the checkpoint to a 4-node system (4 tasks)...")
    rep = small_app.restart("mig", 4, args=(10, "mig"))

    same = np.allclose(ref.arrays["grid"].to_global(),
                       rep.arrays["grid"].to_global())
    print(f"  state survived the migration intact: {same}")
    assert same

    # ---- Steering: read/write live sections, distribution-blind --------
    grid = rep.arrays["grid"]
    grid.update_shadows()  # settle the halos left stale by the last sweep
    window = Slice([Range.regular(8, 15, 1), Range.regular(8, 15, 1)])
    before = steer_read(grid, window)
    print(f"\nsteering: centre window mean before = {before.mean():.3f}")
    steer_write(grid, np.full(window.shape, 50.0), window)
    after = steer_read(grid, window)
    print(f"steering: centre window mean after  = {after.mean():.3f}")
    assert grid.is_consistent()  # every mapped copy updated

    # ---- Inter-application communication -------------------------------
    # A second application with its own (different) decomposition picks
    # up the steered field through one array assignment.
    from repro.arrays import DistributedArray, block_distribution

    viz = DistributedArray(
        "viz", grid.shape, np.float64,
        block_distribution(grid.shape, 6, shadow=(2, 2)),
    )
    wire = app_transfer(viz, grid)
    print(f"\ninter-application transfer moved {wire} bytes on the wire; "
          f"consistent = {viz.is_consistent()}")
    assert np.allclose(viz.to_global(), grid.to_global())
