#!/usr/bin/env python
"""Quickstart: write a DRMS-conforming SPMD program, checkpoint it, and
restart it with a different number of tasks.

This is the paper's Fig. 1 skeleton in Python: declare the distributed
array, iterate, checkpoint every few iterations; after a reconfigured
restart, adjust and redistribute.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CheckpointStatus, DRMSApplication
from repro.drms.api import (
    drms_adjust,
    drms_create_distribution,
    drms_distribute,
    drms_initialize,
    drms_reconfig_checkpoint,
)

N = 32  # global grid edge


def main(ctx, niter, prefix):
    """The SPMD program: every task runs this function."""
    drms_initialize(ctx)

    # Declare a block-distributed N x N grid with 1-deep shadows.
    dist = drms_create_distribution(ctx, (N, N), shadow=(1, 1))
    u = drms_distribute(
        ctx, "u", dist,
        init_global=lambda shape: np.fromfunction(
            lambda i, j: np.exp(-((i - N / 2) ** 2 + (j - N / 2) ** 2) / 40.0),
            shape,
        ),
    )
    ctx.set_replicated("dt", 0.2)

    for it in ctx.iterations(1, niter + 1):
        if it % 5 == 1:
            status, delta = drms_reconfig_checkpoint(ctx, prefix)
            if status is CheckpointStatus.RESTARTED and delta != 0:
                # Restarted on a different task count: adjust the
                # distribution and rebind (content is preserved).
                u = drms_distribute(ctx, "u", drms_adjust(ctx, "u"))

        # One Jacobi relaxation step on the owned section.
        ctx.update_shadows("u")
        a, m = u.assigned_slice, u.mapped_slice
        loc = u.local
        base = [a[ax].indices() - m[ax].first for ax in range(2)]
        acc = np.zeros(a.shape)
        for ax in range(2):
            for d in (-1, 1):
                pos = list(base)
                pos[ax] = np.clip(a[ax].indices() + d, 0, N - 1) - m[ax].first
                acc += loc[np.ix_(*pos)]
        u.set_assigned(0.6 * loc[np.ix_(*base)] + 0.1 * acc)
        ctx.barrier()

    return float(u.assigned.sum())


if __name__ == "__main__":
    app = DRMSApplication(main, name="quickstart")

    print("running 12 iterations on 8 tasks (checkpoint every 5)...")
    ref = app.start(8, args=(12, "qs"))
    total = sum(ref.returns)
    print(f"  result = {total:.6f}, simulated time = {ref.sim_elapsed:.2f}s, "
          f"checkpoints = {len(ref.checkpoints)}")

    print("restarting the iteration-11 checkpoint on 3 tasks...")
    rep = app.restart("qs", 3, args=(12, "qs"))
    print(f"  result = {sum(rep.returns):.6f} on {rep.ntasks} tasks "
          f"(delta = {rep.ntasks - 8})")

    same = np.allclose(ref.arrays["u"].to_global(), rep.arrays["u"].to_global())
    print(f"  state identical to the 8-task run: {same}")
    assert same
