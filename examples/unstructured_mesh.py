#!/usr/bin/env python
"""Sparse and unstructured data, distributed non-uniformly (paper §7).

DRMS array sections are arbitrary index lists, not just regular
triplets — so the model covers unstructured meshes, where Silva et
al.'s structured-grid recovery cannot go.  This example relaxes heat
over a random geometric graph: each task owns an irregular,
*non-uniform* set of vertices (BFS-grown partitions) with its 1-hop
graph neighborhood as explicit ghost ("mapped") vertices; checkpoints
stream the vertex array in plain index order, so a restart simply
re-partitions the mesh for the new task count.

Run:  python examples/unstructured_mesh.py
"""

import numpy as np

from repro.apps.unstructured import UnstructuredMeshApp, graph_distribution

if __name__ == "__main__":
    app_def = UnstructuredMeshApp(nv=50, graph_seed=9)
    g = app_def.graph
    print(f"mesh: {g.number_of_nodes()} vertices, {g.number_of_edges()} edges")

    d = graph_distribution(g, 4)
    sizes = [d.assigned(t).size for t in range(4)]
    ghosts = [d.mapped(t).size - d.assigned(t).size for t in range(4)]
    print(f"4-way partition sizes (non-uniform): {sizes}")
    print(f"per-task ghost vertices:             {ghosts}")

    app = app_def.build_application()
    print("\nrunning 6 relaxation sweeps on 4 tasks (checkpoint at 1 and 5)...")
    ref = app.start(4, args=(6, "mesh"))
    print(f"  vertex-0 heat after 6 sweeps: "
          f"{ref.arrays['x'].to_global()[0]:.2f} (from 100.0)")

    print("restarting the checkpoint on 7 tasks (mesh re-partitioned)...")
    rep = app.restart("mesh", 7, args=(6, "mesh"))
    same = np.allclose(ref.arrays["x"].to_global(), rep.arrays["x"].to_global())
    print(f"  state identical after irregular reconfiguration: {same}")
    assert same

    d7 = rep.arrays["x"].distribution
    print(f"  7-way partition sizes: {[d7.assigned(t).size for t in range(7)]}")
    print(f"  mapped sections explicitly overridden (graph ghosts): "
          f"{d7.mapped_overridden}")
