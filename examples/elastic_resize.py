#!/usr/bin/env python
"""On-the-fly reconfiguration and live steering of a running job.

The DRMS dynamic-resource-management story (paper §2.2 and §4): a
controller resizes a *healthy* running application from volatile
memory — no checkpoint I/O — while a steering client watches the live
field.  Compare examples/scheduler_reconfiguration.py, which resizes
through checkpoint files (what failures and migration require).

Run:  python examples/elastic_resize.py
"""

import threading

import numpy as np

from repro.drms import CheckpointStatus, DRMSApplication, ElasticRunner

N = 16
NITER = 300


def main(ctx, niter, prefix):
    ctx.initialize()
    dist = ctx.create_distribution((N, N), shadow=(1, 1))
    u = ctx.distribute("u", dist, init_global=np.ones((N, N)))
    for it in ctx.iterations(1, niter + 1):
        status, delta = ctx.reconfig_point()      # on-the-fly SOP
        if status is CheckpointStatus.RESTARTED and delta != 0:
            u = ctx.distribute("u", ctx.adjust("u"))
        ctx.steering_point()                      # service live clients
        u.set_assigned(u.assigned + 1.0)
        ctx.barrier()
    return float(u.assigned.sum())


if __name__ == "__main__":
    app = DRMSApplication(main, name="elastic")
    runner = ElasticRunner(app)

    box = {}
    t = threading.Thread(
        target=lambda: box.update(report=runner.run(8, args=(NITER, "el")))
    )
    print(f"starting on 8 tasks ({NITER} iterations)...")
    t.start()

    # live peek at the running field
    snap = app.steering.read_async("u").result()
    print(f"steering snapshot mid-run: field uniformly {snap[0, 0]:.0f}")

    print("controller: shrink to 3 tasks (in-memory, no checkpoint I/O)")
    runner.request(3)
    snap2 = app.steering.read_async("u").result()
    print(f"steering snapshot after resize request queued: {snap2[0, 0]:.0f}")

    t.join(timeout=120)
    report = box["report"]
    print(f"\nsegments (tasks, simulated s): "
          f"{[(n, round(s, 2)) for n, s in report.segments]}")
    print(f"in-memory redistribution cost: "
          f"{report.reconfiguration_seconds * 1000:.1f} simulated ms")
    final = report.final.arrays["u"].to_global()
    print(f"final field: uniformly {final[0, 0]:.0f} "
          f"(correct: {bool(np.all(final == 1 + NITER))})")
    assert np.all(final == 1 + NITER)
    assert report.final.ntasks == 3
