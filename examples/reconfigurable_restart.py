#!/usr/bin/env python
"""Reconfigurable checkpointing across the t1 -> t2 matrix, plus the
cost comparison against conventional SPMD checkpointing.

Part 1 runs the LU proxy at toy scale and restarts its checkpoint on
several task counts, verifying bitwise-identical state each time —
something the conventional scheme structurally cannot do (shown too).

Part 2 replays the paper's Class A experiment on the simulated 16-node
SP: saved-state sizes (Table 3) and checkpoint/restart times (Table 5)
for the DRMS and SPMD schemes.

Run:  python examples/reconfigurable_restart.py
"""

import numpy as np

from repro.apps import make_proxy
from repro.checkpoint.restart import saved_state_bytes
from repro.errors import RestartError
from repro.perfmodel.experiments import measure_checkpoint_restart

if __name__ == "__main__":
    # ---- Part 1: functional reconfiguration matrix -------------------
    proxy = make_proxy("lu", "toy")
    app = proxy.build_application()
    print("LU(toy): 6 iterations on 4 tasks, checkpoint at iterations 1 and 5")
    ref = app.start(4, args=(6, "lu.ck"), kwargs={"checkpoint_every": 4})
    ref_state = ref.arrays["u"].to_global()

    for t2 in (1, 2, 6, 8):
        rep = app.restart("lu.ck", t2, args=(6, "lu.ck"),
                          kwargs={"checkpoint_every": 4})
        ok = np.allclose(ref_state, rep.arrays["u"].to_global(), atol=0, rtol=0)
        print(f"  restart on {t2} tasks: state bitwise identical = {ok}")
        assert ok

    # The conventional scheme cannot reconfigure:
    from repro.checkpoint.spmd import spmd_checkpoint, spmd_restart

    spmd_checkpoint(app.pfs, "lu.spmd", ntasks=4,
                    segment_bytes=proxy.spmd_segment_bytes)
    try:
        spmd_restart(app.pfs, "lu.spmd", 6)
    except RestartError as exc:
        print(f"  SPMD checkpoint on 6 tasks -> {type(exc).__name__}: {exc}")

    # ---- Part 2: the paper's Class A cost comparison ------------------
    print("\nClass A on the simulated 16-node SP (simulated seconds):")
    print(f"{'app':4} {'PEs':3} {'DRMS ckpt':>10} {'SPMD ckpt':>10} "
          f"{'DRMS restart':>13} {'SPMD restart':>13}")
    for name in ("bt", "lu", "sp"):
        for pes in (8, 16):
            cell = measure_checkpoint_restart(name, pes)
            s = cell.seconds()
            print(f"{name:4} {pes:3} {s[('checkpoint','drms')]:>10.1f} "
                  f"{s[('checkpoint','spmd')]:>10.1f} "
                  f"{s[('restart','drms')]:>13.1f} "
                  f"{s[('restart','spmd')]:>13.1f}")

    print("\nsaved state, BT Class A: DRMS is fixed, SPMD grows with tasks")
    bt = make_proxy("bt", "A")
    drms_total = bt.drms_state_bytes()["total"] / 1e6
    for p in (4, 8, 16):
        print(f"  {p:2} tasks: DRMS {drms_total:6.0f} MB   "
              f"SPMD {bt.spmd_state_bytes(p) / 1e6:6.0f} MB")
