#!/usr/bin/env python
"""Scalable recovery from a processor failure (paper Section 4).

An NPB BT proxy runs on all 8 nodes of a DRMS cluster with periodic
checkpoints.  Mid-run, node 3 dies: the task on it crashes, taking the
application down (the paper's premise: one component failure kills the
parallel job).  The Resource Coordinator detects the lost Task
Coordinator, runs its five-step protocol, and the Job Scheduler restarts
the application from its latest checkpoint on the 7 *surviving* nodes —
long before the dead node's repair completes.

Run:  python examples/failure_recovery.py
"""

from repro.apps import make_proxy
from repro.infra import DRMSCluster, FailurePlan
from repro.runtime.machine import Machine, MachineParams

NITER = 9
CHECKPOINT_EVERY = 3
FAIL_AT_ITERATION = 8
FAILED_NODE = 3

if __name__ == "__main__":
    cluster = DRMSCluster(
        machine=Machine(MachineParams(num_nodes=8)),
        node_repair_s=3600.0,  # the dead node takes an hour to fix
    )
    proxy = make_proxy("bt", "toy")
    app = proxy.build_application(machine=cluster.machine, pfs=cluster.pfs)

    print(f"running BT(toy) on 8 nodes; node {FAILED_NODE} will fail at "
          f"iteration {FAIL_AT_ITERATION}...")
    outcome = cluster.run_with_recovery(
        "bt-job", app, ntasks=8,
        args=(NITER, "bt.ck"),
        kwargs={"checkpoint_every": CHECKPOINT_EVERY},
        prefix="bt.ck",
        failure=FailurePlan(iteration=FAIL_AT_ITERATION, node_id=FAILED_NODE),
    )

    print(f"\nfailed node       : {outcome.failed_node}")
    print(f"task pool         : {outcome.tasks_before} -> {outcome.tasks_after}")
    print(f"recovery latency  : {outcome.recovery_latency_s:.1f} simulated s")
    print(f"node repair time  : {outcome.node_repair_s:.0f} simulated s")
    print(f"recovered without waiting for repair: "
          f"{outcome.recovered_without_repair}")

    print("\nevent log:")
    for ev in cluster.events:
        print(f"  {ev}")

    assert outcome.tasks_after == 7
    assert outcome.recovered_without_repair
    print("\napplication completed correctly on the reduced pool.")
