#!/usr/bin/env python
"""Checkpointing for dynamic resource management (paper Sections 4/8):
the Job Scheduler shrinks a running job with a *system-initiated*
checkpoint (``drms_reconfig_chkenable``) to admit a second job, then
grows it back when resources free up.

Run:  python examples/scheduler_reconfiguration.py
"""

import numpy as np

from repro.infra import DRMSCluster
from repro.runtime.machine import Machine, MachineParams

N = 16


def elastic_main(ctx, niter, prefix):
    """Long-running job using the enabling checkpoint: the system
    decides when its state gets archived."""
    ctx.initialize()
    dist = ctx.create_distribution((N, N), shadow=(1, 1))
    u = ctx.distribute("u", dist, init_global=np.ones((N, N)))
    for it in ctx.iterations(1, niter + 1):
        status, delta = ctx.reconfig_chkenable(prefix)
        if delta != 0:
            u = ctx.distribute("u", ctx.adjust("u"))
        u.set_assigned(u.assigned + 1.0)
        ctx.barrier()
    return float(u.assigned.sum())


if __name__ == "__main__":
    cluster = DRMSCluster(machine=Machine(MachineParams(num_nodes=8)))

    big = cluster.build_app(elastic_main, name="elastic")
    cluster.jsa.submit("big", big, args=(6, "big.ck"), prefix="big.ck")

    print("phase 1: the elastic job takes all 8 nodes, system checkpoint armed")
    cluster.jsa.enable_system_checkpoint("big")
    rep1 = cluster.jsa.run("big", ntasks=8)
    print(f"  ran on {rep1.ntasks} tasks; checkpoints written: "
          f"{len(rep1.checkpoints)}")

    print("phase 2: an urgent job needs 4 nodes -> shrink the elastic job")
    urgent = cluster.build_app(elastic_main, name="urgent")
    cluster.jsa.submit("urgent", urgent, args=(2, "urgent.ck"), prefix="urgent.ck")
    shrunk = cluster.jsa.restart("big", ntasks=4)  # reconfigured restart
    print(f"  elastic job restarted on {shrunk.ntasks} tasks "
          f"(state preserved from the system checkpoint)")
    urgent.enable_checkpoint()
    cluster.jsa.run("urgent", ntasks=4)
    print("  urgent job completed on the freed nodes")

    print("phase 3: grow back to 8 tasks from the same archive")
    grown = cluster.jsa.restart("big", ntasks=8)
    print(f"  elastic job on {grown.ntasks} tasks again")

    final = grown.arrays["u"].to_global()
    print(f"\nfinal field uniform value: {final[0, 0]:.0f} "
          f"(uniform: {bool(np.all(final == final[0, 0]))})")
    print(f"cluster simulated clock: {cluster.rc.clock:.1f}s")
    print("\nscheduler event log:")
    for ev in cluster.uic.notifications():
        print(f"  {ev}")
