from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of DRMS reconfigurable checkpointing for scalable "
        "recovery (Naik, Midkiff, Moreira; SC 1997)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23"],
)
