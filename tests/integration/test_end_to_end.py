"""End-to-end integration: the full stack from SPMD program through
streaming checkpoints to reconfigured restart, at every layer boundary."""

import numpy as np
import pytest

from repro import (
    CheckpointStatus,
    DRMSApplication,
    Machine,
    MachineParams,
    PIOFS,
)
from repro.apps import make_proxy
from repro.checkpoint.restart import list_checkpoints, saved_state_bytes
from repro.drms.api import (
    drms_adjust,
    drms_create_distribution,
    drms_distribute,
    drms_initialize,
    drms_reconfig_checkpoint,
)

N = 12


def fig1_skeleton(ctx, niter, prefix):
    """A faithful port of the paper's Fig. 1 Fortran skeleton."""
    drms_initialize(ctx)
    dist = drms_create_distribution(ctx, (N, N, N), shadow=(1, 1, 1))
    u = drms_distribute(
        ctx, "u", dist,
        init_global=lambda s: np.fromfunction(
            lambda i, j, k: np.sin(i) + np.cos(j) + k / 7.0, s
        ),
    )
    for it in ctx.iterations(1, niter + 1):
        if it % 10 == 1:
            status, delta = drms_reconfig_checkpoint(ctx, prefix)
            if status is CheckpointStatus.RESTARTED:
                if delta != 0:
                    dist = drms_adjust(ctx, "u")
                    u = drms_distribute(ctx, "u", dist)
        # the "solver": a deterministic per-element update
        u.set_assigned(np.sqrt(np.abs(u.assigned)) + 0.25)
        ctx.barrier()
    return float(u.assigned.sum())


class TestFig1Lifecycle:
    def test_checkpoint_every_ten_iterations(self):
        app = DRMSApplication(fig1_skeleton)
        rep = app.start(4, args=(25, "fig1"))
        assert len(rep.checkpoints) == 3  # it = 1, 11, 21

    @pytest.mark.parametrize("t1,t2", [(4, 4), (4, 7), (8, 3), (2, 8), (5, 1)])
    def test_t1_to_t2_reconfiguration_matrix(self, t1, t2):
        """The headline claim: checkpoint with t1 tasks, restart with t2."""
        app = DRMSApplication(fig1_skeleton)
        ref = app.start(t1, args=(25, "m"))
        rep = app.restart("m", t2, args=(25, "m"))
        assert np.allclose(
            ref.arrays["u"].to_global(), rep.arrays["u"].to_global(),
            rtol=1e-12, atol=1e-12,
        )
        assert sum(rep.returns) == pytest.approx(sum(ref.returns))

    def test_chain_of_restarts(self):
        """checkpoint -> restart smaller -> checkpoint -> restart larger."""
        app = DRMSApplication(fig1_skeleton)
        ref = app.start(6, args=(25, "c"))
        mid = app.restart("c", 2, args=(25, "c"))
        # the restarted run wrote it=21's checkpoint again under 'c'
        final = app.restart("c", 8, args=(25, "c"))
        assert np.allclose(
            ref.arrays["u"].to_global(), final.arrays["u"].to_global()
        )


class TestCrossMachineMigration:
    def test_checkpoint_migrates_between_different_machines(self):
        """Checkpointed states migrate between systems with different
        node counts (paper abstract): share the file system, restart on
        a machine with a different size."""
        pfs = PIOFS(machine=Machine(MachineParams(num_nodes=16)))
        big = DRMSApplication(
            fig1_skeleton, machine=Machine(MachineParams(num_nodes=16)), pfs=pfs
        )
        ref = big.start(12, args=(15, "mig"))
        small = DRMSApplication(
            fig1_skeleton, machine=Machine(MachineParams(num_nodes=4)), pfs=pfs
        )
        rep = small.restart("mig", 4, args=(15, "mig"))
        assert np.allclose(
            ref.arrays["u"].to_global(), rep.arrays["u"].to_global()
        )


class TestProxyOnCluster:
    def test_bt_toy_full_lifecycle_with_sizes(self):
        proxy = make_proxy("bt", "toy")
        app = proxy.build_application()
        app.start(4, args=(4, "bt"), kwargs={"checkpoint_every": 3})
        sizes = saved_state_bytes(app.pfs, "bt")
        # all inventory files present and sized per the profile
        assert sizes["segment"] == proxy.spmd_segment_bytes
        assert sizes["arrays"] == proxy.array_bytes_total
        assert "bt" in list_checkpoints(app.pfs)

    def test_simulated_times_scale_with_class(self):
        """Class A (virtual) checkpoints take paper-scale simulated
        time; toy checkpoints are proportionally tiny."""
        from repro.perfmodel.experiments import measure_checkpoint_restart

        toy = measure_checkpoint_restart("sp", 8, klass="toy")
        a = measure_checkpoint_restart("sp", 8, klass="A")
        assert a.drms_ckpt.total_seconds > 5 * toy.drms_ckpt.total_seconds
