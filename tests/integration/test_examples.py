"""Smoke tests: every example script runs clean end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_examples_exist():
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship six
