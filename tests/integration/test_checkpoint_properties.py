"""Property-based checkpoint/restart invariants across the full stack."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import block_distribution
from repro.checkpoint.drms import drms_checkpoint, drms_restart
from repro.checkpoint.segment import DataSegment, SegmentProfile
from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine, MachineParams


@given(
    st.tuples(st.integers(2, 10), st.integers(2, 10), st.integers(1, 6)),
    st.integers(1, 8),
    st.integers(1, 8),
    st.integers(0, 2),
    st.dictionaries(
        st.sampled_from(["dt", "niter", "alpha", "name"]),
        st.one_of(st.integers(), st.floats(allow_nan=False), st.text(max_size=8)),
        max_size=4,
    ),
)
@settings(max_examples=30, deadline=None)
def test_checkpoint_restart_identity(shape, t1, t2, shadow, replicated):
    """For any shape, task counts, shadow width, and replicated-variable
    set: DRMS checkpoint at t1 + restart at t2 reproduces the arrays
    bitwise and the replicated variables exactly."""
    machine = Machine(MachineParams(num_nodes=16))
    machine.place_tasks(min(t1, 16))
    pfs = PIOFS(machine=machine)
    g = np.random.default_rng(hash(shape) % 2**32).normal(size=shape)
    arr = DistributedArray(
        "u", shape, np.float64,
        block_distribution(shape, t1, shadow=(shadow,) * len(shape)),
    )
    arr.set_global(g)
    seg = DataSegment(
        profile=SegmentProfile(10_000, 1_000, 500), replicated=dict(replicated)
    )
    drms_checkpoint(pfs, "p", seg, [arr])
    state, _ = drms_restart(pfs, "p", t2)
    back = state.arrays["u"]
    assert back.ntasks == t2
    assert np.array_equal(back.to_global(), g)  # bitwise
    assert back.is_consistent()
    assert state.segment.replicated == replicated


@given(st.integers(1, 8), st.integers(1, 8), st.integers(1, 4))
@settings(max_examples=20, deadline=None)
def test_double_hop_identity(t1, t2, t3):
    """checkpoint@t1 -> restart@t2 -> checkpoint -> restart@t3 is still
    the identity (re-checkpointed state is as good as the original)."""
    machine = Machine(MachineParams(num_nodes=16))
    pfs = PIOFS(machine=machine)
    g = np.arange(6 * 8 * 4, dtype=np.float64).reshape(6, 8, 4)
    arr = DistributedArray(
        "u", (6, 8, 4), np.float64, block_distribution((6, 8, 4), t1)
    )
    arr.set_global(g)
    seg = DataSegment(profile=SegmentProfile(1000, 0, 0), replicated={"k": 1})
    drms_checkpoint(pfs, "a", seg, [arr])
    s1, _ = drms_restart(pfs, "a", t2)
    drms_checkpoint(pfs, "b", s1.segment, [s1.arrays["u"]])
    s2, _ = drms_restart(pfs, "b", t3)
    assert np.array_equal(s2.arrays["u"].to_global(), g)
    assert s2.segment.replicated == {"k": 1}
