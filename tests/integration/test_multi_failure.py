"""Repeated failures: the cluster keeps recovering as nodes keep dying,
shrinking the pool each time — the long-running mission-critical
scenario of the paper's introduction."""

import numpy as np
import pytest

from repro.drms.api import (
    drms_adjust,
    drms_create_distribution,
    drms_distribute,
    drms_initialize,
    drms_reconfig_checkpoint,
)
from repro.drms.context import CheckpointStatus
from repro.infra import DRMSCluster, FailurePlan
from repro.runtime.machine import Machine, MachineParams

N = 10
NITER = 16


def main(ctx, prefix):
    drms_initialize(ctx)
    dist = drms_create_distribution(ctx, (N, N), shadow=(1, 1))
    u = drms_distribute(ctx, "u", dist, init_global=np.ones((N, N)))
    for it in ctx.iterations(1, NITER + 1):
        if it % 4 == 1:
            status, delta = drms_reconfig_checkpoint(ctx, prefix)
            if status is CheckpointStatus.RESTARTED and delta != 0:
                u = drms_distribute(ctx, "u", drms_adjust(ctx, "u"))
        u.set_assigned(u.assigned + 1.0)
        ctx.barrier()
    return float(u.assigned.sum())


def test_two_sequential_failures():
    cluster = DRMSCluster(
        machine=Machine(MachineParams(num_nodes=8)), node_repair_s=10_000.0
    )
    app = cluster.build_app(main)

    # First failure at iteration 7, node 2: recover on 7 nodes.
    out1 = cluster.run_with_recovery(
        "job", app, ntasks=8, args=("ck",), prefix="ck",
        failure=FailurePlan(iteration=7, node_id=2),
    )
    assert out1.tasks_after == 7
    assert np.all(out1.final_report.arrays["u"].to_global() == 1.0 + NITER)

    # Second run: the job runs again (fresh prefix) on the degraded
    # 7-node machine, and another node dies.
    app2 = cluster.build_app(main)
    out2 = cluster.run_with_recovery(
        "job2", app2, ntasks=7, args=("ck2",), prefix="ck2",
        failure=FailurePlan(iteration=10, node_id=5),
    )
    assert out2.tasks_after == 6
    assert np.all(out2.final_report.arrays["u"].to_global() == 1.0 + NITER)

    # both dead nodes are still out for repair
    assert len(cluster.machine.up_nodes()) == 6
    assert len(cluster.rc.repair_done_at) == 2


def test_failure_in_restarted_run():
    """A node dies *during the recovery run* too; the cluster recovers
    again from the checkpoint the restarted run wrote."""
    cluster = DRMSCluster(
        machine=Machine(MachineParams(num_nodes=8)), node_repair_s=10_000.0
    )
    app = cluster.build_app(main)
    out1 = cluster.run_with_recovery(
        "job", app, ntasks=8, args=("ck",), prefix="ck",
        failure=FailurePlan(iteration=6, node_id=1),
    )
    assert out1.tasks_after == 7

    # arm a second failure and drive the JSA recovery path directly
    app.failure_plan = FailurePlan(iteration=14, node_id=3)
    from repro.errors import TaskFailure

    # replay: restart from the latest checkpoint; it dies mid-run...
    with pytest.raises(TaskFailure):
        cluster.jsa.restart("job")
    app.failure_plan = None
    cluster.rc.handle_processor_failure(3)
    report = cluster.jsa.recover("job")
    assert report.ntasks == 6
    assert np.all(report.arrays["u"].to_global() == 1.0 + NITER)


def test_repair_returns_capacity_for_future_runs():
    cluster = DRMSCluster(
        machine=Machine(MachineParams(num_nodes=4)), node_repair_s=50.0
    )
    app = cluster.build_app(main)
    out = cluster.run_with_recovery(
        "job", app, ntasks=4, args=("ck",), prefix="ck",
        failure=FailurePlan(iteration=5, node_id=0),
    )
    assert out.tasks_after == 3
    # time passes; the node comes back and a full-width run is possible
    cluster.rc.advance(100.0)
    assert len(cluster.rc.available_nodes()) == 4
    app3 = cluster.build_app(main)
    rep = cluster.jsa.submit("job3", app3, args=("ck3",), prefix="ck3")
    assert cluster.jsa.run("job3", ntasks=4).ntasks == 4
