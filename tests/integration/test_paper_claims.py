"""Claims-as-tests: every quantitative or structural claim made in the
paper's prose (not just its tables), asserted against this
reproduction.  Each test quotes the sentence it checks.
"""

import numpy as np
import pytest

from repro.apps import make_proxy
from repro.perfmodel.experiments import measure_checkpoint_restart
from repro.perfmodel.paper_data import PAPER_TABLE1


@pytest.fixture(scope="module")
def cells():
    return {
        (b, p): measure_checkpoint_restart(b, p)
        for b in ("bt", "lu", "sp")
        for p in (8, 16)
    }


class TestAbstractClaims:
    def test_checkpoint_t1_restart_t2(self):
        """'a parallel application may be checkpointed while executing
        with t1 tasks on p1 processors, and then restarted from the
        checkpointed state with t2 tasks on p2 processors.'"""
        from repro.apps.stencil import StencilApp

        app = StencilApp(shape=(16, 16), checkpoint_every=3).build_application()
        ref = app.start(6, args=(7, "c"))
        for t2 in (1, 4, 9):
            rep = app.restart("c", t2, args=(7, "c"))
            assert np.allclose(
                ref.arrays["grid"].to_global(), rep.arrays["grid"].to_global()
            )

    def test_migration_between_different_machines(self):
        """'the reconfigurable checkpointed states can be migrated from
        one parallel system to another even if they do not have the same
        number of processors.'"""
        from repro.apps.stencil import StencilApp
        from repro.checkpoint.archive import copy_checkpoint
        from repro.pfs.piofs import PIOFS
        from repro.runtime.machine import Machine, MachineParams

        big = Machine(MachineParams(num_nodes=16))
        small = Machine(MachineParams(num_nodes=4))
        fs_big, fs_small = PIOFS(machine=big), PIOFS(machine=small)
        st = StencilApp(shape=(12, 12), checkpoint_every=2)
        ref = st.build_application(machine=big, pfs=fs_big).start(12, args=(5, "m"))
        copy_checkpoint(fs_big, fs_small, "m")
        rep = st.build_application(machine=small, pfs=fs_small).restart(
            "m", 3, args=(5, "m")
        )
        assert np.allclose(
            ref.arrays["grid"].to_global(), rep.arrays["grid"].to_global()
        )


class TestSection2Claims:
    def test_state_independent_of_task_count(self):
        """'the state of a DRMS application can be captured in a form
        that is independent of the number of tasks.'"""
        proxy = make_proxy("bt", "A")
        d = proxy.drms_state_bytes()["total"]
        # the same inventory at any task count gives the same state size
        assert d == proxy.drms_state_bytes()["total"]
        for p in (4, 8, 16):
            assert proxy.spmd_state_bytes(p) == p * proxy.spmd_segment_bytes

    def test_one_percent_source_growth(self):
        """'an increase of approximately 1% in source code size, or 100
        additional lines of source code in a total of about 10,000
        lines per application.'"""
        for name, (total, added) in PAPER_TABLE1.items():
            assert 0.008 <= added / total <= 0.011
            assert 9_000 <= total <= 11_000
            assert 85 <= added <= 107


class TestSection5Claims:
    def test_drms_always_faster_checkpoint(self, cells):
        """'the DRMS version of checkpointing is always faster than the
        SPMD version.'"""
        for key, cell in cells.items():
            assert (
                cell.drms_ckpt.total_seconds < cell.spmd_ckpt.total_seconds
            ), key

    def test_advantage_more_pronounced_with_processors(self, cells):
        """'The advantages of the DRMS version becomes more pronounced
        as the number of processors ... increases.'  (BT and SP; LU's
        16-PE cell is the paper's own anomaly, see EXPERIMENTS.md.)"""
        for b in ("bt", "sp"):
            adv8 = cells[(b, 8)].spmd_ckpt.total_seconds / cells[(b, 8)].drms_ckpt.total_seconds
            adv16 = cells[(b, 16)].spmd_ckpt.total_seconds / cells[(b, 16)].drms_ckpt.total_seconds
            assert adv16 > adv8

    def test_drms_restart_decreases_with_processors(self, cells):
        """'The restart time for DRMS applications decreases when the
        number of processors is increased, despite the additional
        interference.'"""
        for b in ("bt", "lu", "sp"):
            assert (
                cells[(b, 16)].drms_restart.total_seconds
                < cells[(b, 8)].drms_restart.total_seconds
            )

    def test_restart_client_limited_checkpoint_server_limited(self, cells):
        """'restart of DRMS applications is a client-limited operation:
        more clients can read data faster ... checkpointing ... is a
        server-limited operation.'"""
        for b in ("bt", "lu", "sp"):
            assert (
                cells[(b, 16)].drms_restart.segment_rate_mbps
                > cells[(b, 8)].drms_restart.segment_rate_mbps
            )
            assert (
                cells[(b, 16)].drms_ckpt.segment_rate_mbps
                <= cells[(b, 8)].drms_ckpt.segment_rate_mbps
            )

    def test_sp_smallest_segment_bt_five_fold(self, cells):
        """'For the SP application, which has the smallest data segment
        size ... BT, however, has a five-fold increase due to its larger
        segment size.'"""
        segs = {b: make_proxy(b, "A").spmd_segment_bytes for b in ("bt", "lu", "sp")}
        assert segs["sp"] == min(segs.values())
        bt_ratio = (
            cells[("bt", 16)].spmd_restart.total_seconds
            / cells[("bt", 8)].spmd_restart.total_seconds
        )
        assert 3.0 < bt_ratio < 7.0

    def test_lu_crosses_threshold_on_eight(self, cells):
        """'LU is so large initially that this threshold is crossed even
        when it is run on eight processors, leading to a minimal
        additional degradation going from 8 to 16 processors.'"""
        lu_ratio = (
            cells[("lu", 16)].spmd_restart.total_seconds
            / cells[("lu", 8)].spmd_restart.total_seconds
        )
        assert lu_ratio < 1.5

    def test_below_threshold_spmd_restart_faster(self, cells):
        """'in cases below the threshold (BT and SP on 8 processors),
        the SPMD restart is actually faster than the DRMS restart.'"""
        for b in ("bt", "sp"):
            c = cells[(b, 8)]
            assert c.spmd_restart.total_seconds < c.drms_restart.total_seconds

    def test_drms_smaller_than_spmd_even_at_minimum(self):
        """'even when the SPMD applications run on 4 processors (minimum
        possible), the DRMS applications are more efficient in the size
        of saved state.'"""
        for b in ("bt", "lu", "sp"):
            proxy = make_proxy(b, "A")
            assert proxy.drms_state_bytes()["total"] < proxy.spmd_state_bytes(4)

    def test_local_sections_exceed_quarter(self):
        """'the size of local sections is slightly larger than one-fourth
        ... of the total size of the distributed arrays ... because of
        the presence of shadow regions.'"""
        for b in ("bt", "lu", "sp"):
            proxy = make_proxy(b, "A")
            local = proxy.segment_profile().local_section_bytes
            assert proxy.array_bytes_total / 4 < local < proxy.array_bytes_total / 2

    def test_lu_private_dominates(self):
        """'The size of private/replicated data is much larger in LU ...
        temporary work arrays are declared as distributed ... in SP and
        BT, but as private or local in LU.'"""
        priv = {b: make_proxy(b, "A").private_bytes() for b in ("bt", "lu", "sp")}
        assert priv["lu"] > 7 * priv["bt"]
        assert priv["lu"] > 7 * priv["sp"]


class TestSection4Claims:
    def test_restart_does_not_wait_for_repair(self):
        """'the restart of the application does not need to wait for the
        killed TCs to be restarted or for the failed processor to be
        fixed.'"""
        from repro.infra import DRMSCluster, FailurePlan
        from repro.runtime.machine import Machine, MachineParams
        from tests.infra.test_recovery import main as recovery_main

        cluster = DRMSCluster(
            machine=Machine(MachineParams(num_nodes=8)), node_repair_s=10_000.0
        )
        app = cluster.build_app(recovery_main)
        out = cluster.run_with_recovery(
            "j", app, 8, args=("ck",), prefix="ck",
            failure=FailurePlan(iteration=6, node_id=2),
        )
        assert out.recovered_without_repair
        assert out.recovery_latency_s < 0.02 * out.node_repair_s

    def test_system_stays_up_with_reduced_availability(self):
        """'The system as a whole remains active during this time, albeit
        with reduced availability of processors.'"""
        from repro.infra.rc import ResourceCoordinator
        from repro.runtime.machine import Machine, MachineParams

        rc = ResourceCoordinator(Machine(MachineParams(num_nodes=8)))
        rc.form_pool("job", 4)
        rc.handle_processor_failure(1)
        avail = rc.available_nodes()
        assert len(avail) == 7  # everything but the dead node
        assert 1 not in avail
