"""Tests for the Wong-Franklin degradation model (ref [19])."""

import math

import pytest

from repro.perfmodel.wong_franklin import WongFranklinModel


def make(procs=64, mtbf_node_s=30 * 24 * 3600.0, C=20.0, R=60.0, D=3600.0):
    return WongFranklinModel(
        procs=procs,
        lam=1.0 / mtbf_node_s,
        checkpoint_overhead_s=C,
        restart_overhead_s=R,
        repair_time_s=D,
    )


def test_no_failures_degradation_is_checkpoint_overhead():
    m = make(mtbf_node_s=1e18)
    assert m.degradation(1000.0, redistribute=True) == pytest.approx(1.02)


def test_redistribution_beats_waiting():
    m = make()
    tau = m.optimal_interval()
    assert m.degradation(tau, True) < m.degradation(tau, False)


def test_redistribution_negligible_small_overheads():
    """The [19] conclusion the paper cites: with redistribution,
    degradation stays negligible when C and R are small."""
    m = make(procs=256, C=5.0, R=10.0)
    assert m.degradation(m.optimal_interval(), True) < 1.1


def test_without_redistribution_limited_use_at_scale():
    """...while without redistribution large machines stop making
    progress (degradation diverges)."""
    m = make(procs=4096, mtbf_node_s=5 * 24 * 3600.0, C=5.0, R=10.0, D=12 * 3600.0)
    tau = m.optimal_interval()
    assert m.degradation(tau, True) < 2.0
    assert m.degradation(tau, False) == math.inf


def test_degradation_monotone_in_procs_without_redistribution():
    taus = 600.0
    degs = [make(procs=p).degradation(taus, False) for p in (16, 64, 256, 1024)]
    finite = [d for d in degs if d != math.inf]
    assert finite == sorted(finite)


def test_optimal_interval_is_youngs_formula():
    m = make()
    expect = math.sqrt(2 * m.checkpoint_overhead_s / m.system_rate)
    assert m.optimal_interval() == pytest.approx(expect)


def test_interval_tradeoff_has_interior_minimum():
    m = make(procs=512, mtbf_node_s=7 * 24 * 3600.0)
    tau_star = m.optimal_interval()
    d_star = m.degradation(tau_star, True)
    assert d_star < m.degradation(tau_star / 8, True)
    assert d_star < m.degradation(tau_star * 8, True)


def test_bad_interval_rejected():
    with pytest.raises(ValueError):
        make().degradation(0.0, True)


def test_monte_carlo_validates_analytic():
    m = make(procs=128, mtbf_node_s=2 * 24 * 3600.0, C=30.0, R=30.0, D=1800.0)
    tau = m.optimal_interval()
    work = 8 * 3600.0
    analytic = m.expected_runtime(work, tau, redistribute=True)
    simulated = m.simulate(work, tau, redistribute=True, runs=120, seed=42)
    assert simulated == pytest.approx(analytic, rel=0.15)


def test_expected_runtime_scales_with_work():
    m = make()
    assert m.expected_runtime(2000.0) == pytest.approx(2 * m.expected_runtime(1000.0))
