"""Calibration: the simulated I/O model reproduces the paper's Tables
5 and 6 — quantitatively within tolerance for the cells the paper
prints, and qualitatively for every ordering/crossover the evaluation
narrative relies on.

Known deviation (documented in EXPERIMENTS.md): the paper's LU/16 PE
DRMS checkpoint reports a *faster* segment write at 16 PEs than at 8
(8.4 vs 6.6 MB/s), contradicting its own interference explanation; our
model follows the mechanism, so that one cell is ~33% high and is
checked with a wider band.
"""

import pytest

from repro.perfmodel.experiments import measure_checkpoint_restart
from repro.perfmodel.paper_data import PAPER_TABLE5, PAPER_TABLE6

APPS = ("bt", "lu", "sp")
WIDE_CELLS = {("lu", 16, "checkpoint", "drms")}


@pytest.fixture(scope="module")
def cells():
    return {
        (b, p): measure_checkpoint_restart(b, p)
        for b in APPS
        for p in (8, 16)
    }


class TestQuantitative:
    @pytest.mark.parametrize("bench", APPS)
    @pytest.mark.parametrize("pes", [8, 16])
    @pytest.mark.parametrize("op", ["checkpoint", "restart"])
    @pytest.mark.parametrize("kind", ["drms", "spmd"])
    def test_within_tolerance_of_paper(self, cells, bench, pes, op, kind):
        paper = PAPER_TABLE5[bench][(op, pes, kind)]
        if paper.reconstructed:
            pytest.skip("cell garbled in the paper's text (reconstructed)")
        measured = cells[(bench, pes)].seconds()[(op, kind)]
        tol = 0.40 if (bench, pes, op, kind) in WIDE_CELLS else 0.25
        assert measured == pytest.approx(paper.mean, rel=tol)

    @pytest.mark.parametrize("bench", APPS)
    @pytest.mark.parametrize("pes", [8, 16])
    def test_table6_component_rates(self, cells, bench, pes):
        cell = cells[(bench, pes)]
        ck = PAPER_TABLE6[bench][(pes, "checkpoint")]
        rs = PAPER_TABLE6[bench][(pes, "restart")]
        seg_tol = 0.55 if (bench, pes) == ("lu", 16) else 0.45
        assert cell.drms_ckpt.segment_rate_mbps == pytest.approx(
            ck.segment_rate, rel=seg_tol
        )
        assert cell.drms_restart.segment_rate_mbps == pytest.approx(
            rs.segment_rate, rel=0.35
        )
        assert cell.drms_restart.arrays_rate_mbps == pytest.approx(
            rs.arrays_rate, rel=0.35
        )


class TestShapes:
    """The orderings and crossovers the paper's narrative asserts."""

    @pytest.mark.parametrize("bench", APPS)
    @pytest.mark.parametrize("pes", [8, 16])
    def test_drms_checkpoint_always_beats_spmd(self, cells, bench, pes):
        c = cells[(bench, pes)]
        assert c.drms_ckpt.total_seconds < c.spmd_ckpt.total_seconds

    @pytest.mark.parametrize("bench", ["bt", "sp"])
    def test_drms_advantage_grows_with_pes(self, cells, bench):
        """For BT and SP the DRMS/SPMD checkpoint ratio widens with the
        processor count.  LU is excluded: its paper-measured 16-PE DRMS
        checkpoint is internally anomalous (its segment write *sped up*
        under interference), so the model keeps LU's advantage large
        (see test below) without asserting growth."""
        r8 = (
            cells[(bench, 8)].spmd_ckpt.total_seconds
            / cells[(bench, 8)].drms_ckpt.total_seconds
        )
        r16 = (
            cells[(bench, 16)].spmd_ckpt.total_seconds
            / cells[(bench, 16)].drms_ckpt.total_seconds
        )
        assert r16 > r8

    def test_lu_drms_advantage_stays_large(self, cells):
        for pes in (8, 16):
            cell = cells[("lu", pes)]
            assert cell.spmd_ckpt.total_seconds > 4 * cell.drms_ckpt.total_seconds

    @pytest.mark.parametrize("bench", APPS)
    def test_drms_restart_improves_with_pes(self, cells, bench):
        """More clients read faster (prefetch): restart is quicker on 16
        than on 8 processors."""
        assert (
            cells[(bench, 16)].drms_restart.total_seconds
            < cells[(bench, 8)].drms_restart.total_seconds
        )

    @pytest.mark.parametrize("bench", ["bt", "sp"])
    def test_spmd_restart_degrades_with_pes(self, cells, bench):
        """BT/SP cross the buffer threshold between 8 and 16 PEs, so
        their SPMD restart collapses; LU is over the threshold at both
        sizes (covered by test_lu_already_over_threshold_at_8)."""
        assert (
            cells[(bench, 16)].spmd_restart.total_seconds
            > 1.5 * cells[(bench, 8)].spmd_restart.total_seconds
        )

    def test_crossover_spmd_restart_wins_below_threshold(self, cells):
        """BT and SP on 8 PEs sit below the buffer-memory threshold, so
        the conventional restart actually beats the DRMS restart there;
        LU is over the threshold already at 8 PEs."""
        for bench in ("bt", "sp"):
            c = cells[(bench, 8)]
            assert c.spmd_restart.total_seconds < c.drms_restart.total_seconds
        lu = cells[("lu", 8)]
        assert lu.spmd_restart.total_seconds > lu.drms_restart.total_seconds

    def test_crossover_flips_at_16(self, cells):
        for bench in APPS:
            c = cells[(bench, 16)]
            assert c.drms_restart.total_seconds < c.spmd_restart.total_seconds

    def test_bt_restart_blowup_about_5x(self, cells):
        """Paper: BT's SPMD restart suffers a five-fold increase from 8
        to 16 processors (the threshold crossing)."""
        ratio = (
            cells[("bt", 16)].spmd_restart.total_seconds
            / cells[("bt", 8)].spmd_restart.total_seconds
        )
        assert 3.0 < ratio < 7.0

    def test_lu_already_over_threshold_at_8(self, cells):
        """Paper: LU is so large it crosses the threshold even on 8,
        so going to 16 adds only minimal degradation."""
        ratio = (
            cells[("lu", 16)].spmd_restart.total_seconds
            / cells[("lu", 8)].spmd_restart.total_seconds
        )
        assert ratio < 1.5

    @pytest.mark.parametrize("bench", APPS)
    def test_write_server_limited_read_client_limited(self, cells, bench):
        """Table 6: segment read rates rise with clients; segment write
        rates fall (or stay flat) with interference."""
        c8, c16 = cells[(bench, 8)], cells[(bench, 16)]
        assert (
            c16.drms_restart.segment_rate_mbps
            > 1.5 * c8.drms_restart.segment_rate_mbps
        )
        assert c16.drms_ckpt.segment_rate_mbps <= c8.drms_ckpt.segment_rate_mbps
