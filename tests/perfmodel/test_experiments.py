"""Tests for the experiment drivers and paper-data transcription."""

import pytest

from repro.perfmodel.experiments import (
    build_state,
    measure_checkpoint_restart,
    repeat_with_noise,
)
from repro.perfmodel.paper_data import (
    PAPER_TABLE1,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    PAPER_TABLE6,
)


class TestPaperData:
    def test_tables_cover_all_apps(self):
        for table in (PAPER_TABLE1, PAPER_TABLE3, PAPER_TABLE4, PAPER_TABLE5, PAPER_TABLE6):
            assert set(table) == {"bt", "lu", "sp"}

    def test_table4_components_sum(self):
        for app, (total, local, system, private) in PAPER_TABLE4.items():
            assert local + system + private == total

    def test_table3_spmd_linear(self):
        for app, row in PAPER_TABLE3.items():
            spmd = row["spmd"]
            assert spmd[8] == pytest.approx(2 * spmd[4], rel=0.02)
            assert spmd[16] == pytest.approx(4 * spmd[4], rel=0.02)

    def test_table3_drms_components_sum(self):
        for app, row in PAPER_TABLE3.items():
            d = row["drms"]
            assert d["data"] + d["array"] == d["total"]

    def test_only_sp_spmd_cells_reconstructed(self):
        flags = {
            (app, key): cell.reconstructed
            for app, cells in PAPER_TABLE5.items()
            for key, cell in cells.items()
        }
        recon = {k for k, v in flags.items() if v}
        assert recon == {
            ("sp", ("checkpoint", 8, "spmd")),
            ("sp", ("checkpoint", 16, "spmd")),
            ("sp", ("restart", 8, "spmd")),
            ("sp", ("restart", 16, "spmd")),
        }

    def test_table6_percentages_reasonable(self):
        for app, rows in PAPER_TABLE6.items():
            for row in rows.values():
                assert 80 <= row.segment_pct + row.arrays_pct <= 100


class TestDrivers:
    def test_build_state_matches_inventory(self):
        from repro.apps import make_proxy

        proxy = make_proxy("lu", "A", store_data=False)
        arrays = build_state(proxy, 8)
        assert [a.name for a in arrays] == [f.name for f in proxy.fields]
        assert sum(a.nbytes_global for a in arrays) == proxy.array_bytes_total

    def test_measure_is_deterministic(self):
        a = measure_checkpoint_restart("sp", 8)
        b = measure_checkpoint_restart("sp", 8)
        assert a.seconds() == b.seconds()

    def test_restart_on_different_pes(self):
        cell = measure_checkpoint_restart("bt", 8, restart_pes=16)
        assert cell.drms_restart.ntasks == 16

    def test_machine_left_clean(self):
        from repro.runtime.machine import Machine, MachineParams

        m = Machine(MachineParams(num_nodes=16))
        measure_checkpoint_restart("bt", 8, machine=m)
        assert m.busy_fraction() == 0.0


class TestNoiseModel:
    def test_mean_preserved(self):
        mean, sigma = repeat_with_noise(100.0, runs=4000, cv=0.1, seed=3)
        assert mean == pytest.approx(100.0, rel=0.02)
        assert sigma == pytest.approx(10.0, rel=0.2)

    def test_seeded_reproducible(self):
        assert repeat_with_noise(50.0, seed=9) == repeat_with_noise(50.0, seed=9)
