"""Tests for the Section 6 shadow-ratio analysis."""

import pytest

from repro.perfmodel.shadow_ratio import (
    extra_task_based_bytes,
    shadow_ratio,
    shadow_ratio_for_grid,
)


def test_formula():
    assert shadow_ratio(32, s=2, d=3) == pytest.approx((36 / 32) ** 3)


def test_no_shadow_means_no_overhead():
    assert shadow_ratio(10, s=0, d=3) == 1.0


def test_paper_example_band():
    """The paper reports r = 1.38 for 'reasonable CFD values' n = 32,
    d = 3 (the shadow width is garbled in the source text; s = 2, BT's
    width, gives 1.42)."""
    r = shadow_ratio(32, s=2, d=3)
    assert 1.3 < r < 1.5


def test_ratio_grows_with_tasks_at_fixed_grid():
    """Paper: r increases with P if N remains constant."""
    rs = [shadow_ratio_for_grid(162, p ** 3, s=2) for p in (2, 3, 5, 6)]
    assert rs == sorted(rs)


def test_ratio_grows_with_dimension_and_shadow():
    assert shadow_ratio(32, 1, 3) > shadow_ratio(32, 1, 2)
    assert shadow_ratio(32, 2, 3) > shadow_ratio(32, 1, 3)


def test_bt_class_c_on_125_procs_500mb():
    """Paper: NPB BT Class C on 125 processors => ~500 MB of extra
    task-based data (BT's ~40 grid scalars = 320 B/point)."""
    extra = extra_task_based_bytes(162, 125, s=2, d=3, bytes_per_point=320)
    assert extra == pytest.approx(500e6, rel=0.2)


def test_grid_requires_perfect_power():
    with pytest.raises(ValueError):
        shadow_ratio_for_grid(64, 10, d=3)


def test_invalid_inputs():
    with pytest.raises(ValueError):
        shadow_ratio(0)
    with pytest.raises(ValueError):
        shadow_ratio(8, s=-1)
    with pytest.raises(ValueError):
        shadow_ratio(8, d=0)


def test_matches_actual_distribution_overhead():
    """The analytic r matches the measured local-vs-global element
    ratio of a real block distribution with shadows (away from edges
    the match is approximate because real shadows clip at the array
    boundary, so the analytic r is an upper bound)."""
    from repro.arrays.distributions import block_distribution

    N, p, s = 60, 3, 1
    d = block_distribution((N, N, N), p ** 3, shadow=(s, s, s))
    measured = d.total_local_elements() / d.global_elements()
    analytic = shadow_ratio(N / p, s=s, d=3)
    assert measured <= analytic
    assert measured == pytest.approx(analytic, rel=0.12)
