"""Tests for the shared report generators and the CLI tool."""

import io

import pytest

from repro.perfmodel import reportgen


@pytest.fixture(scope="module")
def cells():
    return reportgen.measure_all_cells()


def test_measure_all_cells_covers_grid(cells):
    assert set(cells) == {(b, p) for b in ("bt", "lu", "sp") for p in (8, 16)}


def test_table_texts_render(cells):
    for name, builder in [
        ("Table 1", lambda: reportgen.table1()),
        ("Table 3", lambda: reportgen.table3()),
        ("Table 4", lambda: reportgen.table4()),
        ("Table 5", lambda: reportgen.table5(cells)),
        ("Table 6", lambda: reportgen.table6(cells)),
        ("Figure 7", lambda: reportgen.figure7(cells)),
    ]:
        text, data = builder()
        assert name in text
        assert "BT" in text
        assert data


def test_cli_writes_artifacts(tmp_path):
    from repro.tools.report import generate_report

    buf = io.StringIO()
    generate_report(out_dir=str(tmp_path), stream=buf)
    out = buf.getvalue()
    for anchor in ("Table 1", "Table 3", "Table 4", "Table 5", "Table 6", "Figure 7"):
        assert anchor in out
    names = {p.name for p in tmp_path.iterdir()}
    assert names == {
        "table1.txt", "table3.txt", "table4.txt",
        "table5.txt", "table6.txt", "figure7.txt",
    }


def test_cli_main_exit_code(tmp_path, capsys):
    from repro.tools.report import main

    assert main(["--out", str(tmp_path)]) == 0
    assert "Table 5" in capsys.readouterr().out
