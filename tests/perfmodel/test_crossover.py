"""Tests for the analytic restart-crossover predictor."""

import pytest

from repro.apps import make_proxy
from repro.perfmodel.crossover import (
    AppProfile,
    crossover_pes,
    drms_restart_s,
    spmd_restart_s,
    threshold_pes,
)
from repro.perfmodel.experiments import measure_checkpoint_restart


@pytest.fixture(params=["bt", "lu", "sp"])
def profile(request):
    return request.param, AppProfile.of(make_proxy(request.param, "A"))


class TestThreshold:
    def test_lu_crosses_before_bt_and_sp(self):
        t = {b: threshold_pes(AppProfile.of(make_proxy(b, "A"))) for b in ("bt", "lu", "sp")}
        # the paper: LU is over the threshold already at 8 PEs; BT/SP
        # cross between 8 and 16
        assert t["lu"] <= 8
        assert 8 < t["bt"] <= 16
        assert 8 < t["sp"] <= 16

    def test_tiny_app_never_crosses(self):
        small = AppProfile(segment_bytes=int(1e6), array_bytes=int(1e6))
        assert threshold_pes(small) > 16


class TestFormulasMatchEngine:
    def test_analytic_matches_simulated_within_tolerance(self, profile):
        name, prof = profile
        for pes in (8, 16):
            cell = measure_checkpoint_restart(name, pes)
            assert drms_restart_s(prof, pes) == pytest.approx(
                cell.drms_restart.total_seconds, rel=0.05
            )
            assert spmd_restart_s(prof, pes) == pytest.approx(
                cell.spmd_restart.total_seconds, rel=0.05
            )


class TestCrossover:
    def test_paper_pattern(self):
        """LU: DRMS wins everywhere interesting; BT/SP: SPMD wins at 8,
        DRMS from the threshold onward."""
        xo = {b: crossover_pes(AppProfile.of(make_proxy(b, "A"))) for b in ("bt", "lu", "sp")}
        assert xo["lu"] is not None and xo["lu"] <= 8
        for b in ("bt", "sp"):
            assert xo[b] is not None
            assert 8 < xo[b] <= 16  # consistent with the Table 5 story

    def test_crossover_consistent_with_formulas(self, profile):
        name, prof = profile
        xo = crossover_pes(prof)
        if xo is None:
            return
        assert drms_restart_s(prof, xo) < spmd_restart_s(prof, xo)
        if xo > 1:
            assert drms_restart_s(prof, xo - 1) >= spmd_restart_s(prof, xo - 1)

    def test_none_when_drms_never_wins(self):
        # arrays so large that the DRMS array-read phase dominates at
        # every machine size, while segments stay under the threshold
        prof = AppProfile(segment_bytes=int(5e6), array_bytes=int(900e6), n_arrays=3)
        assert crossover_pes(prof) is None
