"""Tests for the ASCII reporting helpers."""

import pytest

from repro.reporting.compare import Comparison, fmt_mb, fmt_s
from repro.reporting.tables import Table, bar_chart


class TestTable:
    def test_render_alignment(self):
        t = Table(["a", "long header"], title="T")
        t.add_row(1, 2.5)
        t.add_row("xx", 123456.0)
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "long header" in lines[2]
        widths = {len(l) for l in lines[2:]}
        assert len(widths) == 1  # all rows equally wide

    def test_row_arity_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_float_formatting(self):
        t = Table(["v"])
        for v, expect in [(0.0, "0"), (0.1234, "0.123"), (5.67, "5.7"), (250.4, "250")]:
            t.add_row(v)
        body = t.render().splitlines()[2:]  # no title: header, sep, rows
        assert [b.strip() for b in body] == ["0", "0.123", "5.7", "250"]

    def test_empty_table_renders_header(self):
        out = Table(["only"]).render()
        assert "only" in out


class TestBarChart:
    def test_components_and_legend(self):
        chart = bar_chart(
            {"run A": {"x": 2.0, "y": 1.0}, "run B": {"x": 1.0}},
            width=10, title="demo",
        )
        assert "demo" in chart
        assert "legend:" in chart
        assert "#=x" in chart and "==y" in chart

    def test_bars_scale_to_peak(self):
        chart = bar_chart({"big": {"x": 10.0}, "small": {"x": 1.0}}, width=20)
        big_line = next(l for l in chart.splitlines() if l.startswith("big"))
        small_line = next(l for l in chart.splitlines() if l.startswith("small"))
        assert big_line.count("#") > 5 * small_line.count("#")


class TestComparison:
    def test_ratio_and_within(self):
        c = Comparison("x", paper=10.0, measured=11.0)
        assert c.ratio == pytest.approx(1.1)
        assert c.within(0.15)
        assert not c.within(0.05)

    def test_zero_paper(self):
        assert Comparison("x", 0.0, 0.0).ratio == 1.0
        assert Comparison("x", 0.0, 5.0).ratio == float("inf")

    def test_row_flags_reconstructed(self):
        c = Comparison("cell", 42, 83.4, unit="s", reconstructed=True)
        row = c.row()
        assert "(reconstructed)" in row[0]
        assert row[1] == "42s"

    def test_formatters(self):
        assert fmt_mb(84e6) == "84.0"
        assert fmt_s(15.94) == "15.9"
