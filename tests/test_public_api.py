"""The package's public surface: everything advertised imports and the
README quickstart runs verbatim."""

import importlib

import numpy as np
import pytest

import repro


def test_version():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


@pytest.mark.parametrize(
    "module",
    [
        "repro.arrays",
        "repro.runtime",
        "repro.pfs",
        "repro.streaming",
        "repro.checkpoint",
        "repro.drms",
        "repro.drms.api",
        "repro.drms.elastic",
        "repro.drms.mpmd",
        "repro.drms.nonconforming",
        "repro.drms.steering",
        "repro.infra",
        "repro.infra.fleet",
        "repro.infra.study",
        "repro.policy",
        "repro.apps",
        "repro.apps.unstructured",
        "repro.apps.verify",
        "repro.perfmodel",
        "repro.perfmodel.reportgen",
        "repro.perfmodel.sensitivity",
        "repro.reporting",
        "repro.tools.forensics",
        "repro.tools.report",
        "repro.verify",
    ],
)
def test_submodule_all_exports(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.{name}"


def test_readme_quickstart_verbatim():
    from repro import CheckpointStatus, DRMSApplication
    from repro.drms.api import (
        drms_adjust,
        drms_create_distribution,
        drms_distribute,
        drms_initialize,
        drms_reconfig_checkpoint,
    )

    N = 32

    def main(ctx, niter, prefix):
        drms_initialize(ctx)
        dist = drms_create_distribution(ctx, (N, N), shadow=(1, 1))
        u = drms_distribute(ctx, "u", dist, init_global=np.ones((N, N)))
        for it in ctx.iterations(1, niter + 1):
            if it % 10 == 1:
                status, delta = drms_reconfig_checkpoint(ctx, prefix)
                if status is CheckpointStatus.RESTARTED and delta != 0:
                    u = drms_distribute(ctx, "u", drms_adjust(ctx, "u"))
            u.set_assigned(u.assigned + 1.0)
            ctx.barrier()

    app = DRMSApplication(main)
    rep1 = app.start(8, args=(30, "ckpt"))  # 100 iters in the README; 30 here
    rep2 = app.restart("ckpt", 12, args=(30, "ckpt"))
    assert np.allclose(
        rep1.arrays["u"].to_global(), rep2.arrays["u"].to_global()
    )


def test_py_typed_marker_ships():
    import pathlib

    pkg = pathlib.Path(repro.__file__).parent
    assert (pkg / "py.typed").exists()
