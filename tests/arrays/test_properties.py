"""Property-based tests (hypothesis) for the range/slice/distribution
algebra — the invariants in DESIGN.md §6."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import (
    Block,
    BlockCyclic,
    Cyclic,
    Distribution,
    block_distribution,
)
from repro.arrays.ranges import Range
from repro.arrays.slices import Slice


# -- strategies ---------------------------------------------------------------

regular_ranges = st.builds(
    Range.regular,
    st.integers(-20, 20),
    st.integers(-20, 60),
    st.integers(1, 7),
)

indexed_ranges = st.lists(
    st.integers(-30, 70), min_size=0, max_size=12, unique=True
).map(sorted).map(Range)

ranges = st.one_of(regular_ranges, indexed_ranges)

slices2d = st.builds(lambda a, b: Slice([a, b]), ranges, ranges)


# -- range algebra --------------------------------------------------------------


@given(ranges, ranges)
def test_intersection_commutative(q, r):
    assert q * r == r * q


@given(ranges, ranges, ranges)
@settings(max_examples=60)
def test_intersection_associative(q, r, s):
    assert (q * r) * s == q * (r * s)


@given(ranges)
def test_intersection_idempotent(r):
    assert r * r == r


@given(ranges, ranges)
def test_intersection_size_bound(q, r):
    assert (q * r).size <= min(q.size, r.size)


@given(ranges, ranges)
def test_intersection_matches_numpy(q, r):
    expect = np.intersect1d(q.indices(), r.indices())
    assert np.array_equal((q * r).indices(), expect)


@given(ranges)
def test_lo_hi_partition(r):
    lo, hi = r.lo(), r.hi()
    assert list(lo) + list(hi) == list(r)
    assert lo.size - hi.size in (0, 1)


@given(ranges, ranges)
def test_union_size(q, r):
    assert q.union(r).size == q.size + r.size - (q * r).size


@given(ranges, st.integers(-50, 50))
def test_shift_preserves_structure(r, off):
    s = r.shift(off)
    assert s.size == r.size
    assert np.array_equal(s.indices(), r.indices() + off)


# -- slice algebra -----------------------------------------------------------------


@given(slices2d, slices2d)
def test_slice_intersection_commutative(s, t):
    assert s * t == t * s


@given(slices2d)
def test_slice_size_is_product(s):
    assert s.size == s[0].size * s[1].size


@given(slices2d)
def test_slice_lo_hi_tile(s):
    lo, hi = s.lo(), s.hi()
    assert lo.size + hi.size == s.size
    if not s.is_empty and s.size > 1:
        assert (lo * hi).is_empty


# -- distribution legality -------------------------------------------------------------

axis_kinds = st.sampled_from([Block(), Cyclic(), BlockCyclic(2), BlockCyclic(3)])


@given(
    st.integers(4, 25),
    st.integers(4, 25),
    st.integers(1, 8),
    axis_kinds,
    axis_kinds,
    st.integers(0, 2),
)
@settings(max_examples=60)
def test_distribution_always_legal(nx, ny, ntasks, kx, ky, shadow):
    d = Distribution((nx, ny), [kx, ky], ntasks, shadow=(shadow, shadow))
    d.validate()  # raises on any violation
    # assigned sections tile the array
    total = sum(d.assigned(t).size for t in range(ntasks))
    assert total == nx * ny


@given(st.integers(2, 20), st.integers(1, 6), st.integers(1, 6), st.integers(0, 2))
@settings(max_examples=50)
def test_redistribution_preserves_content(n, t1, t2, shadow):
    g = np.arange(n * n, dtype=np.float64).reshape(n, n)
    a = DistributedArray(
        "a", (n, n), np.float64, block_distribution((n, n), t1, shadow=(shadow, shadow))
    )
    a.set_global(g)
    b = a.redistributed(block_distribution((n, n), t2, shadow=(shadow, shadow)))
    assert np.array_equal(b.to_global(), g)
    assert b.is_consistent()
