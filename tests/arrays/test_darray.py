"""Unit tests for DistributedArray."""

import numpy as np
import pytest

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import Cyclic, Distribution, block_distribution
from repro.arrays.ranges import Range
from repro.arrays.slices import Slice
from repro.errors import ArrayError


@pytest.fixture
def grid():
    return np.arange(12 * 10, dtype=np.float64).reshape(12, 10)


@pytest.fixture
def arr(grid):
    d = block_distribution((12, 10), 4, shadow=(1, 1))
    a = DistributedArray("u", (12, 10), np.float64, d)
    a.set_global(grid)
    return a


class TestBasics:
    def test_requires_distribution(self):
        with pytest.raises(ArrayError):
            DistributedArray("u", (4, 4), np.float64, None)

    def test_shape_must_match_distribution(self):
        d = block_distribution((4, 4), 2)
        with pytest.raises(ArrayError):
            DistributedArray("u", (4, 5), np.float64, d)

    def test_byte_accounting(self, arr):
        assert arr.nbytes_global == 12 * 10 * 8
        assert arr.nbytes_total_local > arr.nbytes_global  # shadows
        assert sum(arr.nbytes_local(t) for t in range(4)) == arr.nbytes_total_local

    def test_local_shapes_match_mapped(self, arr):
        for t in range(4):
            assert arr.local(t).shape == arr.distribution.mapped(t).shape


class TestGlobalRoundTrip:
    def test_set_get_global(self, arr, grid):
        assert np.array_equal(arr.to_global(), grid)

    def test_set_global_shape_check(self, arr):
        with pytest.raises(ArrayError):
            arr.set_global(np.zeros((3, 3)))

    def test_consistency_after_set_global(self, arr):
        assert arr.is_consistent()

    def test_owner_write_breaks_then_shadow_fix(self, arr):
        arr.set_assigned(0, arr.assigned_view(0) + 100.0)
        assert not arr.is_consistent()  # neighbors hold stale shadows
        arr.update_shadows()
        assert arr.is_consistent()

    def test_defined_mask_full_for_total_distribution(self, arr):
        assert arr.defined_mask().all()

    def test_undefined_elements(self):
        from repro.arrays.distributions import Indexed

        # only even elements assigned; odds are undefined
        d = Distribution((8,), [Indexed([Range.regular(0, 6, 2)])], 1)
        a = DistributedArray("v", (8,), np.float64, d)
        mask = a.defined_mask()
        assert mask[::2].all() and not mask[1::2].any()
        g = a.to_global(fill=-1)
        assert (g[1::2] == -1).all()


class TestSections:
    def test_section_from_task(self, arr, grid):
        sec = Slice([Range([2, 3]), Range([1, 4])])
        got = arr.section_from_task(0, sec)
        assert np.array_equal(got, grid[np.ix_([2, 3], [1, 4])])

    def test_section_outside_mapped_rejected(self, arr):
        sec = Slice([Range([11]), Range([9])])  # belongs to task 3
        with pytest.raises(ArrayError):
            arr.section_from_task(0, sec)

    def test_section_to_task(self, arr):
        sec = Slice([Range([0, 1]), Range([0, 1])])
        arr.section_to_task(0, sec, np.full((2, 2), -5.0))
        assert (arr.assigned_view(0)[:2, :2] == -5.0).all()


class TestRedistribution:
    @pytest.mark.parametrize("nt", [1, 2, 3, 6, 8])
    def test_block_to_block(self, arr, grid, nt):
        b = arr.redistributed(block_distribution((12, 10), nt, shadow=(1, 1)))
        assert np.array_equal(b.to_global(), grid)
        assert b.is_consistent()

    def test_block_to_cyclic(self, arr, grid):
        d = Distribution((12, 10), [Cyclic(), Cyclic()], 4)
        b = arr.redistributed(d)
        assert np.array_equal(b.to_global(), grid)

    def test_shape_preserved(self, arr):
        with pytest.raises(ArrayError):
            arr.redistributed(block_distribution((10, 12), 4))


class TestVirtualMode:
    def test_sizes_without_data(self):
        d = block_distribution((100, 100), 8, shadow=(1, 1))
        a = DistributedArray("big", (100, 100), np.float64, d, store_data=False)
        assert a.nbytes_global == 100 * 100 * 8
        assert a.nbytes_total_local > a.nbytes_global

    def test_data_ops_rejected(self):
        d = block_distribution((10,), 2)
        a = DistributedArray("v", (10,), np.float64, d, store_data=False)
        with pytest.raises(ArrayError):
            a.local(0)
        with pytest.raises(ArrayError):
            a.to_global()

    def test_virtual_redistribution_keeps_virtual(self):
        d = block_distribution((10,), 2)
        a = DistributedArray("v", (10,), np.float64, d, store_data=False)
        b = a.redistributed(block_distribution((10,), 5))
        assert not b.store_data
        assert b.ntasks == 5
