"""Regressions for empty-range / zero-extent-slice edge cases.

The verify harness's generators produce sections where one axis is
empty while others are not (e.g. intersecting disjoint column ranges).
These used to raise ``RangeError`` deep inside local addressing; they
must instead behave as empty sections throughout the algebra."""

import numpy as np
import pytest

from repro.arrays.ranges import Range, RangeError
from repro.arrays.slices import Slice
from repro.streaming.order import section_stream_positions


def test_cross_axis_empty_intersection_is_canonical_empty():
    a = Slice([Range.regular(0, 1, 1), Range.regular(5, 7, 1)])
    b = Slice([Range.regular(0, 1, 1), Range.regular(0, 3, 1)])
    out = a.intersect(b)
    assert out.is_empty
    # normalized: every axis is empty, not just the disjoint one
    assert all(r.is_empty for r in out.ranges)
    assert out == Slice.empty(2)


def test_empty_intersection_stays_subset_of_both_operands():
    a = Slice([Range.regular(0, 3, 1), Range.regular(5, 7, 1)])
    b = Slice([Range.regular(2, 3, 1), Range.regular(0, 3, 1)])
    out = a.intersect(b)
    assert out.issubset(a) and out.issubset(b)


def test_positions_of_empty_sub_never_raises():
    assert Range.regular(2, 5, 1).positions_of(Range.empty()).size == 0
    assert Range.empty().positions_of(Range.empty()).size == 0


def test_positions_of_nonempty_sub_of_empty_range_still_raises():
    with pytest.raises(RangeError):
        Range.empty().positions_of(Range.regular(0, 0, 1))


def test_local_index_within_empty_section_selects_nothing():
    outer = Slice([Range.regular(0, 3, 1), Range.regular(0, 3, 1)])
    # zero-extent on axis 1 but a non-subset range on axis 0: the old
    # per-axis path would raise on positions_of
    empty = Slice([Range.regular(5, 9, 1), Range.empty()])
    local = np.zeros((4, 4))
    assert local[empty.local_index_within(outer)].size == 0


def test_section_stream_positions_of_empty_sub_is_empty():
    section = Slice([Range.regular(0, 3, 1), Range.regular(0, 3, 1)])
    sub = Slice([Range.regular(6, 8, 1), Range.empty()])
    assert sub.issubset(section)  # empty slices are subsets of anything
    for order in ("F", "C"):
        pos = section_stream_positions(section, sub, order=order)
        assert pos.size == 0


def test_zero_extent_slice_size_and_equality():
    s = Slice([Range.regular(0, 5, 2), Range.empty()])
    assert s.size == 0 and s.is_empty
    assert s == Slice([Range.empty(), Range.regular(1, 1, 1)])
