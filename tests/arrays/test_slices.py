"""Unit tests for Slice: the paper's array-section descriptor."""

import numpy as np
import pytest

from repro.arrays.ranges import Range
from repro.arrays.slices import Slice
from repro.errors import SliceError


@pytest.fixture
def paper_slice():
    """The Figure 2 example: s = ((8,9,10,12), (16,18,19,20,22))."""
    return Slice([Range([8, 9, 10, 12]), Range([16, 18, 19, 20, 22])])


class TestBasics:
    def test_paper_example_size(self, paper_slice):
        assert paper_slice.rank == 2
        assert paper_slice.size == 4 * 5
        assert paper_slice.shape == (4, 5)

    def test_full(self):
        s = Slice.full((3, 4))
        assert s.size == 12
        assert s[0] == Range.of_size(3)

    def test_empty(self):
        assert Slice.empty(3).is_empty
        assert Slice.empty(3).size == 0

    def test_needs_a_range(self):
        with pytest.raises(SliceError):
            Slice([])

    def test_accepts_mixed_specs(self):
        s = Slice([slice(0, 3), [5, 9], 7])
        assert s.shape == (3, 2, 1)

    def test_equality_and_hash(self):
        a = Slice([Range([1, 2]), Range([3])])
        b = Slice([slice(1, 3), 3])
        assert a == b
        assert hash(a) == hash(b)
        # all empties of same rank are equal regardless of axis ranges
        e1 = Slice([Range.empty(), Range([1])])
        e2 = Slice([Range([5]), Range.empty()])
        assert e1 == e2

    def test_contains_point(self, paper_slice):
        assert paper_slice.contains_point((9, 19))
        assert not paper_slice.contains_point((11, 19))
        with pytest.raises(SliceError):
            paper_slice.contains_point((1, 2, 3))


class TestAlgebra:
    def test_intersection_rangewise(self, paper_slice):
        window = Slice([slice(0, 10), slice(18, 21)])
        got = paper_slice * window
        assert got == Slice([Range([8, 9]), Range([18, 19, 20])])

    def test_intersection_rank_mismatch(self, paper_slice):
        with pytest.raises(SliceError):
            paper_slice * Slice.full((4,))

    def test_issubset(self, paper_slice):
        sub = Slice([Range([9, 12]), Range([16, 22])])
        assert sub.issubset(paper_slice)
        assert not paper_slice.issubset(sub)
        assert Slice.empty(2).issubset(paper_slice)

    def test_replace_and_shift_and_clip(self):
        s = Slice([slice(0, 4), slice(2, 6)])
        assert s.replace(1, Range([9]))[1] == Range([9])
        assert s.shift((10, -2)) == Slice([slice(10, 14), slice(0, 4)])
        assert s.clip((3, 3)) == Slice([slice(0, 3), slice(2, 3)])


class TestStreamSplit:
    def test_f_order_splits_last_axis_first(self):
        s = Slice.full((4, 6))
        assert s.split_axis("F") == 1
        assert s.lo("F") == Slice([slice(0, 4), slice(0, 3)])
        assert s.hi("F") == Slice([slice(0, 4), slice(3, 6)])

    def test_c_order_splits_first_axis_first(self):
        s = Slice.full((4, 6))
        assert s.split_axis("C") == 0
        assert s.lo("C") == Slice([slice(0, 2), slice(0, 6)])

    def test_split_skips_singleton_axes(self):
        s = Slice([slice(0, 5), 3])
        assert s.split_axis("F") == 0

    def test_singleton_slice_does_not_split(self):
        s = Slice([2, 3])
        assert s.split_axis("F") == -1
        assert s.lo("F") == s
        assert s.hi("F").is_empty

    def test_lo_hi_tile_the_slice(self, paper_slice):
        lo, hi = paper_slice.lo(), paper_slice.hi()
        assert lo.size + hi.size == paper_slice.size
        assert (lo * hi).is_empty


class TestNumpyInterop:
    def test_np_index_selects_section(self, paper_slice):
        a = np.arange(30 * 30).reshape(30, 30)
        sel = a[paper_slice.np_index()]
        assert sel.shape == (4, 5)
        assert sel[0, 0] == 8 * 30 + 16
        assert sel[3, 4] == 12 * 30 + 22

    def test_local_index_within(self, paper_slice):
        local = np.arange(20).reshape(4, 5)
        sub = Slice([Range([9, 12]), Range([18, 22])])
        picked = local[sub.local_index_within(paper_slice)]
        # rows 9,12 -> positions 1,3; cols 18,22 -> positions 1,4
        assert picked.tolist() == [[6, 9], [16, 19]]

    def test_enumerate_stream_f_order(self):
        s = Slice([Range([0, 1]), Range([5, 7])])
        pts = s.enumerate_stream("F").tolist()
        assert pts == [[0, 5], [1, 5], [0, 7], [1, 7]]

    def test_enumerate_stream_c_order(self):
        s = Slice([Range([0, 1]), Range([5, 7])])
        pts = s.enumerate_stream("C").tolist()
        assert pts == [[0, 5], [0, 7], [1, 5], [1, 7]]
