"""Unit tests for distribution specifications and their legality."""

import numpy as np
import pytest

from repro.arrays.distributions import (
    Block,
    BlockCyclic,
    Cyclic,
    Distribution,
    GenBlock,
    Indexed,
    Replicated,
    block_distribution,
    process_grid,
)
from repro.arrays.ranges import Range
from repro.errors import DistributionError


class TestAxisKinds:
    def test_block_near_equal(self):
        rs = Block().assigned(3, 10)
        assert sorted(r.size for r in rs) == [3, 3, 4]
        assert max(r.size for r in rs) - min(r.size for r in rs) <= 1
        assert rs[0] == Range.regular(0, 2, 1)

    def test_block_covers_disjointly(self):
        rs = Block().assigned(4, 13)
        assert sum(r.size for r in rs) == 13
        for i in range(4):
            for j in range(i + 1, 4):
                assert (rs[i] * rs[j]).is_empty

    def test_cyclic(self):
        rs = Cyclic().assigned(3, 8)
        assert list(rs[0]) == [0, 3, 6]
        assert list(rs[2]) == [2, 5]

    def test_cyclic_more_procs_than_elements(self):
        rs = Cyclic().assigned(5, 3)
        assert rs[4].is_empty

    def test_block_cyclic(self):
        rs = BlockCyclic(2).assigned(2, 10)
        assert list(rs[0]) == [0, 1, 4, 5, 8, 9]
        assert list(rs[1]) == [2, 3, 6, 7]

    def test_block_cyclic_bad_block(self):
        with pytest.raises(DistributionError):
            BlockCyclic(0).assigned(2, 10)

    def test_gen_block(self):
        rs = GenBlock([2, 5, 3]).assigned(3, 10)
        assert [r.size for r in rs] == [2, 5, 3]
        assert rs[1] == Range.regular(2, 6, 1)

    def test_gen_block_must_sum_to_extent(self):
        with pytest.raises(DistributionError):
            GenBlock([2, 5]).assigned(2, 10)

    def test_indexed_irregular(self):
        rs = Indexed([Range([0, 2, 4]), Range([1, 3])]).assigned(2, 5)
        assert list(rs[0]) == [0, 2, 4]

    def test_indexed_bounds_checked(self):
        with pytest.raises(DistributionError):
            Indexed([Range([0, 9])]).assigned(1, 5)

    def test_replicated_requires_grid_1(self):
        assert Replicated().assigned(1, 6)[0] == Range.of_size(6)
        with pytest.raises(DistributionError):
            Replicated().assigned(2, 6)


class TestProcessGrid:
    def test_near_square(self):
        assert process_grid(8, 3) == (2, 2, 2)
        assert sorted(process_grid(16, 3)) == [2, 2, 4]
        assert process_grid(1, 2) == (1, 1)

    def test_fixed_axes(self):
        g = process_grid(8, 4, fixed=(1, 0, 0, 0))
        assert g[0] == 1 and np.prod(g) == 8

    def test_fixed_must_divide(self):
        with pytest.raises(DistributionError):
            process_grid(8, 2, fixed=(3, 0))

    def test_prime_counts(self):
        assert np.prod(process_grid(7, 3)) == 7
        assert np.prod(process_grid(13, 2)) == 13


class TestDistribution:
    def test_task_coords_roundtrip(self):
        d = block_distribution((8, 8), 6, grid=(2, 3))
        for t in range(6):
            assert d.task_of_coords(d.task_coords(t)) == t

    def test_assigned_mapped_shapes(self):
        d = block_distribution((10, 10), 4, shadow=(1, 1))
        # interior tasks mapped sections are assigned+shadow clipped
        a, m = d.assigned(0), d.mapped(0)
        assert a.issubset(m)
        assert m.shape == (6, 6)  # 5+1 shadow on the high side only

    def test_validate_rejects_overlap(self):
        with pytest.raises(DistributionError):
            Distribution((10,), [Indexed([Range([0, 1, 2]), Range([2, 3])])], 2)

    def test_validate_rejects_gap(self):
        with pytest.raises(DistributionError):
            Distribution((10,), [GenBlock([4, 4])], 2)

    def test_shadow_negative_rejected(self):
        with pytest.raises(DistributionError):
            block_distribution((10, 10), 2, shadow=(-1, 0))

    def test_grid_mismatch_rejected(self):
        with pytest.raises(DistributionError):
            block_distribution((10, 10), 4, grid=(3, 2))

    def test_owner_tasks(self):
        from repro.arrays.slices import Slice

        d = block_distribution((12,), 3)
        sec = Slice([Range.regular(3, 8, 1)])
        assert d.owner_tasks(sec) == [0, 1, 2]
        sec2 = Slice([Range.regular(9, 11, 1)])
        assert d.owner_tasks(sec2) == [2]

    def test_total_local_exceeds_global_with_shadows(self):
        d = block_distribution((16, 16), 4, shadow=(2, 2))
        assert d.total_local_elements() > d.global_elements()
        d0 = block_distribution((16, 16), 4)
        assert d0.total_local_elements() == d0.global_elements()

    def test_adjust_preserves_shape_and_shadow(self):
        d = block_distribution((12, 12), 4, shadow=(1, 1))
        d2 = d.adjust(6)
        assert d2.ntasks == 6
        assert d2.shape == d.shape
        assert d2.shadow == d.shadow
        d2.validate()

    def test_adjust_irregular_falls_back_to_block(self):
        d = Distribution((10,), [GenBlock([7, 3])], 2)
        d2 = d.adjust(5)
        assert [d2.assigned(t).size for t in range(5)] == [2, 2, 2, 2, 2]

    def test_equality(self):
        a = block_distribution((9, 9), 3)
        b = block_distribution((9, 9), 3)
        assert a == b
        assert a != a.adjust(2) if a.ntasks != 2 else True

    def test_paper_legality_conditions(self):
        """a_i * a_j empty (i != j) and a_i * m_i == a_i for all i."""
        d = block_distribution((20, 20), 6, shadow=(2, 2))
        for i in range(6):
            assert d.assigned(i).intersect(d.mapped(i)) == d.assigned(i)
            for j in range(i + 1, 6):
                assert d.assigned(i).intersect(d.assigned(j)).is_empty
