"""Unit tests for the Range algebra."""

import numpy as np
import pytest

from repro.arrays.ranges import Range
from repro.errors import RangeError


class TestConstruction:
    def test_regular_triplet(self):
        r = Range.regular(3, 11, 2)
        assert list(r) == [3, 5, 7, 9, 11]
        assert r.size == 5
        assert r.is_regular
        assert r.step == 2

    def test_regular_truncates_to_last_on_stride(self):
        r = Range.regular(0, 10, 3)
        assert r.last == 9
        assert list(r) == [0, 3, 6, 9]

    def test_singleton_from_int(self):
        r = Range(7)
        assert list(r) == [7]
        assert r.first == r.last == 7

    def test_from_python_slice_stop_exclusive(self):
        assert list(Range(slice(2, 7))) == [2, 3, 4, 5, 6]
        assert list(Range(slice(2, 8, 3))) == [2, 5]

    def test_slice_needs_bounds(self):
        with pytest.raises(RangeError):
            Range(slice(None, 5))

    def test_from_index_list(self):
        r = Range([8, 9, 10, 12])
        assert not r.is_regular
        assert list(r) == [8, 9, 10, 12]

    def test_index_list_detects_regular_pattern(self):
        assert Range([2, 4, 6, 8]).is_regular

    def test_rejects_non_increasing(self):
        with pytest.raises(RangeError):
            Range([3, 3, 4])
        with pytest.raises(RangeError):
            Range([5, 4])

    def test_rejects_bad_stride(self):
        with pytest.raises(RangeError):
            Range.regular(0, 5, 0)
        with pytest.raises(RangeError):
            Range.regular(0, 5, -1)

    def test_empty(self):
        e = Range.empty()
        assert e.size == 0
        assert not e
        assert e.is_empty
        assert list(e) == []

    def test_of_size(self):
        assert list(Range.of_size(3, offset=5)) == [5, 6, 7]
        assert Range.of_size(0).is_empty

    def test_copy_constructor(self):
        r = Range([1, 4, 5])
        assert Range(r) == r


class TestProtocol:
    def test_contains(self):
        r = Range.regular(0, 20, 4)
        assert 8 in r and 12 in r
        assert 9 not in r and 24 not in r
        ir = Range([1, 5, 6])
        assert 5 in ir and 2 not in ir

    def test_getitem(self):
        r = Range.regular(10, 20, 5)
        assert [r[0], r[1], r[2]] == [10, 15, 20]
        with pytest.raises(IndexError):
            r[3]

    def test_equality_across_representations(self):
        assert Range([0, 2, 4]) == Range.regular(0, 4, 2)
        assert Range([0, 2, 5]) != Range.regular(0, 5, 2)
        assert Range.empty() == Range.of_size(0)

    def test_hash_consistency(self):
        assert hash(Range([0, 2, 4])) == hash(Range.regular(0, 4, 2))

    def test_first_last_on_empty_raise(self):
        with pytest.raises(RangeError):
            Range.empty().first
        with pytest.raises(RangeError):
            Range.empty().last


class TestIntersection:
    def test_contiguous(self):
        assert Range.regular(0, 10, 1) * Range.regular(5, 20, 1) == Range.regular(5, 10, 1)

    def test_disjoint(self):
        assert (Range.regular(0, 4, 1) * Range.regular(5, 9, 1)).is_empty

    def test_strided_crt(self):
        # multiples of 3 vs multiples of 2 -> multiples of 6
        assert Range.regular(0, 30, 3) * Range.regular(0, 30, 2) == Range.regular(0, 30, 6)

    def test_strided_offset(self):
        a = Range.regular(1, 25, 3)  # 1,4,7,...
        b = Range.regular(0, 25, 2)  # evens
        assert list(a * b) == [4, 10, 16, 22]

    def test_strided_no_solution(self):
        # odds vs evens never meet
        assert (Range.regular(1, 99, 2) * Range.regular(0, 98, 2)).is_empty

    def test_indexed_vs_regular(self):
        assert list(Range([8, 9, 10, 12]) * Range.regular(0, 100, 2)) == [8, 10, 12]

    def test_empty_absorbs(self):
        assert (Range.empty() * Range.regular(0, 5, 1)).is_empty

    def test_matches_numpy_reference(self):
        a = Range.regular(3, 50, 4)
        b = Range([5, 7, 11, 15, 19, 23, 31])
        expect = np.intersect1d(a.indices(), b.indices())
        assert np.array_equal((a * b).indices(), expect)


class TestSetOps:
    def test_union(self):
        assert list(Range([1, 3]).union(Range([2, 3, 5]))) == [1, 2, 3, 5]
        assert Range.empty().union(Range([4])) == Range([4])

    def test_difference(self):
        assert list(Range.regular(0, 5, 1).difference(Range([1, 3]))) == [0, 2, 4, 5]

    def test_shift(self):
        assert Range.regular(0, 4, 2).shift(10) == Range.regular(10, 14, 2)
        assert Range([1, 5]).shift(-1) == Range([0, 4])

    def test_clip(self):
        assert Range.regular(0, 100, 7).clip(10, 50) == Range.regular(14, 49, 7)

    def test_issubset(self):
        assert Range([2, 4]).issubset(Range.regular(0, 10, 2))
        assert not Range([2, 3]).issubset(Range.regular(0, 10, 2))
        assert Range.empty().issubset(Range.empty())


class TestSplitting:
    def test_lo_hi_partition_in_order(self):
        r = Range.regular(0, 9, 1)
        assert list(r.lo()) + list(r.hi()) == list(r)
        assert r.lo().size == 5

    def test_odd_split_puts_extra_in_lo(self):
        r = Range.regular(0, 4, 1)
        assert r.lo().size == 3
        assert r.hi().size == 2

    def test_singleton_hi_empty(self):
        r = Range(5)
        assert r.lo() == r
        assert r.hi().is_empty

    def test_take(self):
        r = Range.regular(0, 20, 2)
        assert list(r.take(2, 5)) == [4, 6, 8]
        assert r.take(5, 2).is_empty
        assert r.take(-3, 100) == r


class TestPositions:
    def test_positions_regular(self):
        outer = Range.regular(10, 30, 2)
        sub = Range([12, 20, 28])
        assert list(outer.positions_of(sub)) == [1, 5, 9]

    def test_positions_indexed(self):
        outer = Range([3, 7, 9, 20])
        assert list(outer.positions_of(Range([7, 20]))) == [1, 3]

    def test_positions_rejects_non_subset(self):
        with pytest.raises(RangeError):
            Range.regular(0, 10, 2).positions_of(Range([3]))
        with pytest.raises(RangeError):
            Range([3, 7]).positions_of(Range([5]))
