"""Unit tests for the array assignment (redistribution) engine."""

import numpy as np
import pytest

from repro.arrays.assignment import (
    Transfer,
    array_assign,
    build_schedule,
    schedule_bytes,
)
from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import Cyclic, Distribution, block_distribution
from repro.arrays.slices import Slice
from repro.errors import ArrayError


def make(name, shape, nt, shadow=None, kind="block", data=None):
    if kind == "block":
        d = block_distribution(shape, nt, shadow=shadow)
    else:
        d = Distribution(shape, [Cyclic() for _ in shape], nt)
    a = DistributedArray(name, shape, np.float64, d)
    if data is not None:
        a.set_global(data)
    return a


class TestSchedule:
    def test_sections_are_owner_mapped_intersections(self):
        src = make("a", (8,), 2)
        dst = make("b", (8,), 4, shadow=(1,))
        sched = build_schedule(src.distribution, dst.distribution)
        for tr in sched:
            expect = src.distribution.assigned(tr.src_task).intersect(
                dst.distribution.mapped(tr.dst_task)
            )
            assert tr.section == expect
            assert not tr.section.is_empty

    def test_every_dst_mapped_element_covered_once_per_copy(self):
        src = make("a", (9, 9), 3)
        dst = make("b", (9, 9), 2, shadow=(1, 1))
        sched = build_schedule(src.distribution, dst.distribution)
        for j in range(2):
            m = dst.distribution.mapped(j)
            covered = sum(
                tr.section.size for tr in sched if tr.dst_task == j
            )
            assert covered == m.size  # disjoint owners tile the mapped slice

    def test_schedule_bytes(self):
        sched = [
            Transfer(0, 0, Slice([slice(0, 4)])),
            Transfer(0, 1, Slice([slice(4, 8)])),
        ]
        assert schedule_bytes(sched, 8) == 64
        assert schedule_bytes(sched, 8, remote_only=True) == 32

    def test_shape_mismatch(self):
        with pytest.raises(ArrayError):
            build_schedule(
                block_distribution((4,), 2), block_distribution((5,), 2)
            )


class TestAssign:
    def test_identity_distribution_is_local_only(self):
        g = np.arange(16.0).reshape(4, 4)
        a = make("a", (4, 4), 2, data=g)
        b = make("b", (4, 4), 2)
        sched = array_assign(b, a)
        assert all(tr.is_local for tr in sched)
        assert np.array_equal(b.to_global(), g)

    def test_cross_distribution(self):
        g = np.arange(48.0).reshape(6, 8)
        a = make("a", (6, 8), 3, data=g)
        b = make("b", (6, 8), 4, kind="cyclic")
        array_assign(b, a)
        assert np.array_equal(b.to_global(), g)
        assert b.is_consistent()

    def test_overlapping_mapped_copies_all_updated(self):
        g = np.arange(64.0).reshape(8, 8)
        a = make("a", (8, 8), 2, data=g)
        b = make("b", (8, 8), 4, shadow=(2, 2))
        array_assign(b, a)
        assert b.is_consistent()

    def test_dtype_mismatch_rejected(self):
        a = make("a", (4,), 2, data=np.zeros(4))
        d = block_distribution((4,), 2)
        b = DistributedArray("b", (4,), np.float32, d)
        with pytest.raises(ArrayError):
            array_assign(b, a)

    def test_assign_returns_usable_schedule(self):
        g = np.ones((6, 6))
        a = make("a", (6, 6), 2, data=g)
        b = make("b", (6, 6), 3)
        sched = array_assign(b, a)
        moved = schedule_bytes(sched, a.itemsize)
        assert moved >= a.nbytes_global  # every element moved at least once
