"""Oracle behavior: generated cases pass, corrupted setups fail
(tests/verify)."""

import pytest

from repro.verify import (
    CaseGen,
    VerifyFailure,
    known_bad_case,
    replay_case,
    run_case,
    run_suite,
)
from repro.verify.case import Case, FaultEvent

pytestmark = pytest.mark.verify


def test_generated_reconfig_cases_pass_all_engines():
    gen = CaseGen(4242)
    engines = set()
    for _ in range(15):
        case = gen.reconfig_case()
        engines.add(case.engine)
        result = run_case(case)
        assert result.checked > 0
    # 15 draws at the default engine weights covers all three with
    # overwhelming probability for this fixed seed
    assert engines == {"drms", "spmd", "incremental"}


def test_generated_fault_cases_pass_validated_policy():
    gen = CaseGen(777)
    for _ in range(6):
        case = gen.fault_case()
        result = run_case(case)
        assert result.checked > 0


def test_naive_policy_fails_on_silent_truncation():
    case = known_bad_case(seed=0)
    with pytest.raises(VerifyFailure) as exc:
        run_case(case)
    assert exc.value.errors
    assert exc.value.case is case


def test_validated_policy_survives_the_same_schedule():
    case = known_bad_case(seed=0)
    case.policy = "validated"
    case.expect = "pass"
    result = run_case(case)
    assert result.checked > 0


def test_replay_honors_fail_expectation():
    case = known_bad_case(seed=0)  # expect == "fail"
    result = replay_case(case)
    assert "failed_as_expected" in result.details


def test_replay_flags_a_case_that_stops_failing():
    case = known_bad_case(seed=0)
    case.policy = "validated"  # the injury is now caught -> case passes
    with pytest.raises(VerifyFailure):
        replay_case(case)  # but the file still says expect == "fail"


def test_write_fault_on_manifest_aborts_the_generation():
    """A torn manifest write must leave the generation uncommitted, so
    recovery (either policy) falls back to the previous one."""
    case = known_bad_case(seed=0)
    case.events = [
        FaultEvent(kind="write", gen=3, nth=1, match=".manifest",
                   mode="torn", keep_bytes=7),
    ]
    case.policy = "validated"
    case.expect = "pass"
    result = run_case(case)
    assert result.checked > 0


def test_run_suite_aggregates_and_is_deterministic():
    r1 = run_suite(20260806, reconfig_cases=8, fault_cases=2)
    r2 = run_suite(20260806, reconfig_cases=8, fault_cases=2)
    assert r1.ok and r2.ok
    assert r1.total == r2.total == 10
    assert r1.invariants_checked == r2.invariants_checked
    assert r1.engines == r2.engines


def test_case_json_round_trip_preserves_the_verdict(tmp_path):
    case = known_bad_case(seed=0)
    path = tmp_path / "case.json"
    case.save(path)
    loaded = Case.load(path)
    assert loaded.to_json() == case.to_json()
    assert "failed_as_expected" in replay_case(loaded).details
