"""Property: ``assignment.transfer_schedule`` exactly partitions every
destination task's assigned section — no gaps, no overlaps — for random
source/destination distribution pairs (tests/verify)."""

import random

import numpy as np
import pytest

from repro.arrays.assignment import schedule_bytes, transfer_schedule
from repro.verify.gen import random_distribution, random_shape

pytestmark = pytest.mark.verify


def _coverage(shape, sections):
    """Element-wise occupancy count of a list of Slices over ``shape``."""
    hits = np.zeros(shape, dtype=np.int64)
    for sec in sections:
        if sec.is_empty:
            continue
        hits[np.ix_(*[r.indices() for r in sec.ranges])] += 1
    return hits


def _defined(dist):
    """Occupancy of the distribution's assigned sections (1 where some
    task owns the element, 0 where INDEXED coverage leaves it out)."""
    return _coverage(
        dist.shape, [dist.assigned(t) for t in range(dist.ntasks)]
    )


@pytest.mark.parametrize("seed", range(8))
def test_transfers_partition_each_destination_section(seed):
    rng = random.Random(1000 + seed)
    for _ in range(12):
        shape = random_shape(rng)
        src = random_distribution(rng, shape, rng.randint(1, 5))
        dst = random_distribution(rng, shape, rng.randint(1, 5))
        src_defined = _defined(src)
        assert src_defined.max() <= 1  # assigned sections are disjoint

        schedule = transfer_schedule(src, dst)
        for j in range(dst.ntasks):
            assigned = dst.assigned(j)
            incoming = [
                tr.section.intersect(assigned)
                for tr in schedule
                if tr.dst_task == j
            ]
            got = _coverage(shape, incoming)
            # no overlaps: each element of the assigned section arrives
            # from exactly one owner...
            assert got.max() <= 1
            # ...and no gaps: every source-defined element of the
            # assigned section is covered
            want = _coverage(shape, [assigned]) * src_defined
            assert np.array_equal(got, want)


def test_transfers_land_inside_mapped_sections():
    """Every scheduled section is owned by its source task and received
    inside the destination task's mapped (assigned + halo) section."""
    rng = random.Random(31)
    checked = 0
    for _ in range(20):
        shape = random_shape(rng)
        src = random_distribution(rng, shape, rng.randint(1, 4))
        dst = random_distribution(rng, shape, rng.randint(1, 4))
        for tr in transfer_schedule(src, dst):
            assert not tr.section.is_empty
            assert tr.section.issubset(src.assigned(tr.src_task))
            assert tr.section.issubset(dst.mapped(tr.dst_task))
            checked += 1
    assert checked > 0


def test_schedule_bytes_matches_section_sizes():
    rng = random.Random(63)
    shape = [6, 5]
    src = random_distribution(rng, shape, 3)
    dst = random_distribution(rng, shape, 2)
    schedule = transfer_schedule(src, dst)
    assert schedule_bytes(schedule, 8) == 8 * sum(
        tr.section.size for tr in schedule
    )
