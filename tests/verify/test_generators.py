"""Generator determinism and geometric legality (tests/verify)."""

import random

import pytest

from repro.arrays.slices import Slice
from repro.verify import CaseGen, random_range, random_shape, random_slice
from repro.verify.gen import random_distribution, random_grid

pytestmark = pytest.mark.verify


def test_case_stream_is_a_pure_function_of_the_seed():
    a = CaseGen(1234)
    b = CaseGen(1234)
    for _ in range(40):
        assert a.reconfig_case().to_json() == b.reconfig_case().to_json()
    for _ in range(10):
        assert a.fault_case().to_json() == b.fault_case().to_json()


def test_different_seeds_diverge():
    stream1 = [CaseGen(1).reconfig_case().to_json() for _ in range(5)]
    stream2 = [CaseGen(2).reconfig_case().to_json() for _ in range(5)]
    assert stream1 != stream2


def test_reconfig_cases_respect_engine_constraints():
    gen = CaseGen(99)
    saw = set()
    for _ in range(120):
        case = gen.reconfig_case()
        saw.add(case.engine)
        assert 1 <= case.p1 <= case.t1
        assert 1 <= case.p2 <= case.t2
        if case.engine == "spmd":
            assert case.t2 == case.t1
        if case.engine == "incremental":
            # restore() streams with the checkpointing I/O task count
            assert case.p1 <= min(case.t1, case.t2)
    assert saw == {"drms", "spmd", "incremental"}


def test_generated_geometry_builds_legal_distributions():
    """Every generated case yields constructible distributions whose
    per-task assigned sections stay inside the array bounds."""
    gen = CaseGen(7)
    bounds_checked = 0
    for _ in range(60):
        case = gen.reconfig_case()
        for arr in case.arrays:
            for dist, ntasks in (
                (case.distribution1(arr), case.t1),
                (case.distribution2(arr), case.t2),
            ):
                full = Slice.full(case.shape)
                for task in range(ntasks):
                    sec = dist.assigned(task)
                    assert sec.issubset(full) or sec.is_empty
                    bounds_checked += 1
    assert bounds_checked > 0


def test_random_range_stays_inside_extent():
    rng = random.Random(5)
    for _ in range(300):
        extent = rng.randint(0, 9)
        r = random_range(rng, extent)
        if not r.is_empty:
            idx = r.indices()
            assert idx.min() >= 0 and idx.max() < extent


def test_random_slice_and_shape_agree_on_rank():
    rng = random.Random(6)
    for _ in range(100):
        shape = random_shape(rng)
        s = random_slice(rng, shape)
        assert s.rank == len(shape)


def test_random_grid_multiplies_to_ntasks():
    rng = random.Random(8)
    for _ in range(200):
        ntasks = rng.randint(1, 12)
        rank = rng.randint(1, 3)
        grid = random_grid(rng, ntasks, rank)
        prod = 1
        for g in grid:
            prod *= g
        assert prod == ntasks and len(grid) == rank


def test_random_distribution_is_constructible():
    rng = random.Random(9)
    for _ in range(60):
        shape = random_shape(rng)
        ntasks = rng.randint(1, 6)
        dist = random_distribution(rng, shape, ntasks)
        assert dist.ntasks == ntasks
        assert list(dist.shape) == list(shape)
