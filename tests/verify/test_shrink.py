"""Shrinking: the known-bad schedule reduces to a minimal replayable
reproducer (tests/verify)."""

import pytest

from repro.verify import (
    VerifyFailure,
    known_bad_case,
    replay_case,
    run_case,
    shrink_case,
)
from repro.verify.case import Case

pytestmark = pytest.mark.verify


def test_known_bad_shrinks_to_at_most_three_events():
    case = known_bad_case(seed=0)
    assert len(case.events) == 5  # starts deliberately redundant
    report = shrink_case(case)
    assert len(report.shrunk.events) <= 3
    assert report.accepted > 0
    # the shrunk case is itself simpler, never more complex
    assert report.shrunk.generations <= case.generations
    assert report.shrunk.t2 <= case.t2


def test_shrunk_case_still_fails():
    report = shrink_case(known_bad_case(seed=0))
    with pytest.raises(VerifyFailure):
        run_case(report.shrunk)


def test_shrunk_case_replays_from_its_json_dump(tmp_path):
    report = shrink_case(known_bad_case(seed=0))
    shrunk = report.shrunk
    shrunk.expect = "fail"
    path = tmp_path / "shrunk.json"
    shrunk.save(path)
    loaded = Case.load(path)
    result = replay_case(loaded)
    assert "failed_as_expected" in result.details


def test_shrink_refuses_a_passing_case():
    case = known_bad_case(seed=0)
    case.policy = "validated"
    with pytest.raises(ValueError):
        shrink_case(case)


def test_shrink_is_deterministic():
    a = shrink_case(known_bad_case(seed=0))
    b = shrink_case(known_bad_case(seed=0))
    assert a.shrunk.to_json() == b.shrunk.to_json()
    assert a.attempts == b.attempts
    assert a.steps == b.steps
