"""Regenerate the checked-in seed corpus under ``tests/verify/cases/``.

Run from the repo root::

    PYTHONPATH=src python tests/verify/gen_corpus.py

Every case is constructed deterministically.  Fault cases are written
*after* shrinking, so the files on disk are the minimal reproducers the
harness itself would produce; each one is replayed before it is saved.
The corpus doubles as schema anchors: if the case-file format drifts
incompatibly, ``tests/verify/test_seed_corpus.py`` fails loudly.
"""

from __future__ import annotations

import os
import sys

from repro.checkpoint.format import axis_to_spec
from repro.arrays.distributions import (
    Block,
    BlockCyclic,
    Cyclic,
    GenBlock,
    Indexed,
)
from repro.arrays.ranges import Range
from repro.verify import known_bad_case, replay_case, shrink_case
from repro.verify.case import ArrayCase, Case, FaultEvent
from repro.verify.gen import (
    localized_equivalence_case,
    localized_pfs_fallback_case,
)

CASES_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "cases")


def _specs(*axes):
    return [axis_to_spec(a) for a in axes]


def _fault_base(events, policy="naive", expect="fail", generations=2,
                note=""):
    """A small, fixed fault-case scaffold: 4x4 float64, block x block on
    two tasks, restarted on one."""
    return Case(
        type="fault",
        engine="drms",
        order="F",
        shape=[4, 4],
        t1=2, p1=2, t2=1, p2=1,
        grid1=[2, 1],
        grid2=[1, 1],
        arrays=[
            ArrayCase(
                name="A0",
                dtype="float64",
                axes1=_specs(Block(), Block()),
                axes2=_specs(Block(), Block()),
                shadow1=[0, 0],
                shadow2=[0, 0],
            )
        ],
        target_bytes=64,
        data_seed=1234,
        seed=0,
        generations=generations,
        events=events,
        policy=policy,
        expect=expect,
        note=note,
    )


def fault_cases():
    """(filename, case) pairs for the fault half of the corpus.  Cases
    with ``expect='fail'`` are shrunk before saving."""
    yield "naive_short_array.json", shrink_case(known_bad_case(seed=0)).shrunk

    yield "naive_short_segment.json", shrink_case(_fault_base(
        events=[
            FaultEvent(kind="write", gen=2, nth=1, match=".segment",
                       mode="short", keep_bytes=9),
            FaultEvent(kind="write", gen=1, nth=5, match=".segment",
                       mode="torn"),  # inert: aborts nothing that exists
        ],
        note="naive recovery trusts a generation whose segment header "
             "took a silent short write",
    )).shrunk

    yield "naive_flip_array.json", shrink_case(_fault_base(
        events=[
            FaultEvent(kind="stored_flip", gen=2, target="array",
                       array_index=0, offset=64, bit=3),
            FaultEvent(kind="stored_flip", gen=2, target="array",
                       array_index=0, offset=5000, bit=1),  # inert: pad
        ],
        note="a single bit rotted in the newest generation's array "
             "stream; only checksum validation notices",
    )).shrunk

    yield "naive_flip_segment.json", shrink_case(_fault_base(
        events=[
            FaultEvent(kind="stored_flip", gen=2, target="segment",
                       offset=10, bit=0),
        ],
        note="bit rot inside the newest generation's segment header",
    )).shrunk

    yield "naive_lost_array.json", shrink_case(_fault_base(
        events=[
            FaultEvent(kind="write", gen=2, nth=1, match=".array",
                       mode="short", keep_bytes=0),
        ],
        note="the newest generation's array stream is a hole: the short "
             "write kept zero bytes but the manifest still committed",
    )).shrunk

    # Localized-recovery equivalence anchors (expect=pass): the
    # differential oracle runs each schedule through BOTH the localized
    # and the full recovery path and requires byte-identical state.
    yield "localized_l1_happy.json", localized_equivalence_case(seed=0)
    yield "localized_pfs_fallback.json", localized_pfs_fallback_case(seed=0)

    # The same injury the validated policy absorbs: expect=pass, and the
    # oracle asserts recovery lands on the older, intact generation.
    yield "validated_survives_short.json", _fault_base(
        events=[
            FaultEvent(kind="write", gen=2, nth=1, match=".array",
                       mode="short", keep_bytes=5),
        ],
        policy="validated",
        expect="pass",
        note="checksum-validated recovery skips the silently truncated "
             "newest generation and restarts from the previous one",
    )


def reconfig_cases():
    """(filename, case) pairs for the reconfiguration half."""
    # the required (t1 > t2) cyclic-redistribution case: shrink the task
    # pool 4 -> 2 while re-dealing both cyclic axes
    yield "reconfig_cyclic_shrink.json", Case(
        type="reconfig",
        engine="drms",
        order="F",
        shape=[8, 6],
        t1=4, p1=2, t2=2, p2=1,
        grid1=[2, 2],
        grid2=[2, 1],
        arrays=[
            ArrayCase(
                name="A0",
                dtype="float64",
                axes1=_specs(Cyclic(), Cyclic()),
                axes2=_specs(Cyclic(), BlockCyclic(block=2)),
                shadow1=[0, 0],
                shadow2=[0, 0],
            )
        ],
        target_bytes=64,
        data_seed=42,
        note="t1 > t2 shrinking reconfiguration with cyclic "
             "redistribution on both axes",
    )

    yield "reconfig_degenerate_one.json", Case(
        type="reconfig",
        engine="drms",
        order="C",
        shape=[1],
        t1=2, p1=1, t2=3, p2=2,
        grid1=[2],
        grid2=[3],
        arrays=[
            ArrayCase(
                name="A0",
                dtype="int32",
                axes1=_specs(Block()),
                axes2=_specs(Cyclic()),
                shadow1=[0],
                shadow2=[0],
            )
        ],
        target_bytes=64,
        data_seed=7,
        note="1-element array on more tasks than elements: most tasks "
             "hold empty sections on both sides",
    )

    yield "reconfig_indexed_partial.json", Case(
        type="reconfig",
        engine="drms",
        order="F",
        shape=[7],
        t1=3, p1=3, t2=2, p2=2,
        grid1=[3],
        grid2=[2],
        arrays=[
            ArrayCase(
                name="A0",
                dtype="float32",
                axes1=_specs(Indexed([
                    Range.regular(0, 2, 1),
                    Range.empty(),
                    Range.regular(4, 6, 1),
                ])),
                axes2=_specs(Block()),
                shadow1=[0],
                shadow2=[0],
            )
        ],
        target_bytes=64,
        data_seed=9,
        note="partial INDEXED coverage: element 3 is owned by no task "
             "and stays undefined across the reconfiguration",
    )

    yield "reconfig_incremental_growth.json", Case(
        type="reconfig",
        engine="incremental",
        order="F",
        shape=[5, 5],
        t1=1, p1=1, t2=4, p2=2,
        grid1=[1, 1],
        grid2=[2, 2],
        arrays=[
            ArrayCase(
                name="A0",
                dtype="int64",
                axes1=_specs(Block(), Block()),
                axes2=_specs(Cyclic(), Block()),
                shadow1=[0, 0],
                shadow2=[0, 0],
            )
        ],
        target_bytes=256,
        data_seed=11,
        note="full + delta chain taken serially, restored on a 2x2 grid",
    )

    yield "reconfig_spmd_conforming.json", Case(
        type="reconfig",
        engine="spmd",
        order="C",
        shape=[6],
        t1=3, p1=2, t2=3, p2=1,
        grid1=[3],
        grid2=[3],
        arrays=[
            ArrayCase(
                name="A0",
                dtype="int16",
                axes1=_specs(GenBlock([3, 2, 1])),
                axes2=_specs(Block()),
                shadow1=[0],
                shadow2=[0],
            )
        ],
        target_bytes=64,
        data_seed=13,
        segment_bytes=1024,
        note="SPMD round trip on the conforming task count; a "
             "non-conforming restart must be refused",
    )


def main() -> int:
    os.makedirs(CASES_DIR, exist_ok=True)
    names = []
    for name, case in list(fault_cases()) + list(reconfig_cases()):
        if case.type == "fault" and case.policy == "naive":
            case.expect = "fail"
        replay_case(case)  # refuse to write a corpus file that drifts
        path = os.path.join(CASES_DIR, name)
        case.save(path)
        names.append(name)
        print(f"wrote {path} ({case.label()})")
    stale = set(os.listdir(CASES_DIR)) - set(names)
    for extra in sorted(stale):
        print(f"warning: stale corpus file not regenerated: {extra}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
