"""Deterministic replay of the checked-in seed corpus
(tests/verify/cases/*.json)."""

import glob
import os

import pytest

from repro.verify import VerifyFailure, replay_case
from repro.verify.case import Case

pytestmark = pytest.mark.verify

CASES_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "cases")
CASE_FILES = sorted(glob.glob(os.path.join(CASES_DIR, "*.json")))


def test_corpus_is_present():
    assert len(CASE_FILES) >= 10, (
        "seed corpus missing; regenerate with "
        "`PYTHONPATH=src python tests/verify/gen_corpus.py`"
    )


@pytest.mark.parametrize(
    "path", CASE_FILES, ids=[os.path.basename(p) for p in CASE_FILES]
)
def test_corpus_case_replays(path):
    case = Case.load(path)
    result = replay_case(case)
    if case.expect == "fail":
        assert "failed_as_expected" in result.details
    else:
        assert result.checked > 0


@pytest.mark.parametrize(
    "path",
    [p for p in CASE_FILES if Case.load(p).expect == "fail"],
    ids=lambda p: os.path.basename(p),
)
def test_failing_corpus_cases_are_minimal_and_deterministic(path):
    case = Case.load(path)
    first = replay_case(case).details["failed_as_expected"]
    second = replay_case(Case.load(path)).details["failed_as_expected"]
    assert first == second  # byte-for-byte deterministic verdict
    assert len(case.events) <= 3  # the corpus stores shrunk reproducers


def test_corpus_includes_a_shrinking_cyclic_redistribution():
    """The required (t1 > t2) cyclic-redistribution case exists and
    really redistributes a cyclic axis across a smaller task pool."""
    for path in CASE_FILES:
        case = Case.load(path)
        if case.type != "reconfig" or case.t1 <= case.t2:
            continue
        kinds1 = {s["kind"] for a in case.arrays for s in a.axes1}
        if "cyclic" in kinds1:
            break
    else:
        pytest.fail("no (t1 > t2) cyclic-redistribution case in corpus")


def test_unexpected_pass_is_reported():
    """If a checked-in reproducer stops failing (a bug was fixed or the
    oracle regressed), replay must raise rather than silently pass."""
    for path in CASE_FILES:
        case = Case.load(path)
        if case.expect != "fail":
            continue
        case.policy = "validated"  # defuse the injury
        with pytest.raises(VerifyFailure):
            replay_case(case)
        return
    pytest.fail("corpus holds no expect=fail case")
