"""Unit tests for Task Coordinators."""

from repro.infra.tc import TaskCoordinator, TCState


def test_initial_state_idle():
    tc = TaskCoordinator(3)
    assert tc.connected and tc.idle


def test_attach_detach():
    tc = TaskCoordinator(0)
    tc.attach("job", [2])
    assert not tc.idle
    assert tc.job_id == "job"
    tc.detach()
    assert tc.idle


def test_disconnect_and_reconnect_cycle():
    tc = TaskCoordinator(0)
    tc.attach("job", [0])
    tc.disconnect()
    assert tc.state is TCState.DISCONNECTED
    assert not tc.connected
    tc.begin_restart()
    assert tc.state is TCState.RESTARTING
    tc.reconnect()
    assert tc.connected and tc.idle  # reconnect clears the job binding
