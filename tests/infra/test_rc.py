"""Unit tests for the Resource Coordinator's recovery protocol."""

import pytest

from repro.errors import MachineError, SchedulerError
from repro.infra.rc import ResourceCoordinator
from repro.infra.tc import TCState
from repro.runtime.machine import Machine, MachineParams


@pytest.fixture
def rc():
    return ResourceCoordinator(
        Machine(MachineParams(num_nodes=8)), tc_restart_s=5.0, node_repair_s=100.0
    )


class TestPools:
    def test_form_and_release(self, rc):
        nodes = rc.form_pool("j1", 4)
        assert nodes == [0, 1, 2, 3]
        assert rc.available_nodes() == [4, 5, 6, 7]
        rc.release_pool("j1")
        assert len(rc.available_nodes()) == 8

    def test_insufficient_nodes(self, rc):
        rc.form_pool("j1", 6)
        with pytest.raises(SchedulerError):
            rc.form_pool("j2", 4)

    def test_two_pools_disjoint(self, rc):
        a = rc.form_pool("a", 3)
        b = rc.form_pool("b", 3)
        assert not set(a) & set(b)


class TestFailureProtocol:
    def test_idle_node_failure_schedules_repair(self, rc):
        assert rc.handle_processor_failure(5) is None
        assert 5 not in rc.available_nodes()
        rc.advance(100.0)
        assert 5 in rc.available_nodes()
        assert rc.events.of_kind("node_repaired")

    def test_pool_node_failure_runs_five_steps(self, rc):
        rc.form_pool("job", 4)
        killed = rc.handle_processor_failure(2)
        assert killed == "job"
        kinds = [e.kind for e in rc.events]
        for expected in (
            "tc_disconnected",
            "application_killed",
            "user_informed",
            "node_repair_started",
            "tcs_restarted",
        ):
            assert expected in kinds

    def test_healthy_pool_nodes_return_immediately(self, rc):
        rc.form_pool("job", 4)
        rc.handle_processor_failure(1)
        # nodes 0,2,3 back; node 1 out for repair
        assert set(rc.available_nodes()) == {0, 2, 3, 4, 5, 6, 7}

    def test_restart_does_not_wait_for_repair(self, rc):
        rc.form_pool("job", 4)
        rc.handle_processor_failure(0)
        t_after_recovery = rc.clock
        assert t_after_recovery == pytest.approx(rc.tc_restart_s)
        # repair completes much later
        assert rc.repair_done_at[0] > t_after_recovery + 90

    def test_failed_node_eventually_repaired(self, rc):
        rc.form_pool("job", 2)
        rc.handle_processor_failure(0)
        rc.advance(200.0)
        assert 0 in rc.available_nodes()
        assert rc.tcs[0].state is TCState.CONNECTED

    def test_unknown_node(self, rc):
        with pytest.raises(MachineError):
            rc.handle_processor_failure(99)
