"""Failure-domain (frame) queries on the machine and the cluster."""

import pytest

from repro.errors import MachineError
from repro.infra import DRMSCluster
from repro.runtime.machine import Machine, MachineParams


def test_domains_partition_nodes_in_contiguous_frames():
    m = Machine(MachineParams(num_nodes=8, failure_domains=4))
    assert m.num_domains == 4
    assert [m.domain_of(n) for n in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]
    assert m.domain_nodes(0) == [0, 1]
    assert m.domain_nodes(3) == [6, 7]
    # every node lands in exactly one domain
    assert sorted(sum((m.domain_nodes(d) for d in range(4)), [])) == list(range(8))


def test_uneven_node_count_uses_ceil_frames():
    m = Machine(MachineParams(num_nodes=10, failure_domains=4))
    # ceil(10/4) = 3 nodes per frame: the last frame is short
    assert m.domain_nodes(0) == [0, 1, 2]
    assert m.domain_nodes(3) == [9]
    assert m.num_domains == 4


def test_more_domains_than_nodes_collapses():
    m = Machine(MachineParams(num_nodes=2, failure_domains=4))
    assert m.num_domains == 2
    assert m.domain_of(0) != m.domain_of(1)


def test_domain_of_bounds_checked():
    m = Machine(MachineParams(num_nodes=4))
    with pytest.raises(MachineError):
        m.domain_of(4)


def test_up_nodes_outside_domain_excludes_down_nodes():
    m = Machine(MachineParams(num_nodes=8, failure_domains=4))
    assert m.up_nodes_outside_domain(0) == [2, 3, 4, 5, 6, 7]
    m.fail_node(2)
    assert m.up_nodes_outside_domain(0) == [3, 4, 5, 6, 7]
    # a node's own domain-mates are never candidates, up or not
    assert 1 not in m.up_nodes_outside_domain(0)


def test_cluster_exposes_domain_queries():
    cluster = DRMSCluster(machine=Machine(MachineParams(num_nodes=8)))
    assert cluster.failure_domain_of(5) == cluster.machine.domain_of(5)
    assert cluster.domain_nodes(1) == cluster.machine.domain_nodes(1)


def test_cluster_partners_are_domain_disjoint():
    cluster = DRMSCluster(machine=Machine(MachineParams(num_nodes=16)))
    for node in range(16):
        partners = cluster.partners_for(node, k=2)
        assert len(partners) == 2
        for p in partners:
            assert cluster.failure_domain_of(p) != cluster.failure_domain_of(node)


def test_single_domain_cluster_falls_back_with_warning():
    cluster = DRMSCluster(
        machine=Machine(MachineParams(num_nodes=4, failure_domains=1))
    )
    partners = cluster.partners_for(0)
    assert partners and partners[0] != 0
    warnings = cluster.events.of_kind("mlck_partner_fallback")
    assert len(warnings) == 1
    assert warnings[0].detail["owner"] == 0
