"""FailurePlan multi= schedules: ordered multi-failure injection."""

import threading

import pytest

from repro.infra.failure import FailurePlan


def test_schedule_must_be_ordered_and_nonempty():
    with pytest.raises(ValueError, match="ordered"):
        FailurePlan(multi=[(5, 0), (3, 1)])
    with pytest.raises(ValueError, match="empty"):
        FailurePlan(multi=[])
    # equal iterations are fine (two nodes die in the same SOP window)
    FailurePlan(multi=[(4, 0), (4, 1)])


def test_classic_fields_track_the_pending_entry():
    plan = FailurePlan(iteration=99, node_id=99, multi=[(3, 7), (6, 1)])
    # the constructor overrides the classic fields with the schedule head
    assert (plan.iteration, plan.node_id) == (3, 7)
    assert plan.pending == (3, 7)
    assert plan.claim(3)
    assert (plan.iteration, plan.node_id) == (6, 1)
    assert plan.pending == (6, 1)
    assert not plan.fired  # schedule not yet exhausted
    assert plan.claim(6)
    assert plan.pending is None
    assert plan.fired
    # node_id reports the last fired node for the recovery handler
    assert plan.node_id == 1


def test_entries_fire_in_order_exactly_once():
    plan = FailurePlan(multi=[(2, 4), (2, 5), (8, 6)])
    assert not plan.claim(8)  # cannot fire into the future of the schedule
    assert plan.claim(2)
    assert plan.claim(2)
    assert not plan.claim(2)  # both iteration-2 entries spent
    assert not plan.should_fire(2)
    assert plan.claim(8)
    assert plan.fired_nodes == [4, 5, 6]
    assert not plan.claim(8)  # exhausted: disarmed for good


def test_single_plan_keeps_classic_behavior():
    plan = FailurePlan(iteration=5, node_id=2)
    assert plan.pending == (5, 2)
    assert plan.claim(5)
    assert plan.fired_nodes == [2]
    assert plan.pending is None
    # one_shot=False re-arms the classic plan, multi never does
    repeat = FailurePlan(iteration=5, node_id=2, one_shot=False)
    assert repeat.claim(5) and repeat.claim(5)
    assert repeat.pending == (5, 2)


def test_concurrent_claims_fire_each_entry_once():
    plan = FailurePlan(multi=[(3, 0), (3, 1)])
    nthreads = 16
    barrier = threading.Barrier(nthreads)
    wins = []

    def racer():
        barrier.wait()
        if plan.claim(3):
            wins.append(1)

    threads = [threading.Thread(target=racer) for _ in range(nthreads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # exactly one winner per schedule entry
    assert len(wins) == 2
    assert plan.fired_nodes == [0, 1]
    assert plan.fired
