"""Tests for the fleet-scale scheduling x cadence study (infra.fleet)."""

import pytest

from repro.errors import SchedulerError
from repro.infra.fleet import (
    FleetSimulation,
    cadence_horizon,
    cadence_progress,
    storm_schedule,
    synthetic_stream,
)
from repro.infra.study import JobSpec
from repro.obs.catalog import match_family
from repro.obs.health import HealthRegistry
from repro.obs.metrics import MetricsRegistry


class TestCadenceMath:
    def test_progress_excludes_checkpoint_phases(self):
        # 100s work / 10s checkpoint: 250 active seconds = two full
        # cycles (200s work-wall) plus 30s into the third work phase
        assert cadence_progress(250.0, 100.0, 10.0) == pytest.approx(230.0)
        # mid-checkpoint: work holds at the phase boundary
        assert cadence_progress(105.0, 100.0, 10.0) == pytest.approx(100.0)

    def test_horizon_inverts_progress(self):
        for w in (1.0, 99.0, 100.0, 101.0, 250.0, 1000.0):
            x = cadence_horizon(w, 100.0, 10.0)
            assert cadence_progress(x, 100.0, 10.0) == pytest.approx(w)

    def test_final_work_phase_pays_no_trailing_checkpoint(self):
        # exactly 2 x tau of work: one full cycle plus a bare phase
        assert cadence_horizon(200.0, 100.0, 10.0) == pytest.approx(210.0)

    def test_zero(self):
        assert cadence_progress(0.0, 100.0, 10.0) == 0.0
        assert cadence_horizon(0.0, 100.0, 10.0) == 0.0


class TestStormSchedule:
    def test_strikes_stay_inside_domains(self):
        sched = storm_schedule(64, 4, domains=[1, 2], start_s=100, count=20)
        frame = 16
        for sec, node in sched:
            assert node // frame in (1, 2)
        assert [s for s, _ in sched] == sorted(s for s, _ in sched)
        assert len(sched) == 20

    def test_spacing(self):
        sched = storm_schedule(8, 2, domains=[0], start_s=50, count=3, spacing_s=7)
        assert [s for s, _ in sched] == [50, 57, 64]

    def test_empty_domain_rejected(self):
        with pytest.raises(SchedulerError):
            storm_schedule(4, 4, domains=[7], start_s=0, count=1)


class TestSyntheticStream:
    def test_deterministic(self):
        a = synthetic_stream(50, 64, seed=9)
        b = synthetic_stream(50, 64, seed=9)
        assert a == b
        assert a != synthetic_stream(50, 64, seed=10)

    def test_specs_fit_the_machine(self):
        for j in synthetic_stream(100, 64, seed=1):
            assert 1 <= j.min_tasks <= j.max_tasks <= 64
            assert j.work > 0

    def test_rejects_degenerate_input(self):
        with pytest.raises(SchedulerError):
            synthetic_stream(0, 64)
        with pytest.raises(SchedulerError):
            synthetic_stream(10, 2)


class TestFailureFreeRuns:
    def test_single_job_exact_makespan(self):
        # 400 node-seconds on 4 tasks = 100s per task, one bare work
        # phase (no checkpoint completes before the job does)
        sim = FleetSimulation(
            4, [JobSpec("j", work=400.0, max_tasks=4)],
            checkpoint_cost_s=10.0, fixed_interval_s=100.0,
        )
        r = sim.run("rigid", "fixed")
        assert r.makespan == pytest.approx(100.0)
        assert r.utilization == pytest.approx(1.0)
        assert r.lost_work == 0.0
        assert r.checkpoints == 0
        assert r.completed == 1

    def test_checkpoint_overhead_stretches_makespan(self):
        # 1000s of per-task work under a 100/10 cadence: 9 completed
        # checkpoints inflate the wall to 1090s
        sim = FleetSimulation(
            4, [JobSpec("j", work=4000.0, max_tasks=4)],
            checkpoint_cost_s=10.0, fixed_interval_s=100.0,
        )
        r = sim.run("rigid", "fixed")
        assert r.makespan == pytest.approx(1090.0)
        assert r.checkpoints == 9

    def test_unknown_policies_rejected(self):
        sim = FleetSimulation(4, [JobSpec("j", work=10.0, max_tasks=2)])
        with pytest.raises(SchedulerError):
            sim.run("elastic", "fixed")
        with pytest.raises(SchedulerError):
            sim.run("rigid", "clever")

    def test_oversize_job_rejected(self):
        with pytest.raises(SchedulerError):
            FleetSimulation(4, [JobSpec("j", work=10.0, max_tasks=8)])

    def test_storm_node_out_of_range_rejected(self):
        with pytest.raises(SchedulerError):
            FleetSimulation(
                4, [JobSpec("j", work=10.0, max_tasks=2)],
                failure_schedule=[(10, 99)],
            )


class TestFailures:
    def fail_at_500(self, scheduling):
        sim = FleetSimulation(
            4,
            [JobSpec("big", work=4000.0, max_tasks=4, min_tasks=1)],
            failure_schedule=[(500, 0)],
            checkpoint_cost_s=10.0,
            fixed_interval_s=100.0,
            restart_cost_s=50.0,
            repair_s=300.0,
        )
        return sim.run(scheduling, "fixed")

    def test_rollback_loses_only_post_checkpoint_work(self):
        # at t=500 the job sits 60s into its 5th work phase: 4 completed
        # checkpoints hold 1600 node-seconds; 60s x 4 tasks are lost
        r = self.fail_at_500("rigid")
        assert r.lost_work == pytest.approx(240.0)
        assert r.restarts == 1
        assert r.completed == 1

    def test_rigid_recovery_waits_for_repair(self):
        # the rigid policy needs all 4 nodes back: repair at 800 plus
        # the 50s restart = 350s of recovery latency
        r = self.fail_at_500("rigid")
        assert r.recovery_latency_mean_s == pytest.approx(350.0)
        assert r.makespan == pytest.approx(1500.0)

    def test_reconfigurable_restarts_on_survivors(self):
        # reconfigurable restart shrinks onto the 3 surviving nodes
        # immediately: latency is just the restart cost
        r = self.fail_at_500("reconfigurable")
        assert r.recovery_latency_mean_s == pytest.approx(50.0)
        assert r.makespan < 1500.0
        assert r.completed == 1

    def test_failure_of_idle_node_costs_no_work(self):
        sim = FleetSimulation(
            8, [JobSpec("j", work=400.0, max_tasks=2)],
            failure_schedule=[(50, 7)], fixed_interval_s=100.0,
        )
        r = sim.run("rigid", "fixed")
        assert r.lost_work == 0.0
        assert r.restarts == 0
        assert r.failures == 1


class TestPolicyComparison:
    @pytest.fixture(scope="class")
    def stormy(self):
        jobs = synthetic_stream(
            150, 32, seed=3, mean_interarrival_s=60.0, mean_work_s=4_000.0
        )
        storm = storm_schedule(
            32, 4, domains=[0, 1, 2, 3], start_s=300, count=60, spacing_s=150
        )
        return jobs, storm

    def run(self, stormy, scheduling, cadence):
        jobs, storm = stormy
        sim = FleetSimulation(
            32, jobs, num_domains=4, failure_schedule=storm,
            checkpoint_cost_s=15.0, fixed_interval_s=600.0,
        )
        return sim.run(scheduling, cadence)

    def test_adaptive_cadence_cuts_lost_work(self, stormy):
        fixed = self.run(stormy, "rigid", "fixed")
        adaptive = self.run(stormy, "rigid", "adaptive")
        assert fixed.completed == adaptive.completed == 150
        assert adaptive.lost_work < fixed.lost_work

    def test_reconfigurable_keeps_utilization_edge_under_storm(self, stormy):
        rigid = self.run(stormy, "rigid", "fixed")
        flex = self.run(stormy, "reconfigurable", "fixed")
        assert flex.utilization > rigid.utilization
        assert flex.completed == rigid.completed == 150

    def test_compare_covers_all_four_pairs(self):
        sim = FleetSimulation(4, [JobSpec("j", work=40.0, max_tasks=2)])
        res = sim.compare()
        assert sorted(res) == [
            "reconfigurable/adaptive",
            "reconfigurable/fixed",
            "rigid/adaptive",
            "rigid/fixed",
        ]


class TestObservability:
    def test_fleet_metrics_published_and_cataloged(self):
        sim = FleetSimulation(
            4, [JobSpec("j", work=400.0, max_tasks=4)],
            failure_schedule=[(50, 0)], fixed_interval_s=100.0,
        )
        sim.metrics = MetricsRegistry()
        sim.run("reconfigurable", "fixed")
        names = sorted(sim.metrics.counters) + sorted(sim.metrics.gauges)
        assert "fleet.jobs.completed" in names
        assert "fleet.lost_work.node_seconds" in names
        for name in names:
            assert match_family(name) == "fleet", name
        assert sim.metrics.counter("fleet.jobs.completed").value == 1

    def test_health_registry_sampled(self):
        sim = FleetSimulation(
            4, [JobSpec("j", work=400.0, max_tasks=4)],
            failure_schedule=[(50, 0)], fixed_interval_s=100.0,
        )
        sim.health = HealthRegistry()
        sim.run("reconfigurable", "fixed")
        snap = sim.health.snapshot()
        assert "health.fleet.running" in snap
        assert "health.fleet.down_nodes" in snap
        assert snap["health.fleet.lost_work_node_s"] > 0
