"""Unit tests for the JSA scheduler and the UIC facade."""

import numpy as np
import pytest

from repro.drms import DRMSApplication, SOQSpec
from repro.errors import SchedulerError
from repro.infra.cluster import DRMSCluster
from repro.infra.jsa import JobState
from repro.runtime.machine import Machine, MachineParams

N = 8


def simple_main(ctx, prefix):
    ctx.initialize()
    d = ctx.create_distribution((N, N))
    u = ctx.distribute("u", d, init_global=np.ones((N, N)))
    for it in ctx.iterations(1, 4):
        if it == 1:
            status, delta = ctx.reconfig_checkpoint(prefix)
            if delta != 0:
                u = ctx.distribute("u", ctx.adjust("u"))
        u.set_assigned(u.assigned + 1)
        ctx.barrier()
    return float(u.assigned.sum())


@pytest.fixture
def cluster():
    return DRMSCluster(machine=Machine(MachineParams(num_nodes=8)))


class TestJSA:
    def test_submit_run_complete(self, cluster):
        app = cluster.build_app(simple_main)
        cluster.jsa.submit("j1", app, args=("ck",), prefix="ck")
        rep = cluster.jsa.run("j1", ntasks=4)
        assert rep.ntasks == 4
        assert cluster.jsa.jobs["j1"].state is JobState.COMPLETED
        assert cluster.rc.clock >= rep.sim_elapsed

    def test_duplicate_job_id(self, cluster):
        app = cluster.build_app(simple_main)
        cluster.jsa.submit("j1", app, args=("ck",))
        with pytest.raises(SchedulerError):
            cluster.jsa.submit("j1", app, args=("ck",))

    def test_pick_ntasks_fits_availability(self, cluster):
        app = cluster.build_app(simple_main, soq=SOQSpec(min_tasks=1, max_tasks=6))
        job = cluster.jsa.submit("j1", app, args=("ck",))
        assert cluster.jsa.pick_ntasks(job) == 6  # capped by SOQ max
        assert cluster.jsa.pick_ntasks(job, want=3) == 3

    def test_pick_ntasks_infeasible(self, cluster):
        app = cluster.build_app(simple_main, soq=SOQSpec(min_tasks=20))
        job = cluster.jsa.submit("j1", app, args=("ck",))
        with pytest.raises(SchedulerError):
            cluster.jsa.pick_ntasks(job)

    def test_restart_without_checkpoint_rejected(self, cluster):
        app = cluster.build_app(simple_main)
        cluster.jsa.submit("j1", app, args=("ck",), prefix="nope")
        with pytest.raises(SchedulerError):
            cluster.jsa.restart("j1")

    def test_checkpoint_then_restart_on_fewer_nodes(self, cluster):
        app = cluster.build_app(simple_main)
        cluster.jsa.submit("j1", app, args=("ck",), prefix="ck")
        ref = cluster.jsa.run("j1", ntasks=6)
        cluster.machine.fail_node(6)
        cluster.machine.fail_node(7)
        rep = cluster.jsa.restart("j1", ntasks=6)
        assert rep.ntasks == 6  # 6 healthy nodes still suffice
        assert np.allclose(
            rep.arrays["u"].to_global(), ref.arrays["u"].to_global()
        )

    def test_enable_system_checkpoint_hook(self, cluster):
        statuses = []

        def enb_main(ctx, prefix):
            ctx.initialize()
            d = ctx.create_distribution((N,))
            ctx.distribute("u", d, init_global=np.ones(N))
            for it in ctx.iterations(1, 3):
                s, _ = ctx.reconfig_chkenable(prefix)
                if ctx.rank == 0:
                    statuses.append(s.value)

        app = cluster.build_app(enb_main)
        cluster.jsa.submit("j1", app, args=("ck",), prefix="ck")
        cluster.jsa.enable_system_checkpoint("j1")
        cluster.jsa.run("j1", ntasks=2)
        assert statuses == ["taken", "skipped"]


class TestUIC:
    def test_submit_run_via_uic(self, cluster):
        app = cluster.build_app(simple_main)
        cluster.uic.submit("j1", app, args=("ck",), prefix="ck")
        cluster.uic.run("j1", ntasks=2)
        assert cluster.uic.job_status("j1") is JobState.COMPLETED

    def test_system_status(self, cluster):
        status = cluster.uic.system_status()
        assert status["nodes_total"] == 8
        assert status["nodes_up"] == 8
        assert status["jobs"] == {}

    def test_notifications_filtered(self, cluster):
        app = cluster.build_app(simple_main)
        cluster.uic.submit("j1", app, args=("ck",), prefix="ck")
        cluster.uic.run("j1", ntasks=2)
        notes = cluster.uic.notifications("j1")
        assert any(e.kind == "job_completed" for e in notes)
        assert cluster.uic.notifications("other") == []
