"""Tests for the scheduling-flexibility study (§8 future work)."""

import pytest

from repro.errors import SchedulerError
from repro.infra.study import JobSpec, SchedulingStudy


def make_stream():
    return [
        JobSpec("big", work=16_000.0, max_tasks=16, min_tasks=4, arrival=0.0),
        JobSpec("mid", work=4_000.0, max_tasks=8, min_tasks=2, arrival=100.0),
        JobSpec("small", work=800.0, max_tasks=4, min_tasks=1, arrival=200.0),
    ]


class TestSpecs:
    def test_bad_specs_rejected(self):
        with pytest.raises(SchedulerError):
            JobSpec("x", work=-1, max_tasks=2)
        with pytest.raises(SchedulerError):
            JobSpec("x", work=1, max_tasks=2, min_tasks=3)
        with pytest.raises(SchedulerError):
            SchedulingStudy(4, [JobSpec("x", work=1, max_tasks=9, min_tasks=8)])

    def test_unknown_policy(self):
        s = SchedulingStudy(4, make_stream()[:1])
        with pytest.raises(SchedulerError):
            s.run("elastic")


class TestSingleJob:
    def test_rigid_runtime_is_work_over_tasks(self):
        s = SchedulingStudy(16, [JobSpec("j", work=1600.0, max_tasks=8)])
        r = s.run("rigid")
        assert r.makespan == pytest.approx(200.0)
        assert r.reconfigurations == 0

    def test_reconfigurable_single_job_no_reconfig_needed(self):
        s = SchedulingStudy(16, [JobSpec("j", work=1600.0, max_tasks=8, min_tasks=2)])
        r = s.run("reconfigurable")
        assert r.makespan == pytest.approx(200.0)
        assert r.reconfigurations == 0

    def test_utilization_bound(self):
        s = SchedulingStudy(8, [JobSpec("j", work=800.0, max_tasks=8)])
        r = s.run("rigid")
        assert r.utilization == pytest.approx(1.0)


class TestPolicies:
    def test_reconfigurable_beats_rigid_on_contended_stream(self):
        s = SchedulingStudy(16, make_stream(), reconfig_cost_s=60.0)
        res = s.compare()
        assert res["reconfigurable"].makespan < res["rigid"].makespan
        assert res["reconfigurable"].utilization > res["rigid"].utilization
        assert res["reconfigurable"].reconfigurations >= 1

    def test_rigid_head_of_line_blocking(self):
        """A rigid 16-task job blocks everything; the malleable variant
        starts small and grows."""
        jobs = [
            JobSpec("hog", work=3200.0, max_tasks=16, min_tasks=4, arrival=0.0),
            JobSpec("quick", work=100.0, max_tasks=2, min_tasks=1, arrival=1.0),
        ]
        s = SchedulingStudy(16, jobs, reconfig_cost_s=30.0)
        rigid = s.run("rigid")
        flex = s.run("reconfigurable")
        # rigid: quick waits for the hog to finish
        assert rigid.completions["quick"] > rigid.completions["hog"] - 1e-6
        # reconfigurable: quick finishes way earlier
        assert flex.completions["quick"] < 0.5 * rigid.completions["quick"]

    def test_reconfig_cost_tempers_the_gain(self):
        cheap = SchedulingStudy(16, make_stream(), reconfig_cost_s=1.0).run(
            "reconfigurable"
        )
        pricey = SchedulingStudy(16, make_stream(), reconfig_cost_s=500.0).run(
            "reconfigurable"
        )
        assert cheap.makespan <= pricey.makespan

    def test_work_conservation(self):
        """Both policies complete the same total work; utilization x
        nodes x makespan == total work + idle."""
        s = SchedulingStudy(16, make_stream())
        for policy in ("rigid", "reconfigurable"):
            r = s.run(policy)
            total_work = sum(j.work for j in make_stream())
            assert r.utilization * 16 * r.makespan == pytest.approx(total_work)

    def test_arrivals_respected(self):
        jobs = [JobSpec("late", work=100.0, max_tasks=4, arrival=1000.0)]
        r = SchedulingStudy(8, jobs).run("rigid")
        assert r.completions["late"] == pytest.approx(1025.0)
        assert r.mean_response == pytest.approx(25.0)
