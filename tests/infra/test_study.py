"""Tests for the scheduling-flexibility study (§8 future work)."""

import pytest

from repro.errors import SchedulerError
from repro.infra.study import (
    JobSpec,
    SchedulingStudy,
    _Running,
    equipartition_targets,
)


def make_stream():
    return [
        JobSpec("big", work=16_000.0, max_tasks=16, min_tasks=4, arrival=0.0),
        JobSpec("mid", work=4_000.0, max_tasks=8, min_tasks=2, arrival=100.0),
        JobSpec("small", work=800.0, max_tasks=4, min_tasks=1, arrival=200.0),
    ]


class TestSpecs:
    def test_bad_specs_rejected(self):
        with pytest.raises(SchedulerError):
            JobSpec("x", work=-1, max_tasks=2)
        with pytest.raises(SchedulerError):
            JobSpec("x", work=1, max_tasks=2, min_tasks=3)
        with pytest.raises(SchedulerError):
            SchedulingStudy(4, [JobSpec("x", work=1, max_tasks=9, min_tasks=8)])

    def test_unknown_policy(self):
        s = SchedulingStudy(16, make_stream()[:1])
        with pytest.raises(SchedulerError):
            s.run("elastic")


class TestSingleJob:
    def test_rigid_runtime_is_work_over_tasks(self):
        s = SchedulingStudy(16, [JobSpec("j", work=1600.0, max_tasks=8)])
        r = s.run("rigid")
        assert r.makespan == pytest.approx(200.0)
        assert r.reconfigurations == 0

    def test_reconfigurable_single_job_no_reconfig_needed(self):
        s = SchedulingStudy(16, [JobSpec("j", work=1600.0, max_tasks=8, min_tasks=2)])
        r = s.run("reconfigurable")
        assert r.makespan == pytest.approx(200.0)
        assert r.reconfigurations == 0

    def test_utilization_bound(self):
        s = SchedulingStudy(8, [JobSpec("j", work=800.0, max_tasks=8)])
        r = s.run("rigid")
        assert r.utilization == pytest.approx(1.0)


class TestPolicies:
    def test_reconfigurable_beats_rigid_on_contended_stream(self):
        s = SchedulingStudy(16, make_stream(), reconfig_cost_s=60.0)
        res = s.compare()
        assert res["reconfigurable"].makespan < res["rigid"].makespan
        assert res["reconfigurable"].utilization > res["rigid"].utilization
        assert res["reconfigurable"].reconfigurations >= 1

    def test_rigid_head_of_line_blocking(self):
        """A rigid 16-task job blocks everything; the malleable variant
        starts small and grows."""
        jobs = [
            JobSpec("hog", work=3200.0, max_tasks=16, min_tasks=4, arrival=0.0),
            JobSpec("quick", work=100.0, max_tasks=2, min_tasks=1, arrival=1.0),
        ]
        s = SchedulingStudy(16, jobs, reconfig_cost_s=30.0)
        rigid = s.run("rigid")
        flex = s.run("reconfigurable")
        # rigid: quick waits for the hog to finish
        assert rigid.completions["quick"] > rigid.completions["hog"] - 1e-6
        # reconfigurable: quick finishes way earlier
        assert flex.completions["quick"] < 0.5 * rigid.completions["quick"]

    def test_reconfig_cost_tempers_the_gain(self):
        cheap = SchedulingStudy(16, make_stream(), reconfig_cost_s=1.0).run(
            "reconfigurable"
        )
        pricey = SchedulingStudy(16, make_stream(), reconfig_cost_s=500.0).run(
            "reconfigurable"
        )
        assert cheap.makespan <= pricey.makespan

    def test_work_conservation(self):
        """Both policies complete the same total work; utilization x
        nodes x makespan == total work + idle."""
        s = SchedulingStudy(16, make_stream())
        for policy in ("rigid", "reconfigurable"):
            r = s.run(policy)
            total_work = sum(j.work for j in make_stream())
            assert r.utilization * 16 * r.makespan == pytest.approx(total_work)

    def test_arrivals_respected(self):
        jobs = [JobSpec("late", work=100.0, max_tasks=4, arrival=1000.0)]
        r = SchedulingStudy(8, jobs).run("rigid")
        assert r.completions["late"] == pytest.approx(1025.0)
        assert r.mean_response == pytest.approx(25.0)


class TestOversizeRequestRejected:
    """Bugfix: the rigid policy used to clamp ``max_tasks`` above the
    machine size silently, so the 'rigid' run quietly simulated a
    smaller job than requested while the reconfigurable run used the
    real range — the comparison was apples to oranges."""

    def test_rejected_at_construction(self):
        with pytest.raises(SchedulerError, match="no longer clamps"):
            SchedulingStudy(4, [JobSpec("big", work=100.0, max_tasks=9)])

    def test_machine_sized_request_accepted(self):
        s = SchedulingStudy(4, [JobSpec("ok", work=100.0, max_tasks=4)])
        assert s.run("rigid").completions["ok"] == pytest.approx(25.0)


class TestDeclinedGrowthRedistribution:
    """Bugfix: a nearly-done job declining growth used to strand its
    declined share as idle nodes even when another job could grow."""

    def test_declined_share_reaches_other_jobs(self):
        nearly_done = _Running(
            spec=JobSpec("a", work=1_000.0, max_tasks=16, arrival=0.0),
            ntasks=4, remaining=10.0, blocked_until=0.0,
        )
        hungry = _Running(
            spec=JobSpec("b", work=9_000.0, max_tasks=16, arrival=1.0),
            ntasks=4, remaining=8_000.0, blocked_until=0.0,
        )
        targets = equipartition_targets(
            16, [nearly_done, hungry], reconfig_cost_s=60.0
        )
        # a declines its 8-node offer (10 node-seconds left will not
        # repay a 60s x 4-task reconfiguration); its share must flow to
        # b, not idle — the pre-fix targets were {a: 4, b: 8}
        assert targets == {"a": 4, "b": 12}

    def test_shrinks_and_initial_placements_never_declined(self):
        nearly_done = _Running(
            spec=JobSpec("a", work=1_000.0, max_tasks=16, arrival=0.0),
            ntasks=8, remaining=10.0, blocked_until=0.0,
        )
        entering = _Running(
            spec=JobSpec("b", work=9_000.0, max_tasks=4, arrival=1.0),
            ntasks=0, remaining=9_000.0, blocked_until=0.0,
        )
        targets = equipartition_targets(
            8, [nearly_done, entering], reconfig_cost_s=60.0
        )
        # a shrinks (mandatory, frees b's promised nodes); b starts
        assert targets == {"a": 4, "b": 4}

    def test_no_stranded_nodes_under_contended_stream(self):
        """End to end: the occupancy invariant inside the target
        computation holds across a whole contended run (it would
        assert out on the pre-fix stranding)."""
        jobs = [
            JobSpec(
                f"j{i}", work=500.0 + 137.0 * i, max_tasks=8,
                min_tasks=1, arrival=13.0 * i,
            )
            for i in range(12)
        ]
        r = SchedulingStudy(16, jobs, reconfig_cost_s=40.0).run("reconfigurable")
        assert set(r.completions) == {j.name for j in jobs}


class TestEdgeCases:
    def test_simultaneous_arrivals_tie_break_by_name(self):
        jobs = [
            JobSpec("b", work=400.0, max_tasks=4, arrival=0.0),
            JobSpec("a", work=400.0, max_tasks=4, arrival=0.0),
            JobSpec("c", work=400.0, max_tasks=4, arrival=0.0),
        ]
        for policy in ("rigid", "reconfigurable"):
            r = SchedulingStudy(8, jobs).run(policy)
            assert set(r.completions) == {"a", "b", "c"}
            total = sum(j.work for j in jobs)
            assert r.utilization * 8 * r.makespan == pytest.approx(total)
        # only two fit at once: the queue must drain in name order
        rigid = SchedulingStudy(8, jobs).run("rigid")
        assert rigid.completions["a"] <= rigid.completions["c"]

    def test_reconfig_inside_anothers_blocked_window(self):
        """A second reconfiguration lands while the first's overhead
        window is still open; the blocked time must accumulate, not
        reset, and the accounting must stay work-conserving."""
        jobs = [
            JobSpec("hog", work=8_000.0, max_tasks=16, min_tasks=2, arrival=0.0),
            JobSpec("q1", work=200.0, max_tasks=8, min_tasks=1, arrival=100.0),
            JobSpec("q2", work=200.0, max_tasks=8, min_tasks=1, arrival=110.0),
        ]
        s = SchedulingStudy(16, jobs, reconfig_cost_s=60.0)
        r = s.run("reconfigurable")
        assert set(r.completions) == {"hog", "q1", "q2"}
        assert r.reconfigurations >= 2
        total = sum(j.work for j in jobs)
        assert r.utilization * 16 * r.makespan == pytest.approx(total)

    def test_event_budget_exhaustion_raises(self):
        s = SchedulingStudy(16, make_stream(), max_events=2)
        with pytest.raises(SchedulerError, match="event budget"):
            s.run("rigid")

    def test_empty_job_list(self):
        for policy in ("rigid", "reconfigurable"):
            r = SchedulingStudy(4, []).run(policy)
            assert r.makespan == 0.0
            assert r.mean_response == 0.0
            assert r.utilization == 0.0
            assert r.completions == {}
