"""The benchmark harness skips — never errors — on stale artifact state
(benchmarks/conftest.py)."""

import os
import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(ROOT))

from benchmarks.conftest import (  # noqa: E402
    OUT_DIR,
    stale_artifacts,
    write_artifact,
)


def test_stale_artifacts_empty_without_out_dir(tmp_path):
    assert stale_artifacts(out_dir=tmp_path / "missing") == []


def test_stale_artifacts_flags_epoch_leftovers(tmp_path):
    src = tmp_path / "bench"
    out = tmp_path / "out"
    src.mkdir()
    out.mkdir()
    (src / "bench_x.py").write_text("pass\n")
    old = out / "table1.txt"
    old.write_text("seed artifact\n")
    os.utime(old, (0, 0))  # the committed seed artifacts carry epoch mtimes
    fresh = out / "table2.txt"
    fresh.write_text("just written\n")
    assert stale_artifacts(out_dir=out, src_dir=src) == [old]


def test_write_artifact_refreshes_a_stale_file(tmp_path):
    out = tmp_path / "out"
    out.mkdir()
    old = out / "t.txt"
    old.write_text("stale\n")
    os.utime(old, (0, 0))
    path = write_artifact("t", "fresh", out_dir=out)
    assert path.read_text() == "fresh\n"


def test_write_artifact_skips_when_out_dir_is_shadowed(tmp_path):
    # `out` exists as a *file*: mkdir and the write both fail with
    # OSError; the bench must skip with a `make clean` hint, not error
    shadow = tmp_path / "out"
    shadow.write_text("i am not a directory\n")
    with pytest.raises(pytest.skip.Exception, match="make clean"):
        write_artifact("t", "text", out_dir=shadow / "nested")


def test_seed_out_dir_is_detected_as_stale_or_absent():
    """The committed benchmarks/out seed set (epoch mtimes) registers as
    stale against any fresh checkout of the sources."""
    if not OUT_DIR.is_dir() or not list(OUT_DIR.glob("*.txt")):
        pytest.skip("no committed artifacts present")
    seed_like = [p for p in OUT_DIR.glob("*.txt") if p.stat().st_mtime == 0]
    if not seed_like:
        pytest.skip("artifacts already refreshed by a local bench run")
    assert set(seed_like) <= set(stale_artifacts())
