"""End-to-end failure/recovery scenarios (paper Section 4, item 3)."""

import numpy as np
import pytest

from repro.drms import DRMSApplication
from repro.drms.api import (
    drms_adjust,
    drms_create_distribution,
    drms_distribute,
    drms_initialize,
    drms_reconfig_checkpoint,
)
from repro.drms.context import CheckpointStatus
from repro.infra import DRMSCluster, FailurePlan
from repro.infra.failure import NodeFailure
from repro.runtime.machine import Machine, MachineParams

N = 10
NITER = 12


def main(ctx, prefix):
    drms_initialize(ctx)
    dist = drms_create_distribution(ctx, (N, N), shadow=(1, 1))
    u = drms_distribute(ctx, "u", dist, init_global=np.ones((N, N)))
    for it in ctx.iterations(1, NITER + 1):
        if it % 4 == 1:
            status, delta = drms_reconfig_checkpoint(ctx, prefix)
            if status is CheckpointStatus.RESTARTED and delta != 0:
                u = drms_distribute(ctx, "u", drms_adjust(ctx, "u"))
        u.set_assigned(u.assigned + 1.0)
        ctx.barrier()
    return float(u.assigned.sum())


@pytest.fixture
def cluster():
    return DRMSCluster(
        machine=Machine(MachineParams(num_nodes=8)), node_repair_s=600.0
    )


def test_no_failure_plain_run(cluster):
    app = cluster.build_app(main)
    out = cluster.run_with_recovery("j", app, 6, args=("ck",), prefix="ck")
    assert out.failed_node is None
    assert out.tasks_after == 6
    g = out.final_report.arrays["u"].to_global()
    assert np.all(g == 1.0 + NITER)


def test_failure_recovers_on_surviving_nodes(cluster):
    app = cluster.build_app(main)
    out = cluster.run_with_recovery(
        "j", app, 8, args=("ck",), prefix="ck",
        failure=FailurePlan(iteration=7, node_id=3),
    )
    assert out.failed_node == 3
    assert out.tasks_before == 8
    assert out.tasks_after == 7  # one node lost
    g = out.final_report.arrays["u"].to_global()
    assert np.all(g == 1.0 + NITER)  # correct final state despite failure


def test_recovery_does_not_wait_for_repair(cluster):
    app = cluster.build_app(main)
    out = cluster.run_with_recovery(
        "j", app, 8, args=("ck",), prefix="ck",
        failure=FailurePlan(iteration=6, node_id=0),
    )
    assert out.recovered_without_repair
    assert out.recovery_latency_s < 60.0
    assert out.node_repair_s == 600.0


def test_explicit_restart_size(cluster):
    app = cluster.build_app(main)
    out = cluster.run_with_recovery(
        "j", app, 8, args=("ck",), prefix="ck",
        failure=FailurePlan(iteration=7, node_id=2),
        restart_ntasks=4,
    )
    assert out.tasks_after == 4
    g = out.final_report.arrays["u"].to_global()
    assert np.all(g == 1.0 + NITER)


def test_events_tell_the_story(cluster):
    app = cluster.build_app(main)
    cluster.run_with_recovery(
        "j", app, 6, args=("ck",), prefix="ck",
        failure=FailurePlan(iteration=5, node_id=1),
    )
    kinds = [e.kind for e in cluster.events]
    for expected in (
        "job_submitted",
        "pool_formed",
        "tc_disconnected",
        "application_killed",
        "user_informed",
        "recovery_started",
        "job_restarted",
    ):
        assert expected in kinds, expected
    # failure precedes recovery precedes restart
    assert kinds.index("application_killed") < kinds.index("recovery_started")
    assert kinds.index("recovery_started") < kinds.index("job_restarted")


def test_failure_without_checkpoint_cannot_recover(cluster):
    def no_ckpt_main(ctx, prefix):
        drms_initialize(ctx)
        d = drms_create_distribution(ctx, (N,))
        drms_distribute(ctx, "u", d, init_global=np.ones(N))
        for it in ctx.iterations(1, 6):
            ctx.barrier()

    app = cluster.build_app(no_ckpt_main)
    from repro.errors import SchedulerError

    with pytest.raises(SchedulerError, match="no checkpoint"):
        cluster.run_with_recovery(
            "j", app, 4, args=("ck",), prefix="ck",
            failure=FailurePlan(iteration=3, node_id=1),
        )


def test_failure_plan_one_shot():
    plan = FailurePlan(iteration=2, node_id=0)
    assert plan.should_fire(2)
    plan.fire()
    assert not plan.should_fire(2)
    assert plan.fired


def test_node_failure_exception_carries_node():
    exc = NodeFailure(7)
    assert exc.node_id == 7
    assert "7" in str(exc)
