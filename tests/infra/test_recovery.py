"""End-to-end failure/recovery scenarios (paper Section 4, item 3)."""

import numpy as np
import pytest

from repro.drms import DRMSApplication
from repro.drms.api import (
    drms_adjust,
    drms_create_distribution,
    drms_distribute,
    drms_initialize,
    drms_reconfig_checkpoint,
)
from repro.drms.context import CheckpointStatus
from repro.infra import DRMSCluster, FailurePlan
from repro.infra.failure import NodeFailure
from repro.runtime.machine import Machine, MachineParams

N = 10
NITER = 12


def main(ctx, prefix):
    drms_initialize(ctx)
    dist = drms_create_distribution(ctx, (N, N), shadow=(1, 1))
    u = drms_distribute(ctx, "u", dist, init_global=np.ones((N, N)))
    for it in ctx.iterations(1, NITER + 1):
        if it % 4 == 1:
            status, delta = drms_reconfig_checkpoint(ctx, prefix)
            if status is CheckpointStatus.RESTARTED and delta != 0:
                u = drms_distribute(ctx, "u", drms_adjust(ctx, "u"))
        u.set_assigned(u.assigned + 1.0)
        ctx.barrier()
    return float(u.assigned.sum())


@pytest.fixture
def cluster():
    return DRMSCluster(
        machine=Machine(MachineParams(num_nodes=8)), node_repair_s=600.0
    )


def test_no_failure_plain_run(cluster):
    app = cluster.build_app(main)
    out = cluster.run_with_recovery("j", app, 6, args=("ck",), prefix="ck")
    assert out.failed_node is None
    assert out.tasks_after == 6
    g = out.final_report.arrays["u"].to_global()
    assert np.all(g == 1.0 + NITER)


def test_failure_recovers_on_surviving_nodes(cluster):
    app = cluster.build_app(main)
    out = cluster.run_with_recovery(
        "j", app, 8, args=("ck",), prefix="ck",
        failure=FailurePlan(iteration=7, node_id=3),
    )
    assert out.failed_node == 3
    assert out.tasks_before == 8
    assert out.tasks_after == 7  # one node lost
    g = out.final_report.arrays["u"].to_global()
    assert np.all(g == 1.0 + NITER)  # correct final state despite failure


def test_recovery_does_not_wait_for_repair(cluster):
    app = cluster.build_app(main)
    out = cluster.run_with_recovery(
        "j", app, 8, args=("ck",), prefix="ck",
        failure=FailurePlan(iteration=6, node_id=0),
    )
    assert out.recovered_without_repair
    assert out.recovery_latency_s < 60.0
    assert out.node_repair_s == 600.0


def test_explicit_restart_size(cluster):
    app = cluster.build_app(main)
    out = cluster.run_with_recovery(
        "j", app, 8, args=("ck",), prefix="ck",
        failure=FailurePlan(iteration=7, node_id=2),
        restart_ntasks=4,
    )
    assert out.tasks_after == 4
    g = out.final_report.arrays["u"].to_global()
    assert np.all(g == 1.0 + NITER)


def test_events_tell_the_story(cluster):
    app = cluster.build_app(main)
    cluster.run_with_recovery(
        "j", app, 6, args=("ck",), prefix="ck",
        failure=FailurePlan(iteration=5, node_id=1),
    )
    kinds = [e.kind for e in cluster.events]
    for expected in (
        "job_submitted",
        "pool_formed",
        "tc_disconnected",
        "application_killed",
        "user_informed",
        "recovery_started",
        "job_restarted",
    ):
        assert expected in kinds, expected
    # failure precedes recovery precedes restart
    assert kinds.index("application_killed") < kinds.index("recovery_started")
    assert kinds.index("recovery_started") < kinds.index("job_restarted")


def test_failure_without_checkpoint_cannot_recover(cluster):
    def no_ckpt_main(ctx, prefix):
        drms_initialize(ctx)
        d = drms_create_distribution(ctx, (N,))
        drms_distribute(ctx, "u", d, init_global=np.ones(N))
        for it in ctx.iterations(1, 6):
            ctx.barrier()

    app = cluster.build_app(no_ckpt_main)
    from repro.errors import SchedulerError

    with pytest.raises(SchedulerError, match="no checkpoint"):
        cluster.run_with_recovery(
            "j", app, 4, args=("ck",), prefix="ck",
            failure=FailurePlan(iteration=3, node_id=1),
        )


def test_failure_plan_one_shot():
    plan = FailurePlan(iteration=2, node_id=0)
    assert plan.should_fire(2)
    plan.fire()
    assert not plan.should_fire(2)
    assert plan.fired


def test_failure_plan_claim_is_atomic_under_racing_threads():
    """Regression: should_fire()+fire() was a check-then-act race — two
    task threads on the doomed node could both 'fire' a one-shot plan.
    claim() must admit exactly one winner."""
    import threading

    plan = FailurePlan(iteration=3, node_id=0)
    nthreads = 16
    barrier = threading.Barrier(nthreads)
    wins = []

    def racer():
        barrier.wait()
        if plan.claim(3):
            wins.append(threading.get_ident())

    threads = [threading.Thread(target=racer) for _ in range(nthreads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(wins) == 1
    assert plan.fired
    assert not plan.claim(3)  # disarmed for good


def test_failure_plan_claim_wrong_iteration():
    plan = FailurePlan(iteration=5, node_id=0)
    assert not plan.claim(4)
    assert not plan.fired
    assert plan.claim(5)


def test_one_shot_plan_fires_once_with_tasks_sharing_the_doomed_node():
    """Two tasks placed on the failing node race to fire the plan under
    run_spmd; the claim() protocol guarantees a single shot, so the
    restarted run (same placement) survives."""
    from repro.drms import DRMSApplication
    from repro.errors import TaskFailure
    from repro.runtime.machine import Machine, MachineParams

    app = DRMSApplication(
        main, machine=Machine(MachineParams(num_nodes=4))
    )
    app.failure_plan = FailurePlan(iteration=3, node_id=0)
    with pytest.raises(TaskFailure):
        # tasks 0 and 1 both live on node 0 and reach iteration 3
        # together
        app.start(4, args=("ck",), nodes=[0, 0, 1, 1])
    assert app.failure_plan.fired
    assert not app.machine.nodes[0].up
    # recovery on the surviving nodes from the iteration-1 checkpoint
    app.machine.repair_node(0)
    report = app.restart("ck", 4, args=("ck",), nodes=[0, 0, 1, 1])
    g = report.arrays["u"].to_global()
    assert np.all(g == 1.0 + NITER)


def test_node_failure_exception_carries_node():
    exc = NodeFailure(7)
    assert exc.node_id == 7
    assert "7" in str(exc)


# -- corrupt-checkpoint fallback (crash-consistent recovery) ---------------


def rotating_main(ctx, base):
    """Like main(), but each checkpoint goes to a fresh rotation
    generation (base.000001, base.000002, ...)."""
    drms_initialize(ctx)
    dist = drms_create_distribution(ctx, (N, N), shadow=(1, 1))
    u = drms_distribute(ctx, "u", dist, init_global=np.ones((N, N)))
    for it in ctx.iterations(1, NITER + 1):
        if it % 4 == 1:
            gen = f"{base}.{it // 4 + 1:06d}"
            status, delta = drms_reconfig_checkpoint(ctx, gen)
            if status is CheckpointStatus.RESTARTED and delta != 0:
                u = drms_distribute(ctx, "u", drms_adjust(ctx, "u"))
        u.set_assigned(u.assigned + 1.0)
        ctx.barrier()
    return float(u.assigned.sum())


@pytest.mark.crash_consistency
def test_recovery_falls_back_past_corrupt_newest_checkpoint(cluster):
    """Acceptance scenario: a silent short write corrupts the newest
    checkpoint generation; recovery must reject it, fall back to the
    previous generation, and still finish with the correct answer."""
    from repro.pfs.faults import FaultInjector

    app = cluster.build_app(rotating_main)
    inj = FaultInjector()
    # generation 3 is written at iteration 9; its array file silently
    # loses the tail of its first write
    inj.fail_write(nth=1, match="ck.000003.array.u", mode="short")
    app.pfs.attach_faults(inj)

    out = cluster.run_with_recovery(
        "j", app, 6, args=("ck",), prefix="ck",
        failure=FailurePlan(iteration=11, node_id=2),
    )
    assert out.failed_node == 2
    g = out.final_report.arrays["u"].to_global()
    assert np.all(g == 1.0 + NITER)
    # recovery restarted from generation 2, not the corrupt generation 3
    assert out.final_report.restarted_from == "ck.000002"

    kinds = [e.kind for e in cluster.events]
    assert "checkpoint_rejected" in kinds
    assert "checkpoint_verified" in kinds
    assert "restart_fallback" in kinds
    assert cluster.events.of_kind("checkpoint_rejected", prefix="ck.000003")
    (fallback,) = cluster.events.of_kind("restart_fallback", prefix="ck.000002")
    assert fallback.detail["skipped"] == ["ck.000003"]


@pytest.mark.crash_consistency
def test_bit_flip_in_newest_generation_falls_back_automatically(cluster):
    """Acceptance scenario, media-corruption variant: a bit flipped in
    generation N's array file while the job was down makes recovery
    reject N and restart from N-1, with the decision in the event log."""
    from repro.errors import TaskFailure
    from repro.pfs.faults import flip_stored_bit

    app = cluster.build_app(rotating_main)
    cluster.jsa.submit("j", app, args=("ck",), prefix="ck")
    app.failure_plan = FailurePlan(iteration=11, node_id=2)
    with pytest.raises(TaskFailure):
        cluster.jsa.run("j", ntasks=6)
    app.failure_plan = None
    cluster.rc.handle_processor_failure(2)

    # while the job is down, a stored bit of the newest generation rots
    flip_stored_bit(cluster.pfs, "ck.000003.array.u", 40, bit=6)

    report = cluster.jsa.recover("j")
    assert report.restarted_from == "ck.000002"
    g = report.arrays["u"].to_global()
    assert np.all(g == 1.0 + NITER)
    rejected = cluster.events.of_kind("checkpoint_rejected", prefix="ck.000003")
    assert rejected
    assert any("checksum mismatch" in e for e in rejected[0].detail["errors"])
    assert cluster.events.of_kind("restart_fallback")
    kinds = [e.kind for e in cluster.events]
    assert kinds.index("recovery_started") < kinds.index("checkpoint_rejected")
    assert kinds.index("checkpoint_rejected") < kinds.index("job_restarted")


def test_recovery_event_log_records_verification(cluster):
    """Healthy path: recovery verifies the chosen state and says so."""
    app = cluster.build_app(rotating_main)
    cluster.run_with_recovery(
        "j", app, 6, args=("ck",), prefix="ck",
        failure=FailurePlan(iteration=7, node_id=1),
    )
    assert cluster.events.of_kind("checkpoint_verified", prefix="ck.000002")
    assert not cluster.events.of_kind("restart_fallback")
