"""Coverage for the event log and the exception hierarchy."""

import pytest

from repro import errors
from repro.infra.events import Event, EventLog


class TestEventLog:
    def test_emit_and_iter(self):
        log = EventLog()
        log.emit(1.0, "a", x=1)
        log.emit(2.0, "b")
        log.emit(3.0, "a", x=2)
        assert len(log) == 3
        assert [e.kind for e in log] == ["a", "b", "a"]

    def test_of_kind_and_last(self):
        log = EventLog()
        assert log.last() is None
        log.emit(1.0, "a", x=1)
        log.emit(2.0, "b")
        assert log.last().kind == "b"
        assert log.last("a").detail == {"x": 1}
        assert log.of_kind("c") == []

    def test_of_kind_detail_filter(self):
        log = EventLog()
        log.emit(1.0, "checkpoint_rejected", prefix="ck.3", job="bt")
        log.emit(2.0, "checkpoint_rejected", prefix="ck.2", job="lu")
        hits = log.of_kind("checkpoint_rejected", prefix="ck.2")
        assert [e.time for e in hits] == [2.0]
        assert log.of_kind("checkpoint_rejected", prefix="ck.2", job="bt") == []
        # filtering on an absent key matches nothing
        assert log.of_kind("checkpoint_rejected", node=7) == []

    def test_between_window_is_closed(self):
        log = EventLog()
        for t in (0.0, 1.0, 2.0, 3.0):
            log.emit(t, "tick")
        log.emit(2.5, "tock")
        assert [e.time for e in log.between(1.0, 2.5)] == [1.0, 2.0, 2.5]
        assert [e.time for e in log.between(1.0, 2.5, kind="tick")] == [1.0, 2.0]
        assert log.between(10.0, 20.0) == []

    def test_where_predicate(self):
        log = EventLog()
        log.emit(1.0, "a", node=1)
        log.emit(2.0, "b", node=2)
        assert [e.kind for e in log.where(lambda e: e.detail.get("node") == 2)] == ["b"]

    def test_to_json_round_trips(self):
        import json

        log = EventLog()
        log.emit(1.5, "pool_formed", pool=[0, 1], job="bt")
        log.emit(2.0, "odd_detail", payload=object())  # falls back to repr
        doc = json.loads(log.to_json(indent=2))
        assert doc[0] == {
            "time": 1.5,
            "kind": "pool_formed",
            "detail": {"pool": [0, 1], "job": "bt"},
        }
        assert isinstance(doc[1]["detail"]["payload"], str)

    def test_subscribe_and_unsubscribe(self):
        log = EventLog()
        seen = []
        listener = log.subscribe(seen.append)
        log.emit(1.0, "a")
        log.unsubscribe(listener)
        log.emit(2.0, "b")
        assert [e.kind for e in seen] == ["a"]
        log.unsubscribe(listener)  # second unsubscribe is a no-op

    def test_repr_compact(self):
        ev = Event(1.5, "boom", {"node": 3})
        assert "boom" in repr(ev)
        assert "node=3" in repr(ev)

    def test_empty_log_is_falsy_but_usable(self):
        # regression guard for the `events or EventLog()` bug: daemons
        # must share an injected (possibly still-empty) log
        log = EventLog()
        assert not len(log)
        picked = log if log is not None else EventLog()
        assert picked is log


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        leaves = [
            errors.RangeError,
            errors.SliceError,
            errors.DistributionError,
            errors.ArrayError,
            errors.StreamingError,
            errors.CheckpointError,
            errors.RestartError,
            errors.ReconfigurationError,
            errors.CommunicationError,
            errors.TaskFailure,
            errors.MachineError,
            errors.PFSError,
            errors.SchedulerError,
        ]
        for cls in leaves:
            assert issubclass(cls, errors.ReproError)

    def test_restart_error_is_checkpoint_error(self):
        assert issubclass(errors.RestartError, errors.CheckpointError)

    def test_node_failure_is_task_failure(self):
        from repro.infra.failure import NodeFailure

        assert issubclass(NodeFailure, errors.TaskFailure)

    def test_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.PFSError("x")
