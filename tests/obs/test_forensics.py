"""Forensics: incident dumps, the timeline reconstructor, and the
flight-marked end-to-end acceptance scenario."""

import json

import numpy as np
import pytest

from repro.drms.api import (
    drms_adjust,
    drms_create_distribution,
    drms_distribute,
    drms_initialize,
    drms_reconfig_checkpoint,
)
from repro.drms.context import CheckpointStatus
from repro.infra import DRMSCluster, FailurePlan
from repro.infra.events import EventLog
from repro.obs import (
    INCIDENT_SCHEMA,
    FlightRecorder,
    diff_incidents,
    load_events,
    load_incident,
    make_incident,
    reconstruct_timeline,
    render_diff,
    render_timeline,
    use_flight,
    write_incident,
)
from repro.runtime.machine import Machine, MachineParams


def _incident_log() -> EventLog:
    """A hand-built recovery: inject at 10s, detect at 12s, protocol
    done at 17s, selection instantaneous, rebuild 4.5s."""
    log = EventLog()
    log.emit(10.0, "failure_injected", node=3, job="j")
    log.emit(12.0, "tc_disconnected", node=3)
    log.emit(12.0, "application_killed", job="j")
    log.emit(17.0, "tcs_restarted", job="j", healthy=7)
    log.emit(17.0, "recovery_started", job="j")
    log.emit(17.0, "checkpoint_rejected", prefix="ck.000003", tier="l1", errors=2)
    log.emit(17.0, "checkpoint_verified", prefix="ck.000002", tier="l1")
    log.emit(
        17.0, "job_restarted", job="j", ntasks=8,
        restart_seconds=4.5, restart_kind="mlck-l1", prefix="ck.000002",
    )
    return log


class TestLoadEvents:
    def test_round_trips_event_log_to_json(self):
        log = _incident_log()
        restored = load_events(log.to_json())
        assert restored == log.events

    def test_accepts_parsed_rows_and_live_logs(self):
        log = _incident_log()
        assert load_events(log) == log.events
        rows = json.loads(log.to_json())
        assert load_events(rows) == log.events

    def test_empty_and_partial_rows(self):
        assert load_events("[]") == []
        (ev,) = load_events([{"kind": "x"}])
        assert ev.time == 0.0 and ev.kind == "x" and ev.detail == {}


class TestTimeline:
    def test_phase_attribution_sums_to_recovery_latency(self):
        tl = reconstruct_timeline(_incident_log().events)
        assert [p.name for p in tl.phases] == [
            "detection", "failure_protocol", "state_selection", "rebuild",
        ]
        assert tl.phase("detection").seconds == pytest.approx(2.0)
        assert tl.phase("failure_protocol").seconds == pytest.approx(5.0)
        assert tl.phase("state_selection").seconds == pytest.approx(0.0)
        assert tl.phase("rebuild").seconds == pytest.approx(4.5)
        assert tl.total_seconds == pytest.approx(11.5)
        assert tl.failed_node == 3 and tl.job == "j"
        assert tl.chosen_prefix == "ck.000002" and tl.chosen_tier == "l1"
        assert tl.rejections == [
            {"prefix": "ck.000003", "tier": "l1", "errors": 2}
        ]
        assert tl.resumed_at == pytest.approx(21.5)
        assert tl.phase("nonexistent") is None

    def test_anchors_on_the_last_incident(self):
        log = _incident_log()
        # a later, second incident: only its window should be analyzed
        log.emit(100.0, "failure_injected", node=5, job="j")
        log.emit(101.0, "tc_disconnected", node=5)
        log.emit(106.0, "tcs_restarted", job="j", healthy=6)
        tl = reconstruct_timeline(log.events)
        assert tl.failed_node == 5
        assert tl.phase("detection").seconds == pytest.approx(1.0)
        # no verified/restart events in the second window
        assert tl.chosen_prefix is None
        assert tl.phase("rebuild").seconds == 0.0

    def test_falls_back_to_disconnect_without_injection_event(self):
        log = EventLog()
        log.emit(5.0, "tc_disconnected", node=2)
        log.emit(9.0, "tcs_restarted", job="j", healthy=3)
        tl = reconstruct_timeline(log.events)
        assert tl.failed_node == 2
        assert tl.phase("detection").seconds == 0.0
        assert tl.phase("failure_protocol").seconds == pytest.approx(4.0)

    def test_no_failure_means_no_phases(self):
        log = EventLog()
        log.emit(1.0, "pool_formed", job="j")
        tl = reconstruct_timeline(log.events)
        assert tl.phases == [] and tl.total_seconds == 0.0
        assert "forensic timeline" in render_timeline(tl)

    def test_blackbox_events_merge_into_the_entry_stream(self):
        fr = FlightRecorder()
        fr.record("sop_crossed", node=3, time=11.0, sop=2)
        fr.blackbox(3, reason="killed", time=12.0)
        incident = make_incident(_incident_log(), flight=fr, job="j")
        tl = reconstruct_timeline(incident)
        flight_rows = [e for e in tl.entries if e.source == "flight"]
        assert [e.kind for e in flight_rows] == ["sop_crossed"]
        # merged stream stays time-ordered
        times = [e.time for e in tl.entries]
        assert times == sorted(times)
        text = render_timeline(tl)
        assert "sop_crossed" in text and "phases (failure -> resume):" in text

    def test_tracer_spans_stitch_into_the_entry_stream(self):
        from repro.obs import Tracer

        tr = Tracer(sim_start=13.0)
        with tr.span("restart", prefix="ck.000002"):
            tr.advance(4.5)
        incident = make_incident(_incident_log(), tracer=tr, job="j")
        assert incident["spans"][0]["name"] == "restart"
        tl = reconstruct_timeline(incident)
        (row,) = [e for e in tl.entries if e.source == "span"]
        assert row.kind == "restart" and row.time == 13.0
        assert row.detail["seconds"] == pytest.approx(4.5)
        # span stitching does not perturb the phase attribution
        assert tl.total_seconds == pytest.approx(11.5)

    def test_entry_stream_is_tail_truncated(self):
        log = EventLog()
        for i in range(100):
            log.emit(float(i), "tick", i=i)
        text = render_timeline(reconstruct_timeline(log.events), max_entries=10)
        assert "90 earlier entries elided" in text


class TestIncidentDumps:
    def test_write_load_round_trip(self, tmp_path):
        incident = make_incident(_incident_log(), job="j")
        assert incident["schema"] == INCIDENT_SCHEMA
        assert incident["created"] == 17.0
        path = write_incident(tmp_path / "deep" / "incident.json", incident)
        loaded = load_incident(path)
        assert loaded["events"] == incident["events"]
        tl = reconstruct_timeline(loaded)
        assert tl.total_seconds == pytest.approx(11.5)

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "not_incident.json"
        path.write_text(json.dumps({"schema": "other/1"}))
        with pytest.raises(ValueError, match="not an incident dump"):
            load_incident(path)

    def test_empty_incident_is_well_formed(self):
        incident = make_incident(EventLog())
        assert incident["created"] == 0.0 and incident["events"] == []
        tl = reconstruct_timeline(incident)
        assert tl.phases == [] and tl.entries == []

    def test_diff_reports_phase_deltas(self):
        a = make_incident(_incident_log(), job="j")
        faster = _incident_log()
        # same story, but the rebuild got cheaper
        faster.events[-1] = type(faster.events[-1])(
            time=17.0, kind="job_restarted",
            detail={"job": "j", "ntasks": 8, "restart_seconds": 2.0,
                    "restart_kind": "mlck-l1", "prefix": "ck.000002"},
        )
        b = make_incident(faster, job="j")
        diff = diff_incidents(a, b)
        assert diff["phases"]["rebuild"]["delta"] == pytest.approx(-2.5)
        assert diff["total"]["delta"] == pytest.approx(-2.5)
        assert diff["failed_node"] == {"a": 3, "b": 3}
        text = render_diff(diff)
        assert "rebuild" in text and "delta" in text


# -- the acceptance scenario -------------------------------------------------

N = 10
NITER = 12


def _main(ctx, base):
    drms_initialize(ctx)
    dist = drms_create_distribution(ctx, (N, N), shadow=(1, 1))
    u = drms_distribute(ctx, "u", dist, init_global=np.ones((N, N)))
    for it in ctx.iterations(1, NITER + 1):
        if it % 4 == 1:
            status, delta = drms_reconfig_checkpoint(ctx, base)
            if status is CheckpointStatus.RESTARTED and delta != 0:
                u = drms_distribute(ctx, "u", drms_adjust(ctx, "u"))
        u.set_assigned(u.assigned + 1.0)
        ctx.barrier()
    return float(u.assigned.sum())


@pytest.mark.flight
def test_killed_node_leaves_a_blackbox_and_a_reconstructible_timeline(tmp_path):
    """ISSUE acceptance: a FailurePlan-killed node in an mlck memory+pfs
    run produces a black-box dump, and the forensic timeline
    reconstructs failure -> tiered restart with phase latencies summing
    to the cluster's reported recovery latency."""
    cluster = DRMSCluster(
        machine=Machine(MachineParams(num_nodes=8)), node_repair_s=600.0
    )
    app = cluster.build_app(_main, tier="memory+pfs", mlck_drain="sync")
    with use_flight(FlightRecorder()) as fr:
        out = cluster.run_with_recovery(
            "j", app, 8, args=("ck",), prefix="ck",
            failure=FailurePlan(iteration=7, node_id=3),
        )
    assert out.failed_node == 3

    # the dead node left exactly one black box, with its last acts inside
    boxes = [b for b in fr.blackboxes if b["node"] == 3]
    assert len(boxes) == 1
    kinds = {e["kind"] for e in boxes[0]["events"]}
    assert "sop_crossed" in kinds
    assert "replica_placed" in kinds or "l1_captured" in kinds
    (path,) = fr.write_blackboxes(tmp_path)
    assert json.loads(path.read_text())["node"] == 3

    # the incident dump + reconstructor tell the tiered-restart story
    incident = make_incident(out.events, flight=fr, outcome=out, job="j")
    tl = reconstruct_timeline(incident)
    assert tl.failed_node == 3 and tl.job == "j"
    assert tl.chosen_prefix == "ck.000002" and tl.chosen_tier == "l1"
    assert [p.name for p in tl.phases] == [
        "detection", "failure_protocol", "state_selection", "rebuild",
    ]
    assert tl.phase("detection").seconds == pytest.approx(cluster.detection_s)
    assert tl.phase("failure_protocol").seconds == pytest.approx(
        cluster.rc.tc_restart_s
    )
    assert tl.phase("rebuild").detail["kind"] == "mlck-l1"
    # the headline property: phase attribution sums to the reported latency
    assert tl.total_seconds == pytest.approx(out.recovery_latency_s, rel=1e-6)

    # and the rendered report carries the story end to end
    text = render_timeline(tl)
    assert "node 3 failed" in text
    assert "chose ck.000002 (tier l1)" in text


@pytest.mark.flight
def test_forensics_cli_round_trip(tmp_path, capsys):
    """dump -> timeline/health/diff over the written incident file."""
    from repro.tools.forensics import main

    out = tmp_path / "fx"
    assert main(["dump", "--out", str(out)]) == 0
    dumped = capsys.readouterr().out
    assert "phases (failure -> resume):" in dumped
    names = {p.name for p in out.iterdir()}
    assert names == {"incident.json", "blackbox_node3.json", "metrics.om"}

    incident = str(out / "incident.json")
    assert main(["timeline", incident]) == 0
    assert "chose ck.000002 (tier l1)" in capsys.readouterr().out

    assert main(["health", incident]) == 0
    assert "health.nodes.down" in capsys.readouterr().out

    assert main(["diff", incident, incident]) == 0
    diffed = capsys.readouterr().out
    assert "incident diff (A vs B)" in diffed and "delta +0.000s" in diffed


@pytest.mark.localized
def test_localized_timeline_phases_sum_and_blackbox_has_last_sop(tmp_path):
    """Regression pins for the localized protocol's forensics: the four
    reconstructed phase latencies sum exactly to the cluster's reported
    recovery latency, the rebuild phase carries the rebuild scope, and
    the dead node's black box records the quiesce anchor — the last SOP
    crossing the group made before the drop."""
    from repro.obs import FlightRecorder, use_flight

    cluster = DRMSCluster(
        machine=Machine(MachineParams(num_nodes=8)), node_repair_s=600.0
    )
    app = cluster.build_app(_main, tier="memory+pfs", mlck_drain="sync")
    with use_flight(FlightRecorder()) as fr:
        out = cluster.run_with_localized_recovery(
            "j", app, 6, args=("ck",), prefix="ck",
            failure=FailurePlan(iteration=7, node_id=0),
        )
    assert out.failed_nodes == [0]
    assert out.final_report.restart_breakdown.kind == "mlck-l1-localized"

    incident = make_incident(out.events, flight=fr, outcome=out, job="j")
    tl = reconstruct_timeline(incident)
    assert tl.failed_node == 0 and tl.job == "j"
    assert [p.name for p in tl.phases] == [
        "detection", "failure_protocol", "state_selection", "rebuild",
    ]
    assert tl.phase("detection").seconds == pytest.approx(cluster.detection_s)
    assert tl.phase("failure_protocol").seconds == pytest.approx(
        cluster.rc.tc_restart_s
    )
    # the invariant this test pins: phase attribution sums exactly to
    # the reported recovery latency, localized path included
    assert tl.total_seconds == pytest.approx(out.recovery_latency_s, rel=1e-9)
    rebuild = tl.phase("rebuild")
    assert rebuild.detail["kind"] == "mlck-l1-localized"
    scope = rebuild.detail["rebuild_scope"]
    assert scope["lost_ranks"] == [0]
    assert scope["failed_nodes"] == [0]
    assert 0 < scope["lost_bytes"] < scope["total_bytes"]

    # the dead node left one black box whose last recorded SOP crossing
    # is the quiesce anchor the survivors paused at
    (box,) = [b for b in fr.blackboxes if b["node"] == 0]
    sops = [e for e in box["events"] if e["kind"] == "sop_crossed"]
    assert sops
    (quiesced,) = [e for e in out.events if e.kind == "survivors_quiesced"]
    assert sops[-1]["detail"]["sop"] == quiesced.detail["sop"]
    assert sops[-1]["detail"]["iteration"] == quiesced.detail["iteration"]


@pytest.mark.flight
def test_flight_recorder_sees_a_healthy_run_too():
    """Without a failure the rings still carry the checkpoint story —
    SOP crossings, captures, placements — and no black box is emitted."""
    cluster = DRMSCluster(machine=Machine(MachineParams(num_nodes=8)))
    app = cluster.build_app(_main, tier="memory+pfs", mlck_drain="sync")
    with use_flight(FlightRecorder()) as fr:
        out = cluster.run_with_recovery("j", app, 8, args=("ck",), prefix="ck")
    assert out.failed_node is None
    assert fr.blackboxes == []
    kinds = {e.kind for e in fr.events()}
    assert {"sop_crossed", "l1_captured", "replica_placed",
            "checkpoint_taken", "job_completed"} <= kinds
    # per-node rings exist for the compute nodes that crossed SOPs
    assert any(n >= 0 for n in fr.nodes())
