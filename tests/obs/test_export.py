"""Chrome trace-event export: schema and JSON round-trip; the
OpenMetrics text exposition; degenerate inputs for both."""

import json

from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    metrics_dump,
    openmetrics_text,
    write_chrome_trace,
    write_openmetrics,
)


def _sample_tracer() -> Tracer:
    tr = Tracer()
    with tr.span("checkpoint", kind="drms", prefix="ck") as op:
        with tr.span("segment_write", nbytes=1000):
            tr.advance(2.0)
        with tr.span("parstream:u", nbytes=4000):
            tr.advance(1.5)
        op.set(nbytes=5000)
    tr.mark("restart_fallback", chosen="ck")
    return tr


class TestChromeTrace:
    def test_round_trips_through_json(self):
        doc = chrome_trace(_sample_tracer())
        restored = json.loads(json.dumps(doc))
        assert restored == doc
        assert restored["displayTimeUnit"] == "ms"

    def test_event_schema(self):
        doc = chrome_trace(_sample_tracer(), process_name="proc")
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i"}

        meta = [e for e in events if e["ph"] == "M"]
        assert {"name": "proc"} in [m["args"] for m in meta if m["name"] == "process_name"]

        slices = {e["name"]: e for e in events if e["ph"] == "X"}
        assert set(slices) == {"checkpoint", "segment_write", "parstream:u"}
        op = slices["checkpoint"]
        # simulated seconds exported as microseconds
        assert op["dur"] == 3.5e6
        assert slices["segment_write"]["ts"] == 0.0
        assert slices["parstream:u"]["ts"] == 2.0e6
        # children tile the parent slice
        assert op["dur"] == slices["segment_write"]["dur"] + slices["parstream:u"]["dur"]
        # attrs ride along in args, plus the wall clock and span links
        assert op["args"]["kind"] == "drms"
        assert op["args"]["nbytes"] == 5000
        assert "wall_seconds" in op["args"]
        assert slices["segment_write"]["args"]["parent_id"] == op["args"]["span_id"]
        # category comes from the name's first component
        assert slices["parstream:u"]["cat"] == "parstream"

        instants = [e for e in events if e["ph"] == "i"]
        assert instants[0]["name"] == "restart_fallback"
        assert instants[0]["s"] == "p"
        assert instants[0]["args"] == {"chosen": "ck"}

    def test_open_spans_are_skipped(self):
        tr = Tracer()
        tr.start("never-closed")
        names = [e["name"] for e in chrome_trace(tr)["traceEvents"] if e["ph"] == "X"]
        assert "never-closed" not in names

    def test_non_json_attrs_fall_back_to_repr(self):
        tr = Tracer()
        with tr.span("op", payload=object()) as sp:
            pass
        doc = json.loads(json.dumps(chrome_trace(tr)))
        (ev,) = [e for e in doc["traceEvents"] if e["name"] == "op"]
        assert isinstance(ev["args"]["payload"], str)

    def test_write_chrome_trace_creates_loadable_file(self, tmp_path):
        path = write_chrome_trace(tmp_path / "deep" / "trace.json", _sample_tracer())
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_spans_on_two_threads_get_distinct_tids(self):
        import threading

        tr = Tracer()
        with tr.span("main-op"):
            tr.advance(1.0)
        t = threading.Thread(target=lambda: tr.end(tr.start("worker-op")))
        t.start()
        t.join()
        events = chrome_trace(tr)["traceEvents"]
        tids = {e["name"]: e["tid"] for e in events if e["ph"] == "X"}
        assert tids["main-op"] != tids["worker-op"]
        thread_names = [e for e in events if e["ph"] == "M" and e["name"] == "thread_name"]
        assert len(thread_names) == 2


def test_metrics_dump_is_the_flat_registry():
    tr = Tracer()
    tr.metrics.counter("stream.out.bytes").inc(512)
    assert metrics_dump(tr.metrics) == {"stream.out.bytes": 512.0}


class TestDegenerateInputs:
    def test_empty_tracer_chrome_export(self):
        doc = chrome_trace(Tracer())
        # just the process-name metadata; valid JSON, loadable
        assert [e["ph"] for e in doc["traceEvents"]] == ["M"]
        assert json.loads(json.dumps(doc)) == doc

    def test_zero_duration_span_exports_cleanly(self):
        tr = Tracer()
        with tr.span("instantaneous"):
            pass  # no advance: sim duration 0
        (ev,) = [e for e in chrome_trace(tr)["traceEvents"] if e["ph"] == "X"]
        assert ev["dur"] == 0.0 and ev["ts"] == 0.0

    def test_empty_registry_openmetrics_is_just_the_terminator(self):
        assert openmetrics_text(MetricsRegistry()) == "# EOF\n"


class TestOpenMetrics:
    def _registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("pfs.write.bytes").inc(4096)
        reg.counter("pfs.write.bytes[ckpt.segment]").inc(1024)
        reg.gauge("health.nodes.up").set(8)
        h = reg.histogram("checkpoint.total.seconds")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        return reg

    def test_exposition_shape(self):
        text = openmetrics_text(self._registry())
        lines = text.splitlines()
        assert lines[-1] == "# EOF" and text.endswith("# EOF\n")
        # dotted names sanitize; counters get the _total sample suffix
        assert "# TYPE pfs_write_bytes counter" in lines
        assert "pfs_write_bytes_total 4096" in lines
        # the bracketed per-entity convention becomes an entity label
        assert 'pfs_write_bytes_total{entity="ckpt.segment"} 1024' in lines
        assert "# TYPE health_nodes_up gauge" in lines
        assert "health_nodes_up 8" in lines
        # histograms export as summaries with exact extreme quantiles
        assert "# TYPE checkpoint_total_seconds summary" in lines
        assert 'checkpoint_total_seconds{quantile="0"} 1' in lines
        assert 'checkpoint_total_seconds{quantile="1"} 4' in lines
        assert "checkpoint_total_seconds_count 4" in lines
        assert "checkpoint_total_seconds_sum 10" in lines

    def test_output_is_deterministic(self):
        a = self._registry()
        b = MetricsRegistry()
        # same series, reversed creation order
        b.histogram("checkpoint.total.seconds")
        b.gauge("health.nodes.up").set(8)
        b.counter("pfs.write.bytes[ckpt.segment]").inc(1024)
        b.counter("pfs.write.bytes").inc(4096)
        for v in (1.0, 2.0, 3.0, 4.0):
            b.histogram("checkpoint.total.seconds").observe(v)
        assert openmetrics_text(a) == openmetrics_text(b)

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter('pfs.write.bytes[we"ird\\name]').inc(1)
        text = openmetrics_text(reg)
        assert 'entity="we\\"ird\\\\name"' in text

    def test_write_openmetrics_creates_the_file(self, tmp_path):
        path = write_openmetrics(
            tmp_path / "deep" / "metrics.om", self._registry()
        )
        assert path.read_text().endswith("# EOF\n")
