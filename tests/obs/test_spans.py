"""Span nesting, clock semantics, and the null tracer."""

import threading
import time

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)


class TestSpanNesting:
    def test_parent_child_links(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert tr.roots() == [outer]
        assert tr.children(outer) == [inner]

    def test_siblings_tile_the_sim_timeline(self):
        tr = Tracer()
        with tr.span("op") as op:
            with tr.span("a"):
                tr.advance(2.0)
            with tr.span("b"):
                tr.advance(3.0)
        assert op.sim_seconds == pytest.approx(5.0)
        a, b = tr.find("a")[0], tr.find("b")[0]
        assert a.sim_seconds == pytest.approx(2.0)
        assert b.sim_seconds == pytest.approx(3.0)
        # sibling b starts exactly where a ended: the phases tile
        assert b.sim_start == pytest.approx(a.sim_end)
        assert op.sim_seconds == pytest.approx(a.sim_seconds + b.sim_seconds)

    def test_wall_clock_advances_even_without_sim_time(self):
        tr = Tracer()
        with tr.span("idle"):
            time.sleep(0.002)
        s = tr.find("idle")[0]
        assert s.sim_seconds == 0.0
        assert s.wall_seconds > 0.0

    def test_exception_records_error_attr_and_closes(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("doomed"):
                raise ValueError("boom")
        s = tr.find("doomed")[0]
        assert s.done
        assert "ValueError" in s.attrs["error"]

    def test_per_thread_stacks_are_independent(self):
        tr = Tracer()
        started = threading.Event()
        release = threading.Event()

        def worker():
            with tr.span("worker-root"):
                started.set()
                release.wait(timeout=5)

        t = threading.Thread(target=worker)
        with tr.span("main-root"):
            t.start()
            started.wait(timeout=5)
            release.set()
            t.join()
        w = tr.find("worker-root")[0]
        # the worker's span is a root of its own thread, not a child of
        # the span open on the main thread
        assert w.parent_id is None
        assert len(tr.roots()) == 2

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            Tracer().advance(-1.0)

    def test_sync_is_forward_only(self):
        tr = Tracer()
        tr.sync(10.0)
        assert tr.sim_now == 10.0
        tr.sync(5.0)  # never backward
        assert tr.sim_now == 10.0

    def test_marks_record_cursor_or_explicit_time(self):
        tr = Tracer()
        tr.advance(4.0)
        m1 = tr.mark("at-cursor")
        m2 = tr.mark("explicit", sim_time=1.5, node=3)
        assert m1.sim_time == pytest.approx(4.0)
        assert m2.sim_time == pytest.approx(1.5)
        assert m2.attrs == {"node": 3}


class TestCurrentTracer:
    def test_default_is_the_shared_null(self):
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_scopes_and_restores(self):
        tr = Tracer()
        with use_tracer(tr) as active:
            assert active is tr
            assert get_tracer() is tr
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_none_restores_null(self):
        set_tracer(Tracer())
        try:
            assert get_tracer() is not NULL_TRACER
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER


class TestNullTracer:
    def test_records_nothing(self):
        nt = NullTracer()
        with nt.span("x", a=1) as s:
            nt.advance(5.0)
            nt.mark("m")
            s.set(b=2)
        assert nt.spans == []
        assert nt.marks == []
        assert nt.sim_now == 0.0
        assert not nt.enabled
        assert not nt.metrics.enabled

    def test_span_context_is_shared_and_reusable(self):
        nt = NullTracer()
        assert nt.span("a") is nt.span("b")

    def test_null_overhead_smoke(self):
        """Instrumented hot paths under the null tracer stay cheap: one
        global read + no-op calls.  Loose bound — this is a smoke test
        against accidental allocation, not a benchmark."""
        n = 20_000
        t0 = time.perf_counter()
        for _ in range(n):
            obs = get_tracer()
            with obs.span("piece", nbytes=4096):
                pass
            obs.metrics.counter("x.bytes").inc(4096)
        per_op = (time.perf_counter() - t0) / n
        assert per_op < 50e-6  # 50 microseconds per fully-null operation
