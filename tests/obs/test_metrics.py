"""Counters, gauges, histograms, and the registry dumps."""

import pytest

from repro.obs import NULL_METRICS, MetricsRegistry, NullMetricsRegistry


class TestInstruments:
    def test_counter_accumulates_and_is_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("pfs.write.bytes")
        c.inc(100)
        c.inc(0.5)
        assert c.value == pytest.approx(100.5)
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_gauge_last_write_wins(self):
        g = MetricsRegistry().gauge("depth")
        g.set(3)
        g.set(7)
        assert g.value == 7.0

    def test_histogram_summary_and_percentiles(self):
        h = MetricsRegistry().histogram("lat")
        for v in range(1, 101):  # 1..100
            h.observe(v)
        s = h.summary()
        assert s["count"] == 100
        assert s["sum"] == pytest.approx(5050)
        assert s["mean"] == pytest.approx(50.5)
        assert s["min"] == 1 and s["max"] == 100
        assert s["p50"] == pytest.approx(50, abs=1)
        assert s["p90"] == pytest.approx(90, abs=1)
        assert s["p99"] == pytest.approx(99, abs=1)

    def test_empty_histogram_summary_is_zeroed(self):
        s = MetricsRegistry().histogram("never").summary()
        assert s["count"] == 0
        assert s["p99"] == 0.0

    def test_percentile_range_checked(self):
        h = MetricsRegistry().histogram("x")
        with pytest.raises(ValueError):
            h.percentile(101)


class TestDumps:
    def test_flat_expands_histograms(self):
        reg = MetricsRegistry()
        reg.counter("stream.out.bytes").inc(1000)
        reg.gauge("pool.size").set(4)
        reg.histogram("pfs.phase.seconds.write_serial").observe(2.0)
        flat = reg.flat()
        assert flat["stream.out.bytes"] == 1000.0
        assert flat["pool.size"] == 4.0
        assert flat["pfs.phase.seconds.write_serial.count"] == 1
        assert flat["pfs.phase.seconds.write_serial.mean"] == pytest.approx(2.0)
        assert flat["pfs.phase.seconds.write_serial.p50"] == pytest.approx(2.0)
        # flat dump is sorted by name
        assert list(flat) == sorted(flat)

    def test_to_dict_structured(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        d = reg.to_dict()
        assert d["counters"] == {"c": 1.0}
        assert d["gauges"] == {} and d["histograms"] == {}


class TestNullRegistry:
    def test_all_lookups_share_one_inert_instrument(self):
        reg = NullMetricsRegistry()
        assert reg.counter("a") is reg.counter("b") is reg.histogram("c")
        reg.counter("a").inc(5)
        reg.histogram("c").observe(1.0)
        assert reg.flat() == {}
        assert NULL_METRICS.to_dict() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
