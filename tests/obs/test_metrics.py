"""Counters, gauges, histograms, and the registry dumps."""

import pytest

from repro.obs import NULL_METRICS, MetricsRegistry, NullMetricsRegistry


class TestInstruments:
    def test_counter_accumulates_and_is_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("pfs.write.bytes")
        c.inc(100)
        c.inc(0.5)
        assert c.value == pytest.approx(100.5)
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_gauge_last_write_wins(self):
        g = MetricsRegistry().gauge("depth")
        g.set(3)
        g.set(7)
        assert g.value == 7.0

    def test_histogram_summary_and_percentiles(self):
        h = MetricsRegistry().histogram("lat")
        for v in range(1, 101):  # 1..100
            h.observe(v)
        s = h.summary()
        assert s["count"] == 100
        assert s["sum"] == pytest.approx(5050)
        assert s["mean"] == pytest.approx(50.5)
        assert s["min"] == 1 and s["max"] == 100
        assert s["p50"] == pytest.approx(50, abs=1)
        assert s["p90"] == pytest.approx(90, abs=1)
        assert s["p99"] == pytest.approx(99, abs=1)

    def test_empty_histogram_summary_is_zeroed(self):
        s = MetricsRegistry().histogram("never").summary()
        assert s["count"] == 0
        assert s["p99"] == 0.0

    def test_percentile_range_checked(self):
        h = MetricsRegistry().histogram("x")
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-0.1)

    def test_empty_histogram_summary_is_nan_free(self):
        import math

        s = MetricsRegistry().histogram("never").summary()
        assert s["count"] == 0 and s["sum"] == 0.0
        assert all(not math.isnan(v) for v in s.values())
        assert s["mean"] == 0.0 and s["min"] == 0.0 and s["max"] == 0.0
        assert s["p0"] == 0.0 and s["p100"] == 0.0

    def test_extreme_percentiles_are_exact_minmax(self):
        h = MetricsRegistry().histogram("lat")
        for v in (7.0, -2.0, 100.0, 3.0):
            h.observe(v)
        assert h.percentile(0) == -2.0 and h.percentile(100) == 100.0
        s = h.summary()
        assert s["p0"] == s["min"] == -2.0
        assert s["p100"] == s["max"] == 100.0

    def test_extremes_stay_exact_beyond_retained_capacity(self):
        from repro.obs.metrics import _HISTOGRAM_CAPACITY

        h = MetricsRegistry().histogram("big")
        for v in range(_HISTOGRAM_CAPACITY):
            h.observe(float(v))
        # these two fall past the retained-sample window...
        h.observe(-50.0)
        h.observe(1e9)
        assert len(h.values) == _HISTOGRAM_CAPACITY
        # ...but the p0/p100 extremes still see them exactly
        assert h.percentile(0) == -50.0
        assert h.percentile(100) == 1e9
        assert h.count == _HISTOGRAM_CAPACITY + 2

    def test_single_sample_percentiles(self):
        h = MetricsRegistry().histogram("one")
        h.observe(42.0)
        for p in (0, 50, 90, 99, 100):
            assert h.percentile(p) == 42.0


class TestDumps:
    def test_flat_expands_histograms(self):
        reg = MetricsRegistry()
        reg.counter("stream.out.bytes").inc(1000)
        reg.gauge("pool.size").set(4)
        reg.histogram("pfs.phase.seconds.write_serial").observe(2.0)
        flat = reg.flat()
        assert flat["stream.out.bytes"] == 1000.0
        assert flat["pool.size"] == 4.0
        assert flat["pfs.phase.seconds.write_serial.count"] == 1
        assert flat["pfs.phase.seconds.write_serial.mean"] == pytest.approx(2.0)
        assert flat["pfs.phase.seconds.write_serial.p50"] == pytest.approx(2.0)
        # flat dump is sorted by name
        assert list(flat) == sorted(flat)

    def test_flat_order_is_independent_of_creation_order(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("z.last").inc(1)
        a.gauge("a.first").set(2)
        a.histogram("m.mid").observe(3)
        b.histogram("m.mid").observe(3)
        b.gauge("a.first").set(2)
        b.counter("z.last").inc(1)
        assert list(a.flat()) == list(b.flat())
        assert a.flat() == b.flat()

    def test_to_dict_structured(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        d = reg.to_dict()
        assert d["counters"] == {"c": 1.0}
        assert d["gauges"] == {} and d["histograms"] == {}


class TestNullRegistry:
    def test_all_lookups_share_one_inert_instrument(self):
        reg = NullMetricsRegistry()
        assert reg.counter("a") is reg.counter("b") is reg.histogram("c")
        reg.counter("a").inc(5)
        reg.histogram("c").observe(1.0)
        assert reg.flat() == {}
        assert NULL_METRICS.to_dict() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
