"""EventLog -> tracer bridge."""

from repro.infra.events import EventLog
from repro.obs import Tracer, bind_event_log


def test_emits_become_marks_and_counters():
    tr = Tracer()
    log = EventLog()
    unbind = bind_event_log(tr, log)
    log.emit(10.0, "pool_formed", job="bt", pool=(0, 1, 2))
    log.emit(12.5, "checkpoint_rejected", prefix="ck")
    assert [m.name for m in tr.marks] == [
        "event.pool_formed",
        "event.checkpoint_rejected",
    ]
    # marks land at the event's own cluster time, not the cursor
    assert tr.marks[0].sim_time == 10.0
    assert tr.marks[0].attrs == {"job": "bt", "pool": (0, 1, 2)}
    assert tr.metrics.flat() == {
        "events.pool_formed": 1.0,
        "events.checkpoint_rejected": 1.0,
    }
    unbind()


def test_unbind_stops_mirroring():
    tr = Tracer()
    log = EventLog()
    unbind = bind_event_log(tr, log)
    log.emit(1.0, "disconnect", node=3)
    unbind()
    log.emit(2.0, "disconnect", node=4)
    assert len(tr.marks) == 1
    assert tr.metrics.counter("events.disconnect").value == 1.0
    unbind()  # second unbind is a no-op


def test_custom_prefix():
    tr = Tracer()
    log = EventLog()
    bind_event_log(tr, log, prefix="rc")
    log.emit(0.0, "node_failed", node=1)
    assert tr.marks[0].name == "rc.node_failed"
