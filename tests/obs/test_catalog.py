"""The metrics catalog holds: every metric literal published anywhere
under ``src/repro`` matches a documented family."""

import pathlib
import re

import pytest

from repro.obs import METRIC_FAMILIES, match_family

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"

#: instrument constructor calls with a literal (possibly f-string) name
_CALL_RE = re.compile(
    r"""\.(?:counter|gauge|histogram)\(\s*f?(['"])(?P<name>[^'"]+)\1"""
)

#: how to resolve the template variables that appear inside f-string
#: metric names — one representative runtime value each
_TEMPLATE_VALUES = {
    "root": "checkpoint",
    "direction": "out",
    "op": "write",
    "tier": "l1",
    "ev.kind": "pool_formed",
    "state.value": "running",
    "domain": "0",
    "fname": "ckpt.seg",
    "name": "ckpt.seg",
    "kind.value": "write",
    "kind": "transfer",
    "plan.mode": "fail",
}

_BRACE_RE = re.compile(r"\{([^}:!]+)(?:[:!][^}]*)?\}")


def _resolve(template: str) -> str:
    def sub(m: re.Match) -> str:
        var = m.group(1).strip()
        if var not in _TEMPLATE_VALUES:
            pytest.fail(
                f"metric template variable {var!r} has no representative "
                f"value in _TEMPLATE_VALUES (template: {template!r})"
            )
        return _TEMPLATE_VALUES[var]

    return _BRACE_RE.sub(sub, template)


def _published_names():
    names = []
    for path in sorted(SRC.rglob("*.py")):
        text = path.read_text()
        for m in _CALL_RE.finditer(text):
            names.append((path.relative_to(SRC), _resolve(m.group("name"))))
    return names


def test_the_scan_actually_finds_the_instrumentation():
    names = {n for _, n in _published_names()}
    # spot-check the scan sees all the major layers
    for expected in (
        "pfs.write.bytes",
        "stream.out.bytes",
        "flight.recorded",
        "health.nodes.up",
        "jsa.recoveries",
        "rc.failures",
    ):
        assert expected in names, f"scan lost {expected!r}"
    assert len(names) > 30


def test_every_published_metric_matches_a_documented_family():
    undocumented = [
        (str(path), name)
        for path, name in _published_names()
        if match_family(name) is None
    ]
    assert undocumented == [], (
        "metrics outside every documented family (add a family with a "
        f"description to repro.obs.catalog.METRIC_FAMILIES): {undocumented}"
    )


def test_families_are_well_formed():
    seen = set()
    for family, pattern, doc in METRIC_FAMILIES:
        assert family not in seen, f"duplicate family {family!r}"
        seen.add(family)
        re.compile(pattern)  # must be a valid regex
        assert doc.strip(), f"family {family!r} missing its description"


def test_match_family_is_full_match_only():
    assert match_family("pfs.write.bytes") == "pfs"
    assert match_family("pfs.write.bytes[ckpt.segment]") == "pfs"
    assert match_family("health.l1.replicas[3]") == "health"
    # prefixes, suffixes, and typos don't match
    assert match_family("pfs.write.bytes.extra.deep.path") is None
    assert match_family("xpfs.write.bytes") is None
    assert match_family("mlck.drian.pending") is None
    assert match_family("") is None
