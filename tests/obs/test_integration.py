"""End-to-end: a traced checkpoint + reconfigured restart.

The ISSUE's acceptance test: under a live tracer, the engine spans'
phase breakdown sums to the end-to-end operation span, and the metrics
registry's I/O and redistribution byte counters agree with the
engines' own accounting (breakdowns / StreamStats)."""

import json

import numpy as np
import pytest

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import block_distribution
from repro.checkpoint.drms import drms_checkpoint, drms_restart
from repro.checkpoint.segment import DataSegment, SegmentProfile
from repro.obs import Tracer, breakdown_report, chrome_trace, use_tracer
from repro.obs.report import op_summary
from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine, MachineParams


@pytest.fixture()
def traced_lifecycle():
    """One checkpoint on 8 tasks + restart on 6, under a fresh tracer."""
    machine = Machine(MachineParams(num_nodes=16))
    machine.place_tasks(8)
    pfs = PIOFS(machine=machine)
    arr = DistributedArray("u", (32, 32), np.float64, block_distribution((32, 32), 8))
    arr.set_global(np.arange(32 * 32, dtype=np.float64).reshape(32, 32))
    seg = DataSegment(profile=SegmentProfile(50_000, 0, 0))
    tracer = Tracer()
    with use_tracer(tracer):
        ck_bd = drms_checkpoint(pfs, "ck", seg, [arr])
        state, rs_bd = drms_restart(pfs, "ck", 6)
    return tracer, ck_bd, rs_bd, state, arr


def test_phase_breakdown_sums_to_total(traced_lifecycle):
    tracer, ck_bd, rs_bd, _, _ = traced_lifecycle
    roots = {r.name: r for r in tracer.roots()}
    assert set(roots) == {"checkpoint", "restart"}
    for name, bd in (("checkpoint", ck_bd), ("restart", rs_bd)):
        summary = op_summary(tracer, roots[name])
        # phases tile the operation span exactly
        assert summary["phase_seconds"] == pytest.approx(summary["seconds"])
        # and the span tree agrees with the engine's own breakdown
        assert summary["seconds"] == pytest.approx(bd.total_seconds)


def test_span_bytes_match_engine_breakdowns(traced_lifecycle):
    tracer, ck_bd, rs_bd, _, arr = traced_lifecycle
    roots = {r.name: r for r in tracer.roots()}
    ck = op_summary(tracer, roots["checkpoint"])
    # phases = segment + arrays + the (tiny) manifest commit
    (manifest_row,) = [r for r in ck["phases"] if r["phase"] == "manifest_commit"]
    assert ck["nbytes"] == ck_bd.total_bytes + manifest_row["nbytes"]
    seg_rows = [r for r in ck["phases"] if r["phase"] == "segment_write"]
    assert seg_rows[0]["nbytes"] == ck_bd.segment_bytes
    (ps_row,) = [r for r in ck["phases"] if r["phase"] == "parstream:u"]
    assert ps_row["nbytes"] == arr.nbytes_global == ck_bd.arrays_bytes

    rs = op_summary(tracer, roots["restart"])
    assert rs["kind"] == "drms"
    assert roots["restart"].attrs["ntasks"] == 6
    assert roots["restart"].attrs["checkpoint_ntasks"] == 8


def test_stream_counters_match_checkpoint_bytes(traced_lifecycle):
    tracer, ck_bd, _, _, arr = traced_lifecycle
    flat = tracer.metrics.flat()
    # every array byte left through the out-streamer and came back in
    assert flat["stream.out.bytes"] == arr.nbytes_global == ck_bd.arrays_bytes
    assert flat["stream.in.bytes"] == arr.nbytes_global
    # redistribution traffic is recorded (8-task layout -> 6-task layout
    # forces off-task pieces on restart)
    assert flat["stream.redistribution.bytes"] > 0


def test_breakdown_metrics_match_breakdown_objects(traced_lifecycle):
    tracer, ck_bd, rs_bd, _, _ = traced_lifecycle
    flat = tracer.metrics.flat()
    assert flat["checkpoint.drms.count"] == 1.0
    assert flat["checkpoint.drms.segment.bytes"] == ck_bd.segment_bytes
    assert flat["checkpoint.drms.arrays.seconds"] == pytest.approx(ck_bd.arrays_seconds)
    assert flat["checkpoint.drms.total.seconds"] == pytest.approx(ck_bd.total_seconds)
    assert flat["restart.drms.other.seconds"] == pytest.approx(rs_bd.other_seconds)
    assert flat["restart.drms.total.seconds"] == pytest.approx(rs_bd.total_seconds)


def test_restart_restores_data_on_new_task_count(traced_lifecycle):
    _, _, _, state, arr = traced_lifecycle
    restored = state.arrays["u"]
    assert restored.ntasks == 6
    np.testing.assert_array_equal(restored.to_global(), arr.to_global())


def test_report_and_chrome_trace_render(traced_lifecycle):
    tracer, _, _, _, _ = traced_lifecycle
    report = breakdown_report(tracer)
    assert "checkpoint [drms]" in report
    assert "restart [drms]" in report
    assert "TOTAL" in report
    doc = json.loads(json.dumps(chrome_trace(tracer)))
    names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert {"checkpoint", "restart", "segment_write", "parstream:u"} <= names
