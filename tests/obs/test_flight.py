"""Flight recorder: ring bounds, black-box dumps, scoping."""

import json
import threading

import pytest

from repro.obs import (
    GLOBAL_NODE,
    NULL_FLIGHT,
    FlightRecorder,
    NullFlightRecorder,
    get_flight,
    set_flight,
    use_flight,
)
from repro.obs.flight import BLACKBOX_SCHEMA


class TestRecording:
    def test_ring_is_bounded_and_counts_drops(self):
        fr = FlightRecorder(capacity=4)
        for i in range(10):
            fr.record("tick", node=1, time=float(i), i=i)
        ring = fr.ring(1)
        assert len(ring) == 4
        # oldest events fell off the back; the newest four remain
        assert [e.detail["i"] for e in ring] == [6, 7, 8, 9]
        assert fr.recorded(1) == 10
        box = fr.blackbox(1)
        assert box["recorded"] == 10 and box["dropped"] == 6

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_rings_are_per_node_with_a_global_default(self):
        fr = FlightRecorder()
        fr.record("global_thing")
        fr.record("node_thing", node=2)
        assert fr.nodes() == [GLOBAL_NODE, 2]
        assert [e.kind for e in fr.ring()] == ["global_thing"]
        assert [e.kind for e in fr.ring(2)] == ["node_thing"]

    def test_events_interleave_rings_in_sequence_order(self):
        fr = FlightRecorder()
        fr.record("a", node=1)
        fr.record("b", node=2)
        fr.record("c", node=1)
        assert [e.kind for e in fr.events()] == ["a", "b", "c"]
        seqs = [e.seq for e in fr.events()]
        assert seqs == sorted(seqs)

    def test_record_is_safe_under_threads(self):
        fr = FlightRecorder(capacity=10_000)
        threads = [
            threading.Thread(
                target=lambda n=n: [fr.record("t", node=n) for _ in range(500)]
            )
            for n in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(fr.recorded(n) for n in range(4)) == 2000
        assert len({e.seq for e in fr.events()}) == 2000


class TestBlackboxes:
    def test_blackbox_merges_node_and_global_rings(self):
        fr = FlightRecorder()
        fr.record("scheduler_decision", time=1.0)  # global
        fr.record("sop_crossed", node=3, time=2.0, sop=1)
        fr.record("pool_formed", time=3.0)  # global
        box = fr.blackbox(3, reason="killed", time=4.0)
        assert box["schema"] == BLACKBOX_SCHEMA
        assert box["node"] == 3 and box["reason"] == "killed"
        kinds = [e["kind"] for e in box["events"]]
        assert kinds == ["scheduler_decision", "sop_crossed", "pool_formed"]
        # another node's ring does not leak in
        fr.record("other", node=5)
        assert "other" not in [e["kind"] for e in fr.blackbox(3)["events"]]

    def test_auto_blackbox_dedupes_per_incident(self):
        fr = FlightRecorder()
        fr.record("x", node=1)
        first = fr.auto_blackbox(1, reason="rc saw it")
        second = fr.auto_blackbox(1, reason="store saw it")
        assert first is not None and second is None
        assert len(fr.blackboxes) == 1
        assert fr.blackboxes[0]["reason"] == "rc saw it"
        fr.reset_incident()
        assert fr.auto_blackbox(1, reason="next incident") is not None
        assert len(fr.blackboxes) == 2

    def test_write_blackboxes_emits_json_files(self, tmp_path):
        fr = FlightRecorder()
        fr.record("last_words", node=7, time=1.5, nbytes=800)
        fr.blackbox(7, reason="dropped")
        (path,) = fr.write_blackboxes(tmp_path / "boxes")
        assert path.name == "blackbox_node7.json"
        box = json.loads(path.read_text())
        assert box["schema"] == BLACKBOX_SCHEMA
        assert box["events"][0]["detail"] == {"nbytes": 800}

    def test_to_dict_round_trips_through_json(self):
        fr = FlightRecorder()
        fr.record("e", node=1, time=0.5, k="v")
        fr.blackbox(1)
        doc = json.loads(json.dumps(fr.to_dict()))
        assert doc["rings"]["1"][0]["kind"] == "e"
        assert doc["blackboxes"][0]["node"] == 1


class TestScoping:
    def test_default_is_the_null_recorder(self):
        assert get_flight() is NULL_FLIGHT
        assert not get_flight().enabled

    def test_use_flight_scopes_and_restores(self):
        fr = FlightRecorder()
        with use_flight(fr) as active:
            assert active is fr and get_flight() is fr
            assert get_flight().enabled
        assert get_flight() is NULL_FLIGHT

    def test_set_flight_none_restores_null(self):
        fr = FlightRecorder()
        set_flight(fr)
        try:
            assert get_flight() is fr
        finally:
            assert set_flight(None) is NULL_FLIGHT

    def test_null_recorder_is_inert(self):
        null = NullFlightRecorder()
        null.record("anything", node=1, time=2.0, payload=object())
        assert null.nodes() == [] and null.events() == []
        assert null.recorded(1) == 0
        assert null.auto_blackbox(1) is None
        box = null.blackbox(1, reason="r")
        assert box["events"] == [] and box["schema"] == BLACKBOX_SCHEMA
        null.reset_incident()
        assert null.to_dict()["rings"] == {}

    def test_publish_metrics_exports_volume_gauges(self):
        from repro.obs import Tracer, use_tracer

        fr = FlightRecorder()
        fr.record("a", node=1)
        fr.record("b", node=1)
        fr.blackbox(1)
        with use_tracer(Tracer()) as tracer:
            fr.publish_metrics()
            flat = tracer.metrics.flat()
        assert flat["flight.recorded"] == 2.0
        assert flat["flight.blackboxes"] == 1.0
