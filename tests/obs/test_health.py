"""Health registry: gauge sampling over machines, fleets, and the
full mlck cluster pipeline."""

import numpy as np
import pytest

from repro.drms.api import (
    drms_adjust,
    drms_create_distribution,
    drms_distribute,
    drms_initialize,
    drms_reconfig_checkpoint,
)
from repro.drms.context import CheckpointStatus
from repro.infra import DRMSCluster, FailurePlan
from repro.obs import HealthRegistry
from repro.runtime.machine import Machine, MachineParams

N = 10
NITER = 12


def _main(ctx, base):
    drms_initialize(ctx)
    dist = drms_create_distribution(ctx, (N, N), shadow=(1, 1))
    u = drms_distribute(ctx, "u", dist, init_global=np.ones((N, N)))
    for it in ctx.iterations(1, NITER + 1):
        if it % 4 == 1:
            status, delta = drms_reconfig_checkpoint(ctx, base)
            if status is CheckpointStatus.RESTARTED and delta != 0:
                u = drms_distribute(ctx, "u", drms_adjust(ctx, "u"))
        u.set_assigned(u.assigned + 1.0)
        ctx.barrier()
    return float(u.assigned.sum())


class TestUnitSampling:
    def test_machine_liveness(self):
        machine = Machine(MachineParams(num_nodes=4))
        health = HealthRegistry()
        health.sample_machine(machine)
        assert health.snapshot() == {
            "health.nodes.up": 4.0, "health.nodes.down": 0.0,
        }
        machine.fail_node(2)
        health.sample_machine(machine)
        snap = health.snapshot()
        assert snap["health.nodes.up"] == 3.0
        assert snap["health.nodes.down"] == 1.0

    def test_fleet_occupancy(self):
        health = HealthRegistry()
        health.sample_fleet(running=3, queued=5, utilization=0.75)
        snap = health.snapshot()
        assert snap["health.fleet.running"] == 3.0
        assert snap["health.fleet.queued"] == 5.0
        assert snap["health.fleet.utilization"] == pytest.approx(0.75)

    def test_snapshot_is_sorted_and_health_only(self):
        health = HealthRegistry()
        health.metrics.gauge("unrelated.gauge").set(9)
        health.sample_fleet(running=1, queued=0, utilization=0.5)
        snap = health.snapshot()
        assert list(snap) == sorted(snap)
        assert all(name.startswith("health.") for name in snap)
        assert "fleet health" in health.report()


class TestClusterSampling:
    @pytest.fixture
    def cluster(self):
        return DRMSCluster(machine=Machine(MachineParams(num_nodes=8)))

    def test_healthy_mlck_run_populates_the_gauges(self, cluster):
        app = cluster.build_app(_main, tier="memory+pfs", mlck_drain="sync")
        out = cluster.run_with_recovery("j", app, 8, args=("ck",), prefix="ck")
        assert out.failed_node is None
        snap = cluster.health.snapshot()
        assert snap["health.nodes.up"] == 8.0
        assert snap["health.jobs.completed"] == 1.0
        # iterations 1,5,9 checkpoint: three L1 generations
        assert snap["health.l1.generations"] == 3.0
        assert snap["health.l1.resident_bytes"] > 0
        # every piece of the newest generation still has all copies live
        assert snap["health.l1.min_live_replicas"] >= 1.0
        assert sum(
            v for k, v in snap.items() if k.startswith("health.l1.replicas[")
        ) > 0
        # sync drain: nothing pending, newest generation already durable
        assert snap["health.drain.backlog"] == 0.0
        assert snap["health.durable.lag"] == 0.0
        # cadence: checkpoints every 4 iterations, steady
        assert snap["health.checkpoint.interval_mean_s"] > 0
        assert snap["health.checkpoint.cadence_drift"] >= 0.0

    def test_failure_run_shows_the_down_node_and_replica_exposure(self, cluster):
        app = cluster.build_app(_main, tier="memory+pfs", mlck_drain="sync")
        out = cluster.run_with_recovery(
            "j", app, 8, args=("ck",), prefix="ck",
            failure=FailurePlan(iteration=7, node_id=3),
        )
        assert out.failed_node == 3
        snap = cluster.health.snapshot()
        assert snap["health.nodes.down"] == 1.0
        assert snap["health.nodes.repairing"] == 1.0
        assert snap["health.jobs.completed"] == 1.0
        # the dead node's domain holds fewer live copies than the rest
        dead_domain = cluster.failure_domain_of(3)
        assert f"health.l1.replicas[{dead_domain}]" in snap

    def test_health_exports_through_openmetrics(self, cluster):
        from repro.obs import openmetrics_text

        app = cluster.build_app(_main, tier="memory+pfs", mlck_drain="sync")
        cluster.run_with_recovery("j", app, 8, args=("ck",), prefix="ck")
        text = openmetrics_text(cluster.health.metrics)
        assert "# TYPE health_nodes_up gauge" in text
        assert 'health_l1_replicas{entity="0"}' in text
        assert text.endswith("# EOF\n")
