"""Tests for the SOQ resource-section spec."""

import pytest

from repro.drms.soq import SOQSpec
from repro.errors import ReconfigurationError


def test_defaults_accept_anything_positive():
    s = SOQSpec()
    s.check(1)
    s.check(10_000)


def test_min_max_enforced():
    s = SOQSpec(min_tasks=4, max_tasks=16)
    with pytest.raises(ReconfigurationError):
        s.check(3)
    with pytest.raises(ReconfigurationError):
        s.check(17)
    s.check(4)
    s.check(16)


def test_custom_validator():
    square = SOQSpec(min_tasks=1, validator=lambda n: int(n ** 0.5) ** 2 == n)
    square.check(4)
    square.check(9)
    with pytest.raises(ReconfigurationError):
        square.check(8)


def test_valid_predicate():
    s = SOQSpec(min_tasks=2, max_tasks=4)
    assert [n for n in range(1, 6) if s.valid(n)] == [2, 3, 4]
