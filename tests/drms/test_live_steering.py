"""Live steering of a *running* application at steering points."""

import threading

import numpy as np
import pytest

from repro.arrays.ranges import Range
from repro.arrays.slices import Slice
from repro.drms import DRMSApplication
from repro.errors import ArrayError

N = 12


def steered_main(ctx, niter, gate):
    """Increments the field each iteration; services steering requests
    at a per-iteration steering point.  ``gate`` releases the client
    once the run is underway."""
    ctx.initialize()
    d = ctx.create_distribution((N, N))
    u = ctx.distribute("u", d, init_global=np.zeros((N, N)))
    if ctx.rank == 0:
        gate.set()
    for it in ctx.iterations(1, niter + 1):
        ctx.steering_point()
        u.set_assigned(u.assigned + 1.0)
        ctx.barrier()
    ctx.steering_point()  # final service so late requests complete
    return None


def run_in_thread(app, ntasks, args):
    box = {}

    def runner():
        box["report"] = app.start(ntasks, args=args)

    t = threading.Thread(target=runner)
    t.start()
    return t, box


def test_read_write_while_running():
    gate = threading.Event()
    app = DRMSApplication(steered_main)
    t, box = run_in_thread(app, 4, (400, gate))
    assert gate.wait(timeout=30)

    # live read: a consistent snapshot of the whole field
    snap = app.steering.read_async("u").result()
    assert snap.shape == (N, N)
    assert len(np.unique(snap)) == 1  # consistent (between iterations)

    # live write: poke a window and read it back
    window = Slice([Range.regular(0, 2, 1), Range.regular(0, 2, 1)])
    app.steering.write_async("u", np.full((3, 3), 1000.0), window).result()
    snap2 = app.steering.read_async("u", window).result()
    assert snap2.min() >= 1000.0  # the poke landed (then keeps growing)

    t.join(timeout=60)
    assert not t.is_alive()
    final = box["report"].arrays["u"].to_global()
    # the steered window stayed ahead of the untouched area
    assert final[0, 0] > final[6, 6]


def test_unknown_array_completes_with_error():
    gate = threading.Event()
    app = DRMSApplication(steered_main)
    t, box = run_in_thread(app, 2, (200, gate))
    assert gate.wait(timeout=30)
    fut = app.steering.read_async("ghost")
    with pytest.raises(ArrayError):
        fut.result()
    t.join(timeout=60)


def test_unserviced_request_times_out():
    app = DRMSApplication(steered_main)  # never started
    fut = app.steering.read_async("u")
    assert not fut.done()
    with pytest.raises(ArrayError, match="not serviced"):
        fut.result(timeout=0.2)


def test_no_client_costs_nothing():
    """steering_point with an empty queue is a plain barrier."""
    gate = threading.Event()
    app = DRMSApplication(steered_main)
    rep = app.start(3, args=(5, gate))
    assert rep.sim_elapsed >= 0
    final = rep.arrays["u"].to_global()
    assert np.all(final == 5.0)
