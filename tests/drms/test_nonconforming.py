"""Tests for checkpointing applications that do NOT conform to the
DRMS model (per-task SPMD checkpointing)."""

import numpy as np
import pytest

from repro.drms.nonconforming import SPMDCheckpointer, restore_spmd
from repro.errors import RestartError
from repro.pfs.piofs import PIOFS
from repro.runtime.executor import run_spmd
from repro.runtime.machine import Machine, MachineParams


@pytest.fixture
def env():
    m = Machine(MachineParams(num_nodes=8))
    return m, PIOFS(machine=m)


def test_in_run_checkpoint_and_driver_restore(env):
    machine, pfs = env
    ck = SPMDCheckpointer(pfs, segment_bytes=50_000, app_name="legacy")

    def main(comm):
        u = np.full(16, comm.rank, dtype=float)
        for it in range(1, 5):
            u += 1.0
            if it == 2:
                ck.checkpoint(comm, "leg", {"u": u.copy(), "it": it})
        return float(u.sum())

    res = run_spmd(main, 4, machine=machine)
    assert res.returns == [16.0 * (r + 4) for r in range(4)]

    state, bd = restore_spmd(pfs, "leg", 4)
    assert state.ntasks == 4
    for t, payload in enumerate(state.payloads):
        assert payload["it"] == 2
        assert np.array_equal(payload["u"], np.full(16, t + 2.0))
    assert bd.total_seconds > 0


def test_blocking_checkpoint_charges_all_clocks(env):
    machine, pfs = env
    ck = SPMDCheckpointer(pfs, segment_bytes=int(20e6))

    def main(comm):
        ck.checkpoint(comm, "t", {"r": comm.rank})
        return comm.clock.now

    res = run_spmd(main, 4, machine=machine)
    assert min(res.returns) > 1.0  # 80 MB through the write model
    assert max(res.returns) == pytest.approx(min(res.returns), rel=1e-9)


def test_reconfigured_restore_rejected(env):
    machine, pfs = env
    ck = SPMDCheckpointer(pfs, segment_bytes=1000)

    def main(comm):
        ck.checkpoint(comm, "x", comm.rank)

    run_spmd(main, 4, machine=machine)
    with pytest.raises(RestartError):
        restore_spmd(pfs, "x", 6)


def test_state_size_grows_with_tasks(env):
    machine, pfs = env
    ck = SPMDCheckpointer(pfs, segment_bytes=10_000)

    def main(comm):
        ck.checkpoint(comm, f"n{comm.size}", None)

    run_spmd(main, 2, machine=machine)
    run_spmd(main, 6, machine=machine)
    from repro.checkpoint.restart import saved_state_bytes

    assert (
        saved_state_bytes(pfs, "n6")["total"]
        == 3 * saved_state_bytes(pfs, "n2")["total"]
    )
