"""On-the-fly (volatile-memory) reconfiguration tests (paper §2.2)."""

import numpy as np
import pytest

from repro.drms import CheckpointStatus, DRMSApplication, SOQSpec
from repro.drms.elastic import ElasticRunner
from repro.errors import ReconfigurationError

N = 12
NITER = 9


def elastic_main(ctx, niter, prefix):
    ctx.initialize()
    d = ctx.create_distribution((N, N), shadow=(1, 1))
    u = ctx.distribute("u", d, init_global=np.ones((N, N)))
    ctx.set_replicated("dt", 0.3)
    for it in ctx.iterations(1, niter + 1):
        status, delta = ctx.reconfig_point()
        if status is CheckpointStatus.RESTARTED and delta != 0:
            u = ctx.distribute("u", ctx.adjust("u"))
        u.set_assigned(u.assigned + 1.0)
        ctx.barrier()
    return float(u.assigned.sum())


@pytest.fixture
def app():
    return DRMSApplication(elastic_main)


class TestNoRequest:
    def test_runs_plain_without_runner(self, app):
        rep = app.start(4, args=(NITER, "e"))
        assert np.all(rep.arrays["u"].to_global() == 1.0 + NITER)

    def test_elastic_run_without_request(self, app):
        report = ElasticRunner(app).run(4, args=(NITER, "e"))
        assert report.segments == [(4, pytest.approx(report.sim_elapsed))]
        assert report.reconfigurations == 0
        assert np.all(report.final.arrays["u"].to_global() == 1.0 + NITER)


class TestReconfiguration:
    @pytest.mark.parametrize("n2", [2, 6, 8])
    def test_state_survives_memory_reconfiguration(self, app, n2):
        runner = ElasticRunner(app)
        runner.request(n2)  # pending before the run even starts
        report = runner.run(4, args=(NITER, "e"))
        assert report.reconfigurations == 1
        assert [n for n, _ in report.segments] == [4, n2]
        assert report.final.ntasks == n2
        assert np.all(report.final.arrays["u"].to_global() == 1.0 + NITER)
        assert report.final.replicated["dt"] == 0.3

    def test_request_same_size_is_noop(self, app):
        runner = ElasticRunner(app)
        runner.request(4)
        report = runner.run(4, args=(NITER, "e"))
        assert report.reconfigurations == 0

    def test_multiple_reconfigurations(self, app):
        """Grow, then shrink, mid-run — driven from the controller
        thread while the application runs."""
        import threading

        runner = ElasticRunner(app)
        runner.request(8)

        report = runner.run(2, args=(NITER, "e"))
        # after the first segment consumed the request, queue another
        # via a fresh elastic run: chain two elastic runs instead
        assert [n for n, _ in report.segments][0] == 2
        assert report.final.ntasks == 8
        assert np.all(report.final.arrays["u"].to_global() == 1.0 + NITER)

    def test_request_validated_against_soq(self):
        app = DRMSApplication(elastic_main, soq=SOQSpec(min_tasks=2, max_tasks=6))
        runner = ElasticRunner(app)
        with pytest.raises(ReconfigurationError):
            runner.request(8)

    def test_reconfiguration_cheaper_than_checkpoint_path(self, app):
        """The point of the volatile path: no file I/O.  Compare the
        simulated cost of an in-memory 8->4 reconfiguration with a
        checkpoint + reconfigured restart of the same state."""
        runner = ElasticRunner(app)
        runner.request(4)
        report = runner.run(8, args=(NITER, "e"))
        memory_cost = report.reconfiguration_seconds

        ckpt_app = DRMSApplication(elastic_main)
        rep = ckpt_app.start(8, args=(NITER, "ck"))
        # write + read the equivalent state through the file system
        from repro.checkpoint.drms import drms_checkpoint, drms_restart
        from repro.checkpoint.segment import DataSegment, SegmentProfile

        seg = DataSegment(profile=SegmentProfile(100_000, 0, 0))
        bd = drms_checkpoint(
            ckpt_app.pfs, "cmp", seg, list(rep.arrays.values())
        )
        _, rbd = drms_restart(ckpt_app.pfs, "cmp", 4)
        file_cost = bd.total_seconds + rbd.total_seconds
        assert memory_cost < 0.2 * file_cost

    def test_timing_accumulates_across_segments(self, app):
        runner = ElasticRunner(app)
        runner.request(6)
        report = runner.run(3, args=(NITER, "e"))
        assert report.sim_elapsed == pytest.approx(
            sum(s for _, s in report.segments) + report.reconfiguration_seconds
        )
        assert report.sim_elapsed > 0
