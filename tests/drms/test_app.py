"""Integration-grade unit tests for the DRMS programming model."""

import numpy as np
import pytest

from repro.drms import CheckpointStatus, DRMSApplication, SOQSpec
from repro.drms.api import (
    drms_adjust,
    drms_create_distribution,
    drms_distribute,
    drms_initialize,
    drms_reconfig_checkpoint,
)
from repro.errors import CheckpointError, ReconfigurationError

N = 12


def solver_main(ctx, niter, prefix, every=5):
    drms_initialize(ctx)
    dist = drms_create_distribution(ctx, (N, N), shadow=(1, 1))
    u = drms_distribute(
        ctx, "u", dist, dtype=np.float64,
        init_global=lambda s: np.arange(np.prod(s), dtype=float).reshape(s),
    )
    ctx.set_replicated("dt", 0.5)
    for it in ctx.iterations(1, niter + 1):
        if every and it % every == 1:
            status, delta = drms_reconfig_checkpoint(ctx, prefix)
            if status is CheckpointStatus.RESTARTED and delta != 0:
                u = drms_distribute(ctx, "u", drms_adjust(ctx, "u"))
        u.set_assigned(u.assigned * 1.01 + 0.1)
        ctx.barrier()
    return float(u.assigned.sum())


@pytest.fixture
def app():
    return DRMSApplication(solver_main, name="solver")


class TestStart:
    def test_single_task(self, app):
        rep = app.start(1, args=(4, "ck"))
        assert rep.ntasks == 1
        assert len(rep.checkpoints) == 1

    def test_results_independent_of_task_count(self, app):
        totals = []
        for nt in (1, 2, 4, 6):
            rep = DRMSApplication(solver_main).start(nt, args=(6, "ck"))
            totals.append(rep.arrays["u"].to_global())
        for g in totals[1:]:
            assert np.allclose(g, totals[0])

    def test_checkpoints_recorded_with_breakdown(self, app):
        rep = app.start(4, args=(11, "ck"))
        assert len(rep.checkpoints) == 3  # it = 1, 6, 11
        for prefix, bd in rep.checkpoints:
            assert prefix == "ck"
            assert bd.total_seconds > 0

    def test_replicated_in_report(self, app):
        rep = app.start(2, args=(3, "ck"))
        assert rep.replicated["dt"] == 0.5

    def test_sim_time_includes_blocking_checkpoints(self, app):
        with_ck = app.start(6, args=(6, "ck")).sim_elapsed
        no_ck = DRMSApplication(solver_main).start(6, args=(6, "ck", 0)).sim_elapsed
        assert with_ck > no_ck

    def test_soq_resource_range_enforced(self):
        app = DRMSApplication(solver_main, soq=SOQSpec(min_tasks=4, max_tasks=8))
        with pytest.raises(ReconfigurationError):
            app.start(2, args=(3, "ck"))
        with pytest.raises(ReconfigurationError):
            app.start(9, args=(3, "ck"))


class TestRestart:
    @pytest.mark.parametrize("nt2", [2, 4, 6, 8])
    def test_state_identical_after_reconfigured_restart(self, app, nt2):
        ref = app.start(4, args=(12, "ck"))
        rep = app.restart("ck", nt2, args=(12, "ck"))
        assert np.allclose(
            rep.arrays["u"].to_global(), ref.arrays["u"].to_global()
        )
        assert rep.restarted_from == "ck"
        assert rep.restart_breakdown.total_seconds > 0

    def test_restart_resumes_not_restarts(self, app):
        """A restarted run must not redo early iterations: it takes
        fewer checkpoints than a fresh run."""
        app.start(4, args=(12, "ck"))
        rep = app.restart("ck", 4, args=(12, "ck"))
        # resumed at it=11 -> only the it=11 SOP is revisited (no write)
        assert len(rep.checkpoints) == 0 or len(rep.checkpoints) < 3

    def test_restart_same_count_delta_zero(self, app):
        app.start(4, args=(6, "ck"))

        seen = {}

        def probe_main(ctx, niter, prefix):
            drms_initialize(ctx)
            dist = drms_create_distribution(ctx, (N, N), shadow=(1, 1))
            u = drms_distribute(ctx, "u", dist)
            for it in ctx.iterations(1, niter + 1):
                if it % 5 == 1:
                    status, delta = drms_reconfig_checkpoint(ctx, prefix)
                    if ctx.rank == 0 and status is CheckpointStatus.RESTARTED:
                        seen["delta"] = delta
                u.set_assigned(u.assigned)
                ctx.barrier()

        app2 = DRMSApplication(probe_main, pfs=app.pfs, machine=app.machine)
        app2.restart("ck", 4, args=(6, "ck"))
        assert seen["delta"] == 0

    def test_restart_missing_checkpoint(self, app):
        with pytest.raises(CheckpointError):
            app.restart("ghost", 4, args=(3, "ck"))

    def test_multiple_checkpoint_states(self, app):
        def multi_main(ctx, prefix):
            drms_initialize(ctx)
            dist = drms_create_distribution(ctx, (N, N))
            u = drms_distribute(ctx, "u", dist, init_global=np.ones((N, N)))
            for it in ctx.iterations(1, 4):
                drms_reconfig_checkpoint(ctx, f"{prefix}{it}")
                u.set_assigned(u.assigned + 1)
                ctx.barrier()
            return None

        app3 = DRMSApplication(multi_main)
        app3.start(4, args=("st",))
        from repro.checkpoint.restart import list_checkpoints

        assert list_checkpoints(app3.pfs) == ["st1", "st2", "st3"]
        # restart from the middle state
        from repro.checkpoint.drms import drms_restart

        state, _ = drms_restart(app3.pfs, "st2", 3)
        assert state.arrays["u"].to_global()[0, 0] == 2.0  # after it=1


class TestInitializeContract:
    def test_double_initialize_rejected(self):
        def bad(ctx):
            drms_initialize(ctx)
            drms_initialize(ctx)

        with pytest.raises(CheckpointError):
            DRMSApplication(bad).start(2)

    def test_distribute_wrong_ntasks_rejected(self):
        def bad(ctx):
            drms_initialize(ctx)
            d = ctx.create_distribution((8, 8), ntasks=ctx.size + 1)
            ctx.distribute("u", d)

        with pytest.raises(ReconfigurationError):
            DRMSApplication(bad).start(2)
