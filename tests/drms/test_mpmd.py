"""Tests for MPMD applications (coordinated SPMD components)."""

import numpy as np
import pytest

from repro.drms.mpmd import MPMDApplication
from repro.errors import CheckpointError, ReconfigurationError

N = 8


def make_component_main(name):
    def main(ctx, prefix):
        ctx.initialize()
        d = ctx.create_distribution((N, N))
        u = ctx.distribute(
            "u", d, init_global=np.full((N, N), float(len(name)))
        )
        for it in ctx.iterations(1, 4):
            if it % 2 == 1:
                status, delta = ctx.reconfig_checkpoint(prefix)
                if delta != 0:
                    u = ctx.distribute("u", ctx.adjust("u"))
            u.set_assigned(u.assigned + 1.0)
            ctx.barrier()
        return float(u.assigned.sum())

    return main


@pytest.fixture
def mpmd():
    app = MPMDApplication()
    app.add_component("flow", make_component_main("flow"), args=("ck.flow",))
    app.add_component("chem", make_component_main("chem"), args=("ck.chem",))
    return app


def test_components_registered(mpmd):
    assert mpmd.component_names == ["flow", "chem"]
    with pytest.raises(CheckpointError):
        mpmd.add_component("flow", make_component_main("x"))


def test_start_runs_all_components(mpmd):
    rep = mpmd.start({"flow": 4, "chem": 2})
    assert set(rep.components) == {"flow", "chem"}
    assert rep.sim_elapsed >= max(
        r.sim_elapsed for r in rep.components.values()
    ) - 1e-9


def test_degenerate_single_task_component(mpmd):
    rep = mpmd.start({"flow": 1, "chem": 1})
    assert rep.components["flow"].ntasks == 1


def test_missing_task_counts_rejected(mpmd):
    with pytest.raises(ReconfigurationError):
        mpmd.start({"flow": 2})


def test_coordinated_checkpoint_and_individual_reconfiguration(mpmd):
    ref = mpmd.checkpointed_start({"flow": 4, "chem": 2}, prefix="ck")
    assert mpmd.pfs.exists("ck.mpmd")
    # restart with each component reconfigured differently
    rep = mpmd.restart("ck", {"flow": 2, "chem": 5})
    for name in ("flow", "chem"):
        a = ref.components[name].arrays["u"].to_global()
        b = rep.components[name].arrays["u"].to_global()
        assert np.allclose(a, b)
    assert rep.components["flow"].ntasks == 2
    assert rep.components["chem"].ntasks == 5


class TestComponentPrefixCollisions:
    """Component names become dotted prefix segments; names that would
    alias another component's checkpoint files are rejected up front."""

    def test_dotted_name_aliases_a_peer_namespace(self):
        app = MPMDApplication()
        app.add_component("flow", make_component_main("flow"))
        # "flow.extra" files would live inside component "flow"'s
        # namespace: ck.flow.extra.* matches ck.flow.*'s prefix scan
        with pytest.raises(CheckpointError, match="alias"):
            app.add_component("flow.extra", make_component_main("x"))

    def test_six_digit_name_aliases_a_rotation_generation(self):
        app = MPMDApplication()
        with pytest.raises(CheckpointError, match="generation"):
            app.add_component("000002", make_component_main("x"))

    def test_reserved_file_kind_rejected(self):
        app = MPMDApplication()
        with pytest.raises(CheckpointError, match="reserved"):
            app.add_component("mpmd", make_component_main("x"))


def make_rotating_main(name):
    """A component keeping rotated generations ``<base>.NNNNNN`` — one
    per iteration — under its namespaced prefix."""

    def main(ctx, cbase):
        ctx.initialize()
        d = ctx.create_distribution((N, N))
        u = ctx.distribute(
            "u", d, init_global=np.full((N, N), float(len(name)))
        )
        for it in ctx.iterations(1, 4):
            status, delta = ctx.reconfig_checkpoint(f"{cbase}.{it:06d}")
            if delta != 0:
                u = ctx.distribute("u", ctx.adjust("u"))
            u.set_assigned(u.assigned + 1.0)
            ctx.barrier()
        return float(u.assigned.sum())

    return main


class TestJointGenerationRestart:
    """Reproducer for the mixed-generation restart bug: each component
    falling back newest-to-oldest on its own could silently restart
    flow from generation 2 next to chem from generation 3.  The
    resolution must be joint — the newest number at which EVERY
    component is byte-valid."""

    @pytest.fixture
    def rotated(self):
        app = MPMDApplication()
        app.add_component(
            "flow", make_rotating_main("flow"), args=("ck2.flow",)
        )
        app.add_component(
            "chem", make_rotating_main("chem"), args=("ck2.chem",)
        )
        ref = app.start({"flow": 4, "chem": 2})
        return app, ref

    def test_torn_newest_generation_falls_back_jointly(self, rotated):
        from repro.checkpoint.format import array_name
        from repro.pfs.faults import flip_stored_bit

        app, ref = rotated
        # flow's newest state is silently corrupt; chem's is intact
        flip_stored_bit(app.pfs, array_name("ck2.flow.000003", "u"), 13, 2)
        rep = app.restart("ck2", {"flow": 2, "chem": 3})
        # BOTH components restarted from generation 2 — chem must not
        # keep its (valid) generation 3 next to flow's fallback
        assert rep.components["flow"].restarted_from == "ck2.flow.000002"
        assert rep.components["chem"].restarted_from == "ck2.chem.000002"
        for name in ("flow", "chem"):
            assert np.allclose(
                rep.components[name].arrays["u"].to_global(),
                ref.components[name].arrays["u"].to_global(),
            )

    def test_no_consistent_generation_raises(self, rotated):
        from repro.checkpoint.format import array_name
        from repro.pfs.faults import flip_stored_bit

        app, _ = rotated
        for gen in (1, 2, 3):
            flip_stored_bit(
                app.pfs, array_name(f"ck2.chem.{gen:06d}", "u"), 5, 1
            )
        from repro.errors import RestartError

        with pytest.raises(RestartError, match="every component byte-valid"):
            app.restart("ck2", {"flow": 2, "chem": 2})
