"""Tests for MPMD applications (coordinated SPMD components)."""

import numpy as np
import pytest

from repro.drms.mpmd import MPMDApplication
from repro.errors import CheckpointError, ReconfigurationError

N = 8


def make_component_main(name):
    def main(ctx, prefix):
        ctx.initialize()
        d = ctx.create_distribution((N, N))
        u = ctx.distribute(
            "u", d, init_global=np.full((N, N), float(len(name)))
        )
        for it in ctx.iterations(1, 4):
            if it % 2 == 1:
                status, delta = ctx.reconfig_checkpoint(prefix)
                if delta != 0:
                    u = ctx.distribute("u", ctx.adjust("u"))
            u.set_assigned(u.assigned + 1.0)
            ctx.barrier()
        return float(u.assigned.sum())

    return main


@pytest.fixture
def mpmd():
    app = MPMDApplication()
    app.add_component("flow", make_component_main("flow"), args=("ck.flow",))
    app.add_component("chem", make_component_main("chem"), args=("ck.chem",))
    return app


def test_components_registered(mpmd):
    assert mpmd.component_names == ["flow", "chem"]
    with pytest.raises(CheckpointError):
        mpmd.add_component("flow", make_component_main("x"))


def test_start_runs_all_components(mpmd):
    rep = mpmd.start({"flow": 4, "chem": 2})
    assert set(rep.components) == {"flow", "chem"}
    assert rep.sim_elapsed >= max(
        r.sim_elapsed for r in rep.components.values()
    ) - 1e-9


def test_degenerate_single_task_component(mpmd):
    rep = mpmd.start({"flow": 1, "chem": 1})
    assert rep.components["flow"].ntasks == 1


def test_missing_task_counts_rejected(mpmd):
    with pytest.raises(ReconfigurationError):
        mpmd.start({"flow": 2})


def test_coordinated_checkpoint_and_individual_reconfiguration(mpmd):
    ref = mpmd.checkpointed_start({"flow": 4, "chem": 2}, prefix="ck")
    assert mpmd.pfs.exists("ck.mpmd")
    # restart with each component reconfigured differently
    rep = mpmd.restart("ck", {"flow": 2, "chem": 5})
    for name in ("flow", "chem"):
        a = ref.components[name].arrays["u"].to_global()
        b = rep.components[name].arrays["u"].to_global()
        assert np.allclose(a, b)
    assert rep.components["flow"].ntasks == 2
    assert rep.components["chem"].ntasks == 5
