"""The procedural API aliases (Table 2 names) delegate exactly."""

import numpy as np
import pytest

from repro.drms import CheckpointStatus, DRMSApplication
from repro.drms.api import (
    drms_adjust,
    drms_create_distribution,
    drms_distribute,
    drms_initialize,
    drms_reconfig_checkpoint,
    drms_reconfig_chkenable,
)

N = 8


def test_full_fig1_surface_through_aliases():
    observed = {}

    def main(ctx, prefix):
        status = drms_initialize(ctx)
        observed.setdefault("init", status)
        dist = drms_create_distribution(ctx, (N, N), shadow=(1, 1))
        u = drms_distribute(ctx, "u", dist, dtype=np.float64,
                            init_global=np.ones((N, N)))
        for it in ctx.iterations(1, 4):
            st, delta = drms_reconfig_checkpoint(ctx, prefix)
            if st is CheckpointStatus.RESTARTED and delta != 0:
                u = drms_distribute(ctx, "u", drms_adjust(ctx, "u"))
            st2, _ = drms_reconfig_chkenable(ctx, prefix + ".en")
            observed.setdefault("chkenable", st2)
            u.set_assigned(u.assigned + 1)
            ctx.barrier()
        return float(u.assigned.sum())

    app = DRMSApplication(main)
    rep = app.start(2, args=("al",))
    assert observed["init"] is CheckpointStatus.TAKEN  # fresh run
    assert observed["chkenable"] is CheckpointStatus.SKIPPED
    assert len(rep.checkpoints) == 3

    observed.clear()
    rep2 = app.restart("al", 4, args=("al",))
    assert observed["init"] is CheckpointStatus.RESTARTED
    assert np.allclose(
        rep.arrays["u"].to_global(), rep2.arrays["u"].to_global()
    )


def test_alias_signatures_match_table2():
    """Every function of the paper's Table 2 API exists by name."""
    import repro.drms.api as api

    for fn in (
        "drms_initialize",
        "drms_reconfig_checkpoint",
        "drms_reconfig_chkenable",
    ):
        assert callable(getattr(api, fn))
    # plus the Fig. 1 data-management calls
    for fn in ("drms_create_distribution", "drms_distribute", "drms_adjust"):
        assert callable(getattr(api, fn))
