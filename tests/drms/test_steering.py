"""Tests for computational steering and inter-application transfer."""

import numpy as np
import pytest

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import block_distribution
from repro.arrays.ranges import Range
from repro.arrays.slices import Slice
from repro.drms.steering import app_transfer, steer_read, steer_write
from repro.errors import ArrayError


@pytest.fixture
def arr():
    g = np.arange(100.0).reshape(10, 10)
    a = DistributedArray(
        "u", (10, 10), np.float64, block_distribution((10, 10), 4, shadow=(1, 1))
    )
    a.set_global(g)
    return a, g


def test_steer_read_full(arr):
    a, g = arr
    assert np.array_equal(steer_read(a), g)


def test_steer_read_section_distribution_independent(arr):
    a, g = arr
    sec = Slice([Range([1, 3, 8]), Range.regular(2, 8, 3)])
    expect = g[sec.np_index()]
    assert np.array_equal(steer_read(a, sec), expect)
    b = a.redistributed(block_distribution((10, 10), 7))
    assert np.array_equal(steer_read(b, sec), expect)


def test_steer_write_updates_all_copies(arr):
    a, _ = arr
    sec = Slice([Range.regular(4, 6, 1), Range.regular(4, 6, 1)])
    steer_write(a, np.zeros((3, 3)), sec)
    assert a.is_consistent()
    assert (steer_read(a, sec) == 0).all()


def test_steer_write_shape_checked(arr):
    a, _ = arr
    with pytest.raises(ArrayError):
        steer_write(a, np.zeros((2, 2)), Slice.full((10, 10)))


def test_app_transfer_across_pools(arr):
    a, g = arr
    dst = DistributedArray(
        "v", (10, 10), np.float64, block_distribution((10, 10), 6, shadow=(0, 2))
    )
    wire = app_transfer(dst, a)
    assert np.array_equal(dst.to_global(), g)
    assert dst.is_consistent()
    assert wire > 0


def test_app_transfer_shape_checked(arr):
    a, _ = arr
    dst = DistributedArray("v", (9, 10), np.float64, block_distribution((9, 10), 2))
    with pytest.raises(ArrayError):
        app_transfer(dst, a)


def test_app_transfer_virtual_returns_schedule_volume():
    src = DistributedArray(
        "a", (20, 20), np.float64, block_distribution((20, 20), 4), store_data=False
    )
    dst = DistributedArray(
        "b", (20, 20), np.float64, block_distribution((20, 20), 5), store_data=False
    )
    wire = app_transfer(dst, src)
    assert 0 < wire <= src.nbytes_global


def test_never_serviced_request_raises_named_timeout():
    from repro.drms.steering import SteeringHub
    from repro.errors import SteeringTimeoutError

    hub = SteeringHub()
    sec = Slice([Range.regular(0, 3, 1), Range.regular(0, 3, 1)])
    fut = hub.read_async("pressure", sec)
    # nothing ever services the queue (no steering point in the loop):
    # the timeout must say WHICH request wedged, not just that one did
    with pytest.raises(SteeringTimeoutError) as exc_info:
        fut.result(timeout=0.05)
    err = exc_info.value
    assert err.kind == "read"
    assert err.name == "pressure"
    assert err.section == sec
    assert "pressure" in str(err) and "not serviced" in str(err)
    assert not fut.done()


def test_never_serviced_write_carries_request_identity():
    from repro.drms.steering import SteeringHub
    from repro.errors import SteeringTimeoutError

    hub = SteeringHub()
    fut = hub.write_async("u", np.zeros((2, 2)))
    with pytest.raises(SteeringTimeoutError) as exc_info:
        fut.result(timeout=0.05)
    assert exc_info.value.kind == "write"
    assert exc_info.value.name == "u"
    assert exc_info.value.section is None
