"""Unit tests for DRMSContext details: control variables, the enabling
checkpoint, shadows, and the iteration/replay protocol."""

import numpy as np
import pytest

from repro.drms import CheckpointStatus, DRMSApplication

N = 10


def test_control_variables_checkpointed_and_restored():
    def main(ctx, prefix):
        ctx.initialize()
        d = ctx.create_distribution((N, N))
        ctx.distribute("u", d, init_global=np.zeros((N, N)))
        ctx.set_control("phase", "warmup")
        for it in ctx.iterations(1, 3):
            ctx.reconfig_checkpoint(prefix)
            ctx.barrier()
        return ctx.get_control("phase")

    app = DRMSApplication(main)
    app.start(2, args=("ck",))
    rep = app.restart("ck", 3, args=("ck",))
    assert rep.returns == ["warmup"] * 3


def test_replicated_variables_restored():
    def main(ctx, prefix):
        ctx.initialize()
        d = ctx.create_distribution((N,))
        ctx.distribute("u", d, init_global=np.zeros(N))
        ctx.set_replicated("alpha", 2.5)
        for it in ctx.iterations(1, 2):
            ctx.reconfig_checkpoint(prefix)
        return ctx.get_replicated("alpha")

    app = DRMSApplication(main)
    app.start(2, args=("ck",))
    assert app.restart("ck", 4, args=("ck",)).returns == [2.5] * 4


def test_chkenable_skipped_without_signal():
    def main(ctx, prefix):
        ctx.initialize()
        d = ctx.create_distribution((N,))
        ctx.distribute("u", d, init_global=np.ones(N))
        for it in ctx.iterations(1, 4):
            status, delta = ctx.reconfig_chkenable(prefix)
            if ctx.rank == 0:
                results.append(status)
        return None

    results = []
    app = DRMSApplication(main)
    rep = app.start(2, args=("en",))
    assert results == [CheckpointStatus.SKIPPED] * 3
    assert rep.checkpoints == []


def test_chkenable_fires_once_when_enabled():
    statuses = []

    def main(ctx, prefix):
        ctx.initialize()
        d = ctx.create_distribution((N,))
        ctx.distribute("u", d, init_global=np.ones(N))
        for it in ctx.iterations(1, 4):
            status, _ = ctx.reconfig_chkenable(prefix)
            if ctx.rank == 0:
                statuses.append(status)

    app = DRMSApplication(main)
    app.enable_checkpoint()
    rep = app.start(2, args=("en",))
    assert statuses[0] is CheckpointStatus.TAKEN
    assert statuses[1:] == [CheckpointStatus.SKIPPED] * 2
    assert len(rep.checkpoints) == 1  # the signal is one-shot


def test_update_shadows_collective():
    def main(ctx):
        ctx.initialize()
        d = ctx.create_distribution((N, N), shadow=(1, 1))
        u = ctx.distribute("u", d, init_global=np.zeros((N, N)))
        u.set_assigned(u.assigned + ctx.rank + 1.0)
        ctx.update_shadows("u")
        return bool(u.array.is_consistent()) if ctx.rank == 0 else True

    rep = DRMSApplication(main).start(4)
    assert all(rep.returns)


def test_iteration_property_tracks_loop():
    seen = []

    def main(ctx):
        ctx.initialize()
        for it in ctx.iterations(3, 6):
            if ctx.rank == 0:
                seen.append((it, ctx.iteration))

    DRMSApplication(main).start(2)
    assert seen == [(3, 3), (4, 4), (5, 5)]


def test_init_local_per_task_initialization():
    def main(ctx):
        ctx.initialize()
        d = ctx.create_distribution((N, N))
        u = ctx.distribute(
            "u", d, init_local=lambda rank, a: np.full(a.shape, float(rank)),
        )
        ctx.barrier()
        return float(u.assigned.mean())

    rep = DRMSApplication(main).start(4)
    assert rep.returns == [0.0, 1.0, 2.0, 3.0]


def test_adjust_unknown_array():
    def main(ctx):
        ctx.initialize()
        ctx.adjust("ghost")

    from repro.errors import CheckpointError

    with pytest.raises(CheckpointError):
        DRMSApplication(main).start(2)


def test_array_view_accessors():
    def main(ctx):
        ctx.initialize()
        d = ctx.create_distribution((N, N), shadow=(1, 1))
        u = ctx.distribute("u", d, init_global=np.ones((N, N)))
        assert u.name == "u"
        assert u.local.shape == u.mapped_slice.shape
        assert u.assigned_slice.issubset(u.mapped_slice)
        return u.assigned.shape == u.assigned_slice.shape

    assert all(DRMSApplication(main).start(4).returns)
