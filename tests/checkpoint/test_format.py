"""Unit tests for checkpoint file formats and distribution specs."""

import pytest

from repro.arrays.distributions import (
    Block,
    BlockCyclic,
    Cyclic,
    Distribution,
    GenBlock,
    Indexed,
    Replicated,
)
from repro.arrays.ranges import Range
from repro.checkpoint.format import (
    CHECKPOINT_VERSION,
    array_name,
    distribution_to_spec,
    manifest_name,
    read_manifest,
    segment_name,
    spec_to_distribution,
    task_segment_name,
    write_manifest,
)
from repro.errors import CheckpointError
from repro.pfs.piofs import PIOFS


def test_names():
    assert manifest_name("ck") == "ck.manifest"
    assert segment_name("ck") == "ck.segment"
    assert array_name("ck", "u") == "ck.array.u"
    assert task_segment_name("ck", 3) == "ck.task3"


@pytest.mark.parametrize(
    "axes",
    [
        [Block(), Block()],
        [Cyclic(), Block()],
        [BlockCyclic(3), Block()],
        [Replicated(), Block()],
    ],
)
def test_distribution_spec_roundtrip(axes):
    d = Distribution((12, 18), axes, 6, shadow=(1, 0))
    spec = distribution_to_spec(d)
    back = spec_to_distribution(spec)
    assert back == d


def test_genblock_indexed_roundtrip():
    d = Distribution((10,), [GenBlock([7, 3])], 2)
    assert spec_to_distribution(distribution_to_spec(d)) == d
    di = Distribution((10,), [Indexed([Range([0, 2, 4]), Range([1, 3])])], 2)
    assert spec_to_distribution(distribution_to_spec(di)) == di


def test_spec_adjusts_to_new_ntasks():
    d = Distribution((12, 12), [Block(), Block()], 4, shadow=(2, 2))
    spec = distribution_to_spec(d)
    d6 = spec_to_distribution(spec, ntasks=6)
    assert d6.ntasks == 6
    assert d6.shadow == (2, 2)
    d6.validate()


def test_manifest_roundtrip():
    pfs = PIOFS()
    write_manifest(pfs, "ck", {"kind": "drms", "ntasks": 8, "arrays": []})
    m = read_manifest(pfs, "ck")
    assert m["kind"] == "drms"
    assert m["version"] == CHECKPOINT_VERSION


def test_manifest_missing():
    with pytest.raises(CheckpointError):
        read_manifest(PIOFS(), "ghost")


def test_manifest_corrupt():
    pfs = PIOFS()
    pfs.create("bad.manifest")
    pfs.write_at("bad.manifest", 0, b"{not json")
    with pytest.raises(CheckpointError):
        read_manifest(pfs, "bad")


def test_manifest_version_checked():
    pfs = PIOFS()
    write_manifest(pfs, "ck", {"kind": "drms"})
    raw = pfs.read_at("ck.manifest", 0, pfs.file_size("ck.manifest"))
    import json

    doc = json.loads(raw)
    doc["version"] = 999
    pfs.create("ck.manifest")
    pfs.write_at("ck.manifest", 0, json.dumps(doc).encode())
    with pytest.raises(CheckpointError, match="version"):
        read_manifest(pfs, "ck")
