"""Unit tests for the conventional (SPMD) checkpoint engine."""

import pytest

from repro.checkpoint.restart import checkpoint_kind, saved_state_bytes
from repro.checkpoint.spmd import spmd_checkpoint, spmd_restart
from repro.errors import CheckpointError, RestartError
from repro.pfs.phase import IOKind
from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine, MachineParams


@pytest.fixture
def pfs():
    m = Machine(MachineParams(num_nodes=16))
    m.place_tasks(8)
    return PIOFS(machine=m)


def test_one_file_per_task(pfs):
    bd = spmd_checkpoint(pfs, "sp", ntasks=8, segment_bytes=10_000)
    for t in range(8):
        assert pfs.file_size(f"sp.task{t}") == 10_000
    assert bd.segment_bytes == 80_000
    assert bd.kind == "spmd"


def test_state_grows_linearly_with_tasks(pfs):
    spmd_checkpoint(pfs, "a", ntasks=4, segment_bytes=10_000)
    spmd_checkpoint(pfs, "b", ntasks=8, segment_bytes=10_000)
    assert saved_state_bytes(pfs, "b")["total"] == 2 * saved_state_bytes(pfs, "a")["total"]


def test_payload_roundtrip(pfs):
    payloads = [{"rank": t, "data": [t] * 3} for t in range(4)]
    spmd_checkpoint(pfs, "sp", ntasks=4, segment_bytes=5_000, payloads=payloads)
    state, bd = spmd_restart(pfs, "sp", 4)
    assert state.payloads == payloads
    assert bd.segment_bytes == sum(state.segment_bytes)


def test_payload_count_checked(pfs):
    with pytest.raises(CheckpointError):
        spmd_checkpoint(pfs, "sp", ntasks=4, segment_bytes=100, payloads=[1, 2])


def test_reconfigured_restart_impossible(pfs):
    spmd_checkpoint(pfs, "sp", ntasks=8, segment_bytes=1000)
    for bad in (4, 7, 9, 16):
        with pytest.raises(RestartError, match="Reconfigured restart"):
            spmd_restart(pfs, "sp", bad)
    # same count works
    spmd_restart(pfs, "sp", 8)


def test_kind_dispatch(pfs):
    spmd_checkpoint(pfs, "sp", ntasks=2, segment_bytes=100)
    assert checkpoint_kind(pfs, "sp") == "spmd"
    with pytest.raises(RestartError):
        from repro.checkpoint.drms import drms_restart

        drms_restart(pfs, "sp", 2)


def test_phase_kinds(pfs):
    spmd_checkpoint(pfs, "sp", ntasks=4, segment_bytes=1000)
    pfs.phase_log.clear()
    spmd_restart(pfs, "sp", 4)
    assert [p.kind for p in pfs.phase_log] == [IOKind.READ_DISTINCT]


def test_zero_tasks_rejected(pfs):
    with pytest.raises(CheckpointError):
        spmd_checkpoint(pfs, "sp", ntasks=0, segment_bytes=100)
