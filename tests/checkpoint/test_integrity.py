"""Crash-consistency tests: checksums, atomic manifest commit, fault
injection over the checkpoint write path, and fallback restart."""

import json

import numpy as np
import pytest

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import block_distribution
from repro.checkpoint.drms import drms_checkpoint, drms_restart
from repro.checkpoint.format import (
    manifest_name,
    manifest_tmp_name,
    read_manifest,
    write_manifest,
)
from repro.checkpoint.incremental import IncrementalCheckpointer
from repro.checkpoint.recover import (
    restart_candidates,
    restart_latest_valid,
    select_restart_state,
)
from repro.checkpoint.rotation import CheckpointRotation, latest_checkpoint
from repro.checkpoint.segment import DataSegment, SegmentProfile
from repro.checkpoint.spmd import spmd_checkpoint, spmd_restart
from repro.checkpoint.validate import (
    validate_checkpoint,
    verify_checkpoint,
    verify_stored_sha1,
)
from repro.errors import (
    CheckpointIntegrityError,
    IOFaultError,
    RestartError,
)
from repro.infra.events import EventLog
from repro.pfs.faults import FaultInjector, flip_stored_bit
from repro.pfs.piofs import PIOFS

N = 8


@pytest.fixture
def env():
    pfs = PIOFS()
    arr = DistributedArray("u", (N, N), np.float64, block_distribution((N, N), 2))
    arr.set_global(np.zeros((N, N)))
    seg = DataSegment(profile=SegmentProfile(1000, 0, 0), replicated={"it": 0})
    return pfs, arr, seg


def take(pfs, arr, seg, prefix, it):
    arr.set_global(np.full((N, N), float(it)))
    seg.replicated["it"] = it
    drms_checkpoint(pfs, prefix, seg, [arr])


class TestAtomicManifestCommit:
    """Satellite: the zero-byte / half-written manifest crash window."""

    def test_failed_manifest_write_leaves_no_manifest(self, env):
        pfs, arr, seg = env
        take(pfs, arr, seg, "job.000001", 1)
        inj = FaultInjector()
        inj.fail_write(nth=1, match="job.000002.manifest", mode="fail")
        pfs.attach_faults(inj)
        with pytest.raises(IOFaultError):
            take(pfs, arr, seg, "job.000002", 2)
        # regression: previously a crash here could leave a zero-byte
        # .manifest; now nothing but the staging file may exist
        assert not pfs.exists(manifest_name("job.000002"))
        assert latest_checkpoint(pfs, "job") == "job.000001"

    def test_torn_manifest_write_is_invisible(self, env):
        pfs, arr, seg = env
        take(pfs, arr, seg, "job.000001", 1)
        inj = FaultInjector()
        inj.fail_write(nth=1, match="job.000002.manifest", mode="torn")
        pfs.attach_faults(inj)
        with pytest.raises(IOFaultError):
            take(pfs, arr, seg, "job.000002", 2)
        assert not pfs.exists(manifest_name("job.000002"))
        # the half-written staging file exists but is never scanned
        assert pfs.exists(manifest_tmp_name("job.000002"))
        assert latest_checkpoint(pfs, "job") == "job.000001"

    def test_silent_short_manifest_write_detected(self, env):
        pfs, arr, seg = env
        inj = FaultInjector()
        inj.fail_write(nth=1, match="job.000001.manifest", mode="short")
        pfs.attach_faults(inj)
        with pytest.raises(CheckpointIntegrityError, match="torn write"):
            take(pfs, arr, seg, "job.000001", 1)
        assert not pfs.exists(manifest_name("job.000001"))

    def test_commit_removes_staging_file(self, env):
        pfs, arr, seg = env
        take(pfs, arr, seg, "job.000001", 1)
        assert pfs.exists(manifest_name("job.000001"))
        assert not pfs.exists(manifest_tmp_name("job.000001"))

    def test_stale_tmp_reserves_generation_number(self, env):
        pfs, arr, seg = env
        take(pfs, arr, seg, "job.000001", 1)
        inj = FaultInjector()
        inj.fail_write(nth=1, match="job.000002.manifest", mode="torn")
        pfs.attach_faults(inj)
        with pytest.raises(IOFaultError):
            take(pfs, arr, seg, "job.000002", 2)
        pfs.attach_faults(None)
        rot = CheckpointRotation(pfs, "job")
        assert rot.next_prefix() == "job.000003"


class TestValidation:
    def test_sound_state_validates(self, env):
        pfs, arr, seg = env
        take(pfs, arr, seg, "ck", 1)
        report = validate_checkpoint(pfs, "ck")
        assert report.ok and bool(report)
        assert report.files == 3  # manifest + segment + one array
        assert report.bytes_hashed > 0

    def test_bit_flip_in_array_detected(self, env):
        pfs, arr, seg = env
        take(pfs, arr, seg, "ck", 1)
        flip_stored_bit(pfs, "ck.array.u", 64, bit=5)
        report = validate_checkpoint(pfs, "ck")
        assert not report.ok
        assert any("checksum mismatch" in e for e in report.errors)
        with pytest.raises(CheckpointIntegrityError):
            verify_checkpoint(pfs, "ck")

    def test_bit_flip_in_segment_detected(self, env):
        pfs, arr, seg = env
        take(pfs, arr, seg, "ck", 1)
        flip_stored_bit(pfs, "ck.segment", 10, bit=0)
        assert not validate_checkpoint(pfs, "ck").ok

    def test_missing_component_detected(self, env):
        pfs, arr, seg = env
        take(pfs, arr, seg, "ck", 1)
        pfs.unlink("ck.array.u")
        report = validate_checkpoint(pfs, "ck")
        assert any("missing file" in e for e in report.errors)

    def test_size_mismatch_detected(self, env):
        pfs, arr, seg = env
        take(pfs, arr, seg, "ck", 1)
        pfs.create("ck.array.u")  # replaced by an empty file
        pfs.write_at("ck.array.u", 0, b"tiny")
        report = validate_checkpoint(pfs, "ck")
        assert any("manifest records" in e for e in report.errors)

    def test_unreadable_manifest_reported_not_raised(self, env):
        pfs, *_ = env
        report = validate_checkpoint(pfs, "ghost")
        assert not report.ok

    def test_checksumless_manifest_still_validates(self, env):
        """Backward compatibility: states whose manifests carry no
        digests (pre-v3 layout) fall back to existence/size checks."""
        pfs, arr, seg = env
        take(pfs, arr, seg, "ck", 1)
        m = read_manifest(pfs, "ck")
        for key in ("segment_sha1", "segment_sha1_bytes"):
            del m[key]
        for spec in m["arrays"]:
            del spec["sha1"]
        write_manifest(pfs, "ck", m)
        flip_stored_bit(pfs, "ck.array.u", 0)  # cannot be detected
        assert validate_checkpoint(pfs, "ck").ok
        state, _ = drms_restart(pfs, "ck", 2)  # verify skips silently
        assert state.segment.replicated["it"] == 1

    def test_verify_stored_sha1_reports_truncation(self, env):
        pfs, *_ = env
        pfs.create("f")
        pfs.write_at("f", 0, b"abc")
        with pytest.raises(CheckpointIntegrityError, match="torn or short"):
            verify_stored_sha1(pfs, "f", "0" * 40, 100)


class TestRestartVerification:
    def test_restart_rejects_corrupt_array(self, env):
        pfs, arr, seg = env
        take(pfs, arr, seg, "ck", 3)
        flip_stored_bit(pfs, "ck.array.u", 128)
        with pytest.raises(CheckpointIntegrityError):
            drms_restart(pfs, "ck", 4)

    def test_restart_rejects_corrupt_segment(self, env):
        pfs, arr, seg = env
        take(pfs, arr, seg, "ck", 3)
        flip_stored_bit(pfs, "ck.segment", 5)
        with pytest.raises(CheckpointIntegrityError):
            drms_restart(pfs, "ck", 4)

    def test_verify_false_restores_silently_wrong_data(self, env):
        """Without the verify pass, array corruption propagates into the
        restored state unnoticed — the failure mode the checksums fix."""
        pfs, arr, seg = env
        take(pfs, arr, seg, "ck", 3)
        flip_stored_bit(pfs, "ck.array.u", 128, bit=1)
        state, _ = drms_restart(pfs, "ck", 4, verify=False)
        assert state.ntasks == 4
        assert not np.all(state.arrays["u"].to_global() == 3.0)

    def test_transient_read_corruption_detected(self, env):
        """A bit flipped on the wire (not in the store) is caught by the
        verification pass that reads the array back."""
        pfs, arr, seg = env
        take(pfs, arr, seg, "ck", 3)
        inj = FaultInjector()
        inj.flip_read(nth=1, match="ck.array.u", offset=7, bit=2)
        pfs.attach_faults(inj)
        with pytest.raises(CheckpointIntegrityError):
            drms_restart(pfs, "ck", 4)

    def test_spmd_restart_rejects_corrupt_task_file(self, env):
        pfs, *_ = env
        spmd_checkpoint(pfs, "sp", 4, 4096, payloads=[{"t": t} for t in range(4)])
        assert validate_checkpoint(pfs, "sp").ok
        flip_stored_bit(pfs, "sp.task2", 12)
        assert not validate_checkpoint(pfs, "sp").ok
        with pytest.raises(CheckpointIntegrityError):
            spmd_restart(pfs, "sp", 4)
        flip_stored_bit(pfs, "sp.task2", 12)  # repair the flipped bit
        state, _ = spmd_restart(pfs, "sp", 4)
        assert state.payloads == [{"t": t} for t in range(4)]


class TestIncrementalChainValidation:
    def _chain(self, pfs, arr, seg):
        inc = IncrementalCheckpointer(pfs, "inc")
        arr.set_global(np.zeros((N, N)))
        inc.full(seg, [arr])
        arr.set_global(np.ones((N, N)))
        inc.incremental(seg, [arr])
        return inc

    def test_sound_chain_validates(self, env):
        pfs, arr, seg = env
        self._chain(pfs, arr, seg)
        report = validate_checkpoint(pfs, "inc.chain")
        assert report.ok
        assert report.bytes_hashed > 0

    def test_corrupt_delta_detected_and_restore_rejected(self, env):
        pfs, arr, seg = env
        inc = self._chain(pfs, arr, seg)
        flip_stored_bit(pfs, "inc.d1.array.u", 32)
        assert not validate_checkpoint(pfs, "inc.chain").ok
        with pytest.raises(CheckpointIntegrityError):
            inc.restore(2)

    def test_corrupt_base_detected_through_chain(self, env):
        pfs, arr, seg = env
        self._chain(pfs, arr, seg)
        flip_stored_bit(pfs, "inc.base.array.u", 8)
        report = validate_checkpoint(pfs, "inc.chain")
        assert any("inc.base" in e for e in report.errors)

    def test_cyclic_chain_reported_not_hung(self, env):
        pfs, *_ = env
        write_manifest(
            pfs, "loop", {"kind": "drms-chain", "base": "loop", "deltas": []}
        )
        report = validate_checkpoint(pfs, "loop")
        assert any("cycle" in e for e in report.errors)


class TestRecoverySelection:
    def _two_generations(self, env):
        pfs, arr, seg = env
        take(pfs, arr, seg, "job.000001", 1)
        take(pfs, arr, seg, "job.000002", 2)
        return pfs

    def test_candidates_newest_first_with_bare_base(self, env):
        pfs = self._two_generations(env)
        _, arr, seg = env
        take(pfs, arr, seg, "job", 0)  # un-rotated state under the base
        assert restart_candidates(pfs, "job") == [
            "job.000002", "job.000001", "job",
        ]

    def test_picks_newest_when_sound(self, env):
        pfs = self._two_generations(env)
        decision = select_restart_state(pfs, "job")
        assert decision.prefix == "job.000002"
        assert decision.rejected == []
        assert not decision.fell_back

    def test_falls_back_past_corrupt_newest(self, env):
        pfs = self._two_generations(env)
        flip_stored_bit(pfs, "job.000002.array.u", 100)
        events = EventLog()
        decision = select_restart_state(pfs, "job", events=events, job="j")
        assert decision.prefix == "job.000001"
        assert decision.fell_back
        assert [p for p, _ in decision.rejected] == ["job.000002"]
        kinds = [e.kind for e in events]
        assert kinds == [
            "checkpoint_rejected", "checkpoint_verified", "restart_fallback",
        ]
        assert events.of_kind("restart_fallback")[0].detail["skipped"] == [
            "job.000002"
        ]

    def test_nothing_valid(self, env):
        pfs = self._two_generations(env)
        flip_stored_bit(pfs, "job.000001.array.u", 1)
        flip_stored_bit(pfs, "job.000002.array.u", 1)
        decision = select_restart_state(pfs, "job")
        assert decision.prefix is None
        assert len(decision.rejected) == 2

    def test_restart_latest_valid_round_trip(self, env):
        pfs = self._two_generations(env)
        flip_stored_bit(pfs, "job.000002.array.u", 100)
        state, _, decision = restart_latest_valid(pfs, "job", 4)
        assert decision.prefix == "job.000001"
        assert state.segment.replicated["it"] == 1
        assert np.all(state.arrays["u"].to_global() == 1.0)

    def test_restart_latest_valid_raises_when_dry(self, env):
        pfs, *_ = env
        with pytest.raises(RestartError, match="no checkpoint"):
            restart_latest_valid(pfs, "job", 2)


@pytest.mark.crash_consistency
@pytest.mark.parametrize("mode", ["fail", "torn", "short"])
@pytest.mark.parametrize("target", ["manifest", "segment", "array"])
def test_fault_matrix_recovery_always_lands_on_good_state(env, target, mode):
    """The acceptance matrix: inject every write-fault mode into every
    component of checkpoint generation 2; whatever happens, recovery
    selection must land on generation 1 and restore its exact state."""
    pfs, arr, seg = env
    take(pfs, arr, seg, "job.000001", 1)

    inj = FaultInjector()
    inj.fail_write(nth=1, match=f"job.000002.{target}", mode=mode)
    pfs.attach_faults(inj)
    try:
        take(pfs, arr, seg, "job.000002", 2)
        completed = True
    except (IOFaultError, CheckpointIntegrityError):
        completed = False
    pfs.abort_phase()  # a mid-phase fault leaves the phase open
    pfs.attach_faults(None)
    assert inj.pending == 0, "the armed fault must have fired"

    if completed:
        # silent short write: the manifest committed, so the damaged
        # state is visible — validation is what rejects it
        assert latest_checkpoint(pfs, "job") == "job.000002"
        assert not validate_checkpoint(pfs, "job.000002").ok
    else:
        # observed crash: the manifest never committed, so the damaged
        # state is invisible to the rotation scan
        assert latest_checkpoint(pfs, "job") == "job.000001"

    decision = select_restart_state(pfs, "job")
    assert decision.prefix == "job.000001"
    state, _ = drms_restart(pfs, decision.prefix, 3)
    assert state.segment.replicated["it"] == 1
    assert np.all(state.arrays["u"].to_global() == 1.0)


@pytest.mark.crash_consistency
def test_fault_matrix_short_segment_write_caught_by_checksum(env):
    """The hardest case spelled out: a silent short write inside the
    segment file keeps the manifest-recorded *size* correct (the sparse
    pad still extends the file), so only the checksum catches it."""
    pfs, arr, seg = env
    inj = FaultInjector()
    inj.fail_write(nth=1, match="job.000001.segment", mode="short")
    pfs.attach_faults(inj)
    take(pfs, arr, seg, "job.000001", 1)
    pfs.attach_faults(None)
    m = read_manifest(pfs, "job.000001")
    assert pfs.file_size("job.000001.segment") == m["segment_bytes"]
    report = validate_checkpoint(pfs, "job.000001")
    assert any("checksum mismatch" in e for e in report.errors)
