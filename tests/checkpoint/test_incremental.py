"""Tests for incremental checkpointing and memory exclusion (§6)."""

import numpy as np
import pytest

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import block_distribution
from repro.checkpoint.incremental import IncrementalCheckpointer, excluded_segment_bytes
from repro.checkpoint.segment import DataSegment, SegmentProfile
from repro.errors import CheckpointError
from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine, MachineParams


@pytest.fixture
def env():
    machine = Machine(MachineParams(num_nodes=16))
    machine.place_tasks(8)
    pfs = PIOFS(machine=machine)
    g = np.arange(16 * 16, dtype=np.float64).reshape(16, 16)
    arr = DistributedArray(
        "u", (16, 16), np.float64, block_distribution((16, 16), 4, shadow=(1, 1))
    )
    arr.set_global(g)
    seg = DataSegment(
        profile=SegmentProfile(4000, 2000, 1000), replicated={"it": 0}
    )
    ck = IncrementalCheckpointer(pfs, "inc", target_bytes=128)
    return pfs, g, arr, seg, ck


class TestBaseAndDeltas:
    def test_incremental_requires_base(self, env):
        pfs, g, arr, seg, ck = env
        with pytest.raises(CheckpointError):
            ck.incremental(seg, [arr])

    def test_clean_delta_writes_no_array_bytes(self, env):
        pfs, g, arr, seg, ck = env
        ck.full(seg, [arr])
        bd = ck.incremental(seg, [arr])
        assert bd.arrays_bytes == 0
        assert bd.segment_bytes > 0  # the exact header still goes out

    def test_delta_contains_only_dirty_pieces(self, env):
        pfs, g, arr, seg, ck = env
        ck.full(seg, [arr])
        # dirty one corner: a few pieces at most
        from repro.arrays.slices import Slice

        corner = arr.distribution.assigned(0).intersect(
            Slice([slice(0, 2), slice(0, 2)])
        )
        arr.section_to_task(0, corner, np.full((2, 2), -9.0))
        bd = ck.incremental(seg, [arr])
        assert 0 < bd.arrays_bytes < arr.nbytes_global / 2

    def test_unknown_array_rejected(self, env):
        pfs, g, arr, seg, ck = env
        ck.full(seg, [arr])
        other = DistributedArray(
            "v", (4, 4), np.float64, block_distribution((4, 4), 4)
        )
        other.set_global(np.zeros((4, 4)))
        with pytest.raises(CheckpointError):
            ck.incremental(seg, [other])


class TestRestore:
    @pytest.mark.parametrize("nt", [2, 4, 7])
    def test_chain_restore_reconfigurable(self, env, nt):
        """Incrementality does not cost reconfigurability: the chain
        restores on any task count."""
        pfs, g, arr, seg, ck = env
        ck.full(seg, [arr])
        # two rounds of updates + deltas
        for round_ in range(2):
            arr.set_global(arr.to_global() * 1.5 + round_)
            seg.replicated["it"] = round_ + 1
            ck.incremental(seg, [arr])
        expect = arr.to_global()
        state, bd = ck.restore(nt)
        got = state.arrays["u"]
        assert got.ntasks == nt
        assert np.array_equal(got.to_global(), expect)
        assert state.segment.replicated["it"] == 2

    def test_restore_without_deltas_is_base(self, env):
        pfs, g, arr, seg, ck = env
        ck.full(seg, [arr])
        state, _ = ck.restore(4)
        assert np.array_equal(state.arrays["u"].to_global(), g)

    def test_partial_update_restores_exactly(self, env):
        pfs, g, arr, seg, ck = env
        ck.full(seg, [arr])
        new = g.copy()
        new[3:7, 9:14] = -1.0
        arr.set_global(new)
        ck.incremental(seg, [arr])
        state, _ = ck.restore(5)
        assert np.array_equal(state.arrays["u"].to_global(), new)


class TestVirtualAndSizes:
    def test_declared_dirty_fraction(self):
        machine = Machine(MachineParams(num_nodes=16))
        pfs = PIOFS(machine=machine)
        arr = DistributedArray(
            "big", (64, 64, 64), np.float64,
            block_distribution((64, 64, 64), 8), store_data=False,
        )
        seg = DataSegment(profile=SegmentProfile(int(1e6), 0, 0))
        ck = IncrementalCheckpointer(pfs, "v")
        ck.full(seg, [arr])
        ck.declare_dirty("big", 0.25)
        bd = ck.incremental(seg, [arr])
        assert bd.arrays_bytes == pytest.approx(0.25 * arr.nbytes_global, rel=0.1)

    def test_dirty_fraction_validated(self):
        ck = IncrementalCheckpointer(PIOFS(), "x")
        with pytest.raises(CheckpointError):
            ck.declare_dirty("a", 1.5)

    def test_chain_state_accounting(self, env):
        pfs, g, arr, seg, ck = env
        ck.full(seg, [arr])
        arr.set_global(g + 1)  # everything dirty
        ck.incremental(seg, [arr])
        sizes = ck.chain_state_bytes()
        assert sizes["total"] == sizes["base"] + sizes["deltas"]
        assert sizes["deltas"] >= arr.nbytes_global  # full rewrite

    def test_delta_cheaper_than_full_checkpoint(self, env):
        """The point of the optimization: a 10%-dirty delta is much
        cheaper (simulated time and bytes) than a full checkpoint."""
        pfs, g, arr, seg, ck = env
        full_bd = ck.full(seg, [arr])
        new = g.copy()
        new[0, :2] = -1
        arr.set_global(new)
        inc_bd = ck.incremental(seg, [arr])
        assert inc_bd.total_bytes < 0.3 * full_bd.total_bytes
        assert inc_bd.total_seconds < full_bd.total_seconds


class TestMemoryExclusion:
    def test_excluded_bytes(self):
        seg = DataSegment(profile=SegmentProfile(100, 50, 1000))
        assert excluded_segment_bytes(seg, 0.0) == 1150
        assert excluded_segment_bytes(seg, 1.0) == 150
        assert excluded_segment_bytes(seg, 0.5) == 650

    def test_fraction_validated(self):
        seg = DataSegment(profile=SegmentProfile(1, 1, 1))
        with pytest.raises(CheckpointError):
            excluded_segment_bytes(seg, -0.1)

    def test_section6_narrative(self):
        """Exclusion can erase much of the SPMD-vs-DRMS *size* gap (as
        the paper concedes), but the shadow-region overhead remains —
        and reconfigurability is still impossible for SPMD."""
        from repro.apps import make_proxy
        from repro.perfmodel.shadow_ratio import shadow_ratio

        bt = make_proxy("bt", "A")
        seg = DataSegment(profile=bt.segment_profile())
        p = 8
        naive_spmd = seg.profile.total_bytes * p
        # aggressive exclusion: all private scratch proven clean, and
        # system buffers excluded as dead across the checkpoint
        optimized_per_task = excluded_segment_bytes(seg, 1.0) - seg.profile.system_bytes
        optimized_spmd = optimized_per_task * p
        drms_total = bt.drms_state_bytes()["total"]
        assert optimized_spmd < 0.5 * naive_spmd  # "erases much of the difference"
        # what remains is (at least) the shadow overhead on the arrays
        assert optimized_spmd > bt.array_bytes_total
        r = optimized_spmd / bt.array_bytes_total
        assert r > 1.05  # shadows keep task-based strictly larger
