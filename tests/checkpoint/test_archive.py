"""Tests for checkpoint archiving/migration between file systems."""

import numpy as np
import pytest

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import block_distribution
from repro.checkpoint.archive import checkpoint_files, copy_checkpoint, delete_checkpoint
from repro.checkpoint.drms import drms_checkpoint, drms_restart
from repro.checkpoint.incremental import IncrementalCheckpointer
from repro.checkpoint.segment import DataSegment, SegmentProfile
from repro.checkpoint.spmd import spmd_checkpoint, spmd_restart
from repro.errors import CheckpointError
from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine, MachineParams


@pytest.fixture
def env():
    src = PIOFS(machine=Machine(MachineParams(num_nodes=16)))
    dst = PIOFS(machine=Machine(MachineParams(num_nodes=4)))
    g = np.arange(10 * 8, dtype=np.float64).reshape(10, 8)
    arr = DistributedArray(
        "u", (10, 8), np.float64, block_distribution((10, 8), 4)
    )
    arr.set_global(g)
    seg = DataSegment(
        profile=SegmentProfile(30_000, 10_000, 5_000), replicated={"dt": 0.5}
    )
    return src, dst, g, arr, seg


class TestFileEnumeration:
    def test_drms_file_set(self, env):
        src, dst, g, arr, seg = env
        drms_checkpoint(src, "ck", seg, [arr])
        files = checkpoint_files(src, "ck")
        assert set(files) == {"ck.manifest", "ck.segment", "ck.array.u"}

    def test_spmd_file_set(self, env):
        src, *_ = env
        spmd_checkpoint(src, "sp", ntasks=3, segment_bytes=100)
        assert set(checkpoint_files(src, "sp")) == {
            "sp.manifest", "sp.task0", "sp.task1", "sp.task2",
        }

    def test_chain_file_set_includes_base_and_deltas(self, env):
        src, dst, g, arr, seg = env
        ck = IncrementalCheckpointer(src, "inc", target_bytes=256)
        ck.full(seg, [arr])
        arr.set_global(g + 1)
        ck.incremental(seg, [arr])
        files = checkpoint_files(src, "inc.chain")
        assert "inc.base.segment" in files
        assert "inc.d1.segment" in files
        assert any(f.startswith("inc.d1.array.") for f in files)
        assert len(files) == len(set(files))  # no duplicates

    def test_cyclic_chain_manifest_raises(self, env):
        """Regression: a chain manifest whose references loop (corrupt
        or hand-edited metadata) used to recurse without bound."""
        from repro.checkpoint.format import write_manifest

        src, *_ = env
        write_manifest(src, "c1", {"kind": "drms-chain", "base": "c2", "deltas": []})
        write_manifest(src, "c2", {"kind": "drms-chain", "base": "c1", "deltas": []})
        with pytest.raises(CheckpointError, match="cycle"):
            checkpoint_files(src, "c1")

    def test_self_referencing_chain_raises(self, env):
        from repro.checkpoint.format import write_manifest

        src, *_ = env
        write_manifest(
            src, "loop", {"kind": "drms-chain", "base": "loop", "deltas": []}
        )
        with pytest.raises(CheckpointError, match="cycle"):
            checkpoint_files(src, "loop")

    def test_unknown_prefix(self, env):
        src, *_ = env
        with pytest.raises(CheckpointError):
            checkpoint_files(src, "ghost")


class TestMigration:
    def test_drms_copy_then_reconfigured_restart_elsewhere(self, env):
        """The abstract's claim: migrate the state to a system with a
        different processor count and restart reconfigured."""
        src, dst, g, arr, seg = env
        drms_checkpoint(src, "ck", seg, [arr])
        copied = copy_checkpoint(src, dst, "ck")
        assert copied["ck.segment"] == src.file_size("ck.segment")
        dst.machine.place_tasks(3)
        state, _ = drms_restart(dst, "ck", 3)
        assert np.array_equal(state.arrays["u"].to_global(), g)
        assert state.segment.replicated == {"dt": 0.5}

    def test_sparse_tails_stay_sparse(self, env):
        src, dst, g, arr, seg = env
        drms_checkpoint(src, "ck", seg, [arr])
        copy_checkpoint(src, dst, "ck")
        s, d = src.open("ck.segment"), dst.open("ck.segment")
        assert d.size == s.size
        assert d.stored_bytes == s.stored_bytes  # pad not materialized
        assert d.stored_bytes < d.size

    def test_spmd_copy_restores_payloads(self, env):
        src, dst, *_ = env
        spmd_checkpoint(
            src, "sp", ntasks=2, segment_bytes=10_000, payloads=["a", "b"]
        )
        copy_checkpoint(src, dst, "sp")
        state, _ = spmd_restart(dst, "sp", 2)
        assert state.payloads == ["a", "b"]

    def test_virtual_files_stay_virtual(self, env):
        src, dst, *_ = env
        varr = DistributedArray(
            "big", (32, 32), np.float64,
            block_distribution((32, 32), 4), store_data=False,
        )
        seg = DataSegment(profile=SegmentProfile(1000, 0, 0))
        drms_checkpoint(src, "v", seg, [varr])
        copy_checkpoint(src, dst, "v")
        assert dst.open("v.array.big").virtual
        assert dst.file_size("v.array.big") == 32 * 32 * 8


class TestDeletion:
    def test_delete_frees_all_files(self, env):
        src, dst, g, arr, seg = env
        drms_checkpoint(src, "ck", seg, [arr])
        expect = sum(src.file_size(f) for f in checkpoint_files(src, "ck"))
        freed = delete_checkpoint(src, "ck")
        assert freed == expect
        assert not src.exists("ck.manifest")
        assert not src.exists("ck.array.u")

    def test_other_prefixes_untouched(self, env):
        src, dst, g, arr, seg = env
        drms_checkpoint(src, "keep", seg, [arr])
        drms_checkpoint(src, "drop", seg, [arr])
        delete_checkpoint(src, "drop")
        assert src.exists("keep.manifest")
        state, _ = drms_restart(src, "keep", 2)
        assert np.array_equal(state.arrays["u"].to_global(), g)
