"""Checkpoint edge cases: dtypes, endianness, degenerate shapes,
many arrays, and zero-iteration contexts."""

import numpy as np
import pytest

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import block_distribution
from repro.checkpoint.drms import drms_checkpoint, drms_restart
from repro.checkpoint.segment import DataSegment, SegmentProfile
from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine, MachineParams


@pytest.fixture
def pfs():
    return PIOFS(machine=Machine(MachineParams(num_nodes=16)))


def seg(n=1000):
    return DataSegment(profile=SegmentProfile(n, 0, 0))


@pytest.mark.parametrize(
    "dtype",
    [np.float32, np.float64, np.int32, np.int64, np.uint8, np.complex128,
     np.dtype(">f8")],
    ids=str,
)
def test_dtype_roundtrip(pfs, dtype):
    shape = (6, 5)
    g = (np.arange(30) * 3 + 1).reshape(shape).astype(dtype)
    arr = DistributedArray("u", shape, dtype, block_distribution(shape, 3))
    arr.set_global(g)
    drms_checkpoint(pfs, "dt", seg(), [arr])
    state, _ = drms_restart(pfs, "dt", 5)
    back = state.arrays["u"]
    assert back.dtype == np.dtype(dtype)
    assert np.array_equal(back.to_global(), g)


def test_scalar_like_1d_array(pfs):
    arr = DistributedArray("x", (1,), np.float64, block_distribution((1,), 1))
    arr.set_global(np.array([42.0]))
    drms_checkpoint(pfs, "s", seg(), [arr])
    state, _ = drms_restart(pfs, "s", 3)
    assert state.arrays["x"].to_global()[0] == 42.0


def test_more_tasks_than_elements(pfs):
    g = np.arange(3.0)
    arr = DistributedArray("x", (3,), np.float64, block_distribution((3,), 3))
    arr.set_global(g)
    drms_checkpoint(pfs, "t", seg(), [arr])
    state, _ = drms_restart(pfs, "t", 8)  # 5 tasks get nothing
    back = state.arrays["x"]
    assert np.array_equal(back.to_global(), g)
    empties = sum(
        1 for t in range(8) if back.distribution.assigned(t).is_empty
    )
    assert empties == 5


def test_checkpoint_with_no_arrays(pfs):
    bd = drms_checkpoint(pfs, "n", seg(), [])
    assert bd.arrays_bytes == 0
    state, _ = drms_restart(pfs, "n", 4)
    assert state.arrays == {}
    assert state.ntasks == 4


def test_many_small_arrays(pfs):
    arrays = []
    for i in range(24):
        a = DistributedArray(f"f{i}", (4, 4), np.float64, block_distribution((4, 4), 2))
        a.set_global(np.full((4, 4), float(i)))
        arrays.append(a)
    drms_checkpoint(pfs, "m", seg(), arrays)
    state, bd = drms_restart(pfs, "m", 3)
    assert len(state.arrays) == 24
    for i in range(24):
        assert state.arrays[f"f{i}"].to_global()[0, 0] == float(i)
    assert len(bd.per_array) == 24


def test_high_rank_array(pfs):
    shape = (3, 4, 2, 3, 2)
    g = np.arange(np.prod(shape), dtype=np.float64).reshape(shape)
    arr = DistributedArray("u", shape, np.float64, block_distribution(shape, 4))
    arr.set_global(g)
    drms_checkpoint(pfs, "hr", seg(), [arr])
    state, _ = drms_restart(pfs, "hr", 6)
    assert np.array_equal(state.arrays["u"].to_global(), g)


def test_unicode_and_nested_replicated_state(pfs):
    s = DataSegment(
        profile=SegmentProfile(100, 0, 0),
        replicated={
            "title": "schrödinger-säule",
            "nested": {"tuple": (1, 2.5, "x"), "list": [None, True]},
        },
    )
    arr = DistributedArray("u", (2,), np.float64, block_distribution((2,), 1))
    arr.set_global(np.zeros(2))
    drms_checkpoint(pfs, "u8", s, [arr])
    state, _ = drms_restart(pfs, "u8", 2)
    assert state.segment.replicated["title"] == "schrödinger-säule"
    assert state.segment.replicated["nested"]["tuple"] == (1, 2.5, "x")
