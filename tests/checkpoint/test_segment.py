"""Unit tests for the data-segment model."""

import pytest

from repro.checkpoint.segment import (
    SYSTEM_SEGMENT_BYTES,
    DataSegment,
    ExecutionContext,
    SegmentProfile,
)
from repro.errors import CheckpointError


def test_profile_total():
    p = SegmentProfile(100, 200, 300)
    assert p.total_bytes == 600


def test_profile_rejects_negative():
    with pytest.raises(CheckpointError):
        SegmentProfile(-1, 0, 0)


def test_system_constant_matches_table4():
    assert SYSTEM_SEGMENT_BYTES == 34_972_228


def test_serialize_pads_to_profile():
    seg = DataSegment(profile=SegmentProfile(10_000, 0, 0))
    header, pad = seg.serialize()
    assert len(header) + pad == 10_000
    assert seg.file_bytes == 10_000


def test_small_profile_header_dominates():
    seg = DataSegment(
        profile=SegmentProfile(1, 1, 1),
        replicated={"big": list(range(100))},
    )
    header, pad = seg.serialize()
    assert pad == 0
    assert seg.file_bytes == len(header)


def test_roundtrip_preserves_exact_state():
    seg = DataSegment(
        profile=SegmentProfile(5000, 100, 20),
        replicated={"dt": 0.01, "name": "bt"},
        context=ExecutionContext(sop_id=3, iteration=41, control={"ce": 10}),
    )
    header, pad = seg.serialize()
    back = DataSegment.deserialize(header + b"\x00" * pad)
    assert back.replicated == seg.replicated
    assert back.context.iteration == 41
    assert back.context.sop_id == 3
    assert back.context.control == {"ce": 10}
    assert back.profile == seg.profile


def test_deserialize_rejects_garbage():
    with pytest.raises(CheckpointError):
        DataSegment.deserialize(b"abc")
    with pytest.raises(CheckpointError):
        DataSegment.deserialize((999).to_bytes(8, "little") + b"short")
    bad = (4).to_bytes(8, "little") + b"\xff\xff\xff\xff"
    with pytest.raises(CheckpointError):
        DataSegment.deserialize(bad)
