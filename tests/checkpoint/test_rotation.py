"""Tests for rotating checkpoint prefixes and retention."""

import numpy as np
import pytest

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import block_distribution
from repro.checkpoint.drms import drms_checkpoint, drms_restart
from repro.checkpoint.rotation import (
    CheckpointRotation,
    generations,
    latest_checkpoint,
)
from repro.checkpoint.segment import DataSegment, SegmentProfile
from repro.errors import CheckpointError
from repro.pfs.piofs import PIOFS


@pytest.fixture
def env():
    pfs = PIOFS()
    arr = DistributedArray("u", (8, 8), np.float64, block_distribution((8, 8), 2))
    arr.set_global(np.zeros((8, 8)))
    seg = DataSegment(profile=SegmentProfile(1000, 0, 0), replicated={"it": 0})
    return pfs, arr, seg


def take(pfs, rot, arr, seg, it):
    arr.set_global(np.full((8, 8), float(it)))
    seg.replicated["it"] = it
    prefix = rot.next_prefix()
    drms_checkpoint(pfs, prefix, seg, [arr])
    rot.commit(prefix)
    return prefix


class TestAllocation:
    def test_prefixes_monotone(self, env):
        pfs, arr, seg = env
        rot = CheckpointRotation(pfs, "job", keep=10)
        p1 = take(pfs, rot, arr, seg, 1)
        p2 = take(pfs, rot, arr, seg, 2)
        assert p1 == "job.000001"
        assert p2 == "job.000002"

    def test_numbers_never_reused_after_incomplete_state(self, env):
        pfs, arr, seg = env
        rot = CheckpointRotation(pfs, "job", keep=10)
        take(pfs, rot, arr, seg, 1)
        # simulate a crash mid-checkpoint: files exist, no manifest
        pfs.create("job.000002.segment")
        assert rot.next_prefix() == "job.000003"

    def test_base_cannot_look_like_generation(self, env):
        pfs, *_ = env
        with pytest.raises(CheckpointError):
            CheckpointRotation(pfs, "job.000001")

    def test_keep_validated(self, env):
        pfs, *_ = env
        with pytest.raises(CheckpointError):
            CheckpointRotation(pfs, "job", keep=0)


class TestLatest:
    def test_latest_is_newest_complete(self, env):
        pfs, arr, seg = env
        rot = CheckpointRotation(pfs, "job", keep=10)
        take(pfs, rot, arr, seg, 1)
        take(pfs, rot, arr, seg, 2)
        assert latest_checkpoint(pfs, "job") == "job.000002"

    def test_incomplete_state_invisible(self, env):
        """The crash-mid-checkpoint scenario: the newest complete state
        remains restorable."""
        pfs, arr, seg = env
        rot = CheckpointRotation(pfs, "job", keep=10)
        good = take(pfs, rot, arr, seg, 5)
        # crash while writing generation 2: array file exists, manifest
        # missing
        pfs.create("job.000002.segment")
        pfs.create("job.000002.array.u")
        assert latest_checkpoint(pfs, "job") == good
        state, _ = drms_restart(pfs, good, 3)
        assert state.segment.replicated["it"] == 5
        assert np.all(state.arrays["u"].to_global() == 5.0)

    def test_none_when_empty(self, env):
        pfs, *_ = env
        assert latest_checkpoint(pfs, "job") is None
        assert generations(pfs, "job") == []


class TestRetention:
    def test_prune_keeps_newest_k(self, env):
        pfs, arr, seg = env
        rot = CheckpointRotation(pfs, "job", keep=2)
        for it in range(1, 6):
            take(pfs, rot, arr, seg, it)
        gens = generations(pfs, "job")
        assert gens == ["job.000004", "job.000005"]
        # pruned states are fully gone
        assert not pfs.exists("job.000001.manifest")
        assert not pfs.exists("job.000001.array.u")

    def test_survivors_restorable(self, env):
        pfs, arr, seg = env
        rot = CheckpointRotation(pfs, "job", keep=2)
        for it in range(1, 5):
            take(pfs, rot, arr, seg, it)
        for prefix, expect in [("job.000003", 3.0), ("job.000004", 4.0)]:
            state, _ = drms_restart(pfs, prefix, 4)
            assert np.all(state.arrays["u"].to_global() == expect)

    def test_commit_refuses_stale_prefix(self, env):
        pfs, arr, seg = env
        rot = CheckpointRotation(pfs, "job", keep=2)
        p1 = take(pfs, rot, arr, seg, 1)
        take(pfs, rot, arr, seg, 2)
        with pytest.raises(CheckpointError):
            rot.commit(p1)

    def test_unrelated_prefixes_untouched(self, env):
        pfs, arr, seg = env
        drms_checkpoint(pfs, "other", seg, [arr])
        rot = CheckpointRotation(pfs, "job", keep=1)
        for it in (1, 2, 3):
            take(pfs, rot, arr, seg, it)
        assert pfs.exists("other.manifest")

    def test_commit_and_prune_with_newer_incomplete_generation(self, env):
        """A crash mid-write of generation 3 must not confuse commit(2):
        the incomplete state is not 'newest', is never pruned, and its
        number is not reused."""
        pfs, arr, seg = env
        rot = CheckpointRotation(pfs, "job", keep=1)
        for it in (1, 2):  # two complete generations, no pruning yet
            prefix = rot.next_prefix()
            seg.replicated["it"] = it
            drms_checkpoint(pfs, prefix, seg, [arr])
        p2 = "job.000002"
        # crash mid-generation-3: data files exist, manifest does not
        pfs.create("job.000003.segment")
        pfs.create("job.000003.array.u")
        doomed = rot.commit(p2)
        assert doomed == ["job.000001"]
        assert generations(pfs, "job") == [p2]
        assert pfs.exists("job.000003.segment")  # partial state untouched
        assert rot.next_prefix() == "job.000004"


class TestCorruptManifests:
    def test_latest_skips_corrupt_json_manifest(self, env):
        """A manifest holding garbage bytes (a torn write that slipped
        through, media corruption) must not break the scan: the state is
        treated as incomplete and the previous good state stays latest."""
        pfs, arr, seg = env
        rot = CheckpointRotation(pfs, "job", keep=10)
        good = take(pfs, rot, arr, seg, 1)
        pfs.create("job.000002.manifest")
        pfs.write_at("job.000002.manifest", 0, b'{"version": 3, truncated...')
        assert generations(pfs, "job") == [good]
        assert latest_checkpoint(pfs, "job") == good

    def test_wrong_version_manifest_skipped(self, env):
        pfs, arr, seg = env
        rot = CheckpointRotation(pfs, "job", keep=10)
        good = take(pfs, rot, arr, seg, 1)
        pfs.create("job.000002.manifest")
        pfs.write_at("job.000002.manifest", 0, b'{"version": 1, "kind": "drms"}')
        assert latest_checkpoint(pfs, "job") == good
