"""Property-based: any constructible distribution round-trips through
the checkpoint manifest spec, and its adjusted form stays legal."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays.distributions import (
    Block,
    BlockCyclic,
    Cyclic,
    Distribution,
    GenBlock,
)
from repro.checkpoint.format import distribution_to_spec, spec_to_distribution


@st.composite
def distributions(draw):
    rank = draw(st.integers(1, 3))
    shape = tuple(draw(st.integers(2, 16)) for _ in range(rank))
    ntasks = draw(st.integers(1, 6))
    axes = []
    for _ in range(rank):
        kind = draw(st.sampled_from(["block", "cyclic", "bc"]))
        axes.append(
            Block() if kind == "block"
            else Cyclic() if kind == "cyclic"
            else BlockCyclic(draw(st.integers(1, 4)))
        )
    shadow = tuple(draw(st.integers(0, 2)) for _ in range(rank))
    return Distribution(shape, axes, ntasks, shadow=shadow)


@given(distributions())
@settings(max_examples=60, deadline=None)
def test_spec_roundtrip_identity(d):
    spec = distribution_to_spec(d)
    back = spec_to_distribution(spec)
    assert back == d
    # json-serializable (what the manifest requires)
    import json

    json.dumps(spec)


@given(distributions(), st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_spec_adjusts_to_any_ntasks(d, new_ntasks):
    spec = distribution_to_spec(d)
    adjusted = spec_to_distribution(spec, ntasks=new_ntasks)
    assert adjusted.ntasks == new_ntasks
    assert adjusted.shape == d.shape
    assert adjusted.shadow == d.shadow
    adjusted.validate()
    # coverage: every element still assigned exactly once
    total = sum(adjusted.assigned(t).size for t in range(new_ntasks))
    import math

    assert total == math.prod(d.shape)


@given(distributions())
@settings(max_examples=40, deadline=None)
def test_genblock_spec_roundtrip(d):
    """GenBlock with sizes derived from a legal Block split also
    round-trips (irregular explicit sizes)."""
    sizes = [d.assigned(t)[0].size for t in range(d.ntasks)] if d.grid[0] == d.ntasks else None
    if sizes is None or sum(sizes) != d.shape[0]:
        return
    g = Distribution((d.shape[0],), [GenBlock(sizes)], d.ntasks, grid=(d.ntasks,))
    assert spec_to_distribution(distribution_to_spec(g)) == g
