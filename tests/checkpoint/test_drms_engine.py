"""Unit tests for the DRMS checkpoint/restart engine."""

import numpy as np
import pytest

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import block_distribution
from repro.checkpoint.drms import drms_checkpoint, drms_restart
from repro.checkpoint.restart import list_checkpoints, saved_state_bytes
from repro.checkpoint.segment import DataSegment, SegmentProfile
from repro.errors import CheckpointError, RestartError
from repro.pfs.phase import IOKind
from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine, MachineParams


@pytest.fixture
def env():
    machine = Machine(MachineParams(num_nodes=16))
    machine.place_tasks(8)
    pfs = PIOFS(machine=machine)
    g = np.arange(10 * 12 * 6, dtype=np.float64).reshape(10, 12, 6)
    arr = DistributedArray(
        "u", (10, 12, 6), np.float64, block_distribution((10, 12, 6), 8, shadow=(1, 1, 1))
    )
    arr.set_global(g)
    seg = DataSegment(
        profile=SegmentProfile(50_000, 30_000, 10_000),
        replicated={"dt": 0.25},
    )
    seg.context.iteration = 7
    return machine, pfs, g, arr, seg


class TestCheckpoint:
    def test_writes_expected_files(self, env):
        _, pfs, _, arr, seg = env
        drms_checkpoint(pfs, "ck", seg, [arr])
        assert pfs.exists("ck.manifest")
        assert pfs.exists("ck.segment")
        assert pfs.exists("ck.array.u")
        assert pfs.file_size("ck.segment") == seg.file_bytes
        assert pfs.file_size("ck.array.u") == arr.nbytes_global

    def test_breakdown_components(self, env):
        _, pfs, _, arr, seg = env
        bd = drms_checkpoint(pfs, "ck", seg, [arr])
        assert bd.kind == "drms"
        assert bd.segment_bytes == seg.file_bytes
        assert bd.arrays_bytes == arr.nbytes_global
        assert bd.total_seconds == bd.segment_seconds + bd.arrays_seconds
        assert bd.per_array == [("u", pytest.approx(bd.arrays_seconds), arr.nbytes_global)]

    def test_phase_kinds_logged(self, env):
        _, pfs, _, arr, seg = env
        drms_checkpoint(pfs, "ck", seg, [arr])
        kinds = [p.kind for p in pfs.phase_log]
        assert kinds == [IOKind.WRITE_SERIAL, IOKind.WRITE_PARALLEL]

    def test_duplicate_array_names_rejected(self, env):
        _, pfs, _, arr, seg = env
        with pytest.raises(CheckpointError):
            drms_checkpoint(pfs, "ck", seg, [arr, arr])

    def test_mixed_ntasks_rejected(self, env):
        _, pfs, g, arr, seg = env
        other = DistributedArray(
            "v", (4, 4), np.float64, block_distribution((4, 4), 3)
        )
        with pytest.raises(CheckpointError):
            drms_checkpoint(pfs, "ck", seg, [arr, other])

    def test_multiple_prefixes_coexist(self, env):
        _, pfs, _, arr, seg = env
        drms_checkpoint(pfs, "ck1", seg, [arr])
        drms_checkpoint(pfs, "ck2", seg, [arr])
        assert list_checkpoints(pfs) == ["ck1", "ck2"]

    def test_state_size_accounting(self, env):
        _, pfs, _, arr, seg = env
        drms_checkpoint(pfs, "ck", seg, [arr])
        sizes = saved_state_bytes(pfs, "ck")
        assert sizes["segment"] == seg.file_bytes
        assert sizes["arrays"] == arr.nbytes_global
        assert sizes["total"] == sizes["segment"] + sizes["arrays"]


class TestRestart:
    @pytest.mark.parametrize("nt", [1, 4, 8, 12, 16])
    def test_reconfigured_restart_restores_content(self, env, nt):
        _, pfs, g, arr, seg = env
        drms_checkpoint(pfs, "ck", seg, [arr])
        state, bd = drms_restart(pfs, "ck", nt)
        restored = state.arrays["u"]
        assert restored.ntasks == nt
        assert np.array_equal(restored.to_global(), g)
        assert restored.is_consistent()
        assert state.delta == nt - 8

    def test_segment_state_restored(self, env):
        _, pfs, _, arr, seg = env
        drms_checkpoint(pfs, "ck", seg, [arr])
        state, _ = drms_restart(pfs, "ck", 4)
        assert state.segment.replicated == {"dt": 0.25}
        assert state.segment.context.iteration == 7

    def test_restart_breakdown(self, env):
        _, pfs, _, arr, seg = env
        drms_checkpoint(pfs, "ck", seg, [arr])
        state, bd = drms_restart(pfs, "ck", 8)
        assert bd.other_seconds == pfs.params.restart_init_s
        # every task reads the whole segment file
        assert bd.segment_bytes == 8 * seg.file_bytes
        assert bd.total_seconds > bd.other_seconds

    def test_restart_phase_kinds(self, env):
        _, pfs, _, arr, seg = env
        drms_checkpoint(pfs, "ck", seg, [arr])
        pfs.phase_log.clear()
        drms_restart(pfs, "ck", 8)
        kinds = [p.kind for p in pfs.phase_log]
        assert kinds == [IOKind.READ_SHARED, IOKind.READ_PARALLEL]

    def test_unknown_prefix(self, env):
        _, pfs, *_ = env
        with pytest.raises(CheckpointError):
            drms_restart(pfs, "nope", 4)

    def test_zero_tasks_rejected(self, env):
        _, pfs, _, arr, seg = env
        drms_checkpoint(pfs, "ck", seg, [arr])
        with pytest.raises(RestartError):
            drms_restart(pfs, "ck", 0)

    def test_distribution_override(self, env):
        _, pfs, g, arr, seg = env
        drms_checkpoint(pfs, "ck", seg, [arr])
        custom = block_distribution((10, 12, 6), 5, shadow=(2, 2, 0))
        state, _ = drms_restart(pfs, "ck", 5, distribution_overrides={"u": custom})
        assert state.arrays["u"].distribution == custom
        assert np.array_equal(state.arrays["u"].to_global(), g)

    def test_override_ntasks_mismatch(self, env):
        _, pfs, _, arr, seg = env
        drms_checkpoint(pfs, "ck", seg, [arr])
        bad = block_distribution((10, 12, 6), 3)
        with pytest.raises(RestartError):
            drms_restart(pfs, "ck", 5, distribution_overrides={"u": bad})

    def test_virtual_checkpoint_roundtrip_sizes(self, env):
        machine, pfs, *_ = env
        varr = DistributedArray(
            "big", (64, 64, 64), np.float64,
            block_distribution((64, 64, 64), 8), store_data=False,
        )
        seg = DataSegment(profile=SegmentProfile(int(5e6), int(2e6), 0))
        bd = drms_checkpoint(pfs, "vck", seg, [varr])
        assert bd.arrays_bytes == 64 ** 3 * 8
        state, rbd = drms_restart(pfs, "vck", 16)
        assert not state.arrays["big"].store_data
        assert state.arrays["big"].ntasks == 16
        assert rbd.arrays_bytes == 64 ** 3 * 8
