"""Property-based: for any random sequence of partial updates, the
incremental chain restores exactly the latest state on any task count."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import block_distribution
from repro.checkpoint.incremental import IncrementalCheckpointer
from repro.checkpoint.segment import DataSegment, SegmentProfile
from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine, MachineParams


@st.composite
def update_sequences(draw):
    n = draw(st.integers(6, 14))
    nupdates = draw(st.integers(1, 4))
    updates = []
    for _ in range(nupdates):
        r0 = draw(st.integers(0, n - 1))
        r1 = draw(st.integers(r0, n - 1))
        c0 = draw(st.integers(0, n - 1))
        c1 = draw(st.integers(c0, n - 1))
        val = draw(st.floats(-100, 100, allow_nan=False))
        updates.append((r0, r1 + 1, c0, c1 + 1, val))
    t1 = draw(st.integers(1, 5))
    t2 = draw(st.integers(1, 5))
    return n, t1, t2, updates


@given(update_sequences())
@settings(max_examples=25, deadline=None)
def test_chain_restores_latest_state(seq):
    n, t1, t2, updates = seq
    pfs = PIOFS(machine=Machine(MachineParams(num_nodes=16)))
    g = np.arange(n * n, dtype=np.float64).reshape(n, n)
    arr = DistributedArray("u", (n, n), np.float64, block_distribution((n, n), t1))
    arr.set_global(g)
    seg = DataSegment(profile=SegmentProfile(500, 0, 0), replicated={"v": 0})
    ck = IncrementalCheckpointer(pfs, "p", target_bytes=64)
    ck.full(seg, [arr])
    current = g.copy()
    for k, (r0, r1, c0, c1, val) in enumerate(updates):
        current[r0:r1, c0:c1] = val
        arr.set_global(current)
        seg.replicated["v"] = k + 1
        ck.incremental(seg, [arr])
    state, _ = ck.restore(t2)
    assert np.array_equal(state.arrays["u"].to_global(), current)
    assert state.segment.replicated["v"] == len(updates)


@given(update_sequences())
@settings(max_examples=15, deadline=None)
def test_delta_bytes_bounded_by_change(seq):
    """A delta never writes more than a full checkpoint's arrays, and a
    no-op delta writes nothing."""
    n, t1, _, updates = seq
    pfs = PIOFS(machine=Machine(MachineParams(num_nodes=16)))
    g = np.zeros((n, n))
    arr = DistributedArray("u", (n, n), np.float64, block_distribution((n, n), t1))
    arr.set_global(g)
    seg = DataSegment(profile=SegmentProfile(500, 0, 0))
    ck = IncrementalCheckpointer(pfs, "p", target_bytes=64)
    ck.full(seg, [arr])
    assert ck.incremental(seg, [arr]).arrays_bytes == 0  # nothing changed
    r0, r1, c0, c1, val = updates[0]
    h = g.copy()
    h[r0:r1, c0:c1] = abs(val) + 1.0  # guaranteed different from zeros
    arr.set_global(h)
    bd = ck.incremental(seg, [arr])
    assert 0 < bd.arrays_bytes <= arr.nbytes_global
