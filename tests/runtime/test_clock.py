"""Unit tests for the simulated clock."""

import pytest

from repro.runtime.clock import SimClock


def test_starts_at_zero():
    assert SimClock().now == 0.0


def test_advance_accumulates():
    c = SimClock()
    c.advance(1.5)
    c.advance(0.5)
    assert c.now == 2.0


def test_advance_rejects_negative():
    with pytest.raises(ValueError):
        SimClock().advance(-1)


def test_merge_is_monotone():
    c = SimClock(5.0)
    assert c.merge(3.0) == 5.0  # never goes backward
    assert c.merge(7.0) == 7.0


def test_reset():
    c = SimClock(9.0)
    c.reset()
    assert c.now == 0.0
