"""Unit tests for the MPI-like communicator, run via the SPMD engine."""

import numpy as np
import pytest

from repro.errors import CommunicationError
from repro.runtime.comm import CommWorld
from repro.runtime.executor import run_spmd
from repro.runtime.message import ANY_SOURCE, payload_nbytes


class TestPayloadSizing:
    def test_numpy_exact(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80

    def test_bytes_exact(self):
        assert payload_nbytes(b"abc") == 3

    def test_none_free(self):
        assert payload_nbytes(None) == 0

    def test_objects_pickled(self):
        assert payload_nbytes({"a": 1}) > 0


class TestPointToPoint:
    def test_send_recv_roundtrip(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send({"x": 42}, dest=1, tag=3)
                return None
            if comm.rank == 1:
                return comm.recv(source=0, tag=3)

        res = run_spmd(prog, 2)
        assert res.returns[1] == {"x": 42}

    def test_numpy_payload_copied(self):
        def prog(comm):
            if comm.rank == 0:
                a = np.ones(4)
                comm.send(a, dest=1)
                a[:] = -1  # must not corrupt the in-flight message
            else:
                got = comm.recv(source=0)
                return float(got.sum())

        res = run_spmd(prog, 2)
        assert res.returns[1] == 4.0

    def test_tag_matching_out_of_order(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("first", dest=1, tag=1)
                comm.send("second", dest=1, tag=2)
            else:
                b = comm.recv(source=0, tag=2)
                a = comm.recv(source=0, tag=1)
                return (a, b)

        res = run_spmd(prog, 2)
        assert res.returns[1] == ("first", "second")

    def test_any_source(self):
        def prog(comm):
            if comm.rank == 0:
                got = {comm.recv(source=ANY_SOURCE) for _ in range(2)}
                return got
            comm.send(comm.rank, dest=0)

        res = run_spmd(prog, 3)
        assert res.returns[0] == {1, 2}

    def test_recv_timeout_reports_deadlock(self):
        def prog(comm):
            if comm.rank == 0:
                comm.recv(source=1, timeout=0.2)

        with pytest.raises(CommunicationError, match="timed out"):
            run_spmd(prog, 2)

    def test_send_to_unknown_rank(self):
        def prog(comm):
            comm.send(1, dest=99)

        with pytest.raises(CommunicationError):
            run_spmd(prog, 2)

    def test_probe(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(1, dest=1, tag=5)
                comm.barrier()
            else:
                comm.barrier()
                assert comm.probe(source=0, tag=5)
                assert not comm.probe(source=0, tag=6)
                comm.recv(source=0, tag=5)

        run_spmd(prog, 2)


class TestCollectives:
    @pytest.mark.parametrize("nt", [1, 2, 5, 8])
    def test_bcast(self, nt):
        def prog(comm):
            data = {"v": 7} if comm.rank == 0 else None
            return comm.bcast(data)["v"]

        assert run_spmd(prog, nt).returns == [7] * nt

    def test_gather(self):
        def prog(comm):
            return comm.gather(comm.rank ** 2, root=1)

        res = run_spmd(prog, 4)
        assert res.returns[1] == [0, 1, 4, 9]
        assert res.returns[0] is None

    def test_scatter(self):
        def prog(comm):
            objs = [f"item{i}" for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(objs)

        assert run_spmd(prog, 3).returns == ["item0", "item1", "item2"]

    def test_scatter_requires_size_match(self):
        def prog(comm):
            comm.scatter([1], root=0)

        with pytest.raises(CommunicationError):
            run_spmd(prog, 2)

    def test_allgather(self):
        def prog(comm):
            return comm.allgather(comm.rank)

        assert run_spmd(prog, 4).returns == [[0, 1, 2, 3]] * 4

    def test_alltoall(self):
        def prog(comm):
            out = comm.alltoall([f"{comm.rank}->{d}" for d in range(comm.size)])
            return out

        res = run_spmd(prog, 3)
        assert res.returns[1] == ["0->1", "1->1", "2->1"]

    def test_reduce_and_allreduce(self):
        def prog(comm):
            total = comm.allreduce(np.array([comm.rank, 1.0]))
            mx = comm.allreduce(comm.rank, op=max)
            return float(total[0]), float(total[1]), mx

        res = run_spmd(prog, 5)
        assert all(r == (10.0, 5.0, 4) for r in res.returns)

    def test_collective_sequences_do_not_cross(self):
        """Back-to-back collectives with mixed payloads stay matched."""

        def prog(comm):
            a = comm.bcast(comm.rank if comm.rank == 0 else None, root=0)
            b = comm.allgather(comm.rank)
            c = comm.bcast("done" if comm.rank == 0 else None, root=0)
            return (a, tuple(b), c)

        res = run_spmd(prog, 6)
        assert all(r == (0, (0, 1, 2, 3, 4, 5), "done") for r in res.returns)


class TestClocks:
    def test_barrier_synchronizes_clocks(self):
        def prog(comm):
            comm.compute(0.1 * (comm.rank + 1))
            comm.barrier()
            return comm.clock.now

        res = run_spmd(prog, 4)
        assert len(set(res.returns)) == 1
        assert res.returns[0] >= 0.4

    def test_message_cost_advances_receiver(self):
        def prog(comm):
            if comm.rank == 0:
                comm.compute(1.0)
                comm.send(np.zeros(1000), dest=1)
                return comm.clock.now
            got = comm.recv(source=0)
            return comm.clock.now

        res = run_spmd(prog, 2)
        assert res.returns[1] >= res.returns[0] >= 1.0

    def test_transfer_cost_formula(self):
        w = CommWorld(2)
        p = w.machine.params
        expect = p.link_latency_s + 1000 / (p.link_bandwidth_mbps * 1e6)
        assert w.transfer_cost(1000) == pytest.approx(expect)

    def test_byte_ledger(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(100, dtype=np.uint8), dest=1)
            else:
                comm.recv(source=0)

        res = run_spmd(prog, 2)
        assert res.world.total_bytes == 100
        assert res.world.total_messages == 1
        assert res.world.bytes_sent[0] == 100
