"""Tests for the MPI-style reduction operators."""

import numpy as np
import pytest

from repro.runtime import reducer
from repro.runtime.executor import run_spmd


class TestScalarOps:
    def test_arithmetic(self):
        assert reducer.SUM(2, 3) == 5
        assert reducer.PROD(2, 3) == 6
        assert reducer.MAX(2, 3) == 3
        assert reducer.MIN(2, 3) == 2

    def test_logical(self):
        assert reducer.LAND(True, False) is False
        assert reducer.LOR(True, False) is True

    def test_bitwise(self):
        assert reducer.BAND(0b1100, 0b1010) == 0b1000
        assert reducer.BOR(0b1100, 0b1010) == 0b1110
        assert reducer.BXOR(0b1100, 0b1010) == 0b0110


class TestArrayOps:
    def test_elementwise(self):
        a, b = np.array([1.0, 5.0]), np.array([4.0, 2.0])
        assert np.array_equal(reducer.SUM(a, b), [5.0, 7.0])
        assert np.array_equal(reducer.MAX(a, b), [4.0, 5.0])
        assert np.array_equal(reducer.MIN(a, b), [1.0, 2.0])
        assert np.array_equal(reducer.PROD(a, b), [4.0, 10.0])

    def test_mixed_scalar_array(self):
        assert np.array_equal(reducer.MAX(np.array([1, 9]), 5), [5, 9])


class TestLocOps:
    def test_maxloc_picks_value_then_lowest_rank(self):
        assert reducer.MAXLOC((3.0, 1), (5.0, 0)) == (5.0, 0)
        assert reducer.MAXLOC((5.0, 2), (5.0, 1)) == (5.0, 1)

    def test_minloc(self):
        assert reducer.MINLOC((3.0, 4), (5.0, 0)) == (3.0, 4)
        assert reducer.MINLOC((3.0, 4), (3.0, 2)) == (3.0, 2)


class TestInCollectives:
    def test_allreduce_with_standard_ops(self):
        def prog(comm):
            vec = np.array([float(comm.rank), 1.0])
            total = comm.allreduce(vec, op=reducer.SUM)
            peak = comm.allreduce(comm.rank, op=reducer.MAX)
            return float(total[0]), peak

        res = run_spmd(prog, 6)
        assert all(r == (15.0, 5) for r in res.returns)

    def test_maxloc_finds_owner_of_peak_residual(self):
        def prog(comm):
            residual = [0.4, 9.5, 0.1, 3.0][comm.rank]
            value, owner = comm.allreduce((residual, comm.rank), op=reducer.MAXLOC)
            return value, owner

        res = run_spmd(prog, 4)
        assert all(r == (9.5, 1) for r in res.returns)
