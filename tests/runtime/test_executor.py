"""Unit tests for the SPMD thread engine."""

import pytest

from repro.errors import CommunicationError, MachineError, TaskFailure
from repro.runtime.executor import run_spmd
from repro.runtime.machine import Machine, MachineParams


def test_returns_in_rank_order():
    res = run_spmd(lambda comm: comm.rank * 10, 4)
    assert res.returns == [0, 10, 20, 30]


def test_args_kwargs_forwarded():
    def prog(comm, a, b=0):
        return a + b + comm.rank

    res = run_spmd(prog, 2, args=(5,), kwargs={"b": 2})
    assert res.returns == [7, 8]


def test_elapsed_is_max_clock():
    def prog(comm):
        comm.compute(0.1 if comm.rank == 0 else 0.7)

    assert run_spmd(prog, 2).elapsed == pytest.approx(0.7)


def test_placement_recorded():
    m = Machine(MachineParams(num_nodes=8))
    res = run_spmd(lambda comm: None, 3, machine=m, nodes=[4, 5, 6])
    assert res.placement == {0: 4, 1: 5, 2: 6}


def test_placement_visible_to_tasks():
    def prog(comm):
        return comm.world.placement[comm.rank]

    res = run_spmd(prog, 3)
    assert res.returns == [0, 1, 2]


def test_machine_cleared_after_run():
    m = Machine(MachineParams(num_nodes=4))
    run_spmd(lambda comm: None, 4, machine=m)
    assert m.busy_fraction() == 0.0


def test_crash_propagates_original_exception():
    def prog(comm):
        if comm.rank == 2:
            raise KeyError("original")
        comm.recv(source=3)  # would block forever

    with pytest.raises(KeyError, match="original"):
        run_spmd(prog, 4)


def test_crash_unwinds_blocked_siblings_quickly():
    import time

    def prog(comm):
        if comm.rank == 0:
            raise RuntimeError("die")
        comm.barrier()

    t0 = time.monotonic()
    with pytest.raises(RuntimeError):
        run_spmd(prog, 4, comm_timeout=30.0)
    assert time.monotonic() - t0 < 5.0


def test_taskfailure_surfaces_when_only_failure():
    def prog(comm):
        if comm.rank == 0:
            raise TaskFailure("node gone")
        comm.barrier()

    with pytest.raises(TaskFailure):
        run_spmd(prog, 2)


def test_too_many_tasks_for_machine():
    m = Machine(MachineParams(num_nodes=2))
    with pytest.raises(MachineError):
        run_spmd(lambda comm: None, 3, machine=m)


def test_single_task_runs_inline_semantics():
    res = run_spmd(lambda comm: comm.allreduce(5), 1)
    assert res.returns == [5]
