"""Tests for the communication tracer."""

import numpy as np
import pytest

from repro.runtime.comm import CommWorld, TaskComm
from repro.runtime.trace import CommTracer


def run_pattern(world):
    a, b = TaskComm(world, 0), TaskComm(world, 1)
    a.send(np.zeros(100, dtype=np.uint8), dest=1, tag=1)
    b.recv(source=0, tag=1)
    b.send(np.zeros(50, dtype=np.uint8), dest=0, tag=2)
    a.recv(source=1, tag=2)
    a.send(np.zeros(25, dtype=np.uint8), dest=1, tag=3)
    b.recv(source=0, tag=3)


def test_records_every_message():
    world = CommWorld(2)
    with CommTracer(world) as tr:
        run_pattern(world)
    assert tr.total_messages == 3
    assert tr.total_bytes == 175


def test_pair_matrix_and_hot_pairs():
    world = CommWorld(2)
    with CommTracer(world) as tr:
        run_pattern(world)
    assert tr.pair_matrix() == {(0, 1): 125, (1, 0): 50}
    assert tr.hottest_pairs(1) == [((0, 1), 125)]
    assert tr.per_rank_sent() == {0: 125, 1: 50}


def test_detach_restores_world():
    world = CommWorld(2)
    tr = CommTracer(world).attach()
    run_pattern(world)
    tr.detach()
    run_pattern(world)  # untraced
    assert tr.total_messages == 3
    assert world.total_messages == 6  # ledger still counts everything


def test_attach_idempotent():
    world = CommWorld(2)
    tr = CommTracer(world)
    tr.attach()
    tr.attach()
    run_pattern(world)
    tr.detach()
    assert tr.total_messages == 3


def test_nested_tracers_detach_inner_first():
    world = CommWorld(2)
    outer = CommTracer(world).attach()
    inner = CommTracer(world).attach()
    run_pattern(world)  # both see 3
    inner.detach()
    run_pattern(world)  # only outer sees these
    outer.detach()
    run_pattern(world)  # untraced
    assert inner.total_messages == 3
    assert outer.total_messages == 6
    assert world.total_messages == 9


def test_nested_tracers_detach_outer_first():
    """Regression: detaching the outer tracer while an inner one is
    still attached must unlink only the outer wrapper from the middle
    of the chain, not clobber world.send with a stale function."""
    world = CommWorld(2)
    outer = CommTracer(world).attach()
    inner = CommTracer(world).attach()
    outer.detach()
    run_pattern(world)  # inner keeps recording
    inner.detach()
    run_pattern(world)  # untraced
    assert outer.total_messages == 0
    assert inner.total_messages == 3
    assert world.total_messages == 6


def test_summary_renders():
    world = CommWorld(2)
    with CommTracer(world) as tr:
        run_pattern(world)
    text = tr.summary()
    assert "3 messages" in text
    assert "175 bytes" in text


def test_timeline_bins_sum_to_total():
    world = CommWorld(2)
    with CommTracer(world) as tr:
        run_pattern(world)
    bins = tr.timeline(bins=4)
    assert sum(bins) == tr.total_bytes
    assert len(bins) == 4


def test_empty_timeline():
    assert CommTracer(CommWorld(2)).timeline(bins=3) == [0, 0, 0]


def test_degenerate_timeline_is_a_single_bin():
    """Regression: when every record shares one send time there is no
    span to subdivide — all traffic lands in one bin instead of an
    arbitrary rescaled spread."""
    from repro.runtime.trace import TraceRecord

    tr = CommTracer(CommWorld(2))
    for nbytes in (100, 50, 25):
        tr.records.append(TraceRecord(time=0.0, src=0, dst=1, tag=1, nbytes=nbytes))
    assert tr.timeline(bins=10) == [tr.total_bytes] == [175]


def test_messages_publish_to_active_metrics_registry():
    from repro.obs import Tracer, use_tracer

    world = CommWorld(2)
    with use_tracer(Tracer()) as obs:
        with CommTracer(world) as tr:
            run_pattern(world)
    assert obs.metrics.counter("comm.messages").value == tr.total_messages
    assert obs.metrics.counter("comm.bytes").value == tr.total_bytes


def test_explicit_registry_overrides_active_tracer():
    from repro.obs.metrics import MetricsRegistry

    world = CommWorld(2)
    reg = MetricsRegistry()
    with CommTracer(world, metrics=reg):
        run_pattern(world)
    assert reg.counter("comm.bytes").value == 175


def test_traces_collectives_in_spmd_run():
    from repro.runtime.executor import run_spmd

    traced = {}

    def prog(comm):
        if comm.rank == 0 and "tracer" not in traced:
            traced["tracer"] = CommTracer(comm.world).attach()
        comm.barrier()
        comm.allgather(np.zeros(10))
        comm.barrier()

    run_spmd(prog, 4)
    tr = traced["tracer"]
    # allgather = gather to 0 (3 msgs) + bcast of the list (3 msgs)
    assert tr.total_messages >= 6
