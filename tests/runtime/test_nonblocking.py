"""Tests for non-blocking communication (isend/irecv + Request)."""

import numpy as np
import pytest

from repro.runtime.executor import run_spmd


def test_isend_completes_immediately():
    def prog(comm):
        if comm.rank == 0:
            req = comm.isend({"x": 1}, dest=1)
            assert req.completed
            assert req.wait() is None
        else:
            assert comm.recv(source=0) == {"x": 1}

    run_spmd(prog, 2)


def test_irecv_wait():
    def prog(comm):
        if comm.rank == 0:
            comm.send("hello", dest=1, tag=4)
        else:
            req = comm.irecv(source=0, tag=4)
            return req.wait()

    assert run_spmd(prog, 2).returns[1] == "hello"


def test_irecv_test_polls():
    def prog(comm):
        if comm.rank == 1:
            req = comm.irecv(source=0, tag=9)
            # nothing sent yet: poll must not block or match
            done, _ = req.test()
            first = done
            comm.barrier()  # rank 0 sends before this barrier
            comm.send(None, dest=0, tag=1)  # handshake
            payload = req.wait()
            return (first, payload)
        comm.send(42, dest=1, tag=9)
        comm.barrier()
        comm.recv(source=1, tag=1)

    first, payload = run_spmd(prog, 2).returns[1]
    assert payload == 42


def test_overlapping_irecvs_match_by_tag():
    def prog(comm):
        if comm.rank == 0:
            comm.send("a", dest=1, tag=1)
            comm.send("b", dest=1, tag=2)
        else:
            r2 = comm.irecv(source=0, tag=2)
            r1 = comm.irecv(source=0, tag=1)
            return (r1.wait(), r2.wait())

    assert run_spmd(prog, 2).returns[1] == ("a", "b")


def test_halo_exchange_with_nonblocking():
    """The classic irecv/isend/wait halo pattern."""

    def prog(comm):
        left = (comm.rank - 1) % comm.size
        right = (comm.rank + 1) % comm.size
        r_from_left = comm.irecv(source=left, tag=10)
        r_from_right = comm.irecv(source=right, tag=11)
        comm.isend(np.full(4, comm.rank), dest=right, tag=10)
        comm.isend(np.full(4, comm.rank), dest=left, tag=11)
        lo = r_from_left.wait()
        hi = r_from_right.wait()
        return (int(lo[0]), int(hi[0]))

    res = run_spmd(prog, 5)
    for r, (lo, hi) in enumerate(res.returns):
        assert lo == (r - 1) % 5
        assert hi == (r + 1) % 5


def test_wait_twice_is_idempotent():
    def prog(comm):
        if comm.rank == 0:
            comm.send(7, dest=1)
        else:
            req = comm.irecv(source=0)
            assert req.wait() == 7
            assert req.wait() == 7  # cached, does not re-receive
            assert req.test() == (True, 7)

    run_spmd(prog, 2)
