"""Unit tests for the simulated machine."""

import pytest

from repro.errors import MachineError
from repro.runtime.machine import Machine, MachineParams


def test_default_is_paper_testbed():
    m = Machine()
    p = m.params
    assert m.num_nodes == 16
    assert p.mem_mb_per_node == 128.0
    assert p.cpu_mhz == 67.0


def test_params_validated():
    with pytest.raises(MachineError):
        MachineParams(num_nodes=0)
    with pytest.raises(MachineError):
        MachineParams(mem_mb_per_node=-1)


def test_place_tasks_one_to_one():
    m = Machine(MachineParams(num_nodes=8))
    placement = m.place_tasks(4)
    assert placement == {0: 0, 1: 1, 2: 2, 3: 3}
    assert m.busy_fraction() == 0.5


def test_place_on_named_nodes():
    m = Machine(MachineParams(num_nodes=8))
    placement = m.place_tasks(2, nodes=[5, 7])
    assert placement == {0: 5, 1: 7}
    assert m.node(5).tasks == [0]


def test_place_requires_enough_up_nodes():
    m = Machine(MachineParams(num_nodes=4))
    m.fail_node(0)
    with pytest.raises(MachineError):
        m.place_tasks(4)
    # but 3 still fit, skipping the failed node
    placement = m.place_tasks(3)
    assert 0 not in placement.values()


def test_cannot_place_on_failed_node():
    m = Machine(MachineParams(num_nodes=4))
    m.fail_node(2)
    with pytest.raises(MachineError):
        m.place_tasks(1, nodes=[2])


def test_fail_and_repair():
    m = Machine(MachineParams(num_nodes=4))
    m.fail_node(1)
    assert m.up_nodes() == [0, 2, 3]
    m.repair_node(1)
    assert len(m.up_nodes()) == 4


def test_clear_tasks():
    m = Machine(MachineParams(num_nodes=4))
    m.place_tasks(4)
    m.clear_tasks()
    assert m.busy_fraction() == 0.0
