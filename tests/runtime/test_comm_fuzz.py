"""Fuzzed message-passing schedules: for any random DAG of sends the
matching receives always deliver the right payloads and the simulated
clocks stay causally consistent."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.executor import run_spmd


@st.composite
def message_plans(draw):
    """A random set of point-to-point messages between <=5 ranks."""
    nranks = draw(st.integers(2, 5))
    nmsgs = draw(st.integers(1, 12))
    msgs = []
    for i in range(nmsgs):
        src = draw(st.integers(0, nranks - 1))
        dst = draw(st.integers(0, nranks - 1).filter(lambda d: d != src))
        msgs.append((src, dst, i))  # tag == unique message id
    return nranks, msgs


@given(message_plans())
@settings(max_examples=25, deadline=None)
def test_random_schedules_deliver_exactly(plan):
    nranks, msgs = plan

    def prog(comm):
        # every rank posts all its receives non-blocking first, then
        # performs its sends, then drains — deadlock-free by design
        recvs = [
            (comm.irecv(source=src, tag=tag), src, tag)
            for src, dst, tag in msgs
            if dst == comm.rank
        ]
        for src, dst, tag in msgs:
            if src == comm.rank:
                comm.send({"tag": tag, "from": src}, dest=dst, tag=tag)
        got = {}
        for req, src, tag in recvs:
            payload = req.wait()
            got[tag] = (payload["from"], payload["tag"])
        return got

    res = run_spmd(prog, nranks)
    for src, dst, tag in msgs:
        assert res.returns[dst][tag] == (src, tag)


@given(message_plans())
@settings(max_examples=15, deadline=None)
def test_clocks_causally_consistent(plan):
    """After a terminal barrier all clocks agree, and total simulated
    time is at least the cost of the longest single transfer."""
    nranks, msgs = plan

    def prog(comm):
        for src, dst, tag in msgs:
            if src == comm.rank:
                comm.send(np.zeros(64), dest=dst, tag=tag)
        for src, dst, tag in msgs:
            if dst == comm.rank:
                comm.recv(source=src, tag=tag)
        comm.barrier()
        return comm.clock.now

    res = run_spmd(prog, nranks)
    assert len(set(res.returns)) == 1
    single = res.world.transfer_cost(64 * 8)
    assert res.returns[0] >= single - 1e-12
