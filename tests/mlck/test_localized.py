"""Localized recovery end to end: survivors keep running, only the dead
nodes' sections are rebuilt, replicas are re-placed, and the degenerate
rebuild scopes (zero-piece nodes, whole-replica-set loss, simultaneous
multi-node failure, failure mid-drain) all resolve correctly."""

import numpy as np
import pytest

from repro.drms.api import (
    drms_adjust,
    drms_create_distribution,
    drms_distribute,
    drms_initialize,
    drms_reconfig_checkpoint,
)
from repro.drms.context import CheckpointStatus
from repro.errors import SchedulerError
from repro.infra import DRMSCluster, FailurePlan
from repro.mlck.checkpointer import MultiLevelCheckpointer
from repro.mlck.drain import DrainState
from repro.mlck.localized import compute_rebuild_scope, rebuild_lost_sections
from repro.mlck.placement import select_partners
from repro.obs import Tracer, use_tracer
from repro.pfs.faults import FaultInjector
from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine, MachineParams

pytestmark = pytest.mark.localized

N = 10
NITER = 12
NTASKS = 6


def main(ctx, base):
    drms_initialize(ctx)
    dist = drms_create_distribution(ctx, (N, N), shadow=(1, 1))
    u = drms_distribute(ctx, "u", dist, init_global=np.ones((N, N)))
    for it in ctx.iterations(1, NITER + 1):
        if it % 4 == 1:
            status, delta = drms_reconfig_checkpoint(ctx, base)
            if status is CheckpointStatus.RESTARTED and delta != 0:
                u = drms_distribute(ctx, "u", drms_adjust(ctx, "u"))
        u.set_assigned(u.assigned + 1.0)
        ctx.barrier()
    return float(u.assigned.sum())


@pytest.fixture
def cluster():
    return DRMSCluster(
        machine=Machine(MachineParams(num_nodes=8)), node_repair_s=600.0
    )


def test_survivors_keep_running_and_only_lost_sections_move(cluster):
    """The tentpole scenario: node 0 (a replica owner) dies at
    iteration 7; the pool is patched in place, everyone rolls back to
    ck.000002 with survivor-local data movement, the lost replicas are
    re-placed, and the run finishes on the same task count."""
    app = cluster.build_app(main, tier="memory+pfs", mlck_drain="sync")
    with use_tracer(Tracer()) as tracer:
        out = cluster.run_with_localized_recovery(
            "j", app, NTASKS, args=("ck",), prefix="ck",
            failure=FailurePlan(iteration=7, node_id=0),
        )
        flat = tracer.metrics.flat()
    assert out.failed_nodes == [0]
    assert out.tasks_before == out.tasks_after == NTASKS
    g = out.final_report.arrays["u"].to_global()
    assert np.all(g == 1.0 + NITER)
    # served locally from the memory tier, not the PFS
    assert out.final_report.restarted_from == "ck.000002"
    assert out.final_report.restart_breakdown.kind == "mlck-l1-localized"
    assert flat.get("mlck.localized.restores", 0) == 1
    assert flat.get("mlck.localized.pfs_fallbacks", 0) == 0
    assert out.recovered_without_repair

    # the scope is exactly rank 0 (the rank placed on node 0)
    scope = out.rebuild_scope
    assert scope.lost_ranks == (0,)
    repl = scope.replacements[0]
    assert repl != 0 and cluster.machine.node(repl).up
    assert 0 < scope.lost_bytes < scope.total_bytes
    assert flat.get("mlck.localized.lost.bytes", 0) > 0
    assert flat.get("mlck.localized.survivor.bytes", 0) > 0

    # node 0 owned L1 pieces, so re-replication placed fresh copies —
    # and no piece of the restored generation still lists the dead node
    assert flat.get("mlck.localized.rereplicate.copies", 0) > 0
    store = app.l1_store_for("ck")
    gen = store.gen("ck.000002")
    for pieces in [gen.segment_pieces] + [e.pieces for e in gen.arrays]:
        for p in pieces:
            assert 0 not in p.replicas

    # the survivors were quiesced at the last SOP crossing (iteration 5)
    (quiesced,) = [e for e in out.events if e.kind == "survivors_quiesced"]
    assert quiesced.detail["iteration"] == 5
    assert 0 not in quiesced.detail["nodes"]
    # only the replacement TC restarted; survivors stayed connected
    (restarted,) = [e for e in out.events if e.kind == "tcs_restarted"]
    assert restarted.detail["localized"] is True
    assert restarted.detail["replacements"] == {0: repl}


def test_failed_node_holding_zero_pieces_still_rebuilds_its_rank(cluster):
    """Degenerate scope: node 3 hosts rank 3 but owns no L1 replicas at
    all (piece placement round-robins over the first nodes).  There is
    nothing to re-replicate, yet the rank's section must be rebuilt."""
    app = cluster.build_app(main, tier="memory+pfs", mlck_drain="sync")
    with use_tracer(Tracer()) as tracer:
        out = cluster.run_with_localized_recovery(
            "j", app, NTASKS, args=("ck",), prefix="ck",
            failure=FailurePlan(iteration=7, node_id=3),
        )
        flat = tracer.metrics.flat()
    store = app.l1_store_for("ck")
    held = [
        p
        for prefix in store.generations()
        for pieces in (
            [store.gen(prefix).segment_pieces]
            + [e.pieces for e in store.gen(prefix).arrays]
        )
        for p in pieces
        if 3 in p.replicas
    ]
    assert held == []  # the premise: node 3 held no replica copies
    assert flat.get("mlck.localized.rereplicate.copies", 0) == 0
    assert flat.get("mlck.localized.rereplicate.bytes", 0) == 0
    assert out.rebuild_scope.lost_ranks == (3,)
    assert out.final_report.restart_breakdown.kind == "mlck-l1-localized"
    g = out.final_report.arrays["u"].to_global()
    assert np.all(g == 1.0 + NITER)


def test_empty_rebuild_scope_when_failed_node_hosts_no_rank():
    """A failure outside the placement loses zero ranks: the scope is
    empty and the scatter primitive is a no-op."""
    from repro.arrays.darray import DistributedArray
    from repro.arrays.distributions import block_distribution

    shape = (6, 4)
    dist = block_distribution(shape, 2)
    arr = DistributedArray("A", shape, np.float64, dist, store_data=True)
    ref = np.arange(24.0).reshape(shape)
    arr.set_global(ref)
    manifest = {
        "prefix": "ck.000001",
        "segment_bytes": 64,
        "arrays": [{
            "name": "A", "shape": list(shape), "dtype": "float64",
            "nbytes": ref.nbytes,
            # never decoded: the override below supplies the distribution
            "distribution": None,
        }],
    }
    scope = compute_rebuild_scope(
        manifest, 2, placement={0: 0, 1: 1}, failed_nodes=[7],
        distribution_overrides={"A": dist},
    )
    assert scope.lost_ranks == ()
    assert scope.survivor_ranks == (0, 1)
    assert scope.lost_bytes == 0 and scope.lost_fraction == 0.0
    assert all(a.lost_intervals == () for a in scope.arrays)
    flat = np.arange(24.0)
    before = arr.to_global(fill=0).copy()
    assert rebuild_lost_sections(arr, flat, scope.lost_ranks) == 0
    np.testing.assert_array_equal(arr.to_global(fill=0), before)


def test_whole_replica_set_loss_falls_back_to_pfs(cluster):
    """When one incident takes every copy of an L1 piece — the owner
    and its partner struck simultaneously — the survivors' own state of
    that generation is gone too, and localized recovery degrades to a
    full, metered read of the newest byte-valid PFS generation."""
    owner = 0
    partner = select_partners(cluster.machine, owner, k=1)[0]
    app = cluster.build_app(main, tier="memory+pfs", mlck_drain="sync")
    with use_tracer(Tracer()) as tracer:
        out = cluster.run_with_localized_recovery(
            "j", app, NTASKS, args=("ck",), prefix="ck",
            failure=FailurePlan(multi=[(10, owner), (10, partner)]),
        )
        flat = tracer.metrics.flat()
    assert sorted(out.failed_nodes) == sorted([owner, partner])
    # generation 3 (iteration 9) replicated a piece exactly onto the
    # doomed pair, so the L1 tier cannot serve it; the drained PFS copy
    # preserves the newest state
    assert out.final_report.restarted_from == "ck.000003"
    assert out.final_report.restart_breakdown.kind == "drms"
    assert flat.get("mlck.localized.pfs_fallbacks", 0) == 1
    assert flat.get("mlck.localized.restores", 0) == 0
    g = out.final_report.arrays["u"].to_global()
    assert np.all(g == 1.0 + NITER)
    # the scope still names every rank the incident lost
    lost = tuple(
        r for r in range(NTASKS)
        if r in (owner, partner)  # rank r was placed on node r
    )
    assert out.rebuild_scope.lost_ranks == lost


def test_simultaneous_multi_node_failure_is_one_incident(cluster):
    """Two same-iteration ``multi=`` entries strike as one incident:
    both nodes leave the pool at once, both ranks land on replacements,
    and the restored run still serves from the memory tier (the doomed
    nodes held no common piece)."""
    app = cluster.build_app(main, tier="memory+pfs", mlck_drain="sync")
    with use_tracer(Tracer()) as tracer:
        out = cluster.run_with_localized_recovery(
            "j", app, NTASKS, args=("ck",), prefix="ck",
            failure=FailurePlan(multi=[(7, 3), (7, 4)]),
        )
        flat = tracer.metrics.flat()
    assert sorted(out.failed_nodes) == [3, 4]
    assert not cluster.machine.node(3).up and not cluster.machine.node(4).up
    assert out.tasks_after == NTASKS
    assert out.final_report.restart_breakdown.kind == "mlck-l1-localized"
    assert flat.get("mlck.localized.pfs_fallbacks", 0) == 0
    scope = out.rebuild_scope
    assert scope.lost_ranks == (3, 4)
    repls = scope.replacements
    assert sorted(repls) == [3, 4]
    assert len({repls[3], repls[4]}) == 2  # distinct spares
    assert all(cluster.machine.node(n).up for n in repls.values())
    g = out.final_report.arrays["u"].to_global()
    assert np.all(g == 1.0 + NITER)


def test_localized_recovery_without_a_spare_is_refused():
    """Every node hosts a task: there is no idle processor to adopt the
    lost rank, and the RC refuses the localized protocol (callers fall
    back to the full kill-and-restart path)."""
    cluster = DRMSCluster(machine=Machine(MachineParams(num_nodes=4)))
    app = cluster.build_app(main, tier="memory+pfs", mlck_drain="sync")
    with pytest.raises(SchedulerError, match="no idle processor"):
        cluster.run_with_localized_recovery(
            "j", app, 4, args=("ck",), prefix="ck",
            failure=FailurePlan(iteration=7, node_id=1),
        )


def test_failure_mid_drain_holds_the_pin_interlock(workload):
    """A failure striking while a drain is in flight must not corrupt
    retention: the newest durable generation was pinned for the drain's
    duration, the failed drain unpins it on the way out, and localized
    recovery falls back past the undrained generation to it."""
    machine = Machine(MachineParams(num_nodes=8))
    pfs = PIOFS(machine=machine)
    ck = MultiLevelCheckpointer(
        pfs, "ck", machine=machine, k=1, keep=1, drain="sync"
    )
    seg1, arrays1 = workload(ntasks=2, iteration=1)
    refs = {a.name: a.to_global(fill=0) for a in arrays1}
    ck.checkpoint(seg1, arrays1)  # ck.000001: captured + drained durable
    assert ck.store.gen("ck.000001").drain_state == DrainState.DURABLE

    # generation 2's drain dies mid-write (the node failure hit the
    # drain): no manifest commits, the half-written state is invisible
    seg2, arrays2 = workload(ntasks=2, iteration=2, fill=100.0)
    inj = FaultInjector()
    inj.fail_write(nth=1, mode="fail")
    pfs.attach_faults(inj)
    try:
        ck.checkpoint(seg2, arrays2)
    finally:
        pfs.attach_faults(None)
    gen2 = ck.store.gen("ck.000002")
    assert gen2.drain_state == DrainState.FAILED
    # the interlock released: nothing stays pinned after the drain ends,
    # and keep=1 retention never deleted the only durable fallback
    assert ck.rotation.pinned == frozenset()
    assert ck.rotation.latest() == "ck.000001"

    # the same incident takes every L1 copy of a generation-2 piece;
    # with its L2 copy never committed, recovery must land on ck.000001
    failed = list(gen2.segment_pieces[0].replicas)
    for node in failed:
        machine.fail_node(node)
        ck.on_node_failure(node)
    survivor = next(n for n in machine.up_nodes() if n not in failed)
    placement = {0: failed[0], 1: survivor}
    spare = next(
        n
        for n in machine.up_nodes()
        if n not in placement.values() and n not in failed
    )
    state, bd, decision, scope = ck.restart_localized(
        2, placement, failed, replacements={failed[0]: spare}
    )
    assert decision.prefix == "ck.000001"
    assert scope.lost_ranks == (0,)
    for name, arr in state.arrays.items():
        np.testing.assert_array_equal(arr.to_global(fill=0), refs[name])
