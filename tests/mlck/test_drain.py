"""DrainController: async promotion, crash behavior, retention interlock."""

import numpy as np
import pytest

from repro.checkpoint.drms import drms_checkpoint, drms_restart
from repro.checkpoint.rotation import CheckpointRotation, generations
from repro.checkpoint.validate import validate_checkpoint
from repro.errors import CheckpointError
from repro.mlck.drain import DrainController, DrainState
from repro.mlck.store import L1Store
from repro.pfs.faults import FaultInjector
from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine, MachineParams

pytestmark = pytest.mark.mlck


@pytest.fixture
def env(workload):
    machine = Machine(MachineParams(num_nodes=8))
    pfs = PIOFS(machine=machine)
    store = L1Store(machine, k=1)
    return machine, pfs, store


def test_drained_state_is_byte_identical_to_direct_checkpoint(env, workload):
    machine, pfs, store = env
    seg, arrays = workload(iteration=2)
    store.capture_drms("ck.000001", seg, arrays)
    DrainController(store, pfs, synchronous=True).schedule("ck.000001")

    # the drained generation passes the ordinary PFS validation...
    assert validate_checkpoint(pfs, "ck.000001").ok
    # ...and equals a direct drms_checkpoint of the same state, byte
    # for byte, on every stored file
    pfs2 = PIOFS(machine=Machine(MachineParams(num_nodes=8)))
    drms_checkpoint(pfs2, "ck.000001", seg, arrays)
    for name in sorted(pfs.listdir("ck.000001")):
        if name.endswith(".manifest"):
            continue  # manifests may differ in recorded timing fields
        size = pfs.file_size(name)
        assert size == pfs2.file_size(name)
        if size:
            assert pfs.read_at(name, 0, size) == pfs2.read_at(name, 0, size)
    state, _ = drms_restart(pfs, "ck.000001", ntasks=3)
    assert state.segment.serialize() == seg.serialize()


def test_failed_drain_leaves_no_manifest_and_is_retryable(env, workload):
    machine, pfs, store = env
    seg, arrays = workload()
    store.capture_drms("ck.000001", seg, arrays)
    drainer = DrainController(store, pfs, synchronous=True)

    inj = FaultInjector()
    inj.fail_write(nth=1, mode="fail")
    pfs.attach_faults(inj)
    try:
        drainer.schedule("ck.000001")
    finally:
        pfs.attach_faults(None)
    gen = store.gen("ck.000001")
    assert gen.drain_state == DrainState.FAILED
    assert gen.drain_error
    assert not pfs.exists("ck.000001.manifest")

    # the failure was recorded, not raised; a retry drains cleanly
    drainer.schedule("ck.000001")
    assert store.gen("ck.000001").drain_state == DrainState.DURABLE
    assert validate_checkpoint(pfs, "ck.000001").ok


def test_draining_twice_is_refused(env, workload):
    machine, pfs, store = env
    seg, arrays = workload()
    store.capture_drms("ck.000001", seg, arrays)
    drainer = DrainController(store, pfs, synchronous=True)
    drainer.schedule("ck.000001")
    with pytest.raises(CheckpointError):
        drainer.schedule("ck.000001")


def test_prune_during_drain_keeps_newest_durable_fallback(env, workload):
    """Satellite regression: while a drain is in flight the newest
    durable generation is pinned — retention must not delete the only
    durable fallback, however the counts work out."""
    machine, pfs, store = env
    rot = CheckpointRotation(pfs, "ck", keep=1)

    # one durable generation on L2
    seg1, arrays1 = workload(iteration=1)
    store.capture_drms("ck.000001", seg1, arrays1)
    DrainController(store, pfs, rotation=rot, synchronous=True).schedule(
        "ck.000001"
    )
    assert generations(pfs, "ck") == ["ck.000001"]

    # a second generation's drain is "in flight": the controller has
    # pinned ck.000001 (the newest durable fallback).  keep=1 dooms it
    # the moment ck.000002 commits — but the pin must hold until the
    # drain's finally block releases it.
    seg2, arrays2 = workload(iteration=2)
    store.capture_drms("ck.000002", seg2, arrays2)
    rot.pin("ck.000001")
    try:
        drms_checkpoint(pfs, "ck.000002", seg2, arrays2)
        assert rot.prune() == []  # ck.000001 pinned: nothing deleted
        assert set(generations(pfs, "ck")) == {"ck.000001", "ck.000002"}
    finally:
        rot.unpin("ck.000001")
    # pin released (drain finished): retention applies normally again
    assert rot.prune() == ["ck.000001"]
    assert generations(pfs, "ck") == ["ck.000002"]


def test_sync_drain_applies_retention(env, workload):
    machine, pfs, store = env
    rot = CheckpointRotation(pfs, "ck", keep=2)
    drainer = DrainController(store, pfs, rotation=rot, synchronous=True)
    for g in (1, 2, 3):
        seg, arrays = workload(iteration=g)
        store.capture_drms(f"ck.{g:06d}", seg, arrays)
        drainer.schedule(f"ck.{g:06d}")
    assert generations(pfs, "ck") == ["ck.000002", "ck.000003"]


def test_evict_after_drain_frees_memory(env, workload):
    machine, pfs, store = env
    seg, arrays = workload()
    store.capture_drms("ck.000001", seg, arrays)
    DrainController(
        store, pfs, synchronous=True, evict_after_drain=True
    ).schedule("ck.000001")
    assert not store.has("ck.000001")
    assert validate_checkpoint(pfs, "ck.000001").ok


def test_async_drain_overlaps_and_completes(env, workload):
    machine, pfs, store = env
    seg, arrays = workload()
    store.capture_drms("ck.000001", seg, arrays)
    drainer = DrainController(store, pfs, synchronous=False)
    future = drainer.schedule("ck.000001")
    assert future is not None
    drainer.wait(timeout=30.0)
    assert store.gen("ck.000001").drain_state == DrainState.DURABLE
    assert drainer.pending == 0
    assert validate_checkpoint(pfs, "ck.000001").ok
