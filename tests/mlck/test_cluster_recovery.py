"""Failure recovery through the cluster daemons with tier="memory+pfs":
the JSA's restart-state walk upgrades to the tier-aware policy and the
restarted job is served from surviving memory replicas — or from the
drained PFS copy when a partner-loss schedule wipes the L1 generation."""

import numpy as np
import pytest

from repro.drms.api import (
    drms_adjust,
    drms_create_distribution,
    drms_distribute,
    drms_initialize,
    drms_reconfig_checkpoint,
)
from repro.drms.context import CheckpointStatus
from repro.errors import TaskFailure
from repro.infra import DRMSCluster, FailurePlan
from repro.mlck.placement import select_partners
from repro.obs import Tracer, use_tracer
from repro.runtime.machine import Machine, MachineParams

pytestmark = pytest.mark.mlck

N = 10
NITER = 12


def main(ctx, base):
    drms_initialize(ctx)
    dist = drms_create_distribution(ctx, (N, N), shadow=(1, 1))
    u = drms_distribute(ctx, "u", dist, init_global=np.ones((N, N)))
    for it in ctx.iterations(1, NITER + 1):
        if it % 4 == 1:
            # under tier="memory+pfs" the base names a rotation: each
            # call captures a fresh L1 generation (ck.000001, ...)
            status, delta = drms_reconfig_checkpoint(ctx, base)
            if status is CheckpointStatus.RESTARTED and delta != 0:
                u = drms_distribute(ctx, "u", drms_adjust(ctx, "u"))
        u.set_assigned(u.assigned + 1.0)
        ctx.barrier()
    return float(u.assigned.sum())


@pytest.fixture
def cluster():
    return DRMSCluster(
        machine=Machine(MachineParams(num_nodes=8)), node_repair_s=600.0
    )


def test_recovery_is_served_from_memory_tier(cluster):
    app = cluster.build_app(main, tier="memory+pfs", mlck_drain="sync")
    with use_tracer(Tracer()) as tracer:
        out = cluster.run_with_recovery(
            "j", app, 8, args=("ck",), prefix="ck",
            failure=FailurePlan(iteration=7, node_id=3),
        )
        flat = tracer.metrics.flat()
    assert out.failed_node == 3
    g = out.final_report.arrays["u"].to_global()
    assert np.all(g == 1.0 + NITER)
    # the restart came out of node memory, not the PFS
    assert out.final_report.restarted_from == "ck.000002"
    assert out.final_report.restart_breakdown.kind == "mlck-l1"
    assert flat.get("mlck.recover.l1", 0) == 1
    verified = cluster.events.of_kind("checkpoint_verified", prefix="ck.000002")
    assert verified and verified[-1].detail["tier"] == "l1"
    assert out.recovered_without_repair


def test_partner_loss_schedule_falls_back_to_pfs(cluster):
    """Satellite scenario: a FailurePlan ``multi=`` schedule kills a
    replica owner and then its partner.  With both copies of an L1
    piece gone the tier-aware walk must reject the memory tier and
    restart from the generation's drained PFS copy."""
    machine = cluster.machine
    owner = 0  # piece round-robin starts at the first up node
    partner = select_partners(machine, owner, k=1)[0]
    app = cluster.build_app(main, tier="memory+pfs", mlck_drain="sync")
    plan = FailurePlan(multi=[(10, owner), (11, partner)])

    cluster.jsa.submit("j", app, args=("ck",), prefix="ck")
    app.failure_plan = plan
    with pytest.raises(TaskFailure):
        cluster.jsa.run("j", ntasks=8)
    assert plan.fired_nodes == [owner]
    cluster.rc.handle_processor_failure(owner)
    app.on_node_failure(owner, clock=cluster.rc.clock)

    # generation 3 (iteration 9) replicated its first piece exactly onto
    # the doomed pair
    store = app.l1_store_for("ck")
    assert store.gen("ck.000003").segment_pieces[0].replicas == [owner, partner]

    # first recovery restarts from surviving memory, resumes at
    # iteration 9, and the schedule's second entry kills the partner
    with pytest.raises(TaskFailure):
        cluster.jsa.recover("j")
    assert plan.fired_nodes == [owner, partner]
    assert plan.fired and plan.pending is None
    cluster.rc.handle_processor_failure(partner)
    app.on_node_failure(partner, clock=cluster.rc.clock)

    with use_tracer(Tracer()) as tracer:
        report = cluster.jsa.recover("j")
        flat = tracer.metrics.flat()
    # both replicas of the first piece are gone: generation 3 is served
    # by its drained PFS copy, newest state preserved
    assert report.restarted_from == "ck.000003"
    assert report.restart_breakdown.kind == "drms"
    assert flat.get("mlck.recover.l2", 0) == 1
    assert flat.get("mlck.l2.fallbacks", 0) == 1
    g = report.arrays["u"].to_global()
    assert np.all(g == 1.0 + NITER)
    verified = cluster.events.of_kind("checkpoint_verified", prefix="ck.000003")
    assert verified[-1].detail["tier"] == "l2"
