"""Replica placement over failure domains (repro.mlck.placement)."""

import pytest

from repro.errors import CheckpointError
from repro.infra.events import EventLog
from repro.mlck.placement import replica_nodes, select_partners
from repro.runtime.machine import Machine, MachineParams

pytestmark = pytest.mark.mlck


def test_partners_land_outside_owner_domain():
    m = Machine(MachineParams(num_nodes=16, failure_domains=4))
    for owner in range(16):
        partners = select_partners(m, owner, k=2)
        assert len(partners) == 2
        for p in partners:
            assert m.domain_of(p) != m.domain_of(owner)
            assert p != owner


def test_selection_is_deterministic_and_spreads():
    m = Machine(MachineParams(num_nodes=16, failure_domains=4))
    assert select_partners(m, 3, k=1) == select_partners(m, 3, k=1)
    # different owners do not all pile onto the same partner
    partners = {select_partners(m, o, k=1)[0] for o in range(16)}
    assert len(partners) > 1


def test_replica_nodes_lead_with_owner():
    m = Machine(MachineParams(num_nodes=8, failure_domains=4))
    nodes = replica_nodes(m, 5, k=1)
    assert nodes[0] == 5
    assert len(nodes) == 2
    assert len(set(nodes)) == 2


def test_down_nodes_are_never_picked():
    m = Machine(MachineParams(num_nodes=8, failure_domains=4))
    picked_before = select_partners(m, 0, k=1)[0]
    m.fail_node(picked_before)
    after = select_partners(m, 0, k=1)
    assert picked_before not in after
    assert m.domain_of(after[0]) != m.domain_of(0)


def test_single_domain_fallback_warns_on_event_log():
    m = Machine(MachineParams(num_nodes=4, failure_domains=1))
    events = EventLog()
    partners = select_partners(m, 0, k=1, events=events, clock=7.0)
    # still replicated, just not cross-domain
    assert len(partners) == 1
    assert partners[0] != 0
    warnings = events.of_kind("mlck_partner_fallback")
    assert len(warnings) == 1
    ev = warnings[0]
    assert ev.time == 7.0
    assert ev.detail["owner"] == 0
    assert ev.detail["partners"] == partners


def test_unsatisfiable_replication_returns_short_list_with_warning():
    # only one other node exists: the caller keeps what replication is
    # possible rather than refusing to checkpoint
    m = Machine(MachineParams(num_nodes=2, failure_domains=1))
    events = EventLog()
    partners = select_partners(m, 0, k=2, events=events)
    assert partners == [1]
    ev = events.of_kind("mlck_partner_fallback")[0]
    assert ev.detail["wanted"] == 2


def test_store_rejects_nonpositive_replication():
    from repro.mlck.store import L1Store

    m = Machine(MachineParams(num_nodes=4))
    with pytest.raises(CheckpointError):
        L1Store(m, k=0)
