"""Shared workload builders for the multi-level store tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import block_distribution
from repro.checkpoint.segment import DataSegment, ExecutionContext, SegmentProfile


@pytest.fixture
def workload():
    """(segment, arrays) of a small two-array DRMS state."""

    def _build(ntasks: int = 2, iteration: int = 1, fill: float = 0.0):
        seg = DataSegment(
            SegmentProfile(
                local_section_bytes=512, system_bytes=1024, private_bytes=128
            ),
            replicated={"it": iteration},
            context=ExecutionContext(sop_id=1, iteration=iteration),
        )
        arrays = []
        for i, shape in enumerate([(12, 8), (16,)]):
            a = DistributedArray(
                f"a{i}", shape, np.float64,
                block_distribution(shape, ntasks), store_data=True,
            )
            a.set_global(
                np.arange(float(np.prod(shape))).reshape(shape) + fill + i
            )
            arrays.append(a)
        return seg, arrays

    return _build
