"""The tier= knobs on the checkpoint/restart entry points and the
application/cluster wiring of tier="memory+pfs"."""

import numpy as np
import pytest

from repro.checkpoint.drms import drms_checkpoint, drms_restart
from repro.checkpoint.spmd import spmd_checkpoint, spmd_restart
from repro.errors import (
    CheckpointError,
    MemoryTierError,
    ReconfigurationError,
    RestartError,
)
from repro.mlck.store import L1Store
from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine, MachineParams

pytestmark = pytest.mark.mlck


@pytest.fixture
def env():
    machine = Machine(MachineParams(num_nodes=8))
    pfs = PIOFS(machine=machine)
    store = L1Store(machine, k=1)
    return machine, pfs, store


def _drop_first_piece(machine, store, prefix):
    gen = store.gen(prefix)
    pieces = gen.segment_pieces or gen.task_pieces[0]
    for node in list(pieces[0].replicas):
        machine.fail_node(node)
        store.drop_node(node)


def test_drms_memory_tier_never_touches_pfs(env, workload):
    machine, pfs, store = env
    seg, arrays = workload(iteration=2)
    bd = drms_checkpoint(pfs, "ck.000001", seg, arrays, tier="memory", l1=store)
    assert bd.kind == "mlck-l1"
    assert not pfs.exists("ck.000001.manifest")

    state, rbd = drms_restart(pfs, "ck.000001", 3, tier="memory", l1=store)
    assert rbd.kind == "mlck-l1"
    assert state.segment.serialize() == seg.serialize()


def test_drms_memory_tier_forbids_pfs_fallback(env, workload):
    machine, pfs, store = env
    seg, arrays = workload()
    drms_checkpoint(pfs, "ck.000001", seg, arrays, tier="memory", l1=store)
    _drop_first_piece(machine, store, "ck.000001")
    with pytest.raises(MemoryTierError):
        drms_restart(pfs, "ck.000001", 2, tier="memory", l1=store)


def test_drms_memory_pfs_tier_drains_and_falls_back(env, workload):
    machine, pfs, store = env
    seg, arrays = workload(iteration=3)
    refs = {a.name: a.to_global(fill=0) for a in arrays}
    drms_checkpoint(pfs, "ck.000001", seg, arrays, tier="memory+pfs", l1=store)
    # the inline synchronous drain put a durable copy on the PFS
    assert pfs.exists("ck.000001.manifest")
    _drop_first_piece(machine, store, "ck.000001")
    state, rbd = drms_restart(pfs, "ck.000001", 2, tier="memory+pfs", l1=store)
    assert rbd.kind == "drms"  # served by the L2 fallback
    for name, a in state.arrays.items():
        np.testing.assert_array_equal(a.to_global(fill=0), refs[name])


def test_tier_knob_rejects_unknown_values(env, workload):
    machine, pfs, store = env
    seg, arrays = workload()
    with pytest.raises(CheckpointError, match="unknown checkpoint tier"):
        drms_checkpoint(pfs, "ck.000001", seg, arrays, tier="l3", l1=store)
    with pytest.raises(CheckpointError, match="requires an L1Store"):
        drms_checkpoint(pfs, "ck.000001", seg, arrays, tier="memory")
    with pytest.raises(RestartError, match="unknown restart tier"):
        drms_restart(pfs, "ck.000001", 2, tier="l3", l1=store)
    with pytest.raises(RestartError, match="requires an L1Store"):
        drms_restart(pfs, "ck.000001", 2, tier="memory+pfs")


def test_spmd_tier_knobs_roundtrip(env):
    machine, pfs, store = env
    payloads = [{"rank": t} for t in range(2)]
    spmd_checkpoint(
        pfs, "ck.000001", 2, 1024,
        payloads=payloads, tier="memory+pfs", l1=store,
    )
    assert pfs.exists("ck.000001.manifest")
    state, rbd = spmd_restart(pfs, "ck.000001", 2, tier="memory", l1=store)
    assert rbd.kind == "mlck-l1"
    assert state.payloads == payloads
    # after replica loss the memory+pfs knob serves the drained copy
    _drop_first_piece(machine, store, "ck.000001")
    state, rbd = spmd_restart(pfs, "ck.000001", 2, tier="memory+pfs", l1=store)
    assert rbd.kind == "spmd"
    assert state.payloads == payloads


def test_spmd_tier_knob_rejects_unknown_values(env):
    machine, pfs, store = env
    with pytest.raises(CheckpointError, match="unknown checkpoint tier"):
        spmd_checkpoint(pfs, "ck.000001", 2, 1024, tier="l3", l1=store)
    with pytest.raises(RestartError, match="requires an L1Store"):
        spmd_restart(pfs, "ck.000001", 2, tier="memory")


def test_application_rejects_unknown_tier():
    from repro.drms import DRMSApplication

    with pytest.raises(ReconfigurationError, match="unknown application"):
        DRMSApplication(lambda ctx: None, tier="memory")
