"""L1Store: capture, validation, replica-served restore (repro.mlck.store)."""

import numpy as np
import pytest

from repro.errors import CheckpointError, MemoryTierError
from repro.infra.events import EventLog
from repro.mlck.store import L1Store
from repro.obs import Tracer, use_tracer
from repro.runtime.machine import Machine, MachineParams

pytestmark = pytest.mark.mlck


@pytest.fixture
def machine():
    return Machine(MachineParams(num_nodes=8, failure_domains=4))


@pytest.fixture
def store(machine):
    return L1Store(machine, k=1)


def _globals(state):
    return {name: a.to_global(fill=0) for name, a in state.arrays.items()}


def test_capture_restore_roundtrip(store, workload):
    seg, arrays = workload(ntasks=2, iteration=3)
    refs = {a.name: a.to_global(fill=0) for a in arrays}
    gen, bd = store.capture_drms("ck.000001", seg, arrays)
    assert bd.kind == "mlck-l1"
    assert bd.total_seconds > 0.0
    assert gen.resident_bytes > 0

    state, rbd = store.restore_drms("ck.000001", ntasks=4)
    assert state.ntasks == 4 and state.checkpoint_ntasks == 2
    assert state.segment.serialize() == seg.serialize()
    assert state.manifest["tier"] == "l1"
    for name, got in _globals(state).items():
        np.testing.assert_array_equal(got, refs[name])


def test_every_piece_is_replicated_across_domains(store, machine, workload):
    seg, arrays = workload()
    gen, _ = store.capture_drms("ck.000001", seg, arrays)
    pieces = list(gen.segment_pieces)
    for entry in gen.arrays:
        pieces.extend(entry.pieces)
    assert pieces
    for p in pieces:
        assert len(p.replicas) == 2  # owner + k=1 partner
        domains = {machine.domain_of(n) for n in p.replicas}
        assert len(domains) == 2


def test_node_loss_served_by_partner(store, machine, workload):
    seg, arrays = workload(iteration=5)
    refs = {a.name: a.to_global(fill=0) for a in arrays}
    gen, _ = store.capture_drms("ck.000001", seg, arrays)
    owner = gen.segment_pieces[0].owner
    with use_tracer(Tracer()) as tracer:
        machine.fail_node(owner)
        store.drop_node(owner)
        assert store.validate_generation("ck.000001").ok
        state, _ = store.restore_drms("ck.000001", ntasks=2)
        assert tracer.metrics.flat().get("mlck.l1.partner_serves", 0) > 0
    for name, got in _globals(state).items():
        np.testing.assert_array_equal(got, refs[name])


def test_losing_all_replicas_fails_validation(store, machine, workload):
    seg, arrays = workload()
    gen, _ = store.capture_drms("ck.000001", seg, arrays)
    events = EventLog()
    store.events = events
    for node in list(gen.segment_pieces[0].replicas):
        machine.fail_node(node)
        store.drop_node(node, clock=1.0)
    report = store.validate_generation("ck.000001")
    assert not report.ok
    assert "no surviving valid replica" in report.errors[0]
    with pytest.raises(MemoryTierError):
        store.restore_drms("ck.000001", ntasks=2)
    assert events.of_kind("mlck_replicas_lost")


def test_duplicate_prefix_capture_refused(store, workload):
    seg, arrays = workload()
    store.capture_drms("ck.000001", seg, arrays)
    with pytest.raises(CheckpointError):
        store.capture_drms("ck.000001", seg, arrays)


def test_unknown_generation_raises_memory_tier_error(store):
    with pytest.raises(MemoryTierError):
        store.gen("ck.999999")
    assert not store.has("ck.999999")


def test_discard_frees_resident_bytes(store, workload):
    seg, arrays = workload()
    store.capture_drms("ck.000001", seg, arrays)
    assert store.resident_bytes() > 0
    store.discard("ck.000001")
    assert store.resident_bytes() == 0
    assert store.generations() == []


def test_spmd_capture_restore_roundtrip(store):
    payloads = [{"rank": t, "blob": bytes(range(t + 1))} for t in range(3)]
    store.capture_spmd("ck.000001", 3, 2048, payloads=payloads)
    state, bd = store.restore_spmd("ck.000001", 3)
    assert state.payloads == payloads
    assert state.segment_bytes == [2048] * 3
    # the defining SPMD limitation holds on the memory tier too
    with pytest.raises(Exception):
        store.restore_spmd("ck.000001", 4)


def test_sized_payloads_charged_but_not_stored(store, workload):
    seg, arrays = workload()
    gen, bd = store.capture_drms("ck.000001", seg, arrays)
    # the sized segment pad is charged in the breakdown but the
    # resident bytes only hold the exact header + array streams
    assert bd.segment_bytes > 0
    header, pad = seg.serialize()
    assert pad > 0
    assert gen.resident_bytes < bd.total_bytes


@pytest.mark.localized
def test_fail_repair_cycle_does_not_resurrect_stale_replicas(
    store, machine, workload
):
    """Reproducer: a node fails and is repaired before any recovery
    pass scrubbed it.  Real memory was wiped by the repair, so the
    bytes recorded under the old incarnation are stale — they must
    never serve a fetch, and a machine sync must drop them."""
    seg, arrays = workload(ntasks=2, iteration=4)
    refs = {a.name: a.to_global(fill=0) for a in arrays}
    gen, _ = store.capture_drms("ck.000001", seg, arrays)
    piece = gen.segment_pieces[0]
    owner = piece.owner
    machine.fail_node(owner)
    machine.repair_node(owner)  # up again, one incarnation later
    assert owner in piece.replicas  # the entry still lingers...
    assert store._serving_replica(piece) != owner  # ...but never serves
    assert store.validate_generation("ck.000001").ok  # partner carries it
    state, _ = store.restore_drms("ck.000001", ntasks=2)
    for name, got in _globals(state).items():
        np.testing.assert_array_equal(got, refs[name])
    # the sync recognizes the incarnation bump and drops the stale bytes
    assert store.sync_with_machine() > 0
    assert store._mem.get(owner, {}) == {}


@pytest.mark.localized
def test_replacement_capture_after_drop_does_not_revive_old_entries(
    store, machine, workload
):
    """drop_node followed by immediately re-registering the repaired
    node as a capture target must not resurrect the dropped
    generation's replica entries: the fresh capture is valid on the new
    incarnation, the old generation still refuses the node."""
    seg, arrays = workload(ntasks=2, iteration=1)
    refs = {a.name: a.to_global(fill=0) for a in arrays}
    gen, _ = store.capture_drms("ck.000001", seg, arrays)
    piece = gen.segment_pieces[0]
    owner = piece.owner
    machine.fail_node(owner)
    store.drop_node(owner)
    machine.repair_node(owner)
    # the repaired node is immediately captured onto again
    seg2, arrays2 = workload(ntasks=2, iteration=2, fill=50.0)
    gen2, _ = store.capture_drms("ck.000002", seg2, arrays2)
    assert store.validate_generation("ck.000002").ok
    held = {
        p.key
        for pieces in [gen2.segment_pieces] + [e.pieces for e in gen2.arrays]
        for p in pieces
        if owner in p.replicas
    }
    assert held  # the node really does hold fresh generation-2 copies
    # generation 1's entry on the node stays dead despite the listing
    assert owner in piece.replicas
    assert not store._replica_valid(piece, owner)
    assert store._serving_replica(piece) != owner
    state, _ = store.restore_drms("ck.000001", ntasks=2)
    for name, got in _globals(state).items():
        np.testing.assert_array_equal(got, refs[name])
    # a repair pass scrubs the lingering listing without touching the
    # node's fresh generation-2 copies
    from repro.mlck.localized import rereplicate_after_failure

    rereplicate_after_failure(store, [])
    assert owner not in piece.replicas
    assert store.validate_generation("ck.000002").ok


def test_capture_faster_than_pfs_checkpoint(store, workload):
    from repro.checkpoint.drms import drms_checkpoint
    from repro.pfs.piofs import PIOFS

    seg, arrays = workload()
    _, l1_bd = store.capture_drms("ck.000001", seg, arrays)
    pfs_bd = drms_checkpoint(PIOFS(machine=store.machine), "pfs.ck", seg, arrays)
    assert l1_bd.total_seconds < pfs_bd.total_seconds
