"""MultiLevelCheckpointer: the two-tier application façade."""

import numpy as np
import pytest

from repro.errors import RestartError
from repro.mlck.checkpointer import MultiLevelCheckpointer
from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine, MachineParams

pytestmark = pytest.mark.mlck


@pytest.fixture
def env():
    machine = Machine(MachineParams(num_nodes=8))
    pfs = PIOFS(machine=machine)
    return machine, pfs


def test_checkpoint_restart_roundtrip_l1(env, workload):
    machine, pfs = env
    ck = MultiLevelCheckpointer(pfs, "ck", machine=machine, drain="sync")
    seg, arrays = workload(iteration=4)
    refs = {a.name: a.to_global(fill=0) for a in arrays}
    mbd = ck.checkpoint(seg, arrays)
    assert mbd.prefix == "ck.000001"
    assert mbd.drain_state == "durable"  # sync mode drains inline
    assert mbd.blocking_seconds == mbd.capture.total_seconds

    state, bd, decision = ck.restart(ntasks=3)
    assert decision.tier == "l1"
    assert bd.kind == "mlck-l1"
    # the fixed restart init is charged even on the memory tier
    assert bd.other_seconds == pfs.params.restart_init_s
    for name, a in state.arrays.items():
        np.testing.assert_array_equal(a.to_global(fill=0), refs[name])


def test_next_prefix_reserves_undrained_generations(env, workload):
    machine, pfs = env
    ck = MultiLevelCheckpointer(pfs, "ck", machine=machine, drain="async")
    seg, arrays = workload()
    mbd1 = ck.checkpoint(seg, arrays)
    ck.wait_for_drains()
    seg2, arrays2 = workload(iteration=2)
    mbd2 = ck.checkpoint(seg2, arrays2)
    ck.wait_for_drains()
    assert (mbd1.prefix, mbd2.prefix) == ("ck.000001", "ck.000002")
    assert ck.drain_states() == {
        "ck.000001": "durable", "ck.000002": "durable",
    }


def test_node_failure_falls_back_to_durable_tier(env, workload):
    machine, pfs = env
    ck = MultiLevelCheckpointer(pfs, "ck", machine=machine, drain="sync")
    seg, arrays = workload(iteration=1)
    mbd = ck.checkpoint(seg, arrays)
    # lose every replica of the first piece
    gen = ck.store.gen(mbd.prefix)
    for node in list(gen.segment_pieces[0].replicas):
        machine.fail_node(node)
        ck.on_node_failure(node)
    state, bd, decision = ck.restart(ntasks=2)
    assert decision.prefix == mbd.prefix
    assert decision.tier == "l2"
    assert bd.kind == "drms"
    assert state.segment.serialize() == seg.serialize()


def test_restart_with_nothing_valid_raises(env):
    machine, pfs = env
    ck = MultiLevelCheckpointer(pfs, "ck", machine=machine)
    with pytest.raises(RestartError, match="any tier"):
        ck.restart(ntasks=2)


def test_spmd_two_tier_roundtrip(env):
    machine, pfs = env
    ck = MultiLevelCheckpointer(pfs, "ck", machine=machine, drain="sync")
    payloads = [{"rank": t} for t in range(2)]
    mbd = ck.checkpoint_spmd(2, 1024, payloads=payloads)
    assert mbd.drain_state == "durable"
    state, _ = ck.store.restore_spmd(mbd.prefix, 2)
    assert state.payloads == payloads


def test_bad_drain_mode_refused(env):
    machine, pfs = env
    with pytest.raises(ValueError):
        MultiLevelCheckpointer(pfs, "ck", machine=machine, drain="lazy")
