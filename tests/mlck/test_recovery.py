"""Tier-aware recovery walk (repro.mlck.recovery)."""

import pytest

from repro.checkpoint.drms import drms_checkpoint
from repro.checkpoint.recover import select_restart_state
from repro.infra.events import EventLog
from repro.mlck.drain import DrainController
from repro.mlck.recovery import select_tiered_restart_state, tiered_candidates
from repro.mlck.store import L1Store
from repro.obs import Tracer, use_tracer
from repro.pfs.faults import FaultInjector
from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine, MachineParams

pytestmark = pytest.mark.mlck


@pytest.fixture
def env():
    machine = Machine(MachineParams(num_nodes=8))
    pfs = PIOFS(machine=machine)
    store = L1Store(machine, k=1)
    return machine, pfs, store


def _take(store, pfs, workload, g, drain=True, crash=False):
    seg, arrays = workload(iteration=g)
    prefix = f"ck.{g:06d}"
    store.capture_drms(prefix, seg, arrays)
    if drain:
        drainer = DrainController(store, pfs, synchronous=True)
        if crash:
            inj = FaultInjector()
            inj.fail_write(nth=1, mode="fail")
            pfs.attach_faults(inj)
            try:
                drainer.schedule(prefix)
            finally:
                pfs.attach_faults(None)
        else:
            drainer.schedule(prefix)
    return prefix


def test_candidates_newest_first_with_tier_order(env, workload):
    machine, pfs, store = env
    _take(store, pfs, workload, 1)              # both tiers
    _take(store, pfs, workload, 2, drain=False)  # L1 only
    cands = tiered_candidates(pfs, "ck", store)
    assert cands[0] == ("ck.000002", ["l1"])
    assert cands[1] == ("ck.000001", ["l1", "l2"])


def test_newest_l1_generation_wins_without_pfs_reads(env, workload):
    machine, pfs, store = env
    _take(store, pfs, workload, 1)
    _take(store, pfs, workload, 2, drain=False)
    with use_tracer(Tracer()) as tracer:
        decision = select_tiered_restart_state(pfs, "ck", store)
        assert decision.prefix == "ck.000002"
        assert decision.tier == "l1"
        # candidate enumeration is name-only; the L1 walk never
        # touched the PFS
        assert tracer.metrics.flat().get("pfs.read.count", 0) == 0
        assert tracer.metrics.flat().get("mlck.recover.l1", 0) == 1


def test_lost_replicas_fall_back_to_l2(env, workload):
    machine, pfs, store = env
    _take(store, pfs, workload, 1)
    events = EventLog()
    # kill the newest generation's whole first replica set
    gen = store.gen("ck.000001")
    with use_tracer(Tracer()) as tracer:
        for node in list(gen.segment_pieces[0].replicas):
            machine.fail_node(node)
            store.drop_node(node)
        decision = select_tiered_restart_state(pfs, "ck", store, events=events)
        assert decision.prefix == "ck.000001"
        assert decision.tier == "l2"
        assert tracer.metrics.flat().get("mlck.l2.fallbacks", 0) == 1
    # the L1 rejection is tier-tagged and on the event log
    assert any(err.startswith("l1:") for _, errs in decision.rejected for err in errs)
    assert events.of_kind("checkpoint_verified")[0].detail["tier"] == "l2"


def test_mid_drain_crash_serves_from_memory(env, workload):
    machine, pfs, store = env
    _take(store, pfs, workload, 1)
    _take(store, pfs, workload, 2, crash=True)  # drain dies: L2 absent
    decision = select_tiered_restart_state(pfs, "ck", store)
    assert decision.prefix == "ck.000002"
    assert decision.tier == "l1"


def test_nothing_valid_returns_none(env):
    machine, pfs, store = env
    decision = select_tiered_restart_state(pfs, "ck", store)
    assert decision.prefix is None
    assert decision.tier is None


def test_select_restart_state_delegates_when_l1_given(env, workload):
    machine, pfs, store = env
    _take(store, pfs, workload, 1, drain=False)
    decision = select_restart_state(pfs, "ck", l1=store)
    assert decision.prefix == "ck.000001"
    assert decision.tier == "l1"
    # without the store the walk sees nothing (no manifest committed)
    assert select_restart_state(pfs, "ck").prefix is None


def test_pfs_only_states_still_recoverable(env, workload):
    machine, pfs, store = env
    seg, arrays = workload(iteration=9)
    drms_checkpoint(pfs, "ck.000001", seg, arrays)
    decision = select_tiered_restart_state(pfs, "ck", store)
    assert decision.prefix == "ck.000001"
    assert decision.tier == "l2"
