"""The workflow verify-oracle mode: canonical torn-line schedules pass,
the case schema round-trips, and the seeded generator only emits legal
workflow cases."""

import pytest

from repro.verify.case import Case, CaseError
from repro.verify.gen import (
    CaseGen,
    lost_member_generation_case,
    torn_workflow_case,
)
from repro.verify.oracle import run_case

pytestmark = pytest.mark.workflow


def test_canonical_torn_line_case_passes():
    result = run_case(torn_workflow_case(seed=0))
    d = result.details
    # gen 3 carries the flipped bit: rejected as a unit, line 2 chosen
    assert d["committed"] == [1, 2, 3]
    assert d["rejected"] == [3]
    assert d["chosen"] == 2
    assert result.checked > 0


def test_canonical_lost_member_generation_case_passes():
    result = run_case(lost_member_generation_case(seed=0))
    d = result.details
    assert d["rejected"] == [3]
    assert d["chosen"] == 2


def test_workflow_case_round_trips_through_json():
    case = torn_workflow_case(seed=7)
    back = Case.from_json(case.to_json())
    assert back.workflow
    assert back.members == case.members
    assert back.member_tasks1 == case.member_tasks1
    assert back.events[0].member == case.events[0].member
    assert back.label() == case.label()


def test_generated_workflow_cases_are_legal():
    gen = CaseGen(20260808)
    for _ in range(20):
        case = gen.workflow_case()
        assert case.workflow and case.type == "fault"
        assert case.members >= 2
        assert len(case.workflow_tasks1()) == case.members
        assert all(t >= 1 for t in case.workflow_tasks2())
        assert case.events
        for ev in case.events:
            assert ev.kind in ("stored_flip", "gen_loss")


def test_workflow_requires_fault_type():
    with pytest.raises(CaseError):
        Case(
            type="reconfig", engine="bulk", order="F", shape=[4, 4],
            t1=2, p1=1, t2=2, p2=1, grid1=[2], grid2=[2], arrays=[],
            target_bytes=1 << 20, data_seed=1, workflow=True,
        )
