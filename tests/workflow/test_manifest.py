"""Unit tests for the v1 workflow manifest: member-name rules, the
two-phase commit, generation discovery, line validation (torn sets
rejected as units), and the joint MPMD rotation walk."""

import numpy as np
import pytest

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import block_distribution
from repro.checkpoint.drms import drms_checkpoint
from repro.checkpoint.format import array_name, manifest_name
from repro.checkpoint.segment import DataSegment, SegmentProfile
from repro.errors import CheckpointError, WorkflowError
from repro.pfs.faults import flip_stored_bit
from repro.pfs.piofs import PIOFS
from repro.workflow.manifest import (
    WORKFLOW_VERSION,
    check_member_name,
    newest_consistent_generations,
    next_workflow_generation,
    read_workflow_manifest,
    select_workflow_restart_state,
    validate_workflow_line,
    workflow_generations,
    workflow_manifest_name,
    write_workflow_manifest,
)

pytestmark = pytest.mark.workflow

N = 6


def take(pfs, prefix, value):
    """One real (byte-validatable) member state at ``prefix``."""
    arr = DistributedArray("u", (N, N), np.float64, block_distribution((N, N), 2))
    arr.set_global(np.full((N, N), float(value)))
    seg = DataSegment(profile=SegmentProfile(1000, 0, 0), replicated={"it": value})
    drms_checkpoint(pfs, prefix, seg, [arr])


class TestMemberNames:
    """Names become dotted prefix segments; anything that would alias
    another namespace is rejected up front."""

    def test_dotted_name_rejected(self):
        with pytest.raises(CheckpointError, match="alias"):
            check_member_name("flow.chem")

    def test_six_digit_name_rejected(self):
        with pytest.raises(CheckpointError, match="generation"):
            check_member_name("000123")

    @pytest.mark.parametrize("name", ["workflow", "mpmd", "manifest", "array"])
    def test_reserved_file_kinds_rejected(self, name):
        with pytest.raises(CheckpointError, match="reserved"):
            check_member_name(name)

    def test_duplicate_rejected(self):
        with pytest.raises(CheckpointError, match="duplicate"):
            check_member_name("flow", taken={"flow": object()})

    @pytest.mark.parametrize("name", ["flow", "m0", "a_b-c", "12345", "1234567"])
    def test_plain_names_pass(self, name):
        assert check_member_name(name) == name


class TestManifestIO:
    def test_round_trip_stamps_version(self, pfs):
        write_workflow_manifest(pfs, "wf", 3, {"members": {"a": {"prefix": "p"}}})
        back = read_workflow_manifest(pfs, "wf", 3)
        assert back["workflow_version"] == WORKFLOW_VERSION
        assert back["base"] == "wf"
        assert back["generation"] == 3
        assert back["members"] == {"a": {"prefix": "p"}}

    def test_unknown_version_rejected(self, pfs):
        write_workflow_manifest(pfs, "wf", 1, {"members": {}})
        name = workflow_manifest_name("wf", 1)
        raw = pfs.read_at(name, 0, pfs.file_size(name))
        doctored = raw.replace(
            f'"workflow_version": {WORKFLOW_VERSION}'.encode(),
            b'"workflow_version": 99',
        )
        pfs.unlink(name)
        pfs.create(name, virtual=False)
        pfs.write_at(name, 0, doctored)
        with pytest.raises(WorkflowError, match="version 99"):
            read_workflow_manifest(pfs, "wf", 1)

    def test_missing_manifest_raises(self, pfs):
        with pytest.raises(WorkflowError, match="no workflow manifest"):
            read_workflow_manifest(pfs, "wf", 7)

    def test_generations_ignore_staged_tmp(self, pfs):
        write_workflow_manifest(pfs, "wf", 1, {"members": {}})
        write_workflow_manifest(pfs, "wf", 2, {"members": {}})
        # a crash mid-commit leaves only the staged .tmp: invisible
        pfs.create(workflow_manifest_name("wf", 3) + ".tmp", virtual=False)
        assert workflow_generations(pfs, "wf") == [1, 2]

    def test_corrupt_manifest_invisible_to_generations(self, pfs):
        write_workflow_manifest(pfs, "wf", 1, {"members": {}})
        name = workflow_manifest_name("wf", 2)
        pfs.create(name, virtual=False)
        pfs.write_at(name, 0, b"{not json")
        assert workflow_generations(pfs, "wf") == [1]


class TestNextGeneration:
    """Generation numbers are never reused, even for lines that lost
    their manifest or never finished committing one."""

    def test_counts_staged_tmp_lines(self, pfs):
        write_workflow_manifest(pfs, "wf", 2, {"members": {}})
        pfs.create(workflow_manifest_name("wf", 5) + ".tmp", virtual=False)
        assert next_workflow_generation(pfs, "wf") == 6

    def test_counts_member_states_without_manifest(self, pfs):
        take(pfs, "wf.a.000004", 4)
        assert next_workflow_generation(pfs, "wf", {"a": "wf.a"}) == 5

    def test_empty_namespace_starts_at_one(self, pfs):
        assert next_workflow_generation(pfs, "wf") == 1


class TestLineValidation:
    def manifest_for(self, members):
        return {
            "generation": 1,
            "members": {m: {"prefix": p} for m, p in members.items()},
        }

    def test_all_members_valid(self, pfs):
        take(pfs, "wf.a.000001", 1)
        take(pfs, "wf.b.000001", 2)
        report = validate_workflow_line(
            pfs, self.manifest_for({"a": "wf.a.000001", "b": "wf.b.000001"})
        )
        assert report.ok
        assert report.member_tiers == {"a": "l2", "b": "l2"}

    def test_one_torn_member_rejects_the_line(self, pfs):
        take(pfs, "wf.a.000001", 1)
        take(pfs, "wf.b.000001", 2)
        flip_stored_bit(pfs, array_name("wf.b.000001", "u"), 5, 2)
        report = validate_workflow_line(
            pfs, self.manifest_for({"a": "wf.a.000001", "b": "wf.b.000001"})
        )
        assert not report.ok
        assert report.errors and report.errors[0].startswith("b:")
        # the intact member still audited clean — but ok is all-or-nothing
        assert report.member_tiers == {"a": "l2"}

    def test_empty_member_set_rejected(self, pfs):
        report = validate_workflow_line(pfs, {"generation": 1, "members": {}})
        assert not report.ok


class TestRecoveryWalk:
    def commit_line(self, pfs, gen, values):
        for member, value in values.items():
            take(pfs, f"wf.{member}.{gen:06d}", value)
        write_workflow_manifest(
            pfs, "wf", gen,
            {"members": {m: {"prefix": f"wf.{m}.{gen:06d}"} for m in values}},
        )

    def test_newest_fully_valid_line_wins(self, pfs):
        for gen in (1, 2, 3):
            self.commit_line(pfs, gen, {"a": gen, "b": gen + 10})
        decision = select_workflow_restart_state(pfs, "wf")
        assert decision.generation == 3
        assert not decision.fell_back

    def test_torn_line_rejected_as_a_unit(self, pfs):
        for gen in (1, 2, 3):
            self.commit_line(pfs, gen, {"a": gen, "b": gen + 10})
        flip_stored_bit(pfs, array_name("wf.a.000003", "u"), 9, 1)
        decision = select_workflow_restart_state(pfs, "wf")
        # member b's gen-3 state is fine, but it must never pair with
        # a's gen-2 state: the whole line falls back together
        assert decision.generation == 2
        assert decision.fell_back
        assert [g for g, _ in decision.rejected] == [3]
        assert decision.manifest["members"]["b"]["prefix"] == "wf.b.000002"

    def test_lost_member_manifest_tears_the_line(self, pfs):
        for gen in (1, 2):
            self.commit_line(pfs, gen, {"a": gen, "b": gen + 10})
        pfs.unlink(manifest_name("wf.b.000002"))
        decision = select_workflow_restart_state(pfs, "wf")
        assert decision.generation == 1
        assert [g for g, _ in decision.rejected] == [2]

    def test_no_valid_line(self, pfs):
        self.commit_line(pfs, 1, {"a": 1, "b": 2})
        flip_stored_bit(pfs, array_name("wf.b.000001", "u"), 0, 0)
        decision = select_workflow_restart_state(pfs, "wf")
        assert decision.generation is None
        assert not decision.fell_back
        assert [g for g, _ in decision.rejected] == [1]


class TestJointRotationWalk:
    """newest_consistent_generations: the manifest-free MPMD variant of
    the same all-or-nothing rule."""

    def test_newest_joint_generation(self, pfs):
        for gen in (1, 2, 3):
            take(pfs, f"g.a.{gen:06d}", gen)
            take(pfs, f"g.b.{gen:06d}", gen)
        resolved, rejected = newest_consistent_generations(
            pfs, {"a": "g.a", "b": "g.b"}
        )
        assert resolved == {"a": "g.a.000003", "b": "g.b.000003"}
        assert rejected == []

    def test_missing_component_state_rejects_the_number(self, pfs):
        for gen in (1, 2):
            take(pfs, f"g.a.{gen:06d}", gen)
        take(pfs, "g.b.000001", 1)  # b never reached generation 2
        resolved, rejected = newest_consistent_generations(
            pfs, {"a": "g.a", "b": "g.b"}
        )
        assert resolved == {"a": "g.a.000001", "b": "g.b.000001"}
        assert [g for g, _ in rejected] == [2]

    def test_nothing_consistent(self, pfs):
        take(pfs, "g.a.000001", 1)
        flip_stored_bit(pfs, array_name("g.a.000001", "u"), 3, 3)
        resolved, rejected = newest_consistent_generations(pfs, {"a": "g.a"})
        assert resolved is None
        assert [g for g, _ in rejected] == [1]
