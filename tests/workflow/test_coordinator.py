"""End-to-end coordinator tests: coupled members align at exchange
boundaries, coupling bytes move before the line, one shared policy
decision drives every member, and member failures surface as the root
cause instead of wedging the ensemble."""

import numpy as np
import pytest

from repro.drms.app import DRMSApplication
from repro.drms.context import CheckpointStatus
from repro.errors import CheckpointError, ReconfigurationError, WorkflowError
from repro.pfs.piofs import PIOFS
from repro.policy.engine import CheckpointPolicy
from repro.runtime.machine import Machine, MachineParams
from repro.workflow import WorkflowCoordinator

pytestmark = pytest.mark.workflow

N = 8
NITER = 3


def member_main(ctx, base, niter=NITER):
    """An evolving field plus an inbox fed by the peer's field at every
    exchange boundary.  Returns the per-status exchange counts so tests
    can see the shared cadence decision from inside a member."""
    ctx.initialize()
    d = ctx.create_distribution((N, N))
    u = ctx.distribute("u", d, init_global=np.full((N, N), float(base)))
    ctx.distribute("inbox", d, init_global=np.zeros((N, N)))
    counts = {s: 0 for s in CheckpointStatus}
    for it in ctx.iterations(1, niter + 1):
        status, delta = ctx.workflow_exchange(final=(it == niter))
        counts[status] += 1
        if status is CheckpointStatus.RESTARTED and delta != 0:
            u = ctx.distribute("u", ctx.adjust("u"))
            ctx.distribute("inbox", ctx.adjust("inbox"))
        u.set_assigned(u.assigned + 1.0)
        ctx.barrier()
    return {s.name: n for s, n in counts.items() if n}


@pytest.fixture
def coord():
    machine = Machine(MachineParams(num_nodes=8))
    c = WorkflowCoordinator("wf", machine=machine, pfs=PIOFS(machine=machine))
    c.add_member("m0", member_main, args=(1.0,))
    c.add_member("m1", member_main, args=(5.0,))
    c.couple("m0", "u", "m1", "inbox")
    return c


def test_run_commits_one_line_per_exchange(coord):
    rep = coord.run({"m0": 3, "m1": 2})
    assert coord.committed_generations() == list(range(1, NITER + 1))
    assert [line.generation for line in rep.lines] == list(range(1, NITER + 1))
    assert set(rep.members) == {"m0", "m1"}
    for line in rep.lines:
        assert set(line.members) == {"m0", "m1"}
        assert line.members["m0"]["ntasks"] == 3
        assert line.members["m1"]["ntasks"] == 2
        # members write concurrently behind the boundary
        assert line.seconds <= line.serial_seconds + 1e-9
    assert [line.members["m0"]["iteration"] for line in rep.lines] == [1, 2, 3]


def test_coupling_transfers_before_the_line(coord):
    rep = coord.run({"m0": 3, "m1": 2})
    # at the final exchange (iteration NITER) m0's field was
    # base + NITER - 1; that value landed in m1's inbox before the line
    inbox = rep.members["m1"].arrays["inbox"].to_global(fill=0)
    assert np.array_equal(inbox, np.full((N, N), 1.0 + NITER - 1))
    # nothing couples into m0
    assert np.array_equal(
        rep.members["m0"].arrays["inbox"].to_global(fill=0), np.zeros((N, N))
    )
    assert np.array_equal(
        rep.members["m0"].arrays["u"].to_global(fill=0),
        np.full((N, N), 1.0 + NITER),
    )


def test_shared_policy_one_decision_for_all_members(coord):
    coord.policy = CheckpointPolicy.every_iterations(2)
    rep = coord.run({"m0": 2, "m1": 2})
    # the rule fires at iterations 1 and 3: two lines, numbered 1, 2
    assert coord.committed_generations() == [1, 2]
    # every member saw the *same* decision sequence: 2 taken, 1 skipped
    for ret in (r for rep_m in rep.members.values() for r in rep_m.returns):
        assert ret == {"TAKEN": 2, "SKIPPED": 1}


def test_unknown_member_coupling_rejected(coord):
    with pytest.raises(WorkflowError, match="unknown workflow member"):
        coord.couple("m0", "u", "nope", "inbox")


def test_self_coupling_rejected(coord):
    with pytest.raises(WorkflowError, match="itself"):
        coord.couple("m0", "u", "m0", "inbox")


def test_coupling_to_unknown_array_fails_the_exchange(coord):
    coord.couple("m1", "ghost", "m0", "inbox")
    with pytest.raises(WorkflowError, match="no such array 'ghost'"):
        coord.run({"m0": 2, "m1": 2})


def test_member_names_are_namespace_checked(coord):
    for bad in ("m0", "a.b", "000001", "workflow"):
        with pytest.raises(CheckpointError):
            coord.add_member(bad, member_main, args=(0.0,))


def test_missing_task_counts_rejected(coord):
    with pytest.raises(ReconfigurationError, match="m1"):
        coord.run({"m0": 2})


def test_empty_workflow_rejected():
    coord = WorkflowCoordinator("wf")
    with pytest.raises(WorkflowError, match="no members"):
        coord.run({})


def test_member_crash_aborts_peers_and_surfaces_root_cause():
    machine = Machine(MachineParams(num_nodes=8))
    coord = WorkflowCoordinator(
        "wf", machine=machine, pfs=PIOFS(machine=machine),
        exchange_timeout=10.0,
    )

    def crashing_main(ctx, base):
        ctx.initialize()
        raise ValueError("member blew up before its first boundary")

    coord.add_member("good", member_main, args=(1.0,))
    coord.add_member("bad", crashing_main, args=(2.0,))
    # the peer parked at the exchange barrier unwinds via the abort;
    # the caller sees the member's own error, not the barrier echo
    with pytest.raises(ValueError, match="blew up"):
        coord.run({"good": 2, "bad": 2})


def test_workflow_exchange_outside_a_workflow_rejected():
    def lone_main(ctx):
        ctx.initialize()
        for _ in ctx.iterations(1, 2):
            ctx.workflow_exchange()

    app = DRMSApplication(lone_main)
    with pytest.raises(CheckpointError, match="outside a workflow"):
        app.start(2)
