"""Ensemble restart tests: the walk picks the newest fully-valid line,
torn lines fall back as a unit, members come back on new task counts
(and mixed tiers), and generation numbers are never reused."""

import numpy as np
import pytest

from repro.checkpoint.format import array_name, manifest_name
from repro.drms.context import CheckpointStatus
from repro.errors import WorkflowError
from repro.pfs.faults import flip_stored_bit
from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine, MachineParams
from repro.workflow import WorkflowCoordinator

pytestmark = pytest.mark.workflow

N = 8
NITER = 3
TASKS1 = {"m0": 3, "m1": 2}
TASKS2 = {"m0": 2, "m1": 4}


def member_main(ctx, base):
    ctx.initialize()
    d = ctx.create_distribution((N, N))
    u = ctx.distribute("u", d, init_global=np.full((N, N), float(base)))
    ctx.distribute("inbox", d, init_global=np.zeros((N, N)))
    for it in ctx.iterations(1, NITER + 1):
        status, delta = ctx.workflow_exchange(final=(it == NITER))
        if status is CheckpointStatus.RESTARTED and delta != 0:
            u = ctx.distribute("u", ctx.adjust("u"))
            ctx.distribute("inbox", ctx.adjust("inbox"))
        u.set_assigned(u.assigned + 1.0)
        ctx.barrier()
    return float(u.assigned.sum())


def build(tier_m1="pfs"):
    machine = Machine(MachineParams(num_nodes=12))
    coord = WorkflowCoordinator("wf", machine=machine, pfs=PIOFS(machine=machine))
    coord.add_member("m0", member_main, args=(1.0,))
    coord.add_member(
        "m1", member_main, args=(5.0,), tier=tier_m1,
        mlck_drain="sync" if tier_m1 == "memory+pfs" else "async",
    )
    coord.couple("m0", "u", "m1", "inbox")
    return coord


def final_u(rep, name):
    return rep.members[name].arrays["u"].to_global(fill=0)


def test_restart_newest_line_on_new_task_counts():
    coord = build()
    ref = coord.run(TASKS1)
    rep = coord.restart_workflow(TASKS2)
    assert rep.decision.generation == NITER
    assert not rep.decision.fell_back
    for name, ntasks in TASKS2.items():
        assert rep.members[name].ntasks == ntasks
        # replaying from the newest line reproduces the original run
        assert np.array_equal(final_u(rep, name), final_u(ref, name))


def test_torn_line_falls_back_as_a_unit():
    coord = build()
    ref = coord.run(TASKS1)
    # silently corrupt ONE member's newest state: the peer's gen-NITER
    # state is intact, but must never pair with an older m1 state
    flip_stored_bit(coord.pfs, array_name(f"wf.m1.{NITER:06d}", "u"), 11, 2)
    rep = coord.restart_workflow(TASKS2)
    assert rep.decision.generation == NITER - 1
    assert rep.decision.fell_back
    assert [g for g, _ in rep.decision.rejected] == [NITER]
    for name in TASKS2:
        assert np.array_equal(final_u(rep, name), final_u(ref, name))


def test_lost_member_generation_tears_the_line():
    coord = build()
    coord.run(TASKS1)
    coord.pfs.unlink(manifest_name(f"wf.m0.{NITER:06d}"))
    rep = coord.restart_workflow(TASKS2)
    assert rep.decision.generation == NITER - 1
    assert [g for g, _ in rep.decision.rejected] == [NITER]


def test_no_valid_line_raises():
    coord = build()
    coord.run(TASKS1)
    for gen in range(1, NITER + 1):
        flip_stored_bit(coord.pfs, array_name(f"wf.m0.{gen:06d}", "u"), 3, 1)
    with pytest.raises(WorkflowError, match="every member byte-valid"):
        coord.restart_workflow(TASKS2)


def test_explicit_generation_still_validated():
    coord = build()
    coord.run(TASKS1)
    flip_stored_bit(coord.pfs, array_name("wf.m1.000002", "u"), 7, 4)
    with pytest.raises(WorkflowError, match="every member byte-valid"):
        coord.restart_workflow(TASKS2, generation=2)


def test_generation_numbers_never_reused():
    coord = build()
    coord.run(TASKS1)
    flip_stored_bit(coord.pfs, array_name(f"wf.m1.{NITER:06d}", "u"), 11, 2)
    rep = coord.restart_workflow(TASKS2)
    # the resumed run replays iterations NITER-1..NITER and commits new
    # lines — numbered past the torn line, which keeps its number even
    # though it was rejected
    new_gens = [line.generation for line in rep.lines]
    assert new_gens and all(g > NITER for g in new_gens)
    assert coord.committed_generations() == sorted(
        set(range(1, NITER + 1)) | set(new_gens)
    )


def test_mixed_tier_restart_serves_memory_member_from_l1():
    coord = build(tier_m1="memory+pfs")
    ref = coord.run(TASKS1)
    rep = coord.restart_workflow(TASKS2)
    # the memory-tier member restores from its L1 replicas, the PFS
    # member from the file system — a mixed-tier line is normal
    assert rep.decision.member_tiers["m1"] == "l1"
    assert rep.decision.member_tiers["m0"] == "l2"
    for name in TASKS2:
        assert np.array_equal(final_u(rep, name), final_u(ref, name))
