"""Functional runs of the NPB proxies at toy scale: the solvers are
distribution independent and their checkpoints restart correctly on
different task counts."""

import numpy as np
import pytest

from repro.apps import make_proxy

NITER = 4


def run_proxy(name, ntasks, pfs=None, machine=None, niter=NITER, every=3):
    proxy = make_proxy(name, "toy")
    app = proxy.build_application(machine=machine, pfs=pfs)
    rep = app.start(ntasks, args=(niter, f"{name}.ck"), kwargs={"checkpoint_every": every})
    return proxy, app, rep


@pytest.mark.parametrize("name", ["bt", "lu", "sp"])
class TestSolvers:
    def test_runs_and_checkpoints(self, name):
        _, app, rep = run_proxy(name, 4)
        assert len(rep.checkpoints) == 2  # it = 1 and it = 4
        assert rep.sim_elapsed > 0

    def test_distribution_independent_results(self, name):
        g1 = run_proxy(name, 1)[2].arrays["u"].to_global()
        g4 = run_proxy(name, 4)[2].arrays["u"].to_global()
        g6 = run_proxy(name, 6)[2].arrays["u"].to_global()
        assert np.allclose(g1, g4, rtol=1e-12, atol=1e-12)
        assert np.allclose(g1, g6, rtol=1e-12, atol=1e-12)

    def test_solution_evolves(self, name):
        proxy, app, rep = run_proxy(name, 4)
        init = proxy.initial_field("u", rep.arrays["u"].shape)
        assert not np.allclose(rep.arrays["u"].to_global(), init)

    @pytest.mark.parametrize("nt2", [2, 6])
    def test_reconfigured_restart_matches_straight_run(self, name, nt2):
        proxy, app, ref = run_proxy(name, 4)
        rep = app.restart(f"{name}.ck", nt2, args=(NITER, f"{name}.ck"),
                          kwargs={"checkpoint_every": 3})
        for f in proxy.fields:
            a = ref.arrays[f.name].to_global()
            b = rep.arrays[f.name].to_global()
            assert np.allclose(a, b, rtol=1e-12, atol=1e-12), f.name

    def test_replicated_state_restored(self, name):
        proxy, app, _ = run_proxy(name, 2)
        rep = app.restart(f"{name}.ck", 3, args=(NITER, f"{name}.ck"),
                          kwargs={"checkpoint_every": 3})
        assert rep.replicated["dt"] == proxy.dt
        assert rep.replicated["niter"] == NITER


class TestStencilApp:
    def test_roundtrip(self):
        from repro.apps.stencil import StencilApp

        sa = StencilApp(shape=(16, 16), checkpoint_every=3)
        app = sa.build_application()
        ref = app.start(4, args=(7, "st"))
        rep = app.restart("st", 2, args=(7, "st"))
        assert np.allclose(
            ref.arrays["grid"].to_global(), rep.arrays["grid"].to_global()
        )

    def test_heat_diffuses(self):
        from repro.apps.stencil import StencilApp

        sa = StencilApp(shape=(16, 16), checkpoint_every=0)
        app = sa.build_application()
        rep = app.start(2, args=(10, "st"))
        g = rep.arrays["grid"].to_global()
        assert g.max() < 100.0  # hot spot relaxed
        assert g[6, 6] > 0.0  # heat reached cells outside the hot spot
        assert g.min() >= 0.0

    def test_3d_stencil(self):
        from repro.apps.stencil import StencilApp

        sa = StencilApp(shape=(8, 8, 8), checkpoint_every=2)
        app = sa.build_application()
        ref = app.start(1, args=(5, "st3"))
        rep = app.restart("st3", 5, args=(5, "st3"))
        assert np.allclose(
            ref.arrays["grid"].to_global(), rep.arrays["grid"].to_global()
        )
