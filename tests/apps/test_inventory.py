"""The NPB proxies carry the paper's checkpoint-relevant anatomy:
array inventories (Table 3), segment composition (Table 4), and
source-line accounting (Table 1)."""

import numpy as np
import pytest

from repro.apps import BTProxy, LUProxy, SPProxy, make_proxy
from repro.apps.meta import count_drms_lines, npb_class_n
from repro.perfmodel.paper_data import PAPER_TABLE1, PAPER_TABLE3, PAPER_TABLE4

MB = 1e6
PROXIES = {"bt": BTProxy, "lu": LUProxy, "sp": SPProxy}


class TestFactory:
    def test_make_proxy(self):
        assert isinstance(make_proxy("BT"), BTProxy)
        with pytest.raises(ValueError):
            make_proxy("mg")

    def test_class_sizes(self):
        assert npb_class_n("A") == 64
        assert npb_class_n("C") == 162
        with pytest.raises(ValueError):
            npb_class_n("Z")

    def test_store_data_defaults(self):
        assert make_proxy("bt", "toy").store_data
        assert not make_proxy("bt", "A").store_data


@pytest.mark.parametrize("name", ["bt", "lu", "sp"])
class TestTable3Sizes:
    def test_array_bytes_match_paper(self, name):
        proxy = make_proxy(name, "A")
        paper = PAPER_TABLE3[name]["drms"]["array"]
        assert proxy.array_bytes_total / MB == pytest.approx(paper, rel=0.03)

    def test_segment_bytes_match_paper(self, name):
        proxy = make_proxy(name, "A")
        paper = PAPER_TABLE3[name]["drms"]["data"]
        assert proxy.spmd_segment_bytes / MB == pytest.approx(paper, rel=0.08)

    def test_drms_state_fixed_spmd_linear(self, name):
        proxy = make_proxy(name, "A")
        drms_total = proxy.drms_state_bytes()["total"]
        for p in (4, 8, 16):
            paper = PAPER_TABLE3[name]["spmd"][p]
            assert proxy.spmd_state_bytes(p) / MB == pytest.approx(paper, rel=0.08)
        # DRMS state does not depend on P; SPMD state doubles with P
        assert proxy.spmd_state_bytes(16) == 2 * proxy.spmd_state_bytes(8)
        assert drms_total < proxy.spmd_state_bytes(4)


@pytest.mark.parametrize("name", ["bt", "lu", "sp"])
class TestTable4Segment:
    def test_components_match_paper(self, name):
        proxy = make_proxy(name, "A")
        total, local, system, private = PAPER_TABLE4[name]
        prof = proxy.segment_profile()
        assert prof.system_bytes == system  # exact constant
        assert prof.private_bytes == pytest.approx(private, rel=0.01)
        assert prof.local_section_bytes == pytest.approx(local, rel=0.08)
        assert prof.total_bytes == pytest.approx(total, rel=0.05)

    def test_local_sections_exceed_quarter_of_arrays(self, name):
        """Paper: local sections slightly larger than 1/4 of the arrays
        because of shadow regions."""
        proxy = make_proxy(name, "A")
        quarter = proxy.array_bytes_total / 4
        local = proxy.segment_profile().local_section_bytes
        assert quarter < local < 1.4 * quarter


@pytest.mark.parametrize("name", ["bt", "lu", "sp"])
class TestTable1Lines:
    def test_paper_counts_recorded(self, name):
        proxy = make_proxy(name, "toy")
        total, added = PAPER_TABLE1[name]
        assert proxy.paper_total_lines == total
        assert proxy.paper_added_lines == added
        # ~1% of the source (the paper's headline claim)
        assert 0.005 < added / total < 0.015

    def test_proxy_drms_line_count_is_small(self, name):
        proxy = make_proxy(name, "toy")
        n = count_drms_lines(proxy.spmd_main)
        assert 5 <= n <= 30  # a handful of API touch points


class TestGeometry:
    def test_lu_pencil_decomposition(self):
        proxy = make_proxy("lu", "A")
        d = proxy.field_distribution(proxy.fields[0], 8)
        assert d.grid[0] == 1  # components replicated
        assert d.grid[1] == 1  # z whole (2D decomposition)

    def test_bt_3d_decomposition(self):
        proxy = make_proxy("bt", "A")
        d = proxy.field_distribution(proxy.fields[0], 8)
        assert d.grid == (1, 2, 2, 2)
        assert d.shadow == (0, 2, 2, 2)

    def test_no_shadow_on_undistributed_axes(self):
        proxy = make_proxy("sp", "A")
        d = proxy.field_distribution(proxy.fields[0], 4)
        assert d.grid == (1, 1, 2, 2)
        assert d.shadow == (0, 0, 2, 2)

    def test_private_bytes_scale_with_class(self):
        a = make_proxy("lu", "A").private_bytes()
        c = make_proxy("lu", "C").private_bytes()
        assert c / a == pytest.approx((162 / 64) ** 3, rel=0.01)

    def test_soq_minimum_four_tasks_for_real_classes(self):
        assert make_proxy("bt", "A").soq_spec().min_tasks == 4
        assert make_proxy("bt", "toy").soq_spec().min_tasks == 1
