"""NPB-style verification of the proxy solvers."""

import numpy as np
import pytest

from repro.apps import make_proxy
from repro.apps.verify import (
    EPSILON,
    REFERENCE,
    VERIFY_ITERS,
    VerificationError,
    field_norms,
    verify_field,
)


def run_main_field(benchmark, ntasks, restart_on=None):
    proxy = make_proxy(benchmark, "toy")
    app = proxy.build_application()
    rep = app.start(
        ntasks, args=(VERIFY_ITERS, f"{benchmark}.vv"),
        kwargs={"checkpoint_every": 3},
    )
    if restart_on:
        rep = app.restart(
            f"{benchmark}.vv", restart_on,
            args=(VERIFY_ITERS, f"{benchmark}.vv"),
            kwargs={"checkpoint_every": 3},
        )
    return rep.arrays["u"].to_global()


@pytest.mark.parametrize("nb", ["bt", "lu", "sp"])
class TestVerification:
    def test_straight_run_verifies(self, nb):
        field = run_main_field(nb, 4)
        norms = verify_field(nb, "toy", field)
        ref = REFERENCE[(nb, "toy")]
        assert norms.l2 == pytest.approx(ref.l2, rel=EPSILON)

    def test_verifies_on_any_task_count(self, nb):
        for nt in (1, 3, 6):
            verify_field(nb, "toy", run_main_field(nb, nt))

    def test_verifies_across_reconfigured_restart(self, nb):
        """Verification also pins the checkpoint/restart path: the
        restarted run must produce reference-exact numerics."""
        field = run_main_field(nb, 4, restart_on=2)
        verify_field(nb, "toy", field)

    def test_perturbation_detected(self, nb):
        # a single-element error large enough to move the global norms
        # past the 1e-8 relative tolerance
        field = run_main_field(nb, 2)
        field[0, 0, 0, 0] += 0.05
        with pytest.raises(VerificationError):
            verify_field(nb, "toy", field)


def test_unknown_configuration_rejected():
    with pytest.raises(VerificationError, match="no reference"):
        verify_field("bt", "C", np.ones((2, 2)))


def test_kernels_differ_across_benchmarks():
    """BT/LU/SP proxies are genuinely different solvers: identical
    initial data, distinct verified norms."""
    l2s = {b: REFERENCE[(b, "toy")].l2 for b in ("bt", "lu", "sp")}
    assert len(set(l2s.values())) == 3


def test_field_norms_roundtrip():
    f = np.full((3, 3), 2.0)
    n = field_norms(f)
    assert n.mean == 2.0
    assert n.l2 == pytest.approx(6.0)
