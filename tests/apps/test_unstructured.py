"""Tests for the unstructured-mesh application and irregular
distributions with explicit mapped overrides."""

import networkx as nx
import numpy as np
import pytest

from repro.apps.unstructured import (
    UnstructuredMeshApp,
    graph_distribution,
    partition_graph,
)
from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import Distribution, Indexed
from repro.arrays.ranges import Range
from repro.arrays.slices import Slice
from repro.errors import DistributionError


@pytest.fixture
def app():
    return UnstructuredMeshApp(nv=40, graph_seed=5)


class TestPartitioning:
    def test_parts_cover_disjointly(self, app):
        for nparts in (1, 3, 5):
            parts = partition_graph(app.graph, nparts)
            flat = sorted(v for p in parts for v in p)
            assert flat == sorted(app.graph.nodes)

    def test_parts_are_nonuniform(self, app):
        sizes = [len(p) for p in partition_graph(app.graph, 4)]
        assert max(sizes) != min(sizes)  # irregular by construction

    def test_more_parts_than_vertices(self, app):
        parts = partition_graph(app.graph, 50)
        assert sum(len(p) for p in parts) == 40

    def test_bad_nparts(self, app):
        with pytest.raises(DistributionError):
            partition_graph(app.graph, 0)


class TestGraphDistribution:
    def test_legal_and_total(self, app):
        d = graph_distribution(app.graph, 5)
        d.validate()
        assert sum(d.assigned(t).size for t in range(5)) == app.nv

    def test_mapped_holds_ghosts(self, app):
        d = graph_distribution(app.graph, 4)
        for t in range(4):
            owned = set(int(v) for v in d.assigned(t)[0].indices())
            mapped = set(int(v) for v in d.mapped(t)[0].indices())
            assert owned <= mapped
            for v in owned:
                for w in app.graph.neighbors(v):
                    assert w in mapped  # every neighbor is a ghost

    def test_mapped_override_flag_and_spec_roundtrip(self, app):
        from repro.checkpoint.format import distribution_to_spec, spec_to_distribution

        d = graph_distribution(app.graph, 3)
        assert d.mapped_overridden
        spec = distribution_to_spec(d)
        assert "mapped" in spec
        back = spec_to_distribution(spec)
        assert back == d

    def test_override_must_contain_assigned(self):
        with pytest.raises(DistributionError):
            Distribution(
                (6,),
                [Indexed([Range([0, 1, 2]), Range([3, 4, 5])])],
                2,
                grid=(2,),
                mapped=[Slice([Range([0, 1])]), Slice([Range([3, 4, 5])])],
            )

    def test_override_bounds_checked(self):
        with pytest.raises(DistributionError):
            Distribution(
                (4,),
                [Indexed([Range([0, 1, 2, 3])])],
                1,
                grid=(1,),
                mapped=[Slice([Range([0, 1, 2, 3, 9])])],
            )

    def test_override_count_checked(self):
        with pytest.raises(DistributionError):
            Distribution(
                (4,), [Indexed([Range([0, 1, 2, 3])])], 1, grid=(1,),
                mapped=[Slice([Range([0])]), Slice([Range([1])])],
            )


class TestRedistributionWithGhosts:
    def test_assignment_fills_irregular_ghosts(self, app):
        g = np.arange(40.0)
        d1 = graph_distribution(app.graph, 3)
        a = DistributedArray("x", (40,), np.float64, d1)
        a.set_global(g)
        d2 = graph_distribution(app.graph, 6, seed=11)
        b = a.redistributed(d2)
        assert np.array_equal(b.to_global(), g)
        assert b.is_consistent()  # ghosts included


class TestSolverLifecycle:
    def test_distribution_independent(self, app):
        totals = []
        for nt in (1, 3, 5):
            a = app.build_application()
            rep = a.start(nt, args=(4, "un"))
            totals.append(rep.arrays["x"].to_global())
        assert np.allclose(totals[0], totals[1], rtol=1e-12)
        assert np.allclose(totals[0], totals[2], rtol=1e-12)

    @pytest.mark.parametrize("t2", [1, 2, 6])
    def test_reconfigured_restart_with_repartitioning(self, app, t2):
        a = app.build_application()
        ref = a.start(4, args=(6, "un"))
        rep = a.restart("un", t2, args=(6, "un"))
        assert np.allclose(
            ref.arrays["x"].to_global(), rep.arrays["x"].to_global(),
            rtol=1e-12, atol=1e-12,
        )
        if t2 > 1:
            # the restarted run uses a freshly partitioned irregular
            # dist (at t2=1 it is equal to the auto-adjusted one, so the
            # existing binding is kept)
            assert rep.arrays["x"].distribution.mapped_overridden

    def test_heat_spreads_over_the_mesh(self, app):
        a = app.build_application()
        rep = a.start(3, args=(8, "un"))
        x = rep.arrays["x"].to_global()
        assert x[0] < 100.0
        assert (x > 0).sum() > 5  # heat reached the neighborhood
