"""Unit tests for the cadence rules (repro.policy.rules)."""

import math

import pytest

from repro.obs.health import HealthRegistry
from repro.policy import (
    AtEndRule,
    DrainBacklogRule,
    IterationRule,
    Observation,
    SimulatedTimeRule,
    WallclockRule,
    YoungDalyRule,
    young_daly_interval,
)

pytestmark = pytest.mark.policy


class TestYoungDalyInterval:
    def test_formula(self):
        assert young_daly_interval(30.0, 86_400.0) == pytest.approx(
            math.sqrt(2 * 30.0 * 86_400.0)
        )

    def test_floored_at_cost(self):
        # an interval shorter than one checkpoint write is unserviceable
        assert young_daly_interval(100.0, 1.0) == 100.0

    @pytest.mark.parametrize("cost,mtbf", [(-1.0, 100.0), (1.0, 0.0), (1.0, -5.0)])
    def test_rejects_bad_inputs(self, cost, mtbf):
        with pytest.raises(ValueError):
            young_daly_interval(cost, mtbf)


class TestIterationRule:
    def test_every_one_fires_every_iteration(self):
        """The bug the policy engine replaces: ``it % 1 == 1`` is never
        true, so the hardcoded cadence with every=1 never checkpointed."""
        rule = IterationRule(every=1, start=1)
        state = {}
        fired = []
        for it in range(1, 7):
            obs = Observation(iteration=it)
            if rule.due(obs, state):
                fired.append(it)
                rule.consume(obs, state)
        assert fired == [1, 2, 3, 4, 5, 6]

    def test_fig1_cadence(self):
        rule = IterationRule(every=10, start=1)
        state = {}
        fired = []
        for it in range(1, 26):
            obs = Observation(iteration=it)
            if rule.due(obs, state):
                fired.append(it)
                rule.consume(obs, state)
        assert fired == [1, 11, 21]

    def test_stop_bounds_the_schedule(self):
        rule = IterationRule(every=2, start=0, stop=4)
        state = {}
        fired = []
        for it in range(10):
            obs = Observation(iteration=it)
            if rule.due(obs, state):
                fired.append(it)
                rule.consume(obs, state)
        assert fired == [0, 2, 4]

    def test_at_points(self):
        rule = IterationRule(at=[3, 7])
        state = {}
        fired = []
        for it in range(10):
            obs = Observation(iteration=it)
            if rule.due(obs, state):
                fired.append(it)
                rule.consume(obs, state)
        assert fired == [3, 7]

    def test_missed_point_fires_late_once(self):
        rule = IterationRule(every=5, start=5)
        state = {}
        # the loop skipped from 2 straight to 12: the overdue point
        # fires once, not once per missed multiple
        assert not rule.due(Observation(iteration=2), state)
        obs = Observation(iteration=12)
        assert rule.due(obs, state)
        rule.consume(obs, state)
        assert not rule.due(Observation(iteration=13), state)
        assert rule.due(Observation(iteration=15), state)

    def test_rejects_empty_and_bad_schedules(self):
        with pytest.raises(ValueError):
            IterationRule()
        with pytest.raises(ValueError):
            IterationRule(every=0)
        with pytest.raises(ValueError):
            IterationRule(every=2, start=10, stop=5)


class TestSimulatedTimeRule:
    def test_fires_on_sim_clock(self):
        rule = SimulatedTimeRule(every=10.0, start=0.0)
        state = {}
        fired = []
        for t in (0.0, 3.0, 9.9, 10.0, 12.0, 25.0):
            obs = Observation(sim_time=t)
            if rule.due(obs, state):
                fired.append(t)
                rule.consume(obs, state)
        assert fired == [0.0, 10.0, 25.0]


class TestWallclockRule:
    def test_elapsed_measured_from_first_call(self):
        now = [1_000.0]
        rule = WallclockRule(every=60.0, start=60.0, clock=lambda: now[0])
        state = {}
        assert not rule.due(Observation(), state)
        now[0] = 1_059.0
        assert not rule.due(Observation(), state)
        now[0] = 1_060.0
        assert rule.due(Observation(), state)
        rule.consume(Observation(), state)
        assert not rule.due(Observation(), state)
        now[0] = 1_120.0
        assert rule.due(Observation(), state)


class TestAtEndRule:
    def test_fires_once_at_final(self):
        rule = AtEndRule()
        state = {}
        assert not rule.due(Observation(final=False), state)
        obs = Observation(final=True)
        assert rule.due(obs, state)
        rule.consume(obs, state)
        assert not rule.due(Observation(final=True), state)


class TestYoungDalyRule:
    def test_inert_without_mtbf(self):
        rule = YoungDalyRule(checkpoint_cost_s=30.0)
        assert rule.interval(Observation(), {}) is None
        assert not rule.due(Observation(sim_time=1e9), {})

    def test_fires_on_adaptive_interval(self):
        rule = YoungDalyRule(checkpoint_cost_s=50.0, mtbf_s=10_000.0)
        interval = young_daly_interval(50.0, 10_000.0)
        state = {}
        assert not rule.due(Observation(sim_time=0.0), state)
        assert not rule.due(Observation(sim_time=interval - 1), state)
        obs = Observation(sim_time=interval + 1)
        assert rule.due(obs, state)
        rule.consume(obs, state)
        assert not rule.due(Observation(sim_time=interval + 2), state)

    def test_observation_mtbf_overrides(self):
        rule = YoungDalyRule(checkpoint_cost_s=50.0, mtbf_s=10_000.0)
        got = rule.interval(Observation(mtbf_s=100.0), {})
        assert got == young_daly_interval(50.0, 100.0)

    def test_cost_ewma_tracks_observed_cost(self):
        rule = YoungDalyRule(
            checkpoint_cost_s=10.0, mtbf_s=1_000.0, cost_smoothing=0.5
        )
        state = {}
        rule.observe_cost(state, 30.0)
        assert state["young_daly.cost_s"] == pytest.approx(20.0)
        assert rule.interval(Observation(), state) == pytest.approx(
            young_daly_interval(20.0, 1_000.0)
        )

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            YoungDalyRule(checkpoint_cost_s=-1.0)
        with pytest.raises(ValueError):
            YoungDalyRule(cost_smoothing=0.0)


class TestDrainBacklogRule:
    def test_never_vetoes_without_registry(self):
        rule = DrainBacklogRule(max_backlog=0)
        assert not rule.veto(Observation(), {})

    def test_vetoes_over_threshold(self):
        health = HealthRegistry()
        health.metrics.gauge("health.drain.backlog").set(5)
        rule = DrainBacklogRule(max_backlog=2, health=health)
        assert rule.veto(Observation(), {})
        health.metrics.gauge("health.drain.backlog").set(2)
        assert not rule.veto(Observation(), {})

    def test_reads_registry_from_observation(self):
        health = HealthRegistry()
        health.metrics.gauge("health.drain.backlog").set(9)
        rule = DrainBacklogRule(max_backlog=2)
        assert rule.veto(Observation(health=health), {})

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            DrainBacklogRule(max_backlog=-1)
