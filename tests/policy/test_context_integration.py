"""The cadence engine driving real DRMS runs through
``DRMSContext.policy_checkpoint`` — including the every-iteration
cadence regression the policy engine fixes (``it % every == 1`` never
fired with ``every=1``)."""

import numpy as np
import pytest

from repro.apps import make_proxy
from repro.apps.stencil import StencilApp
from repro.drms import CheckpointStatus, DRMSApplication
from repro.drms.api import (
    drms_create_distribution,
    drms_distribute,
    drms_initialize,
    drms_policy_checkpoint,
)
from repro.errors import CheckpointError
from repro.obs.health import HealthRegistry
from repro.policy import (
    AtEndRule,
    CheckpointPolicy,
    DrainBacklogRule,
    IterationRule,
)

pytestmark = pytest.mark.policy

N = 12


def policy_main(ctx, niter, prefix, policy=None):
    drms_initialize(ctx)
    dist = drms_create_distribution(ctx, (N, N), shadow=(1, 1))
    u = drms_distribute(ctx, "u", dist, init_global=np.ones((N, N)))
    for it in ctx.iterations(1, niter + 1):
        status, delta = drms_policy_checkpoint(
            ctx, prefix, policy=policy, final=(it == niter)
        )
        if status is CheckpointStatus.RESTARTED and delta != 0:
            u = drms_distribute(ctx, "u", ctx.adjust("u"))
        u.set_assigned(u.assigned + 1.0)
        ctx.barrier()
    return float(u.assigned.sum())


class TestPolicyCheckpoint:
    def test_attached_policy_drives_cadence(self):
        app = DRMSApplication(
            policy_main, policy=CheckpointPolicy.every_iterations(5)
        )
        rep = app.start(4, args=(11, "ck"))
        assert len(rep.checkpoints) == 3  # it = 1, 6, 11

    def test_explicit_policy_overrides_attached(self):
        app = DRMSApplication(
            policy_main, policy=CheckpointPolicy.every_iterations(2)
        )
        pol = CheckpointPolicy([IterationRule(at=[4])])
        rep = app.start(2, args=(6, "ck"), kwargs={"policy": pol})
        assert len(rep.checkpoints) == 1

    def test_no_policy_raises(self):
        app = DRMSApplication(policy_main)
        with pytest.raises(CheckpointError, match="cadence policy"):
            app.start(2, args=(4, "ck"))

    def test_at_end_checkpoints_last_iteration(self):
        pol = CheckpointPolicy([IterationRule(every=100, start=1), AtEndRule()])
        app = DRMSApplication(policy_main, policy=pol)
        rep = app.start(4, args=(10, "ck"))
        assert len(rep.checkpoints) == 2  # it = 1 and the final SOP

    def test_throttle_suppresses_until_lifted(self):
        health = HealthRegistry()
        health.metrics.gauge("health.drain.backlog").set(99)
        pol = CheckpointPolicy(
            [IterationRule(every=1, start=1)],
            throttles=[DrainBacklogRule(max_backlog=2, health=health)],
        )
        app = DRMSApplication(policy_main, policy=pol)
        rep = app.start(2, args=(5, "ck"))
        assert len(rep.checkpoints) == 0
        health.metrics.gauge("health.drain.backlog").set(0)
        rep2 = DRMSApplication(policy_main, policy=pol).start(2, args=(5, "ck"))
        assert len(rep2.checkpoints) == 5

    def test_reconfigured_restart_matches_straight_run(self):
        pol = CheckpointPolicy.every_iterations(4)
        app = DRMSApplication(policy_main, policy=pol)
        ref = app.start(4, args=(9, "ck"))
        rep = app.restart("ck", 6, args=(9, "ck"))
        assert np.allclose(
            rep.arrays["u"].to_global(), ref.arrays["u"].to_global()
        )
        assert rep.restarted_from == "ck"

    def test_policy_state_fresh_per_run(self):
        """The same policy object drives two runs; rule state must not
        leak between them (it lives in the per-run AppRuntime)."""
        pol = CheckpointPolicy([IterationRule(at=[2])])
        app = DRMSApplication(policy_main, policy=pol)
        assert len(app.start(2, args=(4, "ck1")).checkpoints) == 1
        assert len(app.start(2, args=(4, "ck2")).checkpoints) == 1


class TestEveryIterationRegression:
    def test_proxy_checkpoints_every_iteration(self):
        """checkpoint_every=1 checkpoints at EVERY iteration; the old
        hardcoded ``it % checkpoint_every == 1`` never fired for 1."""
        proxy = make_proxy("bt", "toy")
        app = proxy.build_application()
        rep = app.start(
            2, args=(4, "bt.ck"), kwargs={"checkpoint_every": 1}
        )
        assert len(rep.checkpoints) == 4

    def test_proxy_fig1_cadence_unchanged(self):
        proxy = make_proxy("lu", "toy")
        app = proxy.build_application()
        rep = app.start(
            2, args=(4, "lu.ck"), kwargs={"checkpoint_every": 3}
        )
        assert len(rep.checkpoints) == 2  # it = 1 and it = 4

    def test_proxy_zero_disables_checkpointing(self):
        proxy = make_proxy("sp", "toy")
        app = proxy.build_application()
        rep = app.start(
            2, args=(3, "sp.ck"), kwargs={"checkpoint_every": 0}
        )
        assert len(rep.checkpoints) == 0

    def test_stencil_every_iteration(self):
        app = StencilApp(shape=(12, 12), checkpoint_every=1).build_application()
        rep = app.start(2, args=(3, "st.ck"))
        assert len(rep.checkpoints) == 3

    def test_stencil_custom_policy(self):
        stencil = StencilApp(
            shape=(12, 12),
            policy=CheckpointPolicy([IterationRule(at=[2]), AtEndRule()]),
        )
        rep = stencil.build_application().start(2, args=(5, "st.ck"))
        assert len(rep.checkpoints) == 2  # it = 2 and the final SOP
