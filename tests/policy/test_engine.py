"""Unit tests for the cadence engine (repro.policy.engine)."""

import pytest

from repro.obs.health import HealthRegistry
from repro.policy import (
    AtEndRule,
    CheckpointPolicy,
    DrainBacklogRule,
    IterationRule,
    Observation,
    SimulatedTimeRule,
)

pytestmark = pytest.mark.policy


class TestConstruction:
    def test_every_iterations_matches_fig1(self):
        pol = CheckpointPolicy.every_iterations(10)
        state = {}
        fired = [
            it
            for it in range(1, 26)
            if pol.decide(Observation(iteration=it), state).fire
        ]
        assert fired == [1, 11, 21]

    def test_every_iterations_one_fires_always(self):
        pol = CheckpointPolicy.every_iterations(1)
        state = {}
        assert all(
            pol.decide(Observation(iteration=it), state).fire
            for it in range(1, 8)
        )

    def test_every_iterations_zero_is_empty(self):
        pol = CheckpointPolicy.every_iterations(0)
        assert not pol.rules and not pol.throttles
        assert not pol.decide(Observation(iteration=1), {}).fire

    def test_every_iterations_negative_rejected(self):
        with pytest.raises(ValueError):
            CheckpointPolicy.every_iterations(-1)

    def test_from_spec(self):
        pol = CheckpointPolicy.from_spec(
            {
                "at_end": True,
                "iterations": [{"every": 10, "start": 1}],
                "simulation_time": [{"every": 5.0}],
                "wallclock_time": [{"at": [300.0]}],
            }
        )
        kinds = sorted(r.kind for r in pol.rules)
        assert kinds == ["at_end", "iteration", "simulated_time", "wallclock"]

    def test_from_spec_rejects_unknown_trigger(self):
        with pytest.raises(ValueError, match="unknown checkpoint trigger"):
            CheckpointPolicy.from_spec({"simulation_tmie": [{"every": 5}]})


class TestDecide:
    def test_one_checkpoint_services_all_due_rules(self):
        pol = CheckpointPolicy(
            [IterationRule(every=2, start=0), SimulatedTimeRule(every=10.0)]
        )
        state = {}
        d = pol.decide(Observation(iteration=0, sim_time=0.0), state)
        assert d.fire and set(d.due) == {"iteration", "simulated_time"}
        # both rules were consumed by the one checkpoint
        d2 = pol.decide(Observation(iteration=1, sim_time=1.0), state)
        assert not d2.fire

    def test_throttle_vetoes_without_consuming(self):
        health = HealthRegistry()
        backlog = health.metrics.gauge("health.drain.backlog")
        backlog.set(10)
        pol = CheckpointPolicy(
            [IterationRule(every=5, start=5)],
            throttles=[DrainBacklogRule(max_backlog=2, health=health)],
        )
        state = {}
        d = pol.decide(Observation(iteration=5), state)
        assert not d.fire and d.due == ("iteration",)
        assert d.throttled_by == ("drain_backlog",)
        # the veto lifts: the rule is still due and fires immediately,
        # even though iteration 5 is long past
        backlog.set(0)
        d2 = pol.decide(Observation(iteration=7), state)
        assert d2.fire and d2.due == ("iteration",)

    def test_negative_decision_leaves_state_untouched(self):
        pol = CheckpointPolicy([IterationRule(every=10, start=5)])
        state = {}
        pol.decide(Observation(iteration=1), state)
        before = dict(state)
        pol.decide(Observation(iteration=2), state)
        assert state == before

    def test_at_end_combines_with_periodic(self):
        pol = CheckpointPolicy(
            [IterationRule(every=7, start=1), AtEndRule()]
        )
        state = {}
        fired = [
            it
            for it in range(1, 11)
            if pol.decide(
                Observation(iteration=it, final=(it == 10)), state
            ).fire
        ]
        assert fired == [1, 8, 10]

    def test_metrics_published(self):
        from repro.obs import Tracer, use_tracer

        tr = Tracer()
        pol = CheckpointPolicy([IterationRule(every=1, start=0)])
        state = {}
        with use_tracer(tr):
            pol.decide(Observation(iteration=0), state)
            pol.decide(Observation(iteration=0), state)
        m = tr.metrics
        assert m.counter("policy.evaluations").value == 2
        assert m.counter("policy.fired.iteration").value == 1
        assert m.counter("policy.skipped").value == 1


class TestObserveCost:
    def test_cost_fans_out_to_adaptive_rules(self):
        from repro.policy import YoungDalyRule

        pol = CheckpointPolicy(
            [IterationRule(every=5), YoungDalyRule(checkpoint_cost_s=10.0)]
        )
        state = {}
        pol.observe_cost(state, 40.0)
        assert state["young_daly.cost_s"] == pytest.approx(25.0)
