"""Unit tests for the plan cache layer."""

import numpy as np
import pytest

from repro.arrays.distributions import block_distribution
from repro.arrays.slices import Slice
from repro.obs import Tracer, use_tracer
from repro.plancache import (
    NullPlanCache,
    PlanCache,
    get_plan_cache,
    partition_for_target,
    piece_offsets,
    section_stream_positions,
    streaming_plan,
    transfer_schedule,
    use_plan_cache,
)
from repro.streaming.partition import (
    partition_for_target as pure_partition_for_target,
)


class TestPlanCacheCore:
    def test_hit_returns_same_object(self):
        cache = PlanCache()
        calls = []
        v1 = cache.get_or_compute("k", (1,), lambda: calls.append(1) or [42])
        v2 = cache.get_or_compute("k", (1,), lambda: calls.append(1) or [43])
        assert v1 is v2 and v1 == [42]
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_kind_segregates_keys(self):
        cache = PlanCache()
        a = cache.get_or_compute("a", (1,), lambda: "A")
        b = cache.get_or_compute("b", (1,), lambda: "B")
        assert (a, b) == ("A", "B")
        assert cache.misses == 2

    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        cache.get_or_compute("k", (1,), lambda: 1)
        cache.get_or_compute("k", (2,), lambda: 2)
        cache.get_or_compute("k", (1,), lambda: 0)  # hit: 1 becomes MRU
        cache.get_or_compute("k", (3,), lambda: 3)  # evicts 2 (LRU)
        assert cache.evictions == 1
        assert cache.get_or_compute("k", (2,), lambda: 22) == 22  # recompute
        assert cache.misses == 4  # 1, 2, 3, and 2 again
        # key 3 survived both evictions (it was never LRU)
        assert cache.get_or_compute("k", (3,), lambda: 0) == 3

    def test_invalidate_distribution(self):
        cache = PlanCache()
        d1 = block_distribution((8, 8), 2)
        d2 = block_distribution((8, 8), 4)
        with use_plan_cache(cache):
            transfer_schedule(d1, d2)
            transfer_schedule(d2, d2)
            partition_for_target(Slice.full((8, 8)), 8)
        assert len(cache) == 3
        dropped = cache.invalidate_distribution(d1)
        assert dropped == 1
        assert len(cache) == 2
        assert cache.invalidations == 1
        # untagged entries (pure slice keys) survive
        with use_plan_cache(cache):
            partition_for_target(Slice.full((8, 8)), 8)
        assert cache.hits == 1

    def test_stats_snapshot(self):
        cache = PlanCache()
        cache.get_or_compute("k", (1,), lambda: 1)
        s = cache.stats()
        assert s["misses"] == 1 and s["size"] == 1
        assert 0.0 <= s["hit_rate"] <= 1.0

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)


class TestScoping:
    def test_use_plan_cache_restores(self):
        outer = get_plan_cache()
        inner = PlanCache()
        with use_plan_cache(inner) as c:
            assert get_plan_cache() is inner is c
        assert get_plan_cache() is outer

    def test_null_cache_always_computes(self):
        null = NullPlanCache()
        with use_plan_cache(null):
            s = Slice.full((16, 16))
            p1 = partition_for_target(s, 8, target_bytes=256)
            p2 = partition_for_target(s, 8, target_bytes=256)
        assert p1 == p2
        assert null.misses == 2
        assert len(null) == 0


class TestCachedPlans:
    def test_partition_matches_pure(self):
        s = Slice.full((32, 8))
        with use_plan_cache(PlanCache()):
            cached = partition_for_target(s, 8, target_bytes=512)
        assert cached == pure_partition_for_target(s, 8, target_bytes=512)

    def test_returned_lists_are_private_copies(self):
        s = Slice.full((16,))
        with use_plan_cache(PlanCache()):
            p1 = partition_for_target(s, 8, target_bytes=32)
            p1.append("garbage")
            p2 = partition_for_target(s, 8, target_bytes=32)
        assert "garbage" not in p2

    def test_streaming_plan_composite(self):
        s = Slice.full((16, 4))
        cache = PlanCache()
        with use_plan_cache(cache):
            pieces, offsets = streaming_plan(s, 8, target_bytes=128)
            again = streaming_plan(s, 8, target_bytes=128)
        assert again == (pieces, offsets)
        assert cache.hits == 1
        assert list(offsets) == piece_offsets(list(pieces), 8)

    def test_positions_read_only(self):
        s = Slice.full((8, 8))
        sub = Slice.full((8, 8))
        with use_plan_cache(PlanCache()):
            pos = section_stream_positions(s, sub)
        assert isinstance(pos, np.ndarray)
        with pytest.raises(ValueError):
            pos[0] = 0

    def test_schedule_fingerprint_sharing(self):
        # two Distribution objects with identical geometry share one entry
        cache = PlanCache()
        d1 = block_distribution((12, 6), 3)
        d2 = block_distribution((12, 6), 3)
        with use_plan_cache(cache):
            s1 = transfer_schedule(d1, d1)
            s2 = transfer_schedule(d2, d2)
        assert s1 == s2
        assert cache.hits == 1 and cache.misses == 1


class TestMetrics:
    def test_hit_miss_counters_published(self):
        with use_tracer(Tracer()) as tracer:
            with use_plan_cache(PlanCache()):
                s = Slice.full((8, 8))
                partition_for_target(s, 8, target_bytes=64)
                partition_for_target(s, 8, target_bytes=64)
            flat = tracer.metrics.flat()
        assert flat.get("plancache.miss.count") or flat.get("plancache.miss")
        assert flat.get("plancache.hit.count") or flat.get("plancache.hit")

    def test_saved_seconds_accrue_on_hits(self):
        cache = PlanCache()
        with use_plan_cache(cache):
            s = Slice.full((32, 32))
            partition_for_target(s, 8, target_bytes=64)
            assert cache.saved_seconds == 0.0
            partition_for_target(s, 8, target_bytes=64)
        assert cache.saved_seconds > 0.0
