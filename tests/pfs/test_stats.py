"""Tests for the PIOFS statistics readout."""

import numpy as np
import pytest

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import block_distribution
from repro.checkpoint.drms import drms_checkpoint, drms_restart
from repro.checkpoint.segment import DataSegment, SegmentProfile
from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine, MachineParams


def test_empty_stats():
    pfs = PIOFS()
    s = pfs.stats()
    assert s == {
        "files": 0,
        "bytes_stored": 0,
        "phases": 0,
        "pressured_phases": 0,
        "by_kind": {},
    }


def test_stats_after_checkpoint_restart():
    machine = Machine(MachineParams(num_nodes=16))
    machine.place_tasks(8)
    pfs = PIOFS(machine=machine)
    arr = DistributedArray("u", (8, 8), np.float64, block_distribution((8, 8), 4))
    arr.set_global(np.ones((8, 8)))
    seg = DataSegment(profile=SegmentProfile(10_000, 0, 0))
    drms_checkpoint(pfs, "ck", seg, [arr])
    drms_restart(pfs, "ck", 4)
    s = pfs.stats()
    assert s["phases"] == 4
    assert set(s["by_kind"]) == {
        "write_serial", "write_parallel", "read_shared", "read_parallel",
    }
    assert s["by_kind"]["write_parallel"]["bytes"] == arr.nbytes_global
    assert s["files"] == 3
    assert s["pressured_phases"] == 0


def test_pressured_phases_counted():
    from repro.checkpoint.spmd import spmd_checkpoint

    machine = Machine(MachineParams(num_nodes=16))
    machine.place_tasks(8)
    pfs = PIOFS(machine=machine)
    # LU-sized segments: over the write-pressure threshold
    spmd_checkpoint(pfs, "sp", ntasks=8, segment_bytes=int(89e6))
    assert pfs.stats()["pressured_phases"] == 1
