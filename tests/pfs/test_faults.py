"""Tests for the I/O fault-injection harness (repro.pfs.faults)."""

import pytest

from repro.errors import IOFaultError, PFSError
from repro.pfs.faults import FaultInjector, ReadFault, WriteFault, flip_stored_bit
from repro.pfs.piofs import PIOFS


@pytest.fixture
def pfs():
    fs = PIOFS()
    fs.create("a")
    fs.create("b")
    return fs


def armed(fs):
    inj = FaultInjector()
    fs.attach_faults(inj)
    return inj


class TestWriteFaults:
    def test_fail_mode_writes_nothing(self, pfs):
        inj = armed(pfs)
        inj.fail_write(nth=1, match="a", mode="fail")
        with pytest.raises(IOFaultError):
            pfs.write_at("a", 0, b"payload")
        assert pfs.file_size("a") == 0
        assert inj.log == [("write", "a", "fail")]

    def test_torn_write_keeps_prefix_and_raises(self, pfs):
        inj = armed(pfs)
        inj.fail_write(nth=1, match="a", mode="torn", keep_bytes=3)
        with pytest.raises(IOFaultError):
            pfs.write_at("a", 0, b"abcdef")
        assert pfs.file_size("a") == 3
        assert pfs.read_at("a", 0, 3) == b"abc"

    def test_short_write_is_silent(self, pfs):
        inj = armed(pfs)
        inj.fail_write(nth=1, match="a", mode="short", keep_bytes=2)
        n = pfs.write_at("a", 0, b"abcdef")
        assert n == 2
        assert pfs.file_size("a") == 2

    def test_default_keep_is_half(self, pfs):
        inj = armed(pfs)
        inj.fail_write(nth=1, mode="short")
        assert pfs.write_at("a", 0, b"abcdefgh") == 4

    def test_nth_counts_only_matching_files(self, pfs):
        inj = armed(pfs)
        inj.fail_write(nth=2, match="b", mode="fail")
        pfs.write_at("a", 0, b"x")  # does not match
        pfs.write_at("b", 0, b"x")  # 1st matching write: survives
        with pytest.raises(IOFaultError):
            pfs.write_at("b", 1, b"x")  # 2nd: fires
        assert inj.pending == 0

    def test_fires_at_most_once(self, pfs):
        inj = armed(pfs)
        inj.fail_write(nth=1, match="a", mode="fail")
        with pytest.raises(IOFaultError):
            pfs.write_at("a", 0, b"x")
        pfs.write_at("a", 0, b"x")  # disarmed
        assert pfs.file_size("a") == 1

    def test_append_also_hooked(self, pfs):
        inj = armed(pfs)
        inj.fail_write(nth=1, match="a", mode="short", keep_bytes=1)
        assert pfs.append("a", b"xyz") == 1
        assert pfs.file_size("a") == 1

    def test_bad_mode_rejected(self):
        with pytest.raises(PFSError):
            WriteFault(mode="corrupt")
        with pytest.raises(PFSError):
            WriteFault(nth=0)

    def test_content_free_write_can_be_shortened(self, pfs):
        inj = armed(pfs)
        inj.fail_write(nth=1, match="a", mode="short", keep_bytes=10)
        assert pfs.write_at("a", 0, None, nbytes=100) == 10
        assert pfs.file_size("a") == 10


class TestReadFaults:
    def test_bit_flip_on_nth_read(self, pfs):
        pfs.write_at("a", 0, b"\x00\x00\x00")
        inj = armed(pfs)
        inj.flip_read(nth=2, match="a", offset=1, bit=3)
        assert pfs.read_at("a", 0, 3) == b"\x00\x00\x00"  # 1st read clean
        assert pfs.read_at("a", 0, 3) == b"\x00\x08\x00"  # 2nd corrupted
        assert pfs.read_at("a", 0, 3) == b"\x00\x00\x00"  # disarmed
        assert pfs.read_at("a", 1, 1) == b"\x00"  # store untouched

    def test_offset_clamped_to_buffer(self, pfs):
        pfs.write_at("a", 0, b"\x00\x00")
        inj = armed(pfs)
        inj.flip_read(nth=1, match="a", offset=10_000, bit=0)
        assert pfs.read_at("a", 0, 2) == b"\x00\x01"

    def test_validation(self):
        with pytest.raises(PFSError):
            ReadFault(bit=8)
        with pytest.raises(PFSError):
            ReadFault(nth=0)


class TestPersistentCorruption:
    def test_flip_stored_bit(self, pfs):
        pfs.write_at("a", 0, b"\x00\x00")
        flip_stored_bit(pfs, "a", 1, bit=7)
        assert pfs.read_at("a", 0, 2) == b"\x00\x80"
        flip_stored_bit(pfs, "a", 1, bit=7)  # flip back
        assert pfs.read_at("a", 0, 2) == b"\x00\x00"

    def test_virtual_file_rejected(self, pfs):
        pfs.create("v", virtual=True)
        pfs.write_at("v", 0, None, nbytes=10)
        with pytest.raises(PFSError):
            flip_stored_bit(pfs, "v", 0)

    def test_offset_past_content_rejected(self, pfs):
        pfs.write_at("a", 0, b"ab")
        with pytest.raises(PFSError):
            flip_stored_bit(pfs, "a", 5)


class TestRename:
    def test_rename_moves_content(self, pfs):
        pfs.write_at("a", 0, b"data")
        pfs.rename("a", "c")
        assert not pfs.exists("a")
        assert pfs.read_at("c", 0, 4) == b"data"

    def test_rename_replaces_destination(self, pfs):
        pfs.write_at("a", 0, b"new")
        pfs.write_at("b", 0, b"old-old")
        pfs.rename("a", "b")
        assert pfs.file_size("b") == 3
        assert pfs.read_at("b", 0, 3) == b"new"

    def test_rename_missing_source(self, pfs):
        with pytest.raises(PFSError):
            pfs.rename("nope", "x")


def test_detach_restores_health(pfs):
    inj = armed(pfs)
    inj.fail_write(nth=1, mode="fail")
    pfs.attach_faults(None)
    pfs.write_at("a", 0, b"fine")
    assert pfs.file_size("a") == 4
