"""Tests for the host-directory-backed PIOFS (durable checkpoints)."""

import numpy as np
import pytest

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import block_distribution
from repro.checkpoint.drms import drms_checkpoint, drms_restart
from repro.checkpoint.segment import DataSegment, SegmentProfile
from repro.errors import PFSError
from repro.pfs.hostfs import HostFS
from repro.runtime.machine import Machine, MachineParams


@pytest.fixture
def fs(tmp_path):
    return HostFS(tmp_path / "pfs", machine=Machine(MachineParams(num_nodes=16)))


class TestBasics:
    def test_write_read_on_disk(self, fs, tmp_path):
        fs.create("f")
        fs.write_at("f", 0, b"hello")
        assert fs.read_at("f", 0, 5) == b"hello"
        assert (tmp_path / "pfs" / "f").read_bytes() == b"hello"

    def test_sparse_extension(self, fs):
        fs.create("f")
        fs.write_at("f", 0, b"ab")
        fs.write_at("f", 2, None, nbytes=1000)
        assert fs.file_size("f") == 1002
        assert fs.read_at("f", 1000, 2) == b"\x00\x00"

    def test_virtual_files_metadata_only(self, fs, tmp_path):
        fs.create("v", virtual=True)
        fs.write_at("v", 0, None, nbytes=12345)
        assert fs.file_size("v") == 12345
        with pytest.raises(PFSError):
            fs.read_at("v", 0, 1)

    def test_unlink_removes_from_disk(self, fs, tmp_path):
        fs.create("f")
        fs.write_at("f", 0, b"x")
        fs.unlink("f")
        assert not (tmp_path / "pfs" / "f").exists()
        assert not fs.exists("f")

    def test_path_separators_rejected(self, fs):
        with pytest.raises(PFSError):
            fs.create("../escape")

    def test_phases_still_timed(self, fs):
        from repro.pfs.phase import IOKind

        fs.machine.place_tasks(8)
        fs.create("f")
        fs.begin_phase(IOKind.WRITE_SERIAL)
        fs.write_at("f", 0, None, nbytes=int(10e6), client=0)
        res = fs.end_phase()
        assert res.seconds > 0


class TestDurability:
    def test_namespace_survives_reopen(self, fs, tmp_path):
        fs.create("real")
        fs.write_at("real", 0, b"data")
        fs.create("virt", virtual=True)
        fs.write_at("virt", 0, None, nbytes=777)
        again = HostFS(tmp_path / "pfs")
        assert again.read_at("real", 0, 4) == b"data"
        assert again.open("virt").virtual
        assert again.file_size("virt") == 777

    def test_checkpoint_survives_process_boundary(self, tmp_path):
        """Checkpoint through one HostFS instance; restart through a
        fresh one on the same directory — the cross-process story."""
        root = tmp_path / "ck"
        g = np.arange(12 * 12, dtype=np.float64).reshape(12, 12)
        arr = DistributedArray(
            "u", (12, 12), np.float64, block_distribution((12, 12), 4)
        )
        arr.set_global(g)
        seg = DataSegment(
            profile=SegmentProfile(20_000, 0, 0), replicated={"it": 9}
        )
        fs1 = HostFS(root)
        drms_checkpoint(fs1, "job", seg, [arr])
        del fs1

        fs2 = HostFS(root)
        state, _ = drms_restart(fs2, "job", 7)
        assert np.array_equal(state.arrays["u"].to_global(), g)
        assert state.segment.replicated["it"] == 9
        assert state.ntasks == 7

    def test_application_restart_across_instances(self, tmp_path):
        from repro.apps.stencil import StencilApp

        root = tmp_path / "app"
        stencil = StencilApp(shape=(16, 16), checkpoint_every=3)
        app1 = stencil.build_application(pfs=HostFS(root))
        ref = app1.start(4, args=(7, "st"))

        app2 = stencil.build_application(pfs=HostFS(root))
        rep = app2.restart("st", 2, args=(7, "st"))
        assert np.allclose(
            ref.arrays["grid"].to_global(), rep.arrays["grid"].to_global()
        )

    def test_rename_is_atomic_on_disk(self, fs, tmp_path):
        """rename() maps to os.replace: the destination is overwritten,
        the source name is gone, and the result survives a reopen."""
        fs.create("stage")
        fs.write_at("stage", 0, b"new contents")
        fs.create("final")
        fs.write_at("final", 0, b"old")
        fs.rename("stage", "final")
        assert not fs.exists("stage")
        assert fs.read_at("final", 0, 12) == b"new contents"
        assert not (tmp_path / "pfs" / "stage").exists()
        again = HostFS(tmp_path / "pfs")
        assert again.read_at("final", 0, 12) == b"new contents"

    def test_stored_bit_flip_detected_after_reopen(self, tmp_path):
        """Corrupt one on-disk bit of a checkpoint; a fresh HostFS on the
        same directory must fail validation (the durable media-rot story)."""
        from repro.checkpoint.validate import validate_checkpoint
        from repro.pfs.faults import flip_stored_bit

        root = tmp_path / "ck"
        arr = DistributedArray("u", (8,), np.float64, block_distribution((8,), 2))
        arr.set_global(np.arange(8.0))
        seg = DataSegment(profile=SegmentProfile(100, 0, 0))
        fs1 = HostFS(root)
        drms_checkpoint(fs1, "job", seg, [arr])
        assert validate_checkpoint(fs1, "job").ok
        flip_stored_bit(fs1, "job.array.u", 5, bit=3)
        del fs1

        fs2 = HostFS(root)
        report = validate_checkpoint(fs2, "job")
        assert not report.ok
        assert any("checksum mismatch" in e for e in report.errors)

    def test_migration_to_host_archive(self, fs, tmp_path):
        """Archive a checkpoint from the in-memory PFS to a durable
        host directory (the paper's migration-to-permanent-storage)."""
        from repro.checkpoint.archive import copy_checkpoint
        from repro.pfs.piofs import PIOFS

        mem = PIOFS()
        arr = DistributedArray("u", (8,), np.float64, block_distribution((8,), 2))
        arr.set_global(np.arange(8.0))
        drms_checkpoint(mem, "m", DataSegment(profile=SegmentProfile(100, 0, 0)), [arr])
        copy_checkpoint(mem, fs, "m")
        state, _ = drms_restart(fs, "m", 3)
        assert np.array_equal(state.arrays["u"].to_global(), np.arange(8.0))
