"""Unit tests for striped PFS files."""

import pytest

from repro.errors import PFSError
from repro.pfs.file import PFSFile


def make(virtual=False, servers=4, stripe_kb=1):
    return PFSFile("f", num_servers=servers, stripe_kb=stripe_kb, virtual=virtual)


class TestStriping:
    def test_offset_to_server_round_robin(self):
        f = make()
        assert f.server_of_offset(0) == 0
        assert f.server_of_offset(1024) == 1
        assert f.server_of_offset(4096) == 0

    def test_server_byte_spans_balanced(self):
        f = make()
        spans = f.server_byte_spans(0, 8192)
        assert spans == {0: 2048, 1: 2048, 2: 2048, 3: 2048}

    def test_span_partial_stripes(self):
        f = make()
        spans = f.server_byte_spans(512, 1024)
        assert spans == {0: 512, 1: 512}

    def test_negative_offset_rejected(self):
        with pytest.raises(PFSError):
            make().server_of_offset(-1)


class TestDataFiles:
    def test_write_read_roundtrip(self):
        f = make()
        f.write_at(0, b"hello")
        assert f.read_at(0, 5) == b"hello"
        assert f.size == 5

    def test_write_past_eof_zero_fills(self):
        f = make()
        f.write_at(4, b"x")
        assert f.read_at(0, 5) == b"\x00\x00\x00\x00x"

    def test_overwrite(self):
        f = make()
        f.write_at(0, b"aaaa")
        f.write_at(1, b"bb")
        assert f.read_all() == b"abba"

    def test_append(self):
        f = make()
        f.append(b"ab")
        f.append(b"cd")
        assert f.read_all() == b"abcd"

    def test_read_outside_rejected(self):
        f = make()
        f.write_at(0, b"abc")
        with pytest.raises(PFSError):
            f.read_at(1, 5)

    def test_sparse_write_reads_zeros(self):
        f = make()
        f.write_at(0, b"ab")
        f.write_at(2, None, nbytes=100)
        assert f.size == 102
        assert f.read_at(0, 4) == b"ab\x00\x00"
        assert f.read_at(100, 2) == b"\x00\x00"

    def test_sparse_needs_nbytes(self):
        with pytest.raises(PFSError):
            make().write_at(0, None)


class TestVirtualFiles:
    def test_size_only(self):
        f = make(virtual=True)
        assert f.write_at(0, None, nbytes=500) == 500
        assert f.size == 500

    def test_data_write_counts_bytes(self):
        f = make(virtual=True)
        f.write_at(0, b"abc")
        assert f.size == 3

    def test_read_rejected(self):
        f = make(virtual=True)
        f.write_at(0, None, nbytes=10)
        with pytest.raises(PFSError):
            f.read_at(0, 1)
