"""Unit tests for the I/O phase timing model — each of the paper's
mechanisms in isolation."""

import pytest

from repro.errors import PFSError
from repro.pfs.params import PIOFSParams
from repro.pfs.phase import IOKind, PhaseTransfer, solve_phase

P = PIOFSParams()
MB = int(1e6)


def tr(client, filename, mb, offset=0):
    return PhaseTransfer(client, filename, offset, int(mb * MB))


class TestBasics:
    def test_empty_phase_is_free(self):
        r = solve_phase(IOKind.WRITE_SERIAL, [], P, busy_nodes=8)
        assert r.seconds == 0.0
        assert r.total_bytes == 0

    def test_rate_property(self):
        r = solve_phase(IOKind.WRITE_SERIAL, [tr(0, "f", 63)], P, busy_nodes=8)
        assert r.rate_mbps == pytest.approx(63 / r.seconds)

    def test_is_write_classification(self):
        assert IOKind.WRITE_PARALLEL.is_write
        assert not IOKind.READ_SHARED.is_write


class TestWriteSerial:
    def test_interference_slows_single_writer(self):
        t8 = solve_phase(IOKind.WRITE_SERIAL, [tr(0, "f", 63)], P, busy_nodes=8)
        t16 = solve_phase(IOKind.WRITE_SERIAL, [tr(0, "f", 63)], P, busy_nodes=16)
        assert t16.seconds > t8.seconds

    def test_bt_segment_rate_matches_paper(self):
        # Table 6: BT data segment writes at 12.4 MB/s on 8 PEs, 8.4 on 16
        r8 = solve_phase(IOKind.WRITE_SERIAL, [tr(0, "f", 63)], P, busy_nodes=8)
        r16 = solve_phase(IOKind.WRITE_SERIAL, [tr(0, "f", 63)], P, busy_nodes=16)
        assert r8.rate_mbps == pytest.approx(12.4, rel=0.1)
        assert r16.rate_mbps == pytest.approx(8.4, rel=0.1)

    def test_large_segment_pressured(self):
        # LU's ~89 MB segment exceeds the writer's free memory
        r = solve_phase(IOKind.WRITE_SERIAL, [tr(0, "f", 89)], P, busy_nodes=8)
        assert r.pressured
        small = solve_phase(IOKind.WRITE_SERIAL, [tr(0, "f", 63)], P, busy_nodes=8)
        assert not small.pressured
        assert r.rate_mbps < small.rate_mbps


class TestWriteParallel:
    def test_server_limited_aggregate(self):
        transfers = [tr(c, "arr", 10, offset=c * 10 * MB) for c in range(8)]
        r = solve_phase(IOKind.WRITE_PARALLEL, transfers, P, busy_nodes=8)
        assert r.rate_mbps <= P.array_write_agg_mbps

    def test_more_tasks_mildly_slower(self):
        t8 = solve_phase(IOKind.WRITE_PARALLEL, [tr(c, "a", 10) for c in range(8)], P, 8)
        t16 = solve_phase(IOKind.WRITE_PARALLEL, [tr(c, "a", 5) for c in range(16)], P, 16)
        assert t16.rate_mbps < t8.rate_mbps

    def test_single_client_injection_bound(self):
        # one straggler holding the whole array cannot beat its own link
        r = solve_phase(IOKind.WRITE_PARALLEL, [tr(0, "a", 200)], P, busy_nodes=1)
        assert r.seconds >= 200 / P.client_write_mbps


class TestWriteDistinct:
    def test_pressured_when_segments_exceed_threshold(self):
        transfers = [tr(c, f"seg{c}", 89) for c in range(8)]
        r = solve_phase(IOKind.WRITE_DISTINCT, transfers, P, busy_nodes=8)
        assert r.pressured
        # thrash-limited: aggregate capped near nclients * thrash rate
        assert r.rate_mbps == pytest.approx(
            min(
                P.distinct_write_agg_mbps * P.write_eff(0.5),
                8 * P.write_thrash_per_client_mbps,
            ),
            rel=0.15,
        )

    def test_unpressured_server_limited(self):
        transfers = [tr(c, f"seg{c}", 63) for c in range(8)]
        r = solve_phase(IOKind.WRITE_DISTINCT, transfers, P, busy_nodes=8)
        assert not r.pressured
        assert r.rate_mbps == pytest.approx(
            P.distinct_write_agg_mbps * P.write_eff(0.5), rel=0.1
        )


class TestReadShared:
    def test_client_limited_scales_with_clients(self):
        t8 = solve_phase(
            IOKind.READ_SHARED, [tr(c, "seg", 63) for c in range(8)], P, 8
        )
        t16 = solve_phase(
            IOKind.READ_SHARED, [tr(c, "seg", 63) for c in range(16)], P, 16
        )
        # same per-client bytes => ~same duration; aggregate rate doubles
        assert t16.seconds == pytest.approx(t8.seconds, rel=0.05)
        assert t16.rate_mbps == pytest.approx(2 * t8.rate_mbps, rel=0.05)

    def test_requires_single_file(self):
        with pytest.raises(PFSError):
            solve_phase(
                IOKind.READ_SHARED, [tr(0, "a", 1), tr(1, "b", 1)], P, 8
            )


class TestReadDistinct:
    def _phase(self, seg_mb, clients, busy):
        transfers = [tr(c, f"seg{c}", seg_mb) for c in range(clients)]
        sizes = {f"seg{c}": int(seg_mb * MB) for c in range(clients)}
        return solve_phase(
            IOKind.READ_DISTINCT, transfers, P, busy, file_sizes=sizes
        )

    def test_below_threshold_fast(self):
        # BT on 8 PEs: 8 x 63 MB = 504 MB < buffer => fast
        r = self._phase(63, 8, 8)
        assert not r.pressured
        assert r.seconds == pytest.approx(63 / P.distinct_read_fast_mbps, rel=0.1)

    def test_above_threshold_collapses(self):
        # BT on 16 PEs: 16 x 63 MB > buffer => the paper's restart blow-up
        r = self._phase(63, 16, 16)
        assert r.pressured
        assert r.seconds > 4 * self._phase(63, 8, 8).seconds

    def test_lu_pressured_even_on_8(self):
        # LU: 8 x 89 MB = 712 MB crosses the threshold already at 8 PEs
        assert self._phase(89, 8, 8).pressured

    def test_buffer_depends_on_free_nodes(self):
        assert P.buffer_total_mb(8) > P.buffer_total_mb(16)


class TestReadParallel:
    def test_aggregate_scales_with_clients(self):
        t8 = solve_phase(IOKind.READ_PARALLEL, [tr(c, "a", 10) for c in range(8)], P, 8)
        t16 = solve_phase(IOKind.READ_PARALLEL, [tr(c, "a", 5) for c in range(16)], P, 16)
        assert t16.seconds < t8.seconds
