"""Unit tests for the serial (single-channel) file system baseline."""

import pytest

from repro.errors import PFSError
from repro.pfs.localfs import SerialFS
from repro.pfs.phase import IOKind


def test_single_rate_regardless_of_clients():
    fs = SerialFS(sequential_mbps=10.0)
    fs.create("f")
    fs.begin_phase(IOKind.WRITE_PARALLEL)
    for c in range(8):
        fs.write_at("f", c * int(1e6), None, nbytes=int(1e6), client=c)
    res = fs.end_phase()
    # 8 MB through one 10 MB/s channel plus one open
    assert res.seconds == pytest.approx(0.8 + fs.params.file_open_overhead_s)


def test_seekability_flag():
    assert not SerialFS().supports_parallel_streaming()
    assert SerialFS(seekable=True).supports_parallel_streaming()


def test_end_phase_requires_begin():
    with pytest.raises(PFSError):
        SerialFS().end_phase()


def test_is_piofs_compatible():
    fs = SerialFS()
    fs.create("x")
    fs.write_at("x", 0, b"ab")
    assert fs.read_at("x", 0, 2) == b"ab"
