"""Property-based sanity of the I/O phase model: monotonicity and
scaling laws that must hold for any workload the engines produce."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pfs.params import PIOFSParams
from repro.pfs.phase import IOKind, PhaseTransfer, solve_phase

P = PIOFSParams()
MB = int(1e6)


def _write_phase(kind, per_client_mb, clients, busy):
    transfers = [
        PhaseTransfer(c, f"f{c}" if "DISTINCT" in kind.name else "f",
                      0 if "DISTINCT" in kind.name else c * per_client_mb * MB,
                      per_client_mb * MB)
        for c in range(clients)
    ]
    sizes = {t.filename: per_client_mb * MB for t in transfers}
    return solve_phase(kind, transfers, P, busy, file_sizes=sizes)


@given(st.integers(1, 200), st.integers(0, 16))
def test_serial_write_monotone_in_bytes(mb, busy):
    t1 = solve_phase(IOKind.WRITE_SERIAL, [PhaseTransfer(0, "f", 0, mb * MB)], P, busy)
    t2 = solve_phase(IOKind.WRITE_SERIAL, [PhaseTransfer(0, "f", 0, 2 * mb * MB)], P, busy)
    assert t2.seconds > t1.seconds


@given(st.integers(1, 100), st.integers(1, 16))
def test_more_interference_never_speeds_writes(mb, clients):
    for kind in (IOKind.WRITE_SERIAL, IOKind.WRITE_PARALLEL, IOKind.WRITE_DISTINCT):
        slow = _write_phase(kind, mb, clients, busy=16)
        fast = _write_phase(kind, mb, clients, busy=0)
        assert slow.seconds >= fast.seconds


@given(st.integers(1, 60), st.integers(1, 15))
def test_shared_reads_scale_with_clients(mb, clients):
    """Same per-client bytes: adding clients never lengthens the phase
    (client-limited), and aggregate throughput grows."""
    transfers = lambda n: [PhaseTransfer(c, "seg", 0, mb * MB) for c in range(n)]
    t1 = solve_phase(IOKind.READ_SHARED, transfers(clients), P, clients)
    t2 = solve_phase(IOKind.READ_SHARED, transfers(clients + 1), P, clients + 1)
    assert t2.seconds <= t1.seconds * 1.001
    assert t2.rate_mbps > t1.rate_mbps


@given(st.integers(1, 40), st.integers(1, 16), st.integers(1, 16))
@settings(max_examples=50)
def test_rate_consistency(mb, clients, busy):
    """seconds * rate == bytes for every kind (internal consistency)."""
    for kind in (
        IOKind.WRITE_SERIAL,
        IOKind.WRITE_PARALLEL,
        IOKind.WRITE_DISTINCT,
        IOKind.READ_DISTINCT,
        IOKind.READ_PARALLEL,
    ):
        res = _write_phase(kind, mb, clients, busy)
        assert res.seconds > 0
        assert abs(res.rate_mbps * res.seconds - res.total_bytes / 1e6) < 1e-6


@given(st.integers(30, 120))
def test_pressure_threshold_is_sharp(seg_mb):
    """Crossing the buffer threshold from below must never make the
    distinct-read phase faster."""
    below = _write_phase(IOKind.READ_DISTINCT, seg_mb, 4, busy=4)
    above = _write_phase(IOKind.READ_DISTINCT, seg_mb, 16, busy=16)
    assert above.seconds >= below.seconds


def test_buffer_total_monotone_in_free_nodes():
    vals = [P.buffer_total_mb(b) for b in range(17)]
    assert vals == sorted(vals, reverse=True)
    assert vals[0] == 16 * P.buffer_free_node_mb
    assert vals[16] == 16 * P.buffer_busy_node_mb


def test_write_eff_bounds():
    assert P.write_eff(0.0) == 1.0
    assert 0.05 <= P.write_eff(1.0) < 1.0
    assert P.array_write_eff(1.0) > P.write_eff(1.0)  # milder interference
