"""Unit tests for the PIOFS namespace and phase accounting."""

import pytest

from repro.errors import PFSError
from repro.pfs.phase import IOKind
from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine, MachineParams


@pytest.fixture
def fs():
    return PIOFS(machine=Machine(MachineParams(num_nodes=16)))


class TestNamespace:
    def test_create_open_roundtrip(self, fs):
        fs.create("a")
        assert fs.exists("a")
        assert fs.open("a").size == 0

    def test_open_missing(self, fs):
        with pytest.raises(PFSError):
            fs.open("nope")

    def test_create_no_overwrite(self, fs):
        fs.create("a")
        with pytest.raises(PFSError):
            fs.create("a", overwrite=False)

    def test_unlink(self, fs):
        fs.create("a")
        fs.unlink("a")
        assert not fs.exists("a")
        with pytest.raises(PFSError):
            fs.unlink("a")

    def test_listdir_prefix(self, fs):
        for n in ("ck.1", "ck.2", "other"):
            fs.create(n)
        assert fs.listdir("ck.") == ["ck.1", "ck.2"]

    def test_total_bytes(self, fs):
        fs.create("ck.a")
        fs.write_at("ck.a", 0, b"xxxx")
        fs.create("ck.b")
        fs.write_at("ck.b", 0, None, nbytes=100)
        assert fs.total_bytes("ck.") == 104


class TestIO:
    def test_write_read(self, fs):
        fs.create("f")
        fs.write_at("f", 0, b"data")
        assert fs.read_at("f", 0, 4) == b"data"

    def test_append(self, fs):
        fs.create("f")
        fs.append("f", b"ab")
        fs.append("f", b"cd")
        assert fs.read_at("f", 0, 4) == b"abcd"

    def test_io_on_missing_file(self, fs):
        with pytest.raises(PFSError):
            fs.write_at("ghost", 0, b"x")
        with pytest.raises(PFSError):
            fs.read_at("ghost", 0, 1)


class TestPhases:
    def test_phase_collects_and_times(self, fs):
        fs.machine.place_tasks(8)
        fs.create("f")
        fs.begin_phase(IOKind.WRITE_SERIAL)
        fs.write_at("f", 0, None, nbytes=int(10e6), client=0)
        res = fs.end_phase()
        assert res.total_bytes == int(10e6)
        assert res.clients == {0}
        assert res.seconds > 0
        assert fs.phase_log[-1] is res

    def test_phases_do_not_nest(self, fs):
        fs.begin_phase(IOKind.WRITE_SERIAL)
        with pytest.raises(PFSError):
            fs.begin_phase(IOKind.READ_SHARED)
        fs.end_phase()

    def test_end_without_begin(self, fs):
        with pytest.raises(PFSError):
            fs.end_phase()

    def test_untimed_io_outside_phase(self, fs):
        fs.create("f")
        fs.write_at("f", 0, b"free")  # no phase open: no accounting
        assert fs.phase_log == []

    def test_server_byte_accounting(self, fs):
        fs.create("f")
        fs.begin_phase(IOKind.WRITE_PARALLEL)
        fs.write_at("f", 0, None, nbytes=fs.params.stripe_kb * 1024 * 16, client=0)
        res = fs.end_phase()
        # one full round of stripes across all 16 servers
        assert len(res.server_bytes) == 16
        assert len(set(res.server_bytes.values())) == 1

    def test_read_virtual_accounts_without_data(self, fs):
        fs.create("f")
        fs.write_at("f", 0, b"abcd")
        fs.begin_phase(IOKind.READ_SHARED)
        fs.read_virtual("f", 0, 4, client=3)
        res = fs.end_phase()
        assert res.total_bytes == 4
        assert res.clients == {3}

    def test_busy_nodes_affect_timing(self, fs):
        fs.create("f")

        def solve():
            fs.begin_phase(IOKind.WRITE_SERIAL)
            fs.write_at("f", 0, None, nbytes=int(50e6), client=0)
            return fs.end_phase().seconds

        fs.machine.clear_tasks()
        fs.machine.place_tasks(8)
        t8 = solve()
        fs.machine.clear_tasks()
        fs.machine.place_tasks(16)
        t16 = solve()
        assert t16 > t8
