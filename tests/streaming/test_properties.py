"""Property-based streaming invariants: the distribution-independence
theorems behind reconfigurable checkpointing."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import block_distribution
from repro.arrays.slices import Slice
from repro.streaming.parallel import stream_in_parallel, stream_out_parallel
from repro.streaming.partition import partition, piece_offsets
from repro.streaming.serial import stream_out_serial
from repro.streaming.streams import MemorySink, MemorySource


shapes = st.tuples(st.integers(1, 8), st.integers(1, 8), st.integers(1, 6))


@given(
    shapes,
    st.integers(1, 6),
    st.integers(1, 6),
    st.sampled_from([1, 2, 4, 8]),
    st.sampled_from(["F", "C"]),
)
@settings(max_examples=40, deadline=None)
def test_stream_roundtrip_any_distributions(shape, t1, t2, m, order):
    """stream_out at t1 tasks + stream_in at t2 tasks == identity, for
    any shapes, task counts, piece counts, and orders."""
    n = int(np.prod(shape))
    g = np.arange(n, dtype=np.float64).reshape(shape)
    a = DistributedArray("a", shape, np.float64, block_distribution(shape, t1))
    a.set_global(g)
    sink = MemorySink()
    target = max(8, n * 8 // m)
    stream_out_parallel(a, sink, P=min(t1, m), target_bytes=target, order=order)
    b = DistributedArray("b", shape, np.float64, block_distribution(shape, t2, shadow=(1, 0, 1)))
    stream_in_parallel(b, MemorySource(sink.getvalue()), target_bytes=target, order=order)
    assert np.array_equal(b.to_global(), g)
    assert b.is_consistent()


@given(shapes, st.integers(1, 6), st.sampled_from([2, 4, 8, 16]))
@settings(max_examples=40, deadline=None)
def test_parallel_equals_serial_bytes(shape, ntasks, m):
    """Parallel streaming produces byte-identical output to serial."""
    n = int(np.prod(shape))
    g = np.arange(n, dtype=np.float64).reshape(shape)
    a = DistributedArray("a", shape, np.float64, block_distribution(shape, ntasks))
    a.set_global(g)
    s1, s2 = MemorySink(), MemorySink()
    target = max(8, n * 8 // m)
    stream_out_serial(a, s1, target_bytes=target)
    stream_out_parallel(a, s2, target_bytes=target)
    assert s1.getvalue() == s2.getvalue() == g.flatten(order="F").tobytes()


@given(shapes, st.sampled_from([1, 2, 4, 8, 16, 32]), st.sampled_from(["F", "C"]))
@settings(max_examples=60, deadline=None)
def test_partition_preserves_stream_order(shape, m, order):
    s = Slice.full(shape)
    pieces = partition(s, m, order)
    got = [
        tuple(p)
        for piece in pieces
        if not piece.is_empty
        for p in piece.enumerate_stream(order).tolist()
    ]
    assert got == [tuple(p) for p in s.enumerate_stream(order).tolist()]
    # offsets are exactly the prefix sums of sizes
    offs = piece_offsets(pieces, 8)
    acc = 0
    for piece, off in zip(pieces, offs):
        assert off == acc
        acc += piece.size * 8
