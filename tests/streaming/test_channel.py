"""Tests for serial streaming over real socket channels (§3.2: 'a
sequential channel, such as a UNIX socket')."""

import numpy as np
import pytest

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import block_distribution
from repro.errors import StreamingError
from repro.streaming.channel import SocketChannel
from repro.streaming.parallel import stream_out_parallel
from repro.streaming.serial import stream_in_serial, stream_out_serial


@pytest.fixture
def arr():
    g = np.arange(16 * 12, dtype=np.float64).reshape(16, 12)
    a = DistributedArray(
        "u", (16, 12), np.float64, block_distribution((16, 12), 4, shadow=(1, 1))
    )
    a.set_global(g)
    return a, g


def test_raw_bytes_roundtrip():
    with SocketChannel() as ch:
        def produce(sink):
            sink.append(b"hello ")
            sink.append(b"world")

        def consume(source):
            return source.read_at(0, 11)

        assert ch.pump(produce, consume) == b"hello world"


def test_array_streams_app_to_app_through_socket(arr):
    """One application streams out serially; a second, with a different
    distribution and task count, streams in from the live pipe."""
    a, g = arr
    b = DistributedArray(
        "v", (16, 12), np.float64, block_distribution((16, 12), 6)
    )
    with SocketChannel() as ch:
        ch.pump(
            lambda sink: stream_out_serial(a, sink, target_bytes=256),
            lambda source: stream_in_serial(b, source, target_bytes=256),
        )
    assert np.array_equal(b.to_global(), g)
    assert b.is_consistent()


def test_parallel_streaming_rejected_on_channel(arr):
    a, _ = arr
    with SocketChannel() as ch:
        with pytest.raises(StreamingError, match="seekable"):
            stream_out_parallel(a, ch.sink, P=4)


def test_seek_rejected():
    with SocketChannel() as ch:
        ch.sink.append(b"ab")
        with pytest.raises(StreamingError, match="seek"):
            ch.sink.write_at(9, b"x")
        # sequential write_at at the current position is fine
        ch.sink.write_at(2, b"cd")
        assert ch.source.read_at(0, 4) == b"abcd"
        with pytest.raises(StreamingError, match="sequential"):
            ch.source.read_at(0, 1)


def test_short_stream_detected(arr):
    a, _ = arr
    b = DistributedArray(
        "v", (16, 12), np.float64, block_distribution((16, 12), 2)
    )
    with SocketChannel() as ch:
        def produce(sink):
            sink.append(b"\x00" * 64)  # far too short, then EOF

        with pytest.raises(StreamingError, match="closed|short"):
            ch.pump(produce, lambda src: stream_in_serial(b, src))


def test_producer_exception_propagates():
    with SocketChannel() as ch:
        def produce(sink):
            raise ValueError("producer died")

        with pytest.raises((ValueError, StreamingError)):
            ch.pump(produce, lambda src: src.read_at(0, 4))


def test_live_channel_has_no_size():
    with SocketChannel() as ch:
        with pytest.raises(StreamingError):
            ch.source.size
