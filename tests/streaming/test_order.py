"""Unit tests for stream orderings."""

import numpy as np
import pytest

from repro.arrays.ranges import Range
from repro.arrays.slices import Slice
from repro.errors import StreamingError
from repro.streaming.order import (
    bytes_to_section,
    check_order,
    section_stream_positions,
    stream_order_bytes,
)


def test_check_order():
    assert check_order("F") == "F"
    assert check_order("C") == "C"
    with pytest.raises(StreamingError):
        check_order("Z")


def test_stream_order_bytes_roundtrip():
    a = np.arange(24.0).reshape(2, 3, 4)
    for order in ("F", "C"):
        data = stream_order_bytes(a, order)
        back = bytes_to_section(data, (2, 3, 4), np.float64, order)
        assert np.array_equal(back, a)


def test_f_vs_c_differ():
    a = np.arange(6.0).reshape(2, 3)
    assert stream_order_bytes(a, "F") != stream_order_bytes(a, "C")


def test_bytes_to_section_size_checked():
    with pytest.raises(StreamingError):
        bytes_to_section(b"\x00" * 8, (2, 2), np.float64, "F")


def test_stream_positions_identity():
    s = Slice([Range([3, 5]), Range([0, 9])])
    pos = section_stream_positions(s, s, "F")
    assert pos.tolist() == [0, 1, 2, 3]


def test_stream_positions_of_subsection():
    s = Slice.full((3, 4))
    sub = Slice([Range([1]), Range([0, 3])])
    # F order positions: (1,0) -> 1; (1,3) -> 1 + 3*3 = 10
    assert section_stream_positions(s, sub, "F").tolist() == [1, 10]
    # C order: (1,0) -> 4; (1,3) -> 7
    assert section_stream_positions(s, sub, "C").tolist() == [4, 7]


def test_stream_positions_requires_subset():
    s = Slice.full((3, 3))
    with pytest.raises(StreamingError):
        section_stream_positions(s, Slice([Range([5]), Range([0])]), "F")


def test_positions_match_enumerate_stream():
    s = Slice([Range([0, 2, 5]), Range.regular(1, 7, 3)])
    pts = [tuple(p) for p in s.enumerate_stream("F").tolist()]
    sub = Slice([Range([2, 5]), Range([4])])
    pos = section_stream_positions(s, sub, "F")
    for p, point in zip(pos, sub.enumerate_stream("F").tolist()):
        assert pts[p] == tuple(point)
