"""Stress tests for the concurrent parstream executor.

The contract under test is byte-identity: whatever the interleaving of
the thread-pool workers, parallel stream-out produces exactly the bytes
of serial stream-out, and parallel stream-in reconstructs exactly the
global content — because every piece's bytes and offset are fixed by
the plan before any worker runs.

The quick matrix runs in tier-1; the ``verify``-marked sweep widens
seeds and P for the differential harness run (``make verify-reconfig``).
"""

import random

import numpy as np
import pytest

from repro.arrays.darray import DistributedArray
from repro.streaming.order import stream_order_bytes
from repro.streaming.parallel import stream_in_parallel, stream_out_parallel
from repro.streaming.partition import partition_for_target, piece_offsets
from repro.streaming.serial import gather_piece, stream_in_serial, stream_out_serial
from repro.streaming.streams import MemorySink, MemorySource
from repro.verify.gen import random_distribution, random_shape


def _random_array(seed: int, ntasks: int) -> DistributedArray:
    rng = random.Random(seed)
    shape = random_shape(rng)
    dist = random_distribution(rng, shape, ntasks)
    a = DistributedArray(f"S{seed}", tuple(shape), np.float64, dist)
    a.set_global(
        np.arange(1.0, 1.0 + float(np.prod(shape))).reshape(shape)
    )
    return a


def _roundtrip(seed: int, ntasks: int, P: int, target: int) -> None:
    a = _random_array(seed, ntasks)
    ref = MemorySink()
    stream_out_serial(a, ref, target_bytes=target)
    want = ref.getvalue()

    threaded = MemorySink()
    st = stream_out_parallel(a, threaded, P=P, target_bytes=target)
    assert threaded.getvalue() == want
    assert st.bytes_streamed == len(want)

    serial_mode = MemorySink()
    stream_out_parallel(a, serial_mode, P=P, target_bytes=target, concurrency="serial")
    assert serial_mode.getvalue() == want

    # read back into a different random distribution (which may be a
    # legitimately partial INDEXED one), concurrently and serially: the
    # two restored arrays must agree exactly, and must match the source
    # everywhere the target distribution defines an element
    b_dist = random_distribution(random.Random(seed + 9001), list(a.shape), ntasks)
    b_par = DistributedArray("Bp", a.shape, np.float64, b_dist)
    stream_in_parallel(b_par, MemorySource(want), P=P, target_bytes=target)
    b_ser = DistributedArray("Bs", a.shape, np.float64, b_dist)
    stream_in_serial(b_ser, MemorySource(want), target_bytes=target)
    np.testing.assert_array_equal(b_par.to_global(fill=0), b_ser.to_global(fill=0))
    mask = b_par.defined_mask()
    np.testing.assert_array_equal(
        b_par.to_global(fill=0)[mask], a.to_global(fill=0)[mask]
    )


class TestConcurrentParstream:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    @pytest.mark.parametrize("P", [2, 3])
    def test_quick_matrix(self, seed, P):
        _roundtrip(seed, ntasks=4, P=P, target=128)

    def test_many_small_pieces(self):
        _roundtrip(seed=11, ntasks=6, P=5, target=32)

    @pytest.mark.parametrize("seed", [21, 22, 23, 24, 25, 26])
    @pytest.mark.parametrize("P", [2, 4, 6])
    @pytest.mark.parametrize("target", [64, 256])
    @pytest.mark.verify
    def test_wide_sweep(self, seed, P, target):
        _roundtrip(seed, ntasks=6, P=P, target=target)


class TestRandomizedPieceOrdering:
    """Writing pieces at their precomputed offsets in *any* order must
    reproduce the serial stream — the invariant that makes the
    thread-pool interleaving irrelevant."""

    @pytest.mark.parametrize("seed", [31, 32, 33])
    def test_shuffled_manual_writes(self, seed):
        a = _random_array(seed, ntasks=4)
        target = 96
        ref = MemorySink()
        stream_out_serial(a, ref, target_bytes=target)

        from repro.arrays.slices import Slice

        section = Slice.full(a.shape)
        pieces = partition_for_target(section, a.itemsize, target_bytes=target)
        offsets = piece_offsets(pieces, a.itemsize)
        jobs = [(j, p) for j, p in enumerate(pieces) if not p.is_empty]
        random.Random(seed * 7).shuffle(jobs)
        sink = MemorySink()
        for j, piece in jobs:
            sink.write_at(offsets[j], stream_order_bytes(gather_piece(a, piece), "F"))
        assert sink.getvalue() == ref.getvalue()
