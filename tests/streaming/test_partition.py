"""Unit tests for the Fig. 5a recursive stream-order partition."""

import numpy as np
import pytest

from repro.arrays.ranges import Range
from repro.arrays.slices import Slice
from repro.errors import StreamingError
from repro.streaming.partition import partition, partition_for_target, piece_offsets


class TestPartition:
    def test_power_of_two_required(self):
        with pytest.raises(StreamingError):
            partition(Slice.full((4, 4)), 3)
        with pytest.raises(StreamingError):
            partition(Slice.full((4, 4)), 0)

    def test_m1_is_identity(self):
        s = Slice.full((4, 4))
        assert partition(s, 1) == [s]

    @pytest.mark.parametrize("m", [2, 4, 8, 16])
    def test_pieces_tile_in_stream_order(self, m):
        s = Slice([Range([0, 2, 3]), Range.regular(1, 9, 2)])
        pieces = partition(s, m)
        assert len(pieces) == m
        streamed = [
            tuple(p) for piece in pieces if not piece.is_empty
            for p in piece.enumerate_stream("F").tolist()
        ]
        expect = [tuple(p) for p in s.enumerate_stream("F").tolist()]
        assert streamed == expect

    def test_c_order_partition(self):
        s = Slice.full((4, 6))
        pieces = partition(s, 4, order="C")
        streamed = [
            tuple(p) for piece in pieces if not piece.is_empty
            for p in piece.enumerate_stream("C").tolist()
        ]
        assert streamed == [tuple(p) for p in s.enumerate_stream("C").tolist()]

    def test_oversplit_produces_empties(self):
        s = Slice([Range([5])])  # one element
        pieces = partition(s, 4)
        sizes = [p.size for p in pieces]
        assert sum(sizes) == 1
        assert sizes.count(0) == 3


class TestTargetSizing:
    def test_pieces_near_target(self):
        s = Slice.full((64, 64))  # 4096 elements
        pieces = partition_for_target(s, itemsize=8, target_bytes=8 * 512)
        assert len(pieces) == 8
        assert max(p.size for p in pieces) * 8 <= 8 * 512

    def test_min_pieces_for_parallelism(self):
        s = Slice.full((4,))
        pieces = partition_for_target(s, itemsize=8, target_bytes=1 << 20, min_pieces=4)
        assert len(pieces) >= 4

    def test_paper_rule_1mb_default(self):
        # a 10.5 MB field partitions into ~1 MB pieces
        s = Slice.full((5, 64, 64, 64))
        pieces = partition_for_target(s, itemsize=8)
        assert len(pieces) == 16
        assert max(p.size * 8 for p in pieces) <= 1 << 20

    def test_invalid_args(self):
        s = Slice.full((4,))
        with pytest.raises(StreamingError):
            partition_for_target(s, itemsize=0)
        with pytest.raises(StreamingError):
            partition_for_target(s, itemsize=8, target_bytes=0)


class TestOffsets:
    def test_prefix_sums(self):
        s = Slice.full((8,))
        pieces = partition(s, 4)
        offs = piece_offsets(pieces, itemsize=8)
        assert offs == [0, 16, 32, 48]

    def test_offsets_skip_empty_pieces(self):
        s = Slice([Range([7])])
        pieces = partition(s, 2)
        assert piece_offsets(pieces, 8) == [0, 8]  # empty piece adds 0


class TestEmptyPieceNormalization:
    """Regression: over-splitting must yield canonical empties, never
    lo()/hi() of an already-empty slice."""

    def test_m_far_exceeds_size(self):
        s = Slice([Range([5]), Range.regular(2, 2, 1)])  # one element
        pieces = partition(s, 16)
        assert len(pieces) == 16
        assert sum(p.size for p in pieces) == 1
        for p in pieces:
            if p.is_empty:
                assert p == Slice.empty(s.rank)

    @pytest.mark.parametrize("m", [1, 2, 8, 32])
    def test_size_zero_input(self, m):
        # a degenerate slice: axis 0 empty, axis 1 carries real ranges
        # that must not leak into the partition's empty pieces
        s = Slice([Range.empty(), Range.regular(0, 4, 1)])
        assert s.size == 0
        pieces = partition(s, m)
        assert len(pieces) == m
        assert all(p == Slice.empty(s.rank) for p in pieces)

    def test_offsets_of_empty_partition(self):
        pieces = partition(Slice.empty(2), 4)
        assert piece_offsets(pieces, 8) == [0, 0, 0, 0]

    def test_singleton_keeps_element_in_lo_slot(self):
        s = Slice([Range([3])])
        pieces = partition(s, 2)
        assert pieces[0].size == 1
        assert pieces[1] == Slice.empty(1)

    def test_stream_order_preserved_with_empties(self):
        s = Slice([Range([1, 4]), Range.regular(0, 2, 1)])  # 4 elements
        pieces = partition(s, 16)
        streamed = [
            tuple(p) for piece in pieces if not piece.is_empty
            for p in piece.enumerate_stream("F").tolist()
        ]
        assert streamed == [tuple(p) for p in s.enumerate_stream("F").tolist()]
