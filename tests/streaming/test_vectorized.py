"""Vectorized gather/scatter kernels and the streaming-layer fixes.

The scalar per-owner/per-piece loops the vectorized kernels replaced are
kept here as test-only references (`_scalar_gather_piece`,
`_scalar_scatter_piece`): every kernel test asserts byte-identity
against them, including on degenerate geometry — zero-extent sections,
empty pieces, partially-covered INDEXED axes, single-element arrays.
"""

import threading

import numpy as np
import pytest

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import (
    Cyclic,
    Distribution,
    Indexed,
    block_distribution,
)
from repro.arrays.ranges import Range
from repro.arrays.slices import Slice
from repro.errors import StreamingError
from repro.obs import Tracer, use_tracer
from repro.pfs.piofs import PIOFS
from repro.streaming.executor import run_tasks
from repro.streaming.order import stream_order_bytes
from repro.streaming.parallel import stream_in_parallel, stream_out_parallel
from repro.streaming.serial import (
    _piece_redistribution_bytes,
    _strict_default,
    strict_gather,
    stream_in_serial,
    stream_out_serial,
)
from repro.streaming.streams import MemorySink, MemorySource, PFSSink
from repro.streaming.vectorized import (
    build_section_index_plan,
    gather_section_flat,
    range_redistribution_bytes,
    scatter_section_flat,
)


# -- scalar references (the pre-vectorization loops, verbatim shape) --------


def _scalar_gather_piece(darray, piece, order="F"):
    """The old per-owner loop: intersect, mesh-index, block copy."""
    buf = np.zeros(piece.shape, dtype=darray.dtype)
    dist = darray.distribution
    for owner in dist.owner_tasks(piece):
        sec = dist.assigned(owner).intersect(piece)
        if sec.is_empty:
            continue
        buf[sec.local_index_within(piece)] = darray.section_from_task(
            owner, sec
        ).reshape(sec.shape)
    return buf


def _scalar_scatter_piece(darray, piece, values):
    """The old per-task delivery loop."""
    dist = darray.distribution
    for t in range(dist.ntasks):
        sec = dist.mapped(t).intersect(piece)
        if sec.is_empty:
            continue
        darray.section_to_task(t, sec, values[sec.local_index_within(piece)])


def _arrays():
    """A zoo of (name, darray, global) over varied geometry."""
    out = []

    g = np.arange(6 * 7 * 5, dtype=np.float64).reshape(6, 7, 5)
    a = DistributedArray(
        "blk", (6, 7, 5), np.float64,
        block_distribution((6, 7, 5), 4, shadow=(1, 1, 0)),
    )
    a.set_global(g)
    out.append(a)

    g2 = np.arange(8 * 9, dtype=np.int32).reshape(8, 9)
    d2 = Distribution((8, 9), [Cyclic(), Cyclic()], 6)
    b = DistributedArray("cyc", (8, 9), np.int32, d2)
    b.set_global(g2)
    out.append(b)

    # partially covered INDEXED axis: elements 3, 4, 7 owned by no task
    d3 = Distribution((8,), [Indexed([Range([0, 1, 2]), Range([5, 6])])], ntasks=2)
    c = DistributedArray("holey", (8,), np.float64, d3)
    c.set_global(np.arange(1.0, 9.0))
    out.append(c)

    # single-element array
    e = DistributedArray("one", (1,), np.float64, block_distribution((1,), 1))
    e.set_global(np.array([42.0]))
    out.append(e)

    return out


SECTIONS = {
    "blk": [
        Slice.full((6, 7, 5)),
        Slice([Range([0, 2, 3]), Range.regular(1, 6, 2), Range([0, 4])]),
        Slice([Range.empty(), Range.regular(0, 7), Range.regular(0, 5)]),
    ],
    "cyc": [Slice.full((8, 9)), Slice([Range([1, 3, 6]), Range.regular(2, 9, 3)])],
    "holey": [Slice.full((8,)), Slice([Range([0, 1, 2])]), Slice([Range([3, 4])])],
    "one": [Slice.full((1,)), Slice([Range.empty()])],
}


class TestKernels:
    @pytest.mark.parametrize("order", ["F", "C"])
    def test_gather_matches_scalar_reference(self, order):
        for arr in _arrays():
            for sec in SECTIONS[arr.name]:
                want = stream_order_bytes(_scalar_gather_piece(arr, sec, order), order)
                got = gather_section_flat(arr, sec, order=order).tobytes()
                assert got == want, (arr.name, sec, order)

    @pytest.mark.parametrize("order", ["F", "C"])
    def test_scatter_matches_scalar_reference(self, order):
        for arr in _arrays():
            for sec in SECTIONS[arr.name]:
                if sec.is_empty:
                    continue
                rng = np.random.default_rng(7)
                vals = rng.integers(0, 100, size=sec.shape).astype(arr.dtype)
                via_scalar = arr.redistributed(arr.distribution)
                _scalar_scatter_piece(via_scalar, sec, vals)
                via_vec = arr.redistributed(arr.distribution)
                scatter_section_flat(
                    via_vec, sec, vals.reshape(-1, order=order), order=order
                )
                assert np.array_equal(
                    via_vec.to_global(fill=0), via_scalar.to_global(fill=0)
                ), (arr.name, sec, order)
                assert via_vec.is_consistent()

    def test_zero_extent_section_gathers_empty(self):
        arr = _arrays()[0]
        sec = Slice([Range.empty(), Range.regular(0, 7), Range.regular(0, 5)])
        flat = gather_section_flat(arr, sec)
        assert flat.size == 0

    def test_strict_checks_before_copying(self):
        holey = [a for a in _arrays() if a.name == "holey"][0]
        with pytest.raises(StreamingError, match="undefined element"):
            gather_section_flat(holey, Slice.full((8,)), strict=True)
        # fully covered sub-section passes strict
        out = gather_section_flat(holey, Slice([Range([0, 1, 2])]), strict=True)
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_scatter_size_mismatch_raises(self):
        arr = _arrays()[0]
        with pytest.raises(StreamingError, match="scatter of"):
            scatter_section_flat(arr, Slice.full((6, 7, 5)), np.zeros(3))

    def test_range_accounting_matches_scalar_reference(self):
        from repro.plancache.plans import streaming_plan

        for arr in _arrays():
            sec = Slice.full(arr.shape)
            plan = build_section_index_plan(arr.distribution, sec)
            pieces, offsets = streaming_plan(sec, arr.itemsize, target_bytes=32)
            for io_task in range(arr.ntasks):
                for j, piece in enumerate(pieces):
                    lo = offsets[j] // arr.itemsize
                    assert range_redistribution_bytes(
                        plan, lo, lo + piece.size, io_task, arr.itemsize
                    ) == _piece_redistribution_bytes(arr, piece, io_task)


class TestStreamingFixes:
    def test_pieces_counts_streamed_not_planned(self):
        # 3 elements over 4 tasks, min 4 pieces -> one plan piece empty
        a = DistributedArray("T", (3,), np.float64, block_distribution((3,), 4))
        a.set_global(np.arange(3.0))
        with use_tracer(Tracer()) as t:
            st = stream_out_parallel(a, MemorySink(), P=4, target_bytes=8)
        assert st.pieces == 3  # streamed pieces, empties skipped
        op = [s for s in t.spans if s.name.startswith("stream.out")][0]
        assert op.attrs["plan_pieces"] == 4  # plan length kept visible
        assert op.attrs["pieces"] == 3

    def test_short_read_raises_even_for_virtual_arrays(self):
        class TruncatedSource:
            """A real (non-virtual) source that silently comes up short."""

            size = 10

            def read_at(self, offset, nbytes, client=0):
                return b"\x00" * min(nbytes, 10)

        d = block_distribution((8, 8), 4)
        a = DistributedArray("V", (8, 8), np.float64, d, store_data=False)
        # a real source coming up short must not be silently accepted
        # just because only geometry is being restored
        with pytest.raises(StreamingError, match="short read"):
            stream_in_serial(a, TruncatedSource())
        with pytest.raises(StreamingError, match="short read"):
            stream_in_parallel(a, TruncatedSource(), P=2)

    def test_virtual_source_still_restores_virtual_array(self):
        d = block_distribution((8, 8), 4)
        a = DistributedArray("V", (8, 8), np.float64, d, store_data=False)
        pfs = PIOFS()
        stream_out_parallel(a, PFSSink(pfs, "v", virtual=True), P=2)
        from repro.streaming.streams import PFSSource

        st = stream_in_parallel(a, PFSSource(pfs, "v"), P=2)
        assert st.bytes_streamed == 8 * 8 * 8

    def test_strict_scope_does_not_leak_across_threads(self):
        seen = {}

        def probe():
            seen["worker"] = _strict_default()

        with strict_gather():
            th = threading.Thread(target=probe)  # fresh thread, no context
            th.start()
            th.join()
        assert seen["worker"] is False

    def test_executor_workers_inherit_strict_scope(self):
        with strict_gather():
            # two thunks forces the pool path (one thunk runs inline)
            got = run_tasks([_strict_default, _strict_default])
        assert got == [True, True]
        assert run_tasks([_strict_default, _strict_default]) == [False, False]

    def test_serial_fallback_sets_content_sha1(self):
        g = np.arange(24.0).reshape(6, 4)
        a = DistributedArray("A", (6, 4), np.float64, block_distribution((6, 4), 4))
        a.set_global(g)
        digests = {}
        for engine in ("serial", "threads", "vectorized"):
            with use_tracer(Tracer()) as t:
                stream_out_parallel(
                    a, MemorySink(), P=4, target_bytes=32, concurrency=engine
                )
            shas = [
                s.attrs["content_sha1"]
                for s in t.spans
                if "content_sha1" in s.attrs
            ]
            assert len(shas) == 1, engine
            digests[engine] = shas[0]
        assert len(set(digests.values())) == 1, digests


@pytest.mark.streamvec
class TestEngineSweep:
    @pytest.mark.parametrize("target", [1 << 6, 1 << 8, 1 << 12])
    @pytest.mark.parametrize("order", ["F", "C"])
    def test_engines_byte_identical(self, target, order):
        g = np.arange(32 * 17, dtype=np.float64).reshape(32, 17)
        a = DistributedArray(
            "S", (32, 17), np.float64, block_distribution((32, 17), 4)
        )
        a.set_global(g)
        want = g.flatten(order=order).tobytes()
        for engine in ("serial", "threads", "vectorized"):
            sink = MemorySink()
            st = stream_out_parallel(
                a, sink, P=4, order=order, target_bytes=target, concurrency=engine
            )
            assert sink.getvalue() == want, engine
            assert st.io_tasks == 4

    def test_round_trip_across_engines_and_distributions(self):
        g = np.arange(20 * 9, dtype=np.float64).reshape(20, 9)
        a = DistributedArray("R", (20, 9), np.float64, block_distribution((20, 9), 3))
        a.set_global(g)
        sink = MemorySink()
        stream_out_parallel(a, sink, P=3, target_bytes=64, concurrency="vectorized")
        for engine in ("serial", "threads", "vectorized"):
            d2 = Distribution((20, 9), [Cyclic(), Cyclic()], 5)
            b = DistributedArray("R2", (20, 9), np.float64, d2)
            stream_in_parallel(
                b, MemorySource(sink.getvalue()), P=4,
                target_bytes=64, concurrency=engine,
            )
            assert np.array_equal(b.to_global(), g), engine
            assert b.is_consistent()
