"""Tests for compressed serial streams (§6 data-compression option)."""

import numpy as np
import pytest

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import block_distribution
from repro.errors import StreamingError
from repro.streaming.compressed import CompressedSink, CompressedSource
from repro.streaming.serial import stream_in_serial, stream_out_serial
from repro.streaming.streams import MemorySink, MemorySource


@pytest.fixture
def arr():
    # smooth data compresses well
    g = np.zeros((24, 24))
    g[:12, :] = 7.0
    a = DistributedArray(
        "u", (24, 24), np.float64, block_distribution((24, 24), 4)
    )
    a.set_global(g)
    return a, g


def test_round_trip_across_distributions(arr):
    a, g = arr
    inner = MemorySink()
    sink = CompressedSink(inner)
    stream_out_serial(a, sink, target_bytes=512)
    b = DistributedArray(
        "v", (24, 24), np.float64, block_distribution((24, 24), 6, shadow=(1, 1))
    )
    source = CompressedSource(MemorySource(inner.getvalue()))
    stream_in_serial(b, source, target_bytes=512)
    assert np.array_equal(b.to_global(), g)
    assert b.is_consistent()


def test_compression_actually_shrinks(arr):
    a, g = arr
    inner = MemorySink()
    sink = CompressedSink(inner)
    stream_out_serial(a, sink, target_bytes=1024)
    assert sink.raw_bytes == g.nbytes
    assert sink.compressed_bytes < 0.3 * sink.raw_bytes  # smooth data
    assert sink.ratio > 3.0


def test_incompressible_data_still_correct():
    rng = np.random.default_rng(5)
    g = rng.normal(size=(16, 16))
    a = DistributedArray("u", (16, 16), np.float64, block_distribution((16, 16), 2))
    a.set_global(g)
    inner = MemorySink()
    sink = CompressedSink(inner)
    stream_out_serial(a, sink)
    b = DistributedArray("v", (16, 16), np.float64, block_distribution((16, 16), 3))
    stream_in_serial(b, CompressedSource(MemorySource(inner.getvalue())))
    assert np.array_equal(b.to_global(), g)


def test_reads_may_straddle_frames(arr):
    a, g = arr
    inner = MemorySink()
    sink = CompressedSink(inner)
    stream_out_serial(a, sink, target_bytes=256)  # many small frames
    src = CompressedSource(MemorySource(inner.getvalue()))
    # read the logical stream in odd-sized chunks
    chunks = []
    pos = 0
    for n in (100, 300, 77, 1000):
        chunks.append(src.read_at(pos, n))
        pos += n
    data = b"".join(chunks)
    assert data == g.flatten(order="F").tobytes()[: len(data)]


def test_sequential_access_enforced():
    inner = MemorySink()
    sink = CompressedSink(inner)
    sink.append(b"abc")
    with pytest.raises(StreamingError, match="sequential"):
        sink.write_at(99, b"x")
    src = CompressedSource(MemorySource(inner.getvalue()))
    src.read_at(0, 2)
    with pytest.raises(StreamingError, match="sequential"):
        src.read_at(0, 1)


def test_corruption_detected():
    inner = MemorySink()
    sink = CompressedSink(inner)
    sink.append(b"hello world")
    blob = bytearray(inner.getvalue())
    blob[10] ^= 0xFF  # flip a bit inside the deflate payload
    src = CompressedSource(MemorySource(bytes(blob)))
    with pytest.raises(StreamingError):
        src.read_at(0, 11)


def test_level_validated():
    with pytest.raises(StreamingError):
        CompressedSink(MemorySink(), level=11)


def test_none_bytes_rejected():
    with pytest.raises(StreamingError):
        CompressedSink(MemorySink()).append(None, nbytes=8)


def test_works_over_a_real_socket(arr):
    """Compression composes with the live socket channel."""
    from repro.streaming.channel import SocketChannel

    a, g = arr
    b = DistributedArray("v", (24, 24), np.float64, block_distribution((24, 24), 5))
    with SocketChannel() as ch:
        ch.pump(
            lambda sink: stream_out_serial(a, CompressedSink(sink), target_bytes=512),
            lambda source: stream_in_serial(b, CompressedSource(source), target_bytes=512),
        )
    assert np.array_equal(b.to_global(), g)
