"""Unit tests for serial and parallel section streaming."""

import numpy as np
import pytest

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import Cyclic, Distribution, block_distribution
from repro.arrays.ranges import Range
from repro.arrays.slices import Slice
from repro.errors import StreamingError
from repro.streaming.parallel import stream_in_parallel, stream_out_parallel
from repro.streaming.serial import stream_in_serial, stream_out_serial
from repro.streaming.streams import MemorySink, MemorySource


@pytest.fixture
def grid():
    return np.arange(6 * 7 * 5, dtype=np.float64).reshape(6, 7, 5)


@pytest.fixture
def arr(grid):
    d = block_distribution((6, 7, 5), 4, shadow=(1, 1, 0))
    a = DistributedArray("A", (6, 7, 5), np.float64, d)
    a.set_global(grid)
    return a


class TestSerial:
    def test_full_array_column_major(self, arr, grid):
        sink = MemorySink(seekable=False)
        st = stream_out_serial(arr, sink, target_bytes=64)
        assert sink.getvalue() == grid.flatten(order="F").tobytes()
        assert st.bytes_streamed == grid.nbytes
        assert st.io_tasks == 1

    def test_row_major(self, arr, grid):
        sink = MemorySink()
        stream_out_serial(arr, sink, order="C", target_bytes=128)
        assert sink.getvalue() == grid.flatten(order="C").tobytes()

    def test_section_stream_is_distribution_independent(self, arr, grid):
        sec = Slice([Range([0, 2, 3]), Range.regular(1, 6, 2), Range([0, 4])])
        sinks = []
        for nt in (1, 3, 4):
            b = arr.redistributed(block_distribution((6, 7, 5), nt))
            s = MemorySink()
            stream_out_serial(b, s, section=sec, target_bytes=40)
            sinks.append(s.getvalue())
        expect = grid[sec.np_index()].flatten(order="F").tobytes()
        assert all(v == expect for v in sinks)

    def test_stream_in_restores(self, arr, grid):
        sink = MemorySink()
        stream_out_serial(arr, sink)
        d2 = block_distribution((6, 7, 5), 5, shadow=(0, 1, 1))
        b = DistributedArray("B", (6, 7, 5), np.float64, d2)
        stream_in_serial(b, MemorySource(sink.getvalue()))
        assert np.array_equal(b.to_global(), grid)
        assert b.is_consistent()

    def test_works_on_non_seekable_sink(self, arr):
        stream_out_serial(arr, MemorySink(seekable=False))

    def test_short_read_detected(self, arr):
        bad = MemorySource(b"\x00" * 10)
        with pytest.raises(StreamingError):
            stream_in_serial(arr, bad)


class TestParallel:
    @pytest.mark.parametrize("P", [1, 2, 3, 4])
    def test_byte_identical_to_serial(self, arr, grid, P):
        sink = MemorySink()
        st = stream_out_parallel(arr, sink, P=P, target_bytes=64)
        assert sink.getvalue() == grid.flatten(order="F").tobytes()
        assert st.io_tasks == P

    def test_requires_seekable_sink(self, arr):
        with pytest.raises(StreamingError, match="seekable"):
            stream_out_parallel(arr, MemorySink(seekable=False), P=2)

    def test_p1_allowed_on_non_seekable_path(self, arr):
        # P=1 parallel streaming degenerates to serial order but still
        # uses write_at; the explicit guard is about P>1
        sink = MemorySink()
        stream_out_parallel(arr, sink, P=1, target_bytes=64)

    def test_p_bounds_checked(self, arr):
        with pytest.raises(StreamingError):
            stream_out_parallel(arr, MemorySink(), P=5)
        with pytest.raises(StreamingError):
            stream_out_parallel(arr, MemorySink(), P=0)

    def test_round_trip_across_distributions(self, arr, grid):
        sink = MemorySink()
        stream_out_parallel(arr, sink, P=4, target_bytes=32)
        d2 = Distribution((6, 7, 5), [Cyclic(), Cyclic(), Cyclic()], 6)
        b = DistributedArray("B", (6, 7, 5), np.float64, d2)
        stream_in_parallel(b, MemorySource(sink.getvalue()), P=2, target_bytes=48)
        assert np.array_equal(b.to_global(), grid)
        assert b.is_consistent()

    def test_source_offset(self, arr, grid):
        sink = MemorySink()
        sink.append(b"HDR!" * 4)  # 16-byte header before the stream
        stream_out_parallel(arr, sink, P=2, target_bytes=64)
        # NB: parallel offsets are absolute; re-stream at offset instead
        sink2 = MemorySink()
        stream_out_serial(arr, sink2)
        data = b"HDR!" * 4 + sink2.getvalue()
        b2 = DistributedArray("B", (6, 7, 5), np.float64, block_distribution((6, 7, 5), 2))
        stream_in_parallel(b2, MemorySource(data), source_offset=16)
        assert np.array_equal(b2.to_global(), grid)

    def test_redistribution_bytes_drop_when_owner_writes(self):
        # 1-task array: the only task owns everything, so P=1 streaming
        # moves nothing between tasks
        g = np.arange(16.0).reshape(4, 4)
        a = DistributedArray("A", (4, 4), np.float64, block_distribution((4, 4), 1))
        a.set_global(g)
        st = stream_out_parallel(a, MemorySink(), P=1, target_bytes=32)
        assert st.redistribution_bytes == 0

    def test_virtual_array_accounts_bytes(self):
        d = block_distribution((8, 8), 4)
        a = DistributedArray("V", (8, 8), np.float64, d, store_data=False)
        sink = MemorySink()
        # MemorySink requires real bytes; use PFS sink for virtual
        from repro.pfs.piofs import PIOFS
        from repro.streaming.streams import PFSSink

        pfs = PIOFS()
        st = stream_out_parallel(a, PFSSink(pfs, "v", virtual=True), P=2)
        assert st.bytes_streamed == 8 * 8 * 8
        assert pfs.file_size("v") == 8 * 8 * 8
