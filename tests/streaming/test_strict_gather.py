"""Strict gather: undefined elements raise instead of streaming zeros."""

import numpy as np
import pytest

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import Distribution, Indexed
from repro.arrays.ranges import Range
from repro.arrays.slices import Slice
from repro.errors import StreamingError
from repro.streaming.serial import gather_piece, strict_gather, stream_out_serial
from repro.streaming.streams import MemorySink


@pytest.fixture
def holey():
    """A 1-D array whose INDEXED distribution leaves elements 3, 4, 7
    owned by no task (a legitimate sparse coverage per the paper)."""
    d = Distribution((8,), [Indexed([Range([0, 1, 2]), Range([5, 6])])], ntasks=2)
    a = DistributedArray("H", (8,), np.float64, d)
    a.set_global(np.arange(1.0, 9.0))
    return a


class TestStrictGather:
    def test_default_zero_fills_holes(self, holey):
        buf = gather_piece(holey, Slice.full((8,)))
        assert buf.tolist() == [1.0, 2.0, 3.0, 0.0, 0.0, 6.0, 7.0, 0.0]

    def test_strict_raises_on_hole(self, holey):
        with pytest.raises(StreamingError, match="undefined element"):
            gather_piece(holey, Slice.full((8,)), strict=True)

    def test_strict_passes_on_covered_piece(self, holey):
        piece = Slice([Range([0, 1, 2])])
        buf = gather_piece(holey, piece, strict=True)
        assert buf.tolist() == [1.0, 2.0, 3.0]

    def test_context_manager_scopes_default(self, holey):
        with strict_gather():
            with pytest.raises(StreamingError):
                gather_piece(holey, Slice.full((8,)))
        # restored on exit
        gather_piece(holey, Slice.full((8,)))

    def test_stream_out_serial_under_strict(self, holey):
        with strict_gather():
            with pytest.raises(StreamingError):
                stream_out_serial(holey, MemorySink(), target_bytes=16)
        # without strictness the stream is well-formed (holes as zeros)
        sink = MemorySink()
        stream_out_serial(holey, sink, target_bytes=16)
        want = np.array([1.0, 2, 3, 0, 0, 6, 7, 0]).tobytes()
        assert sink.getvalue() == want

    def test_fully_defined_array_unaffected(self):
        from repro.arrays.distributions import block_distribution

        d = block_distribution((6, 4), 3)
        a = DistributedArray("F", (6, 4), np.float64, d)
        a.set_global(np.arange(24.0).reshape(6, 4))
        with strict_gather():
            sink = MemorySink()
            stream_out_serial(a, sink, target_bytes=32)
        assert sink.getvalue() == np.arange(24.0).reshape(6, 4).flatten("F").tobytes()
