"""Unit tests for the byte sink/source layer."""

import threading

import pytest

from repro.errors import StreamingError
from repro.pfs.piofs import PIOFS
from repro.streaming.streams import MemorySink, MemorySource, PFSSink


class TestPayloadValidation:
    """``nbytes`` and ``data`` must agree when both are given — a
    mismatch silently preferred one of them before, corrupting stream
    accounting."""

    def test_memory_write_at_rejects_mismatch(self):
        sink = MemorySink()
        with pytest.raises(StreamingError, match="inconsistent write"):
            sink.write_at(0, b"abcd", nbytes=3)

    def test_memory_append_rejects_mismatch(self):
        sink = MemorySink()
        with pytest.raises(StreamingError, match="inconsistent write"):
            sink.append(b"abcd", nbytes=5)

    def test_memory_consistent_nbytes_accepted(self):
        sink = MemorySink()
        sink.write_at(0, b"abcd", nbytes=4)
        sink.append(b"ef", nbytes=2)
        assert sink.getvalue() == b"abcdef"

    def test_pfs_write_at_rejects_mismatch(self):
        pfs = PIOFS()
        sink = PFSSink(pfs, "f")
        with pytest.raises(StreamingError, match="inconsistent write"):
            sink.write_at(0, b"abcd", nbytes=2)

    def test_pfs_append_rejects_mismatch(self):
        pfs = PIOFS()
        sink = PFSSink(pfs, "f")
        with pytest.raises(StreamingError, match="inconsistent write"):
            sink.append(b"ab", nbytes=1)

    def test_pfs_virtual_sized_writes_still_work(self):
        pfs = PIOFS()
        sink = PFSSink(pfs, "v", virtual=True)
        sink.write_at(0, None, nbytes=64)  # data=None + nbytes is the virtual path
        assert pfs.file_size("v") == 64


class TestMemorySinkConcurrency:
    def test_concurrent_disjoint_writes(self):
        # the executor's access pattern: distinct offsets, many threads
        sink = MemorySink()
        chunk = 257
        n = 16

        def write(i: int) -> None:
            sink.write_at(i * chunk, bytes([i]) * chunk)

        threads = [threading.Thread(target=write, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        got = sink.getvalue()
        assert got == b"".join(bytes([i]) * chunk for i in range(n))

    def test_non_seekable_still_sequential(self):
        sink = MemorySink(seekable=False)
        sink.write_at(0, b"ab")
        with pytest.raises(StreamingError):
            sink.write_at(10, b"cd")


class TestMemorySource:
    def test_bounds(self):
        src = MemorySource(b"abcdef")
        assert src.read_at(2, 3) == b"cde"
        with pytest.raises(StreamingError):
            src.read_at(4, 4)
