"""Documentation quality gate: every public module, class, and function
in the library carries a docstring (deliverable (e))."""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

PKG_ROOT = pathlib.Path(repro.__file__).parent


def iter_modules():
    for info in pkgutil.walk_packages([str(PKG_ROOT)], prefix="repro."):
        yield info.name


ALL_MODULES = sorted(iter_modules())


def test_module_discovery_found_the_package():
    assert len(ALL_MODULES) > 40


@pytest.mark.parametrize("name", ALL_MODULES)
def test_module_docstring(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and mod.__doc__.strip(), f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", ALL_MODULES)
def test_public_members_documented(name):
    mod = importlib.import_module(name)
    missing = []
    for attr in getattr(mod, "__all__", []):
        obj = getattr(mod, attr)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", "").startswith("repro") and not (
                obj.__doc__ and obj.__doc__.strip()
            ):
                missing.append(attr)
        if inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("_") or not inspect.isfunction(member):
                    continue
                if member.__doc__ and member.__doc__.strip():
                    continue
                # overrides inherit the base method's documentation
                inherited = any(
                    getattr(base, mname, None) is not None
                    and getattr(getattr(base, mname), "__doc__", None)
                    for base in obj.__mro__[1:]
                )
                if inherited:
                    continue
                # one-line accessors are self-describing
                src_lines = len(inspect.getsource(member).splitlines())
                if src_lines > 3:
                    missing.append(f"{attr}.{mname}")
    assert not missing, f"{name}: undocumented public members: {missing}"
