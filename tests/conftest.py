"""Shared fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine, MachineParams


@pytest.fixture
def machine16():
    return Machine(MachineParams(num_nodes=16))


@pytest.fixture
def machine8():
    return Machine(MachineParams(num_nodes=8))


@pytest.fixture
def pfs(machine16):
    return PIOFS(machine=machine16)


@pytest.fixture
def rng():
    return np.random.default_rng(20260707)
