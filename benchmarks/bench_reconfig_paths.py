"""Ablation: the two reconfiguration paths of §2.2.

"Applications can be reconfigured using the state of the application
from volatile memory on-the-fly or from the state saved in ... a
checkpoint file."  This bench prices both paths for the BT Class A
state at several (t1 -> t2) transitions:

* **memory**: redistribute the distributed arrays over the switch
  (wire bytes / bisection bandwidth) — what the JSA uses to resize a
  healthy job;
* **checkpoint**: DRMS checkpoint at t1 + reconfigured restart at t2 —
  what failure recovery and cross-system migration must use (state
  survives the task pool).

The gap is the reason DRMS keeps both mechanisms.
"""

import numpy as np

from repro.apps import make_proxy
from repro.arrays.assignment import build_schedule, schedule_bytes
from repro.checkpoint.drms import drms_checkpoint, drms_restart
from repro.checkpoint.segment import DataSegment
from repro.perfmodel.experiments import build_state
from repro.pfs.piofs import PIOFS
from repro.reporting.tables import Table
from repro.runtime.machine import Machine, MachineParams

TRANSITIONS = [(8, 4), (8, 12), (8, 16), (16, 8)]


def memory_cost_s(machine, arrays, t2):
    params = machine.params
    wire = 0
    for arr in arrays:
        new_dist = arr.distribution.adjust(t2)
        wire += schedule_bytes(
            build_schedule(arr.distribution, new_dist), arr.itemsize,
            remote_only=True,
        )
    return wire / (params.link_bandwidth_mbps * 1e6 * params.bisection_links), wire


def build_comparison():
    machine = Machine(MachineParams(num_nodes=16))
    proxy = make_proxy("bt", "A", store_data=False)
    t = Table(
        ["t1 -> t2", "memory redis (s)", "wire MB", "checkpoint+restart (s)", "ratio"],
        title="Reconfiguration paths for BT Class A state (volatile vs checkpoint)",
    )
    rows = {}
    for t1, t2 in TRANSITIONS:
        machine.clear_tasks()
        machine.place_tasks(max(t1, t2))
        arrays = build_state(proxy, t1)
        mem_s, wire = memory_cost_s(machine, arrays, t2)
        pfs = PIOFS(machine=machine)
        seg = DataSegment(profile=proxy.segment_profile())
        bd = drms_checkpoint(pfs, "p", seg, arrays)
        _, rbd = drms_restart(pfs, "p", t2)
        file_s = bd.total_seconds + rbd.total_seconds
        rows[(t1, t2)] = (mem_s, file_s)
        t.add_row(
            f"{t1} -> {t2}", mem_s, wire / 1e6, file_s, f"{file_s / mem_s:.0f}x"
        )
    machine.clear_tasks()
    return t.render(), rows


def test_memory_path_is_an_order_of_magnitude_cheaper(benchmark, report):
    text, rows = benchmark(build_comparison)
    report("ablation_reconfig_paths", text)
    for (t1, t2), (mem_s, file_s) in rows.items():
        assert mem_s < file_s / 5, (t1, t2)
    # but the checkpoint path is what survives failures/migration —
    # both must exist; here we just confirm both produce finite costs
    assert all(m > 0 and f > 0 for m, f in rows.values())
