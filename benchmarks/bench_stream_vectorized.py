"""Vectorized streaming benchmark: scalar baseline vs bulk engines.

Persists ``BENCH_stream_vec.json``:

* **sweep** — for each piece-size target of the bench_parstream sweep,
  wall-clock of (a) the pre-vectorization scalar serial path (the
  per-piece owner-loop gather reproduced below as the fixed baseline),
  (b) the new bulk serial engine, (c) the thread-pool engine, and
  (d) the inline vectorized engine, with byte-identity asserted on
  every cell;
* **aggregate** — end-to-end totals over the sweep and the two gating
  ratios: ``speedup_vs_scalar`` (bulk threads vs the scalar baseline;
  the acceptance bar is 2x) and ``threads_vs_serial`` (coalesced
  thread-pool writes vs the per-piece bulk serial loop; must exceed
  1.0 — on a single-core host the win comes from coalescing m
  per-piece ``write_at`` calls into P bulk ones, not from hardware
  parallelism).

Run standalone with ``--check`` (``make bench-stream``) to regenerate
the artifact and fail on either gate; the pytest path asserts the same
gates.
"""

import json
import sys
import time

import numpy as np

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import block_distribution
from repro.plancache import PlanCache, use_plan_cache
from repro.streaming.parallel import stream_out_parallel
from repro.streaming.streams import MemorySink

NTASKS = 4
P = 4
SWEEP_TARGETS = (1 << 10, 1 << 13, 1 << 16)
SWEEP_SHAPE = (512, 256)  # 1 MiB of float64
REPEATS = 3
ENGINES = ("serial", "threads", "vectorized")


def _array(shape, name="bench"):
    d = block_distribution(shape, NTASKS)
    a = DistributedArray(name, shape, np.float64, d)
    a.set_global(np.arange(float(np.prod(shape))).reshape(shape))
    return a


def _scalar_stream_out(a, sink, target_bytes, order="F"):
    """The PR-5 serial hot path, reproduced as the fixed baseline: a
    Python loop per piece, a nested owner loop with a mesh-indexed
    block copy per owner.  Kept here (not imported) so the baseline
    stays frozen while the library evolves."""
    from repro.arrays.slices import Slice
    from repro.plancache.plans import streaming_plan
    from repro.streaming.order import stream_order_bytes

    pieces, _ = streaming_plan(
        Slice.full(a.shape), a.itemsize, target_bytes=target_bytes, order=order
    )
    dist = a.distribution
    for piece in pieces:
        if piece.is_empty:
            continue
        buf = np.zeros(piece.shape, dtype=a.dtype)
        for owner in dist.owner_tasks(piece):
            sec = dist.assigned(owner).intersect(piece)
            if sec.is_empty:
                continue
            buf[sec.local_index_within(piece)] = a.section_from_task(
                owner, sec
            ).reshape(sec.shape)
        sink.append(stream_order_bytes(buf, order), client=0)


def _time(fn, repeats=REPEATS):
    t0 = time.perf_counter()
    for _ in range(repeats):
        fn()
    return time.perf_counter() - t0


def run_sweep():
    a = _array(SWEEP_SHAPE)
    rows = []
    identical = True
    with use_plan_cache(PlanCache()):
        for target in SWEEP_TARGETS:
            ref = MemorySink()
            _scalar_stream_out(a, ref, target)  # also warms the plan
            want = ref.getvalue()
            row = {
                "target_bytes": target,
                "scalar_seconds": _time(
                    lambda: _scalar_stream_out(a, MemorySink(), target)
                ),
            }
            for mode in ENGINES:
                sink = MemorySink()
                st = stream_out_parallel(  # warm this engine's plans
                    a, sink, P=P, target_bytes=target, concurrency=mode
                )
                identical = identical and sink.getvalue() == want
                row[f"{mode}_seconds"] = _time(
                    lambda m=mode: stream_out_parallel(
                        a, MemorySink(), P=P, target_bytes=target, concurrency=m
                    )
                )
                row["pieces"] = st.pieces
            row["threads_vs_serial"] = (
                row["serial_seconds"] / row["threads_seconds"]
            )
            row["threads_vs_scalar"] = (
                row["scalar_seconds"] / row["threads_seconds"]
            )
            rows.append(row)
    totals = {
        k: sum(r[f"{k}_seconds"] for r in rows)
        for k in ("scalar",) + ENGINES
    }
    aggregate = {
        "totals_seconds": totals,
        "speedup_vs_scalar": totals["scalar"] / totals["threads"],
        "threads_vs_serial": totals["serial"] / totals["threads"],
        "byte_identical": identical,
    }
    return {"sweep": rows, "aggregate": aggregate}


def check(payload):
    """The two gates of the ``--check`` mode."""
    agg = payload["aggregate"]
    assert agg["byte_identical"], "engine output diverged from the scalar baseline"
    assert agg["threads_vs_serial"] > 1.0, (
        f"coalesced thread engine lost to the per-piece serial loop "
        f"({agg['threads_vs_serial']:.3f}x)"
    )


def test_stream_vectorized_baseline(benchmark, report):
    payload = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report("BENCH_stream_vec.json", json.dumps(payload, indent=1))
    check(payload)
    for row in payload["sweep"]:
        assert row["pieces"] >= P


def main(argv):
    payload = run_sweep()
    text = json.dumps(payload, indent=1)
    from conftest import write_artifact  # benchmarks/conftest.py

    write_artifact("BENCH_stream_vec.json", text)
    print(text)
    if "--check" in argv:
        try:
            check(payload)
        except AssertionError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        print("OK: byte-identical; threads_vs_serial "
              f"{payload['aggregate']['threads_vs_serial']:.2f}x, "
              "vs scalar baseline "
              f"{payload['aggregate']['speedup_vs_scalar']:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
