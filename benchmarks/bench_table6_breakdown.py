"""Table 6 — component breakdown of DRMS checkpoint and restart.

For each (application, partition size): total time and aggregate rate,
plus the data-segment and distributed-array components as a percentage
of the total and their own I/O rates — demonstrating the paper's two
asymmetries: writes are server-limited (rates fall with more busy
nodes), reads are client-limited (rates rise with more clients).

The numbers come from the observability layer: each cell runs under its
own live :class:`repro.obs.Tracer` and every assertion reads the flat
metrics dump (the ``checkpoint.drms.*`` / ``restart.drms.*`` series the
engines publish) rather than the breakdown objects threaded through
return values — exercising the exact series external dashboards see.
"""

import json

import pytest

from repro.obs import Tracer, use_tracer
from repro.perfmodel.experiments import measure_checkpoint_restart
from repro.perfmodel.reportgen import table6

MB = 1e6


def _measure_with_metrics():
    """All six Table 6 cells, each traced in isolation."""
    cells, metrics = {}, {}
    for name in ("bt", "lu", "sp"):
        for pes in (8, 16):
            with use_tracer(Tracer()) as tr:
                cells[(name, pes)] = measure_checkpoint_restart(name, pes)
            metrics[(name, pes)] = tr.metrics.flat()
    return cells, metrics


def test_table6(benchmark, report):
    cells, metrics = benchmark.pedantic(_measure_with_metrics, rounds=2, iterations=1)
    text, _ = table6(cells)
    report("table6_breakdown", text)
    report(
        "table6_metrics",
        json.dumps({f"{n}/{p}pe": m for (n, p), m in metrics.items()}, indent=1),
    )

    def rate(m, series):
        return m[f"{series}.bytes"] / MB / m[f"{series}.seconds"]

    for name in ("bt", "lu", "sp"):
        m8, m16 = metrics[(name, 8)], metrics[(name, 16)]
        # reads client-limited: segment restore rate scales with clients
        assert rate(m16, "restart.drms.segment") > 1.5 * rate(m8, "restart.drms.segment")
        # writes server-limited: segment save rate does not improve
        assert rate(m16, "checkpoint.drms.segment") <= rate(m8, "checkpoint.drms.segment")
        # restart components sum to less than total (the 'other' band)
        assert (
            m8["restart.drms.segment.seconds"] + m8["restart.drms.arrays.seconds"]
            < m8["restart.drms.total.seconds"]
        )
        # the published series agree with the engine's returned breakdowns
        cell = cells[(name, 8)]
        assert m8["checkpoint.drms.total.seconds"] == pytest.approx(
            cell.drms_ckpt.total_seconds
        )
        assert m8["restart.drms.total.seconds"] == pytest.approx(
            cell.drms_restart.total_seconds
        )
        assert m8["checkpoint.drms.arrays.bytes"] == cell.drms_ckpt.arrays_bytes
        # the SPMD variants publish under their own kind
        assert m8["checkpoint.spmd.count"] == 1.0
        # array bytes move through the streaming engines exactly once
        # each way, and that traffic lands in the same registry
        assert m8["stream.out.bytes"] == cell.drms_ckpt.arrays_bytes
