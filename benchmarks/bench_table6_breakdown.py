"""Table 6 — component breakdown of DRMS checkpoint and restart.

For each (application, partition size): total time and aggregate rate,
plus the data-segment and distributed-array components as a percentage
of the total and their own I/O rates — demonstrating the paper's two
asymmetries: writes are server-limited (rates fall with more busy
nodes), reads are client-limited (rates rise with more clients).
"""

from repro.perfmodel.reportgen import table6


def test_table6(benchmark, report):
    text, cells = benchmark.pedantic(table6, rounds=2, iterations=1)
    report("table6_breakdown", text)
    for name in ("bt", "lu", "sp"):
        c8, c16 = cells[(name, 8)], cells[(name, 16)]
        # reads client-limited: segment restore rate scales with clients
        assert (
            c16.drms_restart.segment_rate_mbps
            > 1.5 * c8.drms_restart.segment_rate_mbps
        )
        # writes server-limited: segment save rate does not improve
        assert c16.drms_ckpt.segment_rate_mbps <= c8.drms_ckpt.segment_rate_mbps
        # restart components sum to less than total (the 'other' band)
        bd = c8.drms_restart
        assert bd.segment_seconds + bd.arrays_seconds < bd.total_seconds
