"""Observability overhead benchmark: what instrumentation costs.

Persists ``BENCH_obs_overhead.json``:

* **macro** — wall-clock of one full mlck (``memory+pfs``) cluster run
  under three observability configurations: everything off (the
  default ``NullTracer`` + ``NullFlightRecorder``), flight recorder
  only (the always-on black-box mode), and the full stack (tracer +
  metrics + flight).  Best-of-``REPEATS`` per mode, so scheduler noise
  does not masquerade as instrumentation cost;
* **micro** — per-call cost of ``get_flight().record(...)`` for the
  null and active recorders (nanoseconds per event);
* **overhead** — the gating ratio: the flight-only run must cost less
  than ``MAX_FLIGHT_OVERHEAD_PCT`` (5%) over the everything-off
  baseline.  That is the budget that justifies leaving the recorder on
  in every run.

Run standalone with ``--check`` (``make bench-obs``) to regenerate the
artifact and fail the gate; the pytest path asserts the same gate.
"""

import json
import sys
import time

import numpy as np

from repro.drms.api import (
    drms_create_distribution,
    drms_distribute,
    drms_initialize,
    drms_reconfig_checkpoint,
)
from repro.infra import DRMSCluster
from repro.obs import FlightRecorder, Tracer, use_flight, use_tracer
from repro.runtime.machine import Machine, MachineParams

N = 16
NITER = 12
NTASKS = 8
REPEATS = 5
MICRO_EVENTS = 20_000
MAX_FLIGHT_OVERHEAD_PCT = 5.0


def _main(ctx, base):
    drms_initialize(ctx)
    dist = drms_create_distribution(ctx, (N, N), shadow=(1, 1))
    u = drms_distribute(ctx, "u", dist, init_global=np.ones((N, N)))
    for it in ctx.iterations(1, NITER + 1):
        if it % 2 == 1:  # checkpoint-heavy: exercise the hot paths
            drms_reconfig_checkpoint(ctx, base)
        u.set_assigned(u.assigned + 1.0)
        ctx.barrier()
    return float(u.assigned.sum())


def _run_once() -> None:
    cluster = DRMSCluster(machine=Machine(MachineParams(num_nodes=8)))
    app = cluster.build_app(_main, tier="memory+pfs", mlck_drain="sync")
    cluster.run_with_recovery("bench", app, NTASKS, args=("ck",), prefix="ck")


def _best_of(fn, repeats=REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _macro():
    def off():
        _run_once()

    def flight_only():
        with use_flight(FlightRecorder()):
            _run_once()

    def full():
        with use_tracer(Tracer()):
            with use_flight(FlightRecorder()):
                _run_once()

    # one warm-up of each shape before timing anything
    for fn in (off, flight_only, full):
        fn()
    recorder = FlightRecorder()
    with use_flight(recorder):
        _run_once()
    return {
        "off_seconds": _best_of(off),
        "flight_seconds": _best_of(flight_only),
        "full_seconds": _best_of(full),
        "flight_events_per_run": sum(
            recorder.recorded(n) for n in recorder.nodes()
        ),
    }


def _micro():
    from repro.obs import NULL_FLIGHT

    def spin(fr):
        t0 = time.perf_counter()
        for i in range(MICRO_EVENTS):
            fr.record("bench_tick", node=3, time=0.0, i=i)
        return (time.perf_counter() - t0) / MICRO_EVENTS * 1e9

    return {
        "events": MICRO_EVENTS,
        "null_ns_per_event": spin(NULL_FLIGHT),
        "active_ns_per_event": spin(FlightRecorder(capacity=256)),
    }


def run_bench():
    macro = _macro()
    overhead = {
        "flight_pct": (macro["flight_seconds"] / macro["off_seconds"] - 1.0)
        * 100.0,
        "full_pct": (macro["full_seconds"] / macro["off_seconds"] - 1.0)
        * 100.0,
        "max_flight_pct": MAX_FLIGHT_OVERHEAD_PCT,
    }
    return {"macro": macro, "micro": _micro(), "overhead": overhead}


def check(payload):
    """The --check gate: flight recording stays inside its budget."""
    pct = payload["overhead"]["flight_pct"]
    assert pct < MAX_FLIGHT_OVERHEAD_PCT, (
        f"flight recorder overhead {pct:.2f}% exceeds the "
        f"{MAX_FLIGHT_OVERHEAD_PCT}% budget"
    )
    assert payload["macro"]["flight_events_per_run"] > 0, (
        "flight recorder saw no events: the workload is not exercising "
        "the instrumented paths"
    )


def test_obs_overhead(benchmark, report):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("BENCH_obs_overhead.json", json.dumps(payload, indent=1))
    check(payload)


def main(argv):
    payload = run_bench()
    text = json.dumps(payload, indent=1)
    from conftest import write_artifact  # benchmarks/conftest.py

    write_artifact("BENCH_obs_overhead.json", text)
    print(text)
    if "--check" in argv:
        try:
            check(payload)
        except AssertionError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        print(
            "OK: flight overhead "
            f"{payload['overhead']['flight_pct']:.2f}% "
            f"(< {MAX_FLIGHT_OVERHEAD_PCT}%), full stack "
            f"{payload['overhead']['full_pct']:.2f}%"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
