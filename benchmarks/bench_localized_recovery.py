"""Localized vs full-restart recovery latency.

Persists ``BENCH_localized.json``:

* **full** — the paper's whole-pool protocol on an L1-served failure:
  every task is killed, the pool re-forms on the survivors, and the
  restart moves the complete checkpoint (``run_with_recovery``);
* **localized** — the same failure through the localized protocol:
  survivors quiesce at their last SOP and reload their own sections
  from node-local replica memory, only the lost ranks' bytes cross the
  switch to the replacement node (``run_with_localized_recovery``);
* **speedup** — the gating ratio of the two simulated recovery
  latencies.  Both runs restart from the *same* generation served by
  the *same* (L1) tier, so the entire difference is the protocol's data
  movement and TC restart scope — the claim this artifact pins.

Run standalone with ``--check`` (``make bench-localized``) to
regenerate the artifact and fail the gate; the pytest path asserts the
same gate.
"""

import json
import sys

import numpy as np

from repro.drms.api import (
    drms_create_distribution,
    drms_distribute,
    drms_initialize,
    drms_reconfig_checkpoint,
)
from repro.infra import DRMSCluster, FailurePlan
from repro.runtime.machine import Machine, MachineParams

N = 1024
NITER = 12
NTASKS = 6
NUM_NODES = 8
FAILED_NODE = 0
FAIL_ITERATION = 7


def _main(ctx, base):
    drms_initialize(ctx)
    dist = drms_create_distribution(ctx, (N, N), shadow=(1, 1))
    u = drms_distribute(ctx, "u", dist, init_global=np.ones((N, N)))
    for it in ctx.iterations(1, NITER + 1):
        if it % 4 == 1:
            drms_reconfig_checkpoint(ctx, base)
        u.set_assigned(u.assigned + 1.0)
        ctx.barrier()
    return float(u.assigned.sum())


def _run(localized: bool):
    cluster = DRMSCluster(
        machine=Machine(MachineParams(num_nodes=NUM_NODES)),
        node_repair_s=600.0,
    )
    app = cluster.build_app(_main, tier="memory+pfs", mlck_drain="sync")
    runner = (
        cluster.run_with_localized_recovery
        if localized
        else cluster.run_with_recovery
    )
    out = runner(
        "bench", app, NTASKS, args=("ck",), prefix="ck",
        failure=FailurePlan(iteration=FAIL_ITERATION, node_id=FAILED_NODE),
    )
    bd = out.final_report.restart_breakdown
    row = {
        "recovery_latency_s": out.recovery_latency_s,
        "restarted_from": out.final_report.restarted_from,
        "restart_kind": bd.kind,
        "restart_seconds": bd.total_seconds,
        # the protocol-dependent part: checkpoint data movement alone,
        # without the fixed program-text initialization
        "data_seconds": bd.segment_seconds + bd.arrays_seconds,
        "restart_bytes": bd.total_bytes,
        "tasks_after": out.tasks_after,
        "result_checksum": float(
            out.final_report.arrays["u"].to_global(fill=0).sum()
        ),
    }
    if out.rebuild_scope is not None:
        row["lost_bytes"] = out.rebuild_scope.lost_bytes
        row["total_bytes"] = out.rebuild_scope.total_bytes
        row["lost_fraction"] = out.rebuild_scope.lost_fraction
    return row


def run_bench():
    full = _run(localized=False)
    localized = _run(localized=True)
    return {
        "scenario": {
            "shape": [N, N],
            "niter": NITER,
            "ntasks": NTASKS,
            "num_nodes": NUM_NODES,
            "failed_node": FAILED_NODE,
            "fail_iteration": FAIL_ITERATION,
        },
        "full": full,
        "localized": localized,
        "speedup": full["recovery_latency_s"]
        / localized["recovery_latency_s"],
        "data_speedup": full["data_seconds"] / localized["data_seconds"],
    }


def check(payload):
    """The --check gate: on the L1 happy path, localized recovery beats
    the full restart — same generation, same tier, same final state."""
    full, loc = payload["full"], payload["localized"]
    assert loc["restart_kind"] == "mlck-l1-localized", (
        f"localized run fell off the happy path: {loc['restart_kind']}"
    )
    assert full["restart_kind"] == "mlck-l1", (
        f"full-restart baseline not L1-served: {full['restart_kind']}"
    )
    assert full["restarted_from"] == loc["restarted_from"], (
        "the two protocols rolled back to different generations: "
        f"{full['restarted_from']} vs {loc['restarted_from']}"
    )
    assert full["result_checksum"] == loc["result_checksum"], (
        "the recovered runs diverged: localized recovery changed the "
        "application's answer"
    )
    assert loc["recovery_latency_s"] < full["recovery_latency_s"], (
        f"localized recovery ({loc['recovery_latency_s']:.3f}s) did not "
        f"beat the full restart ({full['recovery_latency_s']:.3f}s)"
    )
    assert loc["data_seconds"] < full["data_seconds"], (
        "localized data movement did not beat the full restart's: "
        f"{loc['data_seconds']:.3f}s vs {full['data_seconds']:.3f}s"
    )
    assert 0 < loc["lost_bytes"] < loc["total_bytes"], (
        "degenerate scope: the benchmark failure lost nothing (or "
        "everything); the comparison is meaningless"
    )


def test_localized_recovery(benchmark, report):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("BENCH_localized.json", json.dumps(payload, indent=1))
    check(payload)


def main(argv):
    payload = run_bench()
    text = json.dumps(payload, indent=1)
    from conftest import write_artifact  # benchmarks/conftest.py

    write_artifact("BENCH_localized.json", text)
    print(text)
    if "--check" in argv:
        try:
            check(payload)
        except AssertionError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        print(
            "OK: localized recovery "
            f"{payload['localized']['recovery_latency_s']:.3f}s vs full "
            f"restart {payload['full']['recovery_latency_s']:.3f}s "
            f"({payload['speedup']:.2f}x latency, "
            f"{payload['data_speedup']:.2f}x data movement)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
