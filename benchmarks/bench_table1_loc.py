"""Table 1 — source lines added to conform to the DRMS model.

The paper reports ~1% source growth (85-107 lines on ~10k) for the
Fortran NPB ports.  Our proxies are Python, so absolute counts differ;
the bench counts the proxy lines that touch the DRMS API (the same
notion of "added to conform") and reproduces the paper's claim that the
conformance surface is a small handful of call sites, alongside the
paper's own Fortran numbers.
"""

from repro.perfmodel.reportgen import table1


def test_table1(benchmark, report):
    text, rows = benchmark(table1)
    report("table1_loc", text)
    for name, (total, added, proxy_lines) in rows.items():
        assert 0.005 < added / total < 0.015  # the ~1% claim
        assert proxy_lines < 40  # conformance is a handful of call sites
