"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper's evaluation,
prints it (visible with ``pytest benchmarks/ --benchmark-only -s``) and
persists it under ``benchmarks/out/`` so the reproduction artifacts
survive the run.

``benchmarks/out/`` ships seed artifacts from a prior run (committed
with epoch mtimes); nothing reads them back, so a stale or unwritable
``out/`` must never *fail* a bench — a bench that cannot persist its
artifact skips cleanly and points at ``make clean``.
"""

from __future__ import annotations

import pathlib
from typing import List, Optional

import pytest

BENCH_DIR = pathlib.Path(__file__).parent
OUT_DIR = BENCH_DIR / "out"


def stale_artifacts(
    out_dir: Optional[pathlib.Path] = None,
    src_dir: Optional[pathlib.Path] = None,
) -> List[pathlib.Path]:
    """Artifacts older than every benchmark source: leftovers of a
    previous run (or the committed seed set), not products of this
    tree."""
    out = pathlib.Path(out_dir) if out_dir is not None else OUT_DIR
    src = pathlib.Path(src_dir) if src_dir is not None else BENCH_DIR
    if not out.is_dir():
        return []
    newest_src = max(
        (p.stat().st_mtime for p in src.glob("*.py")), default=0.0
    )
    return sorted(
        p
        for pattern in ("*.txt", "*.json")
        for p in out.glob(pattern)
        if p.stat().st_mtime < newest_src
    )


def write_artifact(
    name: str, text: str, out_dir: Optional[pathlib.Path] = None
) -> pathlib.Path:
    """Persist one benchmark artifact, or *skip* the calling bench when
    the artifact directory is stale state this run cannot refresh
    (``out`` shadowed by a file, unwritable leftovers, ...)."""
    out = pathlib.Path(out_dir) if out_dir is not None else OUT_DIR
    # names carrying their own extension (BENCH_*.json) are kept as-is;
    # bare names get the legacy .txt suffix
    path = out / (name if name.endswith(".json") else f"{name}.txt")
    try:
        out.mkdir(exist_ok=True)
        path.write_text(text + "\n")
    except OSError as exc:
        stale = ", ".join(p.name for p in stale_artifacts(out)) or "none"
        pytest.skip(
            f"cannot refresh benchmark artifact {path.name}: {exc} "
            f"(stale artifacts: {stale}); run `make clean` and retry"
        )
    return path


@pytest.fixture
def report():
    """Print a report and persist it under benchmarks/out/."""

    def _write(name: str, text: str) -> None:
        write_artifact(name, text)
        print("\n" + text)

    return _write
