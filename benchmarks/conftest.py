"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper's evaluation,
prints it (visible with ``pytest benchmarks/ --benchmark-only -s``) and
persists it under ``benchmarks/out/`` so the reproduction artifacts
survive the run.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def report():
    """Print a report and persist it under benchmarks/out/."""

    def _write(name: str, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _write
