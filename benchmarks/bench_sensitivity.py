"""Calibration-robustness ablation.

Perturbs every fitted PIOFS constant by ±20% and reports the largest
movement across the 24 Table 5 cells; then verifies that the paper's
qualitative claims (who wins, crossovers, the threshold collapse)
survive each perturbation — the reproduction's conclusions do not hinge
on any single calibrated number.
"""

import dataclasses

from repro.perfmodel.sensitivity import (
    perturbable_params,
    sensitivity_sweep,
    shapes_hold,
)
from repro.pfs.params import PIOFSParams
from repro.reporting.tables import Table


def build_sweep():
    influence = sensitivity_sweep(delta=0.2)
    t = Table(
        ["calibrated constant", "max cell change at +20%"],
        title="Sensitivity of the Table 5 reproduction to the PIOFS calibration",
    )
    for name, infl in influence.items():
        t.add_row(name, f"{100 * infl:.1f}%")
    return t.render(), influence


#: the buffer-memory capacities are *threshold* constants: moving them
#: moves where the SPMD-restart collapse happens (that threshold being a
#: buffer-memory artifact is the paper's own §5 explanation), so they
#: are reported separately from the rate constants, whose perturbation
#: must never change any qualitative claim.
THRESHOLD_PARAMS = {"buffer_free_node_mb", "buffer_busy_node_mb",
                    "write_pressure_file_mb"}


def build_shape_robustness():
    rows = {}
    for name in perturbable_params():
        default = getattr(PIOFSParams(), name)
        for delta in (-0.2, 0.2):
            p = dataclasses.replace(PIOFSParams(), **{name: default * (1 + delta)})
            rows[(name, delta)] = shapes_hold(p)
    t = Table(
        ["constant", "kind", "-20%", "+20%"],
        title="Qualitative claims under miscalibration "
              "(threshold constants may move the crossover itself)",
    )
    for name in perturbable_params():
        t.add_row(
            name,
            "threshold" if name in THRESHOLD_PARAMS else "rate",
            "hold" if rows[(name, -0.2)] else "crossover moved",
            "hold" if rows[(name, 0.2)] else "crossover moved",
        )
    return t.render(), rows


def test_sensitivity_sweep(benchmark, report):
    text, influence = benchmark.pedantic(build_sweep, rounds=1, iterations=1)
    report("sensitivity_sweep", text)
    # timing constants matter (the model is not vacuous) ...
    assert max(influence.values()) > 0.05
    # ... and no single constant dominates every cell
    assert all(v < 0.6 for v in influence.values())


def test_shapes_survive_miscalibration(benchmark, report):
    text, rows = benchmark.pedantic(build_shape_robustness, rounds=1, iterations=1)
    report("sensitivity_shapes", text)
    broken = [
        (name, d) for (name, d), ok in rows.items()
        if not ok and name not in THRESHOLD_PARAMS
    ]
    # every qualitative claim holds at ±20% on every *rate* constant
    assert broken == [], broken
    # and the threshold constants exist for a reason: shrinking the
    # buffer far enough must eventually move the BT crossover
    tiny = dataclasses.replace(PIOFSParams(), buffer_free_node_mb=5.0,
                               buffer_busy_node_mb=2.0)
    assert not shapes_hold(tiny)
