"""Table 4 — components of one task's data segment.

Local sections are derived from the proxies' actual distributions at
the compile-time minimum of 4 tasks (full Fortran-style halo pads); the
system-related component is the paper's measured 34,972,228 bytes of
library/message-buffer state; private/replicated is the per-application
scratch profile.
"""

from repro.perfmodel.paper_data import PAPER_TABLE4
from repro.perfmodel.reportgen import table4


def test_table4(benchmark, report):
    text, profiles = benchmark(table4)
    report("table4_segment", text)
    for name, prof in profiles.items():
        total, local, system, private = PAPER_TABLE4[name]
        assert prof.system_bytes == system
        assert abs(prof.private_bytes / private - 1) < 0.01
        assert abs(prof.local_section_bytes / local - 1) < 0.08
        assert abs(prof.total_bytes / total - 1) < 0.05
    # the cross-application structure: LU has by far the largest
    # private component (its temporaries are task-private, not
    # distributed) and the smallest local sections
    assert profiles["lu"].private_bytes > 5 * profiles["bt"].private_bytes
    assert profiles["lu"].local_section_bytes < profiles["sp"].local_section_bytes
