"""Coordinated workflow checkpointing vs independent per-member lines.

Persists ``BENCH_workflow.json``:

* **coordinated** — a two-member coupled workflow (stencil feeding a
  consumer) run through :class:`~repro.workflow.WorkflowCoordinator`:
  members align at every exchange boundary, coupling bytes move, and
  each positive cadence decision commits one workflow line (members
  write concurrently behind the boundary, so a line costs the slowest
  member, not the sum);
* **independent** — the same two member programs checkpointing on
  their own, no boundary alignment and no coupling transfers: the
  baseline the coordination overhead is measured against;
* **restart** — the newest workflow line is torn (one member's array
  file corrupted), and the ensemble restarts on *different* task
  counts: the walk must reject the torn line as a unit, fall back one
  generation, and the resumed run must reach the same final state as
  the uninterrupted one.

Run standalone with ``--check`` (``make bench-workflow``) to
regenerate the artifact and fail the gate; the pytest path asserts the
same gate.
"""

import json
import sys

import numpy as np

from repro.drms import CheckpointStatus, DRMSApplication
from repro.drms.api import (
    drms_adjust,
    drms_create_distribution,
    drms_distribute,
    drms_initialize,
    drms_reconfig_checkpoint,
)
from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine, MachineParams
from repro.workflow import WorkflowCoordinator

N = 192
NITER = 6
NUM_NODES = 12
TASKS1 = {"stencil": 4, "consumer": 2}
TASKS2 = {"stencil": 3, "consumer": 3}


def _member_main(ctx, workflow):
    """One member program: an evolving field ``u`` plus an ``inbox``
    that (in workflow mode) receives the peer's field at every
    exchange.  ``workflow=False`` runs the identical program with a
    plain per-member checkpoint instead of the aligned exchange — the
    independent baseline."""
    drms_initialize(ctx)
    dist = drms_create_distribution(ctx, (N, N))
    u = drms_distribute(ctx, "u", dist, init_global=np.ones((N, N)))
    inbox = drms_distribute(ctx, "inbox", dist, init_global=np.zeros((N, N)))
    for it in ctx.iterations(1, NITER + 1):
        if workflow:
            status, delta = ctx.workflow_exchange(final=(it == NITER))
        else:
            status, delta = drms_reconfig_checkpoint(ctx, "solo.ck")
        if status is CheckpointStatus.RESTARTED and delta != 0:
            u = drms_distribute(ctx, "u", drms_adjust(ctx, "u"))
            inbox = drms_distribute(ctx, "inbox", drms_adjust(ctx, "inbox"))
        u.set_assigned(u.assigned + 1.0)
        ctx.barrier()
    return float(u.assigned.sum())


def _build_coordinator():
    machine = Machine(MachineParams(num_nodes=NUM_NODES))
    pfs = PIOFS(machine=machine)
    coord = WorkflowCoordinator("wf", machine=machine, pfs=pfs)
    for name in TASKS1:
        coord.add_member(name, _member_main, args=(True,))
    coord.couple("stencil", "u", "consumer", "inbox")
    return coord


def _run_independent():
    """Both member programs on their own apps: same machine class, same
    update, same checkpoint engine and cadence — no alignment, no
    coupling.  They run as space-shared jobs, so the baseline wall time
    is the slower of the two."""
    elapsed = []
    checkpoint_seconds = 0.0
    for name, ntasks in TASKS1.items():
        machine = Machine(MachineParams(num_nodes=NUM_NODES))
        app = DRMSApplication(
            _member_main, name=name, machine=machine,
            pfs=PIOFS(machine=machine),
        )
        rep = app.start(ntasks, args=(False,))
        elapsed.append(rep.sim_elapsed)
        checkpoint_seconds += sum(bd.total_seconds for _, bd in rep.checkpoints)
    return {
        "sim_elapsed": max(elapsed),
        "checkpoint_seconds": checkpoint_seconds,
        "checkpoints_per_member": NITER,
    }


def run_bench():
    coord = _build_coordinator()
    rep = coord.run(TASKS1)
    final_checksum = {
        name: float(r.arrays["u"].to_global(fill=0).sum())
        for name, r in rep.members.items()
    }
    lines = [
        {
            "generation": line.generation,
            "ensemble_seconds": line.seconds,
            "serial_seconds": line.serial_seconds,
        }
        for line in rep.lines
    ]
    coordinated = {
        "sim_elapsed": rep.sim_elapsed,
        "checkpoint_seconds": rep.checkpoint_seconds,
        "lines": lines,
        "line_ensemble_seconds": sum(l["ensemble_seconds"] for l in lines),
        "line_serial_seconds": sum(l["serial_seconds"] for l in lines),
    }
    independent = _run_independent()

    # tear the newest line: one member's array file takes a silent flip
    from repro.checkpoint.format import array_name
    from repro.pfs.faults import flip_stored_bit

    newest = rep.lines[-1].generation
    torn_file = array_name(f"wf.consumer.{newest:06d}", "u")
    flip_stored_bit(coord.pfs, torn_file, 17, 3)

    rep2 = coord.restart_workflow(TASKS2)
    decision = rep2.decision
    restart_seconds = {
        name: r.restart_breakdown.total_seconds
        for name, r in rep2.members.items()
    }
    resumed_checksum = {
        name: float(r.arrays["u"].to_global(fill=0).sum())
        for name, r in rep2.members.items()
    }
    restart = {
        "torn_generation": newest,
        "chosen_generation": decision.generation,
        "fell_back": decision.fell_back,
        "member_tiers": dict(decision.member_tiers),
        "restart_seconds": restart_seconds,
        "ensemble_restart_latency_s": max(restart_seconds.values()),
        "serial_restart_latency_s": sum(restart_seconds.values()),
        "tasks_before": dict(TASKS1),
        "tasks_after": dict(TASKS2),
        "resumed_checksum": resumed_checksum,
        "uninterrupted_checksum": final_checksum,
    }
    return {
        "scenario": {
            "shape": [N, N],
            "niter": NITER,
            "members": list(TASKS1),
            "num_nodes": NUM_NODES,
        },
        "coordinated": coordinated,
        "independent": independent,
        "coordination_overhead": (
            coordinated["sim_elapsed"] / independent["sim_elapsed"]
        ),
        "line_concurrency_gain": (
            coordinated["line_serial_seconds"]
            / coordinated["line_ensemble_seconds"]
        ),
        "restart": restart,
    }


def check(payload):
    """The --check gate: coordination costs something but a bounded
    something; a workflow line costs the slowest member, not the sum;
    the torn line is rejected as a unit and the mixed-task-count
    ensemble restart reproduces the uninterrupted answer."""
    co, ind, rs = (
        payload["coordinated"], payload["independent"], payload["restart"]
    )
    assert len(co["lines"]) == NITER, (
        f"coordinated run committed {len(co['lines'])} lines, "
        f"expected {NITER}"
    )
    for line in co["lines"]:
        assert line["ensemble_seconds"] <= line["serial_seconds"] + 1e-9, (
            f"line {line['generation']}: ensemble cost "
            f"{line['ensemble_seconds']:.3f}s exceeds the serial sum "
            f"{line['serial_seconds']:.3f}s"
        )
    assert payload["line_concurrency_gain"] > 1.0, (
        "workflow lines showed no concurrency gain over serial "
        "per-member checkpointing"
    )
    overhead = payload["coordination_overhead"]
    assert 1.0 - 1e-9 <= overhead < 3.0, (
        f"coordination overhead {overhead:.3f}x outside [1, 3): the "
        "aligned ensemble should cost a bounded premium over "
        "independent members"
    )
    assert rs["fell_back"] and rs["chosen_generation"] == NITER - 1, (
        f"torn line {rs['torn_generation']} was not rejected as a unit "
        f"(chose {rs['chosen_generation']})"
    )
    assert rs["tasks_after"] != rs["tasks_before"], (
        "restart did not exercise a mixed-task-count reconfiguration"
    )
    assert rs["resumed_checksum"] == rs["uninterrupted_checksum"], (
        "the restarted ensemble diverged from the uninterrupted run: "
        f"{rs['resumed_checksum']} vs {rs['uninterrupted_checksum']}"
    )
    assert rs["ensemble_restart_latency_s"] > 0, (
        "restart latency was not recorded"
    )


def test_workflow(benchmark, report):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("BENCH_workflow.json", json.dumps(payload, indent=1))
    check(payload)


def main(argv):
    payload = run_bench()
    text = json.dumps(payload, indent=1)
    from conftest import write_artifact  # benchmarks/conftest.py

    write_artifact("BENCH_workflow.json", text)
    print(text)
    if "--check" in argv:
        try:
            check(payload)
        except AssertionError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        print(
            "OK: coordinated ensemble at "
            f"{payload['coordination_overhead']:.3f}x independent cost, "
            f"{payload['line_concurrency_gain']:.2f}x line concurrency "
            "gain; torn line rejected as a unit and the ensemble "
            f"restarted in {payload['restart']['ensemble_restart_latency_s']:.3f}s "
            f"on new task counts {payload['restart']['tasks_after']}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
