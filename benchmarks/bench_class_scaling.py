"""Extension beyond the paper: scaling with problem class.

The paper evaluates Class A only (64³) and argues in §6 that the
global-view advantage grows with the processor count.  This bench
extends the evaluation across NPB classes W/A/B/C (24³..162³) at 16
PEs, regenerating the Table 3/5 quantities at each size: the DRMS saved
state tracks the problem (not the machine), the SPMD state pays the
fixed compile-time segments regardless of class, and the checkpoint-time
gap persists at every size.
"""

from repro.apps import make_proxy
from repro.checkpoint.drms import drms_checkpoint, drms_restart
from repro.checkpoint.segment import DataSegment
from repro.checkpoint.spmd import spmd_checkpoint, spmd_restart
from repro.perfmodel.experiments import build_state
from repro.pfs.piofs import PIOFS
from repro.reporting.tables import Table
from repro.runtime.machine import Machine, MachineParams

MB = 1e6
PES = 16
CLASSES = ("W", "A", "B", "C")


def build_scaling():
    t = Table(
        ["class", "grid", "DRMS state (MB)", "SPMD state (MB)",
         "DRMS ckpt (s)", "SPMD ckpt (s)", "DRMS restart@8 (s)"],
        title=f"BT across NPB classes at {PES} PEs (paper evaluates Class A only)",
    )
    rows = {}
    for klass in CLASSES:
        machine = Machine(MachineParams(num_nodes=16))
        machine.place_tasks(PES)
        pfs = PIOFS(machine=machine)
        proxy = make_proxy("bt", klass, store_data=False)
        arrays = build_state(proxy, PES)
        seg = DataSegment(profile=proxy.segment_profile())
        bd = drms_checkpoint(pfs, "d", seg, arrays)
        _, rbd = drms_restart(pfs, "d", 8)
        sbd = spmd_checkpoint(
            pfs, "s", ntasks=PES, segment_bytes=proxy.spmd_segment_bytes
        )
        drms_mb = (seg.file_bytes + proxy.array_bytes_total) / MB
        spmd_mb = proxy.spmd_state_bytes(PES) / MB
        rows[klass] = {
            "n": proxy.n,
            "drms_mb": drms_mb,
            "spmd_mb": spmd_mb,
            "drms_s": bd.total_seconds,
            "spmd_s": sbd.total_seconds,
            "restart_s": rbd.total_seconds,
        }
        t.add_row(
            klass, f"{proxy.n}^3", drms_mb, spmd_mb,
            bd.total_seconds, sbd.total_seconds, rbd.total_seconds,
        )
    return t.render(), rows


def test_class_scaling(benchmark, report):
    text, rows = benchmark.pedantic(build_scaling, rounds=1, iterations=1)
    report("extension_class_scaling", text)
    # DRMS state grows with the problem; the advantage holds at every class
    drms = [rows[k]["drms_mb"] for k in CLASSES]
    assert drms == sorted(drms)
    for k in CLASSES:
        assert rows[k]["drms_mb"] < rows[k]["spmd_mb"]
        assert rows[k]["drms_s"] < rows[k]["spmd_s"]
    # the *relative* size advantage shrinks with class (arrays dominate
    # the fixed segments at C) yet never flips
    ratios = [rows[k]["spmd_mb"] / rows[k]["drms_mb"] for k in CLASSES]
    assert ratios[0] > ratios[-1] > 1.0
