"""Fleet-scale scheduling x cadence policy study.

Persists ``BENCH_fleet.json``: 2,000 jobs on a 256-node, 8-domain
fleet, run under every (scheduling, cadence) policy pair through two
failure-storm schedules:

* **burst** — a short correlated blitz inside two failure domains;
* **sustained** — failures spread across the whole campaign, the
  weather in which an adaptive (Young/Daly) cadence has time to learn
  the observed failure rate and retune its interval.

The gates pin the two fleet-level claims: the reconfigurable scheduler
preserves its utilization advantage over the rigid one under storms
(the Section 8 gap, now with failures), and the cadence-adaptive
policy beats the fixed-interval cadence on fleet lost work under at
least the sustained schedule.

Run standalone with ``--check`` (``make bench-fleet``) to regenerate
the artifact and fail the gate; the pytest path asserts the same gate.
"""

import json
import sys

from repro.infra.fleet import FleetSimulation, storm_schedule, synthetic_stream

NUM_NODES = 256
NUM_DOMAINS = 8
NUM_JOBS = 2_000
SEED = 11
CHECKPOINT_COST_S = 15.0
FIXED_INTERVAL_S = 600.0

STORMS = {
    # a two-domain blitz: 48 strikes in ~4 minutes
    "burst": dict(domains=[1, 2], start_s=3_000, count=48, spacing_s=5),
    # fleet-wide bad weather: 160 strikes over ~5.3 simulated hours
    "sustained": dict(
        domains=list(range(NUM_DOMAINS)), start_s=600, count=160, spacing_s=120
    ),
}


def _stream():
    return synthetic_stream(
        NUM_JOBS,
        NUM_NODES,
        seed=SEED,
        mean_interarrival_s=12.0,
        mean_work_s=5_000.0,
    )


def run_bench():
    jobs = _stream()
    out = {
        "scenario": {
            "num_nodes": NUM_NODES,
            "num_domains": NUM_DOMAINS,
            "num_jobs": NUM_JOBS,
            "seed": SEED,
            "checkpoint_cost_s": CHECKPOINT_COST_S,
            "fixed_interval_s": FIXED_INTERVAL_S,
            "storms": STORMS,
        },
        "storms": {},
    }
    for name, spec in STORMS.items():
        schedule = storm_schedule(NUM_NODES, NUM_DOMAINS, **spec)
        sim = FleetSimulation(
            NUM_NODES,
            jobs,
            num_domains=NUM_DOMAINS,
            failure_schedule=schedule,
            checkpoint_cost_s=CHECKPOINT_COST_S,
            fixed_interval_s=FIXED_INTERVAL_S,
        )
        out["storms"][name] = {
            pair: {
                "makespan_s": r.makespan,
                "utilization": r.utilization,
                "mean_response_s": r.mean_response,
                "lost_work_node_s": r.lost_work,
                "completed": r.completed,
                "checkpoints": r.checkpoints,
                "reconfigurations": r.reconfigurations,
                "restarts": r.restarts,
                "failures": r.failures,
                "recovery_latency_mean_s": r.recovery_latency_mean_s,
            }
            for pair, r in sim.compare().items()
        }
    return out


def check(payload):
    """The --check gate: every job completes under every policy pair;
    the reconfigurable scheduler keeps its utilization edge under both
    storms; the adaptive cadence beats the fixed one on fleet lost
    work under the sustained storm (for both schedulers) without
    giving up the makespan."""
    for storm, pairs in payload["storms"].items():
        for pair, r in pairs.items():
            assert r["completed"] == NUM_JOBS, (
                f"{storm}/{pair}: only {r['completed']}/{NUM_JOBS} jobs "
                "completed — the fleet wedged"
            )
        for cadence in ("fixed", "adaptive"):
            flex = pairs[f"reconfigurable/{cadence}"]
            rigid = pairs[f"rigid/{cadence}"]
            assert flex["utilization"] > rigid["utilization"], (
                f"{storm}/{cadence}: reconfigurable utilization "
                f"{flex['utilization']:.3f} did not beat rigid "
                f"{rigid['utilization']:.3f}"
            )
    sustained = payload["storms"]["sustained"]
    for sched in ("rigid", "reconfigurable"):
        fixed = sustained[f"{sched}/fixed"]
        adaptive = sustained[f"{sched}/adaptive"]
        assert adaptive["lost_work_node_s"] < fixed["lost_work_node_s"], (
            f"sustained/{sched}: adaptive cadence lost "
            f"{adaptive['lost_work_node_s']:.0f} node-seconds, fixed lost "
            f"{fixed['lost_work_node_s']:.0f} — adaptation did not pay"
        )
        assert adaptive["makespan_s"] <= 1.05 * fixed["makespan_s"], (
            f"sustained/{sched}: the adaptive cadence bought its loss "
            "reduction with a >5% makespan regression"
        )


def test_fleet_policies(benchmark, report):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("BENCH_fleet.json", json.dumps(payload, indent=1))
    check(payload)


def main(argv):
    payload = run_bench()
    text = json.dumps(payload, indent=1)
    from conftest import write_artifact  # benchmarks/conftest.py

    write_artifact("BENCH_fleet.json", text)
    print(text)
    if "--check" in argv:
        try:
            check(payload)
        except AssertionError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        s = payload["storms"]["sustained"]
        print(
            "OK: sustained storm — adaptive cadence lost "
            f"{s['reconfigurable/adaptive']['lost_work_node_s']:.0f} "
            f"node-s vs fixed {s['reconfigurable/fixed']['lost_work_node_s']:.0f}; "
            f"utilization {s['reconfigurable/fixed']['utilization']:.3f} "
            f"(reconfigurable) vs {s['rigid/fixed']['utilization']:.3f} (rigid)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
