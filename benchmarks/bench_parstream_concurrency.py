"""Concurrent parstream benchmark: serial vs cached vs threaded.

Persists ``BENCH_parstream.json``:

* **sweep** — for each piece-size target, wall-clock of the serial
  round-robin executor vs the thread-pool executor over the same
  arrays, with byte-identity asserted on every cell (the differential
  contract that makes the comparison meaningful);
* **combined** — the seed baseline (uncached plans + serial executor,
  i.e. the pre-plancache code path) vs the full stack (warm plan cache
  + concurrent executor), repeated as a periodic checkpointer would.

The hard assertion is on the combined number: caching + concurrency
must not lose to the seed path, and the plan cache must be hitting.
"""

import json
import time

import numpy as np

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import block_distribution
from repro.plancache import NullPlanCache, PlanCache, use_plan_cache
from repro.streaming.parallel import stream_out_parallel
from repro.streaming.serial import stream_out_serial
from repro.streaming.streams import MemorySink

NTASKS = 4
P = 4
SWEEP_TARGETS = (1 << 10, 1 << 13, 1 << 16)
SWEEP_SHAPE = (512, 256)  # 1 MiB of float64
COMBINED_SHAPES = [(512, 256), (256, 384), (1024, 64)]
COMBINED_TARGET = 1 << 10
REPEATS = 3


def _array(shape, name="bench"):
    d = block_distribution(shape, NTASKS)
    a = DistributedArray(name, shape, np.float64, d)
    a.set_global(np.arange(float(np.prod(shape))).reshape(shape))
    return a


def _sweep():
    a = _array(SWEEP_SHAPE)
    rows = []
    for target in SWEEP_TARGETS:
        ref = MemorySink()
        stream_out_serial(a, ref, target_bytes=target)
        want = ref.getvalue()

        cells = {}
        for mode in ("serial", "threads"):
            with use_plan_cache(PlanCache()) as cache:
                stream_out_parallel(  # warm the plan once
                    a, MemorySink(), P=P, target_bytes=target, concurrency=mode
                )
                sink = None
                t0 = time.perf_counter()
                for _ in range(3):
                    sink = MemorySink()
                    st = stream_out_parallel(
                        a, sink, P=P, target_bytes=target, concurrency=mode
                    )
                cells[mode] = time.perf_counter() - t0
                assert sink.getvalue() == want  # byte-identical, every mode
        rows.append(
            {
                "target_bytes": target,
                "pieces": st.pieces,
                "serial_seconds": cells["serial"],
                "threads_seconds": cells["threads"],
                "threads_vs_serial": cells["serial"] / cells["threads"],
            }
        )
    return rows


def _combined():
    arrays = [_array(s, name=f"c{i}") for i, s in enumerate(COMBINED_SHAPES)]

    def run(cache, mode):
        with use_plan_cache(cache):
            t0 = time.perf_counter()
            for _ in range(REPEATS):
                for a in arrays:
                    stream_out_parallel(
                        a, MemorySink(), P=P,
                        target_bytes=COMBINED_TARGET, concurrency=mode,
                    )
            return time.perf_counter() - t0

    seed = run(NullPlanCache(), "serial")  # the pre-plancache code path
    cache = PlanCache()
    run(cache, "threads")  # populate
    stacked = run(cache, "threads")
    return {
        "seed_serial_seconds": seed,
        "cached_threads_seconds": stacked,
        "speedup": seed / stacked,
        "hit_rate": cache.hit_rate,
        "hits": cache.hits,
        "misses": cache.misses,
    }


def test_parstream_concurrency_baseline(benchmark, report):
    sweep, combined = benchmark.pedantic(
        lambda: (_sweep(), _combined()), rounds=1, iterations=1
    )
    payload = {"sweep": sweep, "combined": combined}
    report("BENCH_parstream.json", json.dumps(payload, indent=1))

    assert combined["hit_rate"] > 0.5
    # cached + concurrent must beat the seed (uncached, serial-loop) path
    assert combined["speedup"] > 1.0
    for row in sweep:
        assert row["pieces"] >= P
