"""Ablations of the Section 3.2 streaming design choices.

1. I/O parallelism P: 'parstream can be executed for any value of P up
   to the task count'; serial streaming (P=1) works on sequential
   channels but leaves the parallel file system idle.
2. Piece size m: DRMS picks ~1 MB pieces, balancing per-operation
   overhead (too many small pieces) against parallelism and buffer
   memory (too few large pieces).
3. Parallel streaming needs a seekable target: against the SerialFS
   (socket/tape-like) only serial streaming is legal.

Also times the *real* data path (pytest-benchmark wall clock) on a
small array to keep the streaming engine itself honest.
"""

import numpy as np
import pytest

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import block_distribution
from repro.errors import StreamingError
from repro.pfs.localfs import SerialFS
from repro.pfs.phase import IOKind
from repro.pfs.piofs import PIOFS
from repro.reporting.tables import Table
from repro.streaming.parallel import stream_out_parallel
from repro.streaming.serial import stream_out_serial
from repro.streaming.streams import MemorySink, PFSSink
from repro.runtime.machine import Machine, MachineParams


def timed_write(pes: int, io_tasks: int, nbytes: int, target: int = 1 << 20):
    """Simulated seconds to stream one array of `nbytes` with io_tasks
    writers on a pes-task pool."""
    machine = Machine(MachineParams(num_nodes=16))
    machine.place_tasks(pes)
    pfs = PIOFS(machine=machine)
    side = round((nbytes // 8) ** (1 / 3))
    arr = DistributedArray(
        "u", (side, side, side), np.float64,
        block_distribution((side, side, side), pes), store_data=False,
    )
    sink = PFSSink(pfs, "u", virtual=True)
    pfs.begin_phase(IOKind.WRITE_PARALLEL if io_tasks > 1 else IOKind.WRITE_SERIAL)
    stats = stream_out_parallel(arr, sink, P=io_tasks, target_bytes=target)
    res = pfs.end_phase()
    return res.seconds, stats


def build_p_sweep():
    t = Table(
        ["I/O tasks P", "time (s)", "rate (MB/s)", "pieces"],
        title="Ablation: parallel streaming of one 84 MB array, 16-task pool",
    )
    times = {}
    for P in (1, 2, 4, 8, 16):
        sec, stats = timed_write(16, P, int(84e6))
        times[P] = sec
        t.add_row(P, sec, 84.0 / sec, stats.pieces)
    return t.render(), times


def build_chunk_sweep():
    t = Table(
        ["target piece", "pieces", "time (s)"],
        title="Ablation: piece-size rule (~1 MB in DRMS)",
    )
    times = {}
    for target in (1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24):
        sec, stats = timed_write(16, 16, int(84e6), target=target)
        times[target] = (sec, stats.pieces)
        t.add_row(f"{target >> 10} KB", stats.pieces, sec)
    return t.render(), times


def test_p_sweep(benchmark, report):
    text, times = benchmark(build_p_sweep)
    report("ablation_streaming_p", text)
    # serial streaming is client-injection-bound; parallelism helps
    assert times[16] < times[1]
    # and P=1 must still work (sequential channels)
    assert times[1] > 0


def test_chunk_sweep(benchmark, report):
    text, times = benchmark(build_chunk_sweep)
    report("ablation_streaming_chunk", text)
    # tiny pieces pay per-piece overhead in piece count explosion
    assert times[1 << 16][1] > 64 * times[1 << 24][1] / 8


def test_serial_channel_rejects_parallel(report):
    fs = SerialFS(seekable=False)
    arr = DistributedArray(
        "u", (8, 8), np.float64, block_distribution((8, 8), 4)
    )
    arr.set_global(np.ones((8, 8)))
    with pytest.raises(StreamingError):
        stream_out_parallel(arr, MemorySink(seekable=False), P=4)
    # serial streaming is fine on the same channel
    sink = MemorySink(seekable=False)
    stream_out_serial(arr, sink)
    assert len(sink.getvalue()) == arr.nbytes_global
    report(
        "ablation_serial_channel",
        "Non-seekable sink: parallel streaming rejected, serial streaming OK "
        "(paper: serial streaming works over sockets/tape; parallel needs seek)",
    )


def test_real_data_path_wallclock(benchmark):
    """Wall-clock benchmark of the actual byte-moving engine."""
    g = np.random.default_rng(1).normal(size=(48, 48, 24))
    arr = DistributedArray(
        "u", g.shape, np.float64, block_distribution(g.shape, 8, shadow=(1, 1, 1))
    )
    arr.set_global(g)

    def run():
        sink = MemorySink()
        stream_out_parallel(arr, sink, target_bytes=1 << 16)
        return sink

    sink = benchmark(run)
    assert sink.getvalue() == g.flatten(order="F").tobytes()
