"""Plan-cache benchmark: what memoizing pure plan work buys.

Two measurements, persisted as the machine-readable
``BENCH_plancache.json`` baseline:

* **plan** — the pure planning hot path (transfer schedules between
  distribution pairs + parstream piece plans), repeated as a periodic
  checkpointer would, with caching disabled (:class:`NullPlanCache`)
  vs. a warm :class:`PlanCache`;
* **checkpoint** — end-to-end ``drms_checkpoint`` of the same arrays
  repeated cold vs. warm, the realistic composition of the same
  saving.

Both sections record the cache's own accounting (hit rate, saved
seconds) next to the wall-clock ratio, so the attribution is
cross-checkable: the measured delta should track ``saved_seconds``.
"""

import json
import time

import numpy as np

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import block_distribution
from repro.arrays.slices import Slice
from repro.checkpoint.drms import drms_checkpoint
from repro.checkpoint.segment import DataSegment, ExecutionContext, SegmentProfile
from repro.pfs.piofs import PIOFS
from repro.plancache import (
    NullPlanCache,
    PlanCache,
    streaming_plan,
    transfer_schedule,
    use_plan_cache,
)

SHAPES = [(64, 48), (96, 32), (40, 40, 4), (2048,)]
TASKS = (2, 4, 8)
PLAN_REPEATS = 30
CKPT_REPEATS = 6


def _plan_workload():
    """One periodic-checkpoint round of pure planning: a parstream plan
    per (shape, P) and a redistribution schedule per task-count pair."""
    for shape in SHAPES:
        sec = Slice.full(shape)
        for P in TASKS:
            streaming_plan(sec, 8, target_bytes=2048, min_pieces=P)
        dists = [block_distribution(shape, t) for t in TASKS]
        for src in dists:
            for dst in dists:
                transfer_schedule(src, dst)


def _time_plans(cache) -> float:
    with use_plan_cache(cache):
        t0 = time.perf_counter()
        for _ in range(PLAN_REPEATS):
            _plan_workload()
        return time.perf_counter() - t0


def _arrays():
    out = []
    for i, shape in enumerate(SHAPES):
        d = block_distribution(shape, 4)
        a = DistributedArray(f"a{i}", shape, np.float64, d)
        a.set_global(np.arange(float(np.prod(shape))).reshape(shape))
        out.append(a)
    return out


def _segment():
    return DataSegment(
        SegmentProfile(
            local_section_bytes=1 << 12,
            private_bytes=1 << 10,
            system_bytes=1 << 8,
        ),
        ExecutionContext(iteration=1),
    )


def _time_checkpoints(cache) -> float:
    arrays = _arrays()
    seg = _segment()
    with use_plan_cache(cache):
        t0 = time.perf_counter()
        for k in range(CKPT_REPEATS):
            drms_checkpoint(
                PIOFS(), f"ck{k}", seg, arrays, io_tasks=4,
                target_bytes=2048, app_name="bench",
            )
        return time.perf_counter() - t0


def test_plancache_baseline(benchmark, report):
    def run():
        cold_plan = _time_plans(NullPlanCache())
        warm_cache = PlanCache()
        _time_plans(warm_cache)  # populate
        warm_plan = _time_plans(warm_cache)

        cold_ckpt = _time_checkpoints(NullPlanCache())
        ckpt_cache = PlanCache()
        _time_checkpoints(ckpt_cache)  # populate
        warm_ckpt = _time_checkpoints(ckpt_cache)
        return cold_plan, warm_plan, warm_cache, cold_ckpt, warm_ckpt, ckpt_cache

    cold_plan, warm_plan, warm_cache, cold_ckpt, warm_ckpt, ckpt_cache = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )

    payload = {
        "plan": {
            "cold_seconds": cold_plan,
            "warm_seconds": warm_plan,
            "speedup": cold_plan / warm_plan,
            **{k: v for k, v in warm_cache.stats().items()},
        },
        "checkpoint": {
            "cold_seconds": cold_ckpt,
            "warm_seconds": warm_ckpt,
            "speedup": cold_ckpt / warm_ckpt,
            **{k: v for k, v in ckpt_cache.stats().items()},
        },
    }
    report("BENCH_plancache.json", json.dumps(payload, indent=1))

    # a warm cache must actually hit, and hitting must beat replanning
    assert warm_cache.hit_rate > 0.5
    assert ckpt_cache.hit_rate > 0.0
    assert payload["plan"]["speedup"] > 1.0
    assert warm_cache.saved_seconds > 0.0
