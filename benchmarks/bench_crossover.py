"""The restart crossover, swept and predicted.

Table 5 shows the crossover only at its two sampled points (8 and 16
PEs).  This bench sweeps the full PE range with the simulated engines
and overlays the closed-form predictor of
:mod:`repro.perfmodel.crossover`: where the conventional restart stops
winning, and why (the buffer-memory threshold).
"""

from repro.apps import make_proxy
from repro.perfmodel.crossover import (
    AppProfile,
    crossover_pes,
    threshold_pes,
)
from repro.perfmodel.experiments import measure_checkpoint_restart
from repro.reporting.tables import Table

PE_GRID = (4, 6, 8, 10, 12, 14, 16)


def build_sweep():
    t = Table(
        ["App", "PEs", "DRMS restart (s)", "SPMD restart (s)", "winner"],
        title="Restart crossover sweep (simulated engines, Class A)",
    )
    winners = {}
    for name in ("bt", "lu", "sp"):
        for pes in PE_GRID:
            cell = measure_checkpoint_restart(name, pes)
            d = cell.drms_restart.total_seconds
            s = cell.spmd_restart.total_seconds
            winners[(name, pes)] = "drms" if d < s else "spmd"
            t.add_row(name.upper(), pes, d, s, winners[(name, pes)])
    lines = [t.render(), ""]
    for name in ("bt", "lu", "sp"):
        prof = AppProfile.of(make_proxy(name, "A"))
        lines.append(
            f"{name.upper()}: analytic threshold at {threshold_pes(prof)} PEs, "
            f"predicted crossover at {crossover_pes(prof)} PEs"
        )
    return "\n".join(lines), winners


def test_crossover_sweep(benchmark, report):
    text, winners = benchmark.pedantic(build_sweep, rounds=1, iterations=1)
    report("crossover_sweep", text)
    for name in ("bt", "lu", "sp"):
        xo = crossover_pes(AppProfile.of(make_proxy(name, "A")))
        assert xo is not None
        for pes in PE_GRID:
            expect = "drms" if pes >= xo else "spmd"
            assert winners[(name, pes)] == expect, (name, pes)
