"""Ablation of the Section 6 discussion: checkpoint optimizations.

The paper concedes that Plank-style optimizations (incremental
checkpointing, memory exclusion, compression) "can erase much of the
difference in saved state size observed in Table 3" between the naive
SPMD scheme and DRMS — while arguing that (a) the same optimizations
apply to DRMS and (b) the global-view scheme keeps the shadow-region
advantage and, crucially, reconfigurability.  This bench quantifies all
three claims on BT Class A at 8 PEs:

1. naive SPMD vs exclusion-optimized SPMD vs DRMS state sizes;
2. DRMS incremental deltas vs repeated full DRMS checkpoints (time and
   bytes per checkpoint interval, at several dirty fractions);
3. the floor: even a fully optimized task-based checkpoint still
   carries the shadow overhead r of Section 6.
"""

from repro.apps import make_proxy
from repro.checkpoint.incremental import (
    IncrementalCheckpointer,
    excluded_segment_bytes,
)
from repro.checkpoint.segment import DataSegment
from repro.perfmodel.experiments import build_state
from repro.perfmodel.shadow_ratio import shadow_ratio
from repro.pfs.piofs import PIOFS
from repro.reporting.tables import Table
from repro.runtime.machine import Machine, MachineParams

MB = 1e6
PES = 8


def build_size_comparison():
    import numpy as np

    bt = make_proxy("bt", "A")
    seg = DataSegment(profile=bt.segment_profile())
    naive = bt.spmd_state_bytes(PES)
    # full compiler-based exclusion [13]: private scratch proven clean,
    # message buffers dead, and only the *live* mapped array sections of
    # the actual 8-task distribution saved (not the compile-time pads)
    optimized = sum(
        bt.field_distribution(f, PES).total_local_elements()
        * np.dtype(f.dtype).itemsize
        for f in bt.fields
    )
    drms = bt.drms_state_bytes()["total"]
    t = Table(
        ["scheme", "state (MB)", "reconfigurable?"],
        title=f"BT Class A at {PES} PEs: saved state under checkpoint optimizations",
    )
    t.add_row("SPMD naive (Table 3)", naive / MB, "no")
    t.add_row("SPMD + memory exclusion [13]", optimized / MB, "no")
    t.add_row("DRMS (Table 3)", drms / MB, "yes")
    t.add_row("DRMS arrays only (exclusion applied)", bt.array_bytes_total / MB, "yes")
    return t.render(), naive, optimized, drms, bt


def build_delta_sweep():
    machine = Machine(MachineParams(num_nodes=16))
    machine.place_tasks(PES)
    pfs = PIOFS(machine=machine)
    bt = make_proxy("bt", "A", store_data=False)
    arrays = build_state(bt, PES)
    seg = DataSegment(profile=bt.segment_profile())
    ck = IncrementalCheckpointer(pfs, "inc.bt")
    full_bd = ck.full(seg, arrays)
    t = Table(
        ["checkpoint", "bytes (MB)", "simulated s", "vs full"],
        title="BT Class A: incremental DRMS deltas vs full checkpoints",
    )
    t.add_row("full (base)", full_bd.total_bytes / MB, full_bd.total_seconds, "1.00x")
    results = {}
    for frac in (0.05, 0.25, 0.50, 1.00):
        for a in arrays:
            ck.declare_dirty(a.name, frac)
        bd = ck.incremental(seg, arrays)
        results[frac] = bd
        t.add_row(
            f"delta ({frac:.0%} dirty)",
            bd.total_bytes / MB,
            bd.total_seconds,
            f"{bd.total_seconds / full_bd.total_seconds:.2f}x",
        )
    return t.render(), full_bd, results


def test_exclusion_erases_size_gap(benchmark, report):
    text, naive, optimized, drms, bt = benchmark(build_size_comparison)
    report("ablation_exclusion_sizes", text)
    # "can erase much of the difference in saved state size"
    assert optimized < 0.5 * naive
    # but the shadow floor remains: optimized task-based state still
    # exceeds the global-view arrays by ~r
    r = shadow_ratio(64 / 2, s=2, d=3)  # BT A on 8 tasks: n = 32 per axis pair
    assert optimized > bt.array_bytes_total
    assert optimized / bt.array_bytes_total < r + 0.15


def test_incremental_deltas_scale_with_dirtiness(benchmark, report):
    text, full_bd, results = benchmark.pedantic(build_delta_sweep, rounds=1, iterations=1)
    report("ablation_incremental_deltas", text)
    times = [results[f].total_seconds for f in (0.05, 0.25, 0.50, 1.00)]
    assert times == sorted(times)
    # a 5%-dirty delta is at least 5x cheaper than a full checkpoint
    assert results[0.05].total_seconds < full_bd.total_seconds / 5
    # a 100%-dirty delta costs about a full checkpoint's array phase
    assert results[1.00].arrays_bytes == full_bd.arrays_bytes
