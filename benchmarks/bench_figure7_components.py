"""Figure 7 — stacked component bars for DRMS checkpoint ('C') and
restart ('R'), grouped by partition size.

ASCII rendition of the paper's stacked columns: data-segment transfer,
distributed-array transfer, and the restart-only 'other' band.  The
figure's visible story — restart bars shrink sharply from 8 to 16
processors — must hold.
"""

from repro.perfmodel.reportgen import figure7


def test_figure7(benchmark, report):
    chart, cells = benchmark.pedantic(figure7, rounds=2, iterations=1)
    report("figure7_components", chart)
    for name in ("bt", "lu", "sp"):
        r8 = cells[(name, 8)].drms_restart.total_seconds
        r16 = cells[(name, 16)].drms_restart.total_seconds
        # "the significant reduction in the restart time ... on 16
        # processors as compared to ... 8 processors"
        assert r16 < 0.92 * r8
        # restart has a visible non-I/O band; checkpoint does not
        assert cells[(name, 8)].drms_restart.other_seconds > 0
