"""Reference [19] (Wong & Franklin) — checkpointing with vs without
load redistribution, the analytic backing for reconfigurable recovery.

Sweeps the processor count and reports expected degradation with the
optimal checkpoint interval: without redistribution the run must wait
out each node repair and becomes unusable at scale; with redistribution
(what DRMS restart provides) degradation stays negligible while the
checkpoint/restart overheads are small — the paper's §7/§8 citation.
"""

import math

from repro.perfmodel.wong_franklin import WongFranklinModel
from repro.reporting.tables import Table

MTBF_NODE_S = 30 * 24 * 3600.0  # one failure per node-month
REPAIR_S = 4 * 3600.0


def build_sweep():
    t = Table(
        ["procs", "tau* (s)", "degradation w/ redistribution",
         "degradation w/o redistribution"],
        title="Wong-Franklin model: recovery with vs without load redistribution",
    )
    rows = {}
    for procs in (16, 64, 256, 1024, 4096):
        m = WongFranklinModel(
            procs=procs,
            lam=1.0 / MTBF_NODE_S,
            checkpoint_overhead_s=16.0,   # BT's DRMS checkpoint time
            restart_overhead_s=42.0,      # BT's DRMS restart time
            repair_time_s=REPAIR_S,
        )
        tau = m.optimal_interval()
        with_r = m.degradation(tau, True)
        without = m.degradation(tau, False)
        rows[procs] = (with_r, without)
        t.add_row(
            procs, f"{tau:.0f}", f"{with_r:.3f}",
            "unbounded" if without == math.inf else f"{without:.3f}",
        )
    return t.render(), rows


def build_overhead_sensitivity():
    t = Table(
        ["checkpoint overhead C (s)", "degradation w/ redistribution @1024"],
        title="Sensitivity: degradation stays negligible iff overheads are small",
    )
    rows = {}
    for C in (4.0, 16.0, 64.0, 256.0, 1024.0):
        m = WongFranklinModel(
            procs=1024, lam=1.0 / MTBF_NODE_S,
            checkpoint_overhead_s=C, restart_overhead_s=2 * C,
            repair_time_s=REPAIR_S,
        )
        d = m.degradation(m.optimal_interval(), True)
        rows[C] = d
        t.add_row(f"{C:.0f}", f"{d:.3f}")
    return t.render(), rows


def test_redistribution_sweep(benchmark, report):
    text, rows = benchmark(build_sweep)
    report("wong_franklin_sweep", text)
    # with redistribution: negligible degradation even at 4096 procs
    assert rows[4096][0] < 1.5
    assert rows[1024][0] < 1.2
    # without: monotonically worse, unusable at scale
    finite = [v for _, v in (rows[p] for p in (16, 64, 256, 1024, 4096)) if v != math.inf]
    assert finite == sorted(finite)
    assert rows[4096][1] == math.inf or rows[4096][1] > 3.0


def test_overhead_sensitivity(benchmark, report):
    text, rows = benchmark(build_overhead_sensitivity)
    report("wong_franklin_overheads", text)
    degs = [rows[c] for c in sorted(rows)]
    assert degs == sorted(degs)  # larger overheads, larger degradation
    assert degs[0] < 1.1
