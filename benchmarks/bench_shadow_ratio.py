"""Section 6 analysis — global-view vs task-based saved state.

Sweeps r = ((n+2s)/n)^d and reproduces the worked example: CFD values
(n = 32, d = 3) give r ≈ 1.4, and NPB BT Class C on 125 processors
means ~500 MB less data for global-view (DRMS) checkpointing.  Also
cross-checks the analytic ratio against real block distributions.
"""

from repro.arrays.distributions import block_distribution
from repro.perfmodel.shadow_ratio import (
    extra_task_based_bytes,
    shadow_ratio,
    shadow_ratio_for_grid,
)
from repro.reporting.tables import Table


def build_report():
    t = Table(
        ["N (grid)", "P (tasks)", "n=N/p", "s", "r analytic", "r measured"],
        title="Section 6: task-based over global-view grid points, r=((n+2s)/n)^3",
    )
    rows = []
    for N, P, s in [(64, 8, 1), (64, 8, 2), (102, 27, 2), (162, 125, 2), (162, 216, 2)]:
        p = round(P ** (1 / 3))
        analytic = shadow_ratio_for_grid(N, P, s=s)
        if N <= 102:  # keep the measured cross-check cheap
            d = block_distribution((N, N, N), P, shadow=(s, s, s))
            measured = d.total_local_elements() / d.global_elements()
            mtxt = f"{measured:.3f}"
        else:
            mtxt = "-"
        t.add_row(N, P, f"{N / p:.1f}", s, f"{analytic:.3f}", mtxt)
        rows.append((N, P, s, analytic))
    extra = extra_task_based_bytes(162, 125, s=2, d=3, bytes_per_point=320)
    lines = [
        t.render(),
        "",
        f"Paper's worked example: n=32, d=3 -> r = {shadow_ratio(32.4, 2, 3):.2f} "
        "(paper: 1.38; the shadow width is garbled in the source text)",
        f"BT Class C (162^3, 320 B/point) on 125 procs: task-based saves "
        f"{extra / 1e6:.0f} MB more than global-view (paper: ~500 MB)",
    ]
    return "\n".join(lines), rows, extra


def test_shadow_ratio(benchmark, report):
    text, rows, extra = benchmark(build_report)
    report("section6_shadow_ratio", text)
    assert 400e6 < extra < 620e6  # the ~500 MB claim
    # r grows with P at fixed N (paper's closing remark)
    r125 = shadow_ratio_for_grid(162, 125, s=2)
    r216 = shadow_ratio_for_grid(162, 216, s=2)
    assert r216 > r125 > 1.0
