"""The Section 8 future-work quantification: scheduler flexibility.

"The DRMS approach of restarting applications after reconfiguration is
again advantageous ... primarily because of the flexibility offered to
the scheduler by our approach.  In a future publication, we hope to
quantify these results."

This bench quantifies them: the same FCFS job stream is scheduled on a
16-node machine under the rigid (conventional checkpointing; jobs run
at exactly their requested size) and the reconfigurable (DRMS;
equipartition with checkpoint+reconfigured-restart resizes) policies.
The reconfiguration cost is BT's measured DRMS checkpoint+restart time.
"""

import numpy as np

from repro.infra.study import JobSpec, SchedulingStudy
from repro.reporting.tables import Table

#: BT Class A at 8 PEs: ~16 s checkpoint + ~45 s restart
RECONFIG_COST_S = 61.0


def make_workload(seed: int = 11, njobs: int = 12):
    """A mixed stream: a few wide long jobs plus many narrow short
    ones, Poisson-ish arrivals — the contended shared-machine scenario
    of the paper's Section 8."""
    rng = np.random.default_rng(seed)
    jobs = []
    t = 0.0
    for i in range(njobs):
        if i % 4 == 0:
            spec = JobSpec(
                f"wide{i}", work=float(rng.integers(8_000, 20_000)),
                max_tasks=16, min_tasks=4, arrival=t,
            )
        else:
            spec = JobSpec(
                f"narrow{i}", work=float(rng.integers(400, 2_400)),
                max_tasks=int(rng.integers(2, 6)), min_tasks=1, arrival=t,
            )
        jobs.append(spec)
        t += float(rng.exponential(220.0))
    return jobs


def build_comparison():
    study = SchedulingStudy(16, make_workload(), reconfig_cost_s=RECONFIG_COST_S)
    results = study.compare()
    t = Table(
        ["policy", "makespan (s)", "mean response (s)", "utilization", "reconfigs"],
        title="Section 8 quantified: rigid vs reconfigurable scheduling, 16 nodes",
    )
    for policy in ("rigid", "reconfigurable"):
        t.add_row(*results[policy].row())
    return t.render(), results


def build_cost_sensitivity():
    t = Table(
        ["reconfig cost (s)", "mean response (s)", "reconfigs"],
        title="Sensitivity: the benefit survives realistic checkpoint costs",
    )
    rows = {}
    for cost in (1.0, 61.0, 300.0, 1200.0):
        r = SchedulingStudy(16, make_workload(), reconfig_cost_s=cost).run(
            "reconfigurable"
        )
        rows[cost] = r
        t.add_row(f"{cost:.0f}", f"{r.mean_response:.0f}", r.reconfigurations)
    return t.render(), rows


def test_flexibility_benefit(benchmark, report):
    text, results = benchmark(build_comparison)
    report("scheduler_flexibility", text)
    rigid, flex = results["rigid"], results["reconfigurable"]
    # the paper's claim: flexibility helps the scheduler
    assert flex.mean_response < 0.8 * rigid.mean_response
    assert flex.makespan <= rigid.makespan * 1.02
    assert flex.reconfigurations > 0
    # both policies complete the same jobs
    assert set(flex.completions) == set(rigid.completions)


def test_cost_sensitivity(benchmark, report):
    text, rows = benchmark(build_cost_sensitivity)
    report("scheduler_flexibility_cost", text)
    costs = sorted(rows)
    responses = [rows[c].mean_response for c in costs]
    # pricier reconfigurations cannot make responses better
    assert responses[0] <= responses[-1] * 1.01
    # even at BT's real cost the policy still beats rigid
    rigid = SchedulingStudy(16, make_workload(), reconfig_cost_s=61.0).run("rigid")
    assert rows[61.0].mean_response < rigid.mean_response
