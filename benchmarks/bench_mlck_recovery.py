"""Multi-level recovery benchmark: what the in-memory L1 tier buys.

Persists the machine-readable ``BENCH_mlck.json`` baseline with, per
task count, the *simulated* (machine-model clock) costs of:

* **capture** — the application-blocking L1 capture (memory copy +
  switch replication) vs. the direct PFS checkpoint it replaces;
* **restart** — restoring the same generation from surviving L1
  replicas vs. reading it back from the PFS (both paths pay the fixed
  restart initialization — program text loads from the PFS either
  way).

The headline claims asserted here are the tentpole's motivation: on
the simulated RS/6000 SP (35 MB/s switch, 400 MB/s memory copies,
sub-MB/s per-client PFS array reads), the L1 restart is faster than
the PFS restart and the L1 capture blocks the application for less
simulated time than the direct PFS checkpoint, at every measured task
count.
"""

import json

import numpy as np

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import block_distribution
from repro.checkpoint.drms import drms_checkpoint, drms_restart
from repro.checkpoint.segment import DataSegment, ExecutionContext, SegmentProfile
from repro.mlck.checkpointer import MultiLevelCheckpointer
from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine, MachineParams

SHAPE = (256, 256)  # 512 KB of float64 per array
NARRAYS = 2
TASKS = (2, 4, 8)
NUM_NODES = 8


def _arrays(ntasks: int):
    out = []
    for i in range(NARRAYS):
        d = block_distribution(SHAPE, ntasks)
        a = DistributedArray(f"a{i}", SHAPE, np.float64, d)
        a.set_global(
            np.arange(float(np.prod(SHAPE))).reshape(SHAPE) + i
        )
        out.append(a)
    return out


def _segment():
    return DataSegment(
        SegmentProfile(
            local_section_bytes=1 << 12,
            private_bytes=1 << 10,
            system_bytes=1 << 8,
        ),
        ExecutionContext(iteration=1),
    )


def _measure(ntasks: int) -> dict:
    machine = Machine(MachineParams(num_nodes=NUM_NODES))
    pfs = PIOFS(machine=machine)
    arrays = _arrays(ntasks)
    segment = _segment()

    # the two-tier path: blocking L1 capture, synchronous drain so the
    # durable copy exists before the restart comparison
    ck = MultiLevelCheckpointer(
        pfs, "mlck.ck", machine=machine, drain="sync", app_name="bench"
    )
    mbd = ck.checkpoint(segment, arrays)
    state, l1_bd, decision = ck.restart(ntasks)
    assert decision.tier == "l1", decision

    # the direct single-tier path on a fresh PFS (same machine model)
    pfs2 = PIOFS(machine=Machine(MachineParams(num_nodes=NUM_NODES)))
    pfs_ck_bd = drms_checkpoint(
        pfs2, "direct.ck", segment, arrays, app_name="bench"
    )
    _, pfs_rs_bd = drms_restart(pfs2, "direct.ck", ntasks)

    return {
        "ntasks": ntasks,
        "state_bytes": l1_bd.total_bytes,
        "capture_blocking_s": mbd.blocking_seconds,
        "pfs_checkpoint_s": pfs_ck_bd.total_seconds,
        "l1_restart_s": l1_bd.total_seconds,
        "pfs_restart_s": pfs_rs_bd.total_seconds,
        "checkpoint_speedup": pfs_ck_bd.total_seconds / mbd.blocking_seconds,
        "restart_speedup": pfs_rs_bd.total_seconds / l1_bd.total_seconds,
    }


def test_mlck_recovery_baseline(benchmark, report):
    runs = benchmark.pedantic(
        lambda: [_measure(n) for n in TASKS], rounds=1, iterations=1
    )
    payload = {
        "machine": {
            "num_nodes": NUM_NODES,
            "shape": list(SHAPE),
            "narrays": NARRAYS,
        },
        "runs": runs,
    }
    report("BENCH_mlck.json", json.dumps(payload, indent=1))

    for run in runs:
        # memory+switch recovery must beat the PFS read-back...
        assert run["l1_restart_s"] < run["pfs_restart_s"], run
        # ...and the L1 capture must block the application for less
        # simulated time than the direct PFS checkpoint
        assert run["capture_blocking_s"] < run["pfs_checkpoint_s"], run
        assert run["restart_speedup"] > 1.0
