PYTHON ?= python

.PHONY: install test verify-checkpoints bench report trace obs-report examples all clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

verify-checkpoints:
	PYTHONPATH=src $(PYTHON) -m pytest -m crash_consistency tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

report:
	$(PYTHON) -m repro.tools.report --out benchmarks/out

# one traced checkpoint/restart lifecycle: Chrome trace (load trace_out/
# trace.json at https://ui.perfetto.dev), metrics dump, phase breakdown
trace:
	PYTHONPATH=src $(PYTHON) -m repro.tools.trace --out trace_out

# the full paper report plus the traced-lifecycle artifacts
obs-report:
	PYTHONPATH=src $(PYTHON) -m repro.tools.report --out benchmarks/out --trace trace_out

examples:
	@for s in examples/*.py; do echo "== $$s"; $(PYTHON) $$s || exit 1; done

all: test bench examples

clean:
	rm -rf benchmarks/out trace_out .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
