PYTHON ?= python

.PHONY: install test verify-checkpoints bench report examples all clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

verify-checkpoints:
	PYTHONPATH=src $(PYTHON) -m pytest -m crash_consistency tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

report:
	$(PYTHON) -m repro.tools.report --out benchmarks/out

examples:
	@for s in examples/*.py; do echo "== $$s"; $(PYTHON) $$s || exit 1; done

all: test bench examples

clean:
	rm -rf benchmarks/out .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
