PYTHON ?= python

.PHONY: install test verify-checkpoints verify-mlck verify-localized verify-policy verify-workflow verify-reconfig verify-reconfig-deep bench bench-baseline bench-stream bench-obs bench-localized bench-workflow bench-fleet report trace obs-report forensics-demo examples all clean

# fixed seed so the gate is fully deterministic; DEEP_SEED rotates daily
VERIFY_SEED ?= 20260806
DEEP_SEED ?= $(shell date +%Y%m%d)

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

verify-checkpoints:
	PYTHONPATH=src $(PYTHON) -m pytest -m "crash_consistency or mlck or flight or localized or policy or workflow" tests/

# the cadence-policy gate: the rule/engine unit suite plus the
# context-integration scenarios (policy-marked tests)
verify-policy:
	PYTHONPATH=src $(PYTHON) -m pytest -m policy tests/

# the multi-level store gate: the canonical node-loss and
# mid-drain-crash schedules, a seeded batch of random memory+pfs fault
# cases, and the mlck-marked scenario tests
verify-mlck:
	PYTHONPATH=src $(PYTHON) -m repro.verify mlck --seed $(VERIFY_SEED) \
		--cases 40 --out verify_out
	PYTHONPATH=src $(PYTHON) -m pytest -m mlck tests/

# the localized-recovery equivalence gate: the canonical happy-path and
# PFS-fallback schedules plus a seeded sweep, each schedule run through
# BOTH the localized and the full recovery path (state must come out
# byte-identical), and the localized-marked scenario tests
verify-localized:
	PYTHONPATH=src $(PYTHON) -m repro.verify localized --seed $(VERIFY_SEED) \
		--cases 40 --out verify_out
	PYTHONPATH=src $(PYTHON) -m pytest -m localized tests/

# the coupled-workflow gate: the canonical torn-line and lost-member
# schedules, a seeded batch of random ring-coupled ensemble cases
# (torn lines rejected as units, byte-identical mixed-task-count
# restarts), and the workflow-marked scenario tests
verify-workflow:
	PYTHONPATH=src $(PYTHON) -m repro.verify workflow --seed $(VERIFY_SEED) \
		--cases 40 --out verify_out
	PYTHONPATH=src $(PYTHON) -m pytest -m workflow tests/

# the differential reconfiguration harness (DESIGN.md section 10):
# 220 seeded (t1,p1)->(t2,p2) cases across all three engines plus 40
# fault-schedule recovery cases, the known-bad shrinker demo, and the
# property/corpus tests
verify-reconfig:
	PYTHONPATH=src $(PYTHON) -m repro.verify run --seed $(VERIFY_SEED) \
		--cases 220 --fault-cases 40 --out verify_out
	PYTHONPATH=src $(PYTHON) -m repro.verify known-bad
	PYTHONPATH=src $(PYTHON) -m pytest -m "verify or streamvec" tests/

# fresh seed every day, 10x the case volume; failures shrink to
# replayable JSON reproducers under verify_out/
verify-reconfig-deep:
	PYTHONPATH=src $(PYTHON) -m repro.verify run --seed $(DEEP_SEED) \
		--cases 2000 --fault-cases 400 --out verify_out

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# the performance baselines: writes benchmarks/out/BENCH_plancache.json,
# BENCH_parstream.json, and BENCH_mlck.json
bench-baseline:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_plancache.py \
		benchmarks/bench_parstream_concurrency.py \
		benchmarks/bench_mlck_recovery.py --benchmark-only -s

# the vectorized-streaming gate: regenerates BENCH_stream_vec.json and
# fails if the coalesced thread engine loses to the bulk serial loop
# (threads_vs_serial <= 1.0) or any engine's bytes diverge from the
# scalar baseline
bench-stream:
	PYTHONPATH=src:benchmarks $(PYTHON) benchmarks/bench_stream_vectorized.py --check

# the observability-overhead gate: regenerates BENCH_obs_overhead.json
# and fails if the always-on flight recorder costs more than 5% over
# the everything-off baseline
bench-obs:
	PYTHONPATH=src:benchmarks $(PYTHON) benchmarks/bench_obs_overhead.py --check

# the localized-recovery gate: regenerates BENCH_localized.json and
# fails if localized recovery does not beat a full restart on the
# L1-served happy path
bench-localized:
	PYTHONPATH=src:benchmarks $(PYTHON) benchmarks/bench_localized_recovery.py --check

# the workflow gate: regenerates BENCH_workflow.json and fails if
# coordination costs an unbounded premium over independent members,
# a torn workflow line is not rejected as a unit, or the
# mixed-task-count ensemble restart diverges
bench-workflow:
	PYTHONPATH=src:benchmarks $(PYTHON) benchmarks/bench_workflow.py --check

# the fleet-policy gate: regenerates BENCH_fleet.json and fails if the
# adaptive cadence does not beat the fixed one on lost work under the
# sustained storm, or the reconfigurable scheduler loses its
# utilization edge over the rigid one
bench-fleet:
	PYTHONPATH=src:benchmarks $(PYTHON) benchmarks/bench_fleet_policies.py --check

report:
	$(PYTHON) -m repro.tools.report --out benchmarks/out

# one traced checkpoint/restart lifecycle: Chrome trace (load trace_out/
# trace.json at https://ui.perfetto.dev), metrics dump, phase breakdown
trace:
	PYTHONPATH=src $(PYTHON) -m repro.tools.trace --out trace_out

# the full paper report plus the traced-lifecycle artifacts
obs-report:
	PYTHONPATH=src $(PYTHON) -m repro.tools.report --out benchmarks/out --trace trace_out

# kill a node mid-run and write the full forensic record (incident
# dump, black box, OpenMetrics health) under forensics_out/
forensics-demo:
	PYTHONPATH=src $(PYTHON) -m repro.tools.forensics dump --out forensics_out

examples:
	@for s in examples/*.py; do echo "== $$s"; $(PYTHON) $$s || exit 1; done

all: test bench examples

clean:
	rm -rf benchmarks/out trace_out verify_out forensics_out .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
