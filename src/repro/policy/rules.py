"""Cadence rules: when is a checkpoint due?

Each rule answers :meth:`due` over an :class:`Observation` (what the
caller knows right now) and a per-run ``state`` dict (what the rule
remembered from earlier calls in *this* run).  Rules never mutate state
in :meth:`due`; the engine calls :meth:`consume` exactly once per taken
checkpoint, so a throttled or losing rule stays due and fires at the
next opportunity.

Cadence (fire) rules — any one being due proposes a checkpoint:

* :class:`IterationRule` — over the SOQ iteration counter
  (``every``/``start``/``stop`` or an explicit ``at`` list);
* :class:`SimulatedTimeRule` — over the application's simulated clock,
  muscle3's ``simulation_time: every/at``;
* :class:`WallclockRule` — over real elapsed wallclock seconds,
  muscle3's ``wallclock_time: every/at`` (clock injectable for tests);
* :class:`AtEndRule` — once, at the SOP the caller marks ``final``;
* :class:`YoungDalyRule` — adaptive: the Young/Daly optimal interval
  ``sqrt(2 * C * MTBF)`` from the observed checkpoint cost ``C`` and
  the observed mean time between failures.

Throttle (veto) rules — any one being active suppresses the proposal:

* :class:`DrainBacklogRule` — reads ``health.drain.backlog`` from a
  :class:`~repro.obs.health.HealthRegistry`: while the L1→PFS drain
  pipeline is this far behind, piling on more checkpoints only grows
  the backlog; the veto lifts (and due rules fire) once it drains.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

__all__ = [
    "Observation",
    "IterationRule",
    "SimulatedTimeRule",
    "WallclockRule",
    "AtEndRule",
    "YoungDalyRule",
    "DrainBacklogRule",
    "young_daly_interval",
]


@dataclass(frozen=True)
class Observation:
    """What the caller knows at one cadence decision point."""

    #: the SOQ loop counter at this SOP
    iteration: int = 0
    #: the application's simulated clock, seconds
    sim_time: float = 0.0
    #: True at the SOP the caller knows to be the run's last
    final: bool = False
    #: optional :class:`~repro.obs.health.HealthRegistry` (throttle
    #: rules read fleet gauges from it)
    health: Optional[Any] = None
    #: optional externally estimated mean time between failures for
    #: this job, seconds (adaptive rules prefer it over their default)
    mtbf_s: Optional[float] = None


def young_daly_interval(checkpoint_cost_s: float, mtbf_s: float) -> float:
    """The Young/Daly first-order optimal checkpoint interval
    ``sqrt(2 * C * MTBF)``, floored at the checkpoint cost itself (an
    interval shorter than one checkpoint write is unserviceable)."""
    if checkpoint_cost_s < 0 or mtbf_s <= 0:
        raise ValueError(
            f"young_daly_interval needs cost >= 0 and mtbf > 0, got "
            f"cost={checkpoint_cost_s}, mtbf={mtbf_s}"
        )
    return max(checkpoint_cost_s, math.sqrt(2.0 * checkpoint_cost_s * mtbf_s))


class _Schedule:
    """The muscle3-style point schedule shared by the range rules:
    ``every`` from ``start`` up to ``stop``, unioned with an explicit
    ``at`` list.  :meth:`next_at_or_after` enumerates it lazily."""

    def __init__(
        self,
        every: Optional[float] = None,
        start: float = 0.0,
        stop: Optional[float] = None,
        at: Sequence[float] = (),
    ):
        if every is not None and every <= 0:
            raise ValueError(f"every must be positive, got {every}")
        if stop is not None and every is not None and stop < start:
            raise ValueError(f"empty schedule: stop {stop} < start {start}")
        self.every = every
        self.start = start
        self.stop = stop
        self.at = tuple(sorted(float(a) for a in at))

    def next_at_or_after(self, value: float) -> Optional[float]:
        """The smallest scheduled point ``>= value``, or None when the
        schedule is exhausted past ``value``."""
        candidates = []
        if self.every is not None:
            if value <= self.start:
                nxt = self.start
            else:
                steps = math.ceil((value - self.start) / self.every)
                nxt = self.start + steps * self.every
                # float round-off may land just below value
                if nxt < value:
                    nxt += self.every
            if self.stop is None or nxt <= self.stop:
                candidates.append(nxt)
        for a in self.at:
            if a >= value:
                candidates.append(a)
                break
        return min(candidates) if candidates else None


class _RangeRule:
    """Shared machinery of the three schedule-over-a-counter rules:
    subclasses say which Observation field is the counter."""

    #: short name used in metrics and Decision records (subclasses set)
    kind: str = "range"

    def __init__(
        self,
        every: Optional[float] = None,
        start: float = 0.0,
        stop: Optional[float] = None,
        at: Sequence[float] = (),
    ):
        if every is None and not at:
            raise ValueError(
                f"{type(self).__name__} needs every= and/or at= points"
            )
        self.schedule = _Schedule(every=every, start=start, stop=stop, at=at)

    def _value(self, obs: Observation) -> float:
        raise NotImplementedError

    def _key(self) -> str:
        return f"{self.kind}.{id(self)}.next_due"

    def due(self, obs: Observation, state: Dict[str, Any]) -> bool:
        """True when the counter has reached the next scheduled point."""
        value = self._value(obs)
        key = self._key()
        if key not in state:
            nxt = self.schedule.next_at_or_after(value)
            state[key] = nxt if nxt is not None else math.inf
        return value >= state[key]

    def consume(self, obs: Observation, state: Dict[str, Any]) -> None:
        """A checkpoint was taken at this point: advance past it."""
        value = self._value(obs)
        nxt = self.schedule.next_at_or_after(math.nextafter(value, math.inf))
        state[self._key()] = nxt if nxt is not None else math.inf


class IterationRule(_RangeRule):
    """Checkpoint on a schedule over the SOQ iteration counter.

    ``IterationRule(every=10, start=1)`` reproduces the paper's Fig. 1
    cadence (iterations 1, 11, 21, ...) — and, unlike the hardcoded
    ``it % every == 1`` test it replaces, ``every=1`` correctly fires
    at *every* iteration (``it % 1`` is always 0, never 1)."""

    kind = "iteration"

    def _value(self, obs: Observation) -> float:
        return float(obs.iteration)


class SimulatedTimeRule(_RangeRule):
    """Checkpoint on a schedule over the simulated clock (muscle3's
    ``simulation_time: every/start/stop`` and ``at``)."""

    kind = "simulated_time"

    def _value(self, obs: Observation) -> float:
        return obs.sim_time


class WallclockRule(_RangeRule):
    """Checkpoint on a schedule over *real* elapsed wallclock seconds
    since the rule's first evaluation in this run (muscle3's
    ``wallclock_time: every/at``).  ``clock`` is injectable so tests
    stay deterministic."""

    kind = "wallclock"

    def __init__(
        self,
        every: Optional[float] = None,
        start: float = 0.0,
        stop: Optional[float] = None,
        at: Sequence[float] = (),
        clock: Callable[[], float] = time.monotonic,
    ):
        super().__init__(every=every, start=start, stop=stop, at=at)
        self.clock = clock

    def _value(self, obs: Observation) -> float:
        return self.clock()

    def due(self, obs: Observation, state: Dict[str, Any]) -> bool:
        """True when elapsed wallclock reached the next scheduled point
        (elapsed is measured from the rule's first call this run)."""
        base = state.setdefault(f"{self.kind}.{id(self)}.base", self.clock())
        key = self._key()
        elapsed = self.clock() - base
        if key not in state:
            nxt = self.schedule.next_at_or_after(elapsed)
            state[key] = nxt if nxt is not None else math.inf
        return elapsed >= state[key]

    def consume(self, obs: Observation, state: Dict[str, Any]) -> None:
        """Advance past the elapsed-wallclock point just serviced."""
        base = state.setdefault(f"{self.kind}.{id(self)}.base", self.clock())
        elapsed = self.clock() - base
        nxt = self.schedule.next_at_or_after(math.nextafter(elapsed, math.inf))
        state[self._key()] = nxt if nxt is not None else math.inf


class AtEndRule:
    """Checkpoint once at the SOP the caller marks ``final=True``
    (muscle3's ``at_end``) — the state survives even when no periodic
    rule happened to land on the last iteration."""

    kind = "at_end"

    def due(self, obs: Observation, state: Dict[str, Any]) -> bool:
        """Due at the final SOP, unless already serviced this run."""
        return obs.final and not state.get(f"{self.kind}.{id(self)}.done")

    def consume(self, obs: Observation, state: Dict[str, Any]) -> None:
        """The end-of-run checkpoint was taken; never fire again."""
        state[f"{self.kind}.{id(self)}.done"] = True


class YoungDalyRule:
    """Adaptive cadence: checkpoint every ``sqrt(2 * C * MTBF)``
    simulated seconds (Young/Daly's first-order optimum).

    ``C`` starts at ``checkpoint_cost_s`` and tracks the observed cost
    of taken checkpoints (EWMA fed by the engine's
    :meth:`~repro.policy.engine.CheckpointPolicy.observe_cost`).  MTBF
    comes from ``Observation.mtbf_s`` when the caller estimates failure
    rates (the fleet study does), else from ``mtbf_s`` given here; with
    neither, the rule is inert.
    """

    kind = "young_daly"

    def __init__(
        self,
        checkpoint_cost_s: float = 30.0,
        mtbf_s: Optional[float] = None,
        cost_smoothing: float = 0.5,
    ):
        if checkpoint_cost_s < 0:
            raise ValueError(f"negative checkpoint cost {checkpoint_cost_s}")
        if not 0.0 < cost_smoothing <= 1.0:
            raise ValueError(f"cost_smoothing {cost_smoothing} outside (0, 1]")
        self.checkpoint_cost_s = float(checkpoint_cost_s)
        self.mtbf_s = mtbf_s
        self.cost_smoothing = float(cost_smoothing)

    def _cost(self, state: Dict[str, Any]) -> float:
        return state.get("young_daly.cost_s", self.checkpoint_cost_s)

    def interval(self, obs: Observation, state: Dict[str, Any]) -> Optional[float]:
        """The current adaptive interval, or None when no MTBF source
        is available."""
        mtbf = obs.mtbf_s if obs.mtbf_s is not None else self.mtbf_s
        if mtbf is None or mtbf <= 0:
            return None
        return young_daly_interval(self._cost(state), mtbf)

    def due(self, obs: Observation, state: Dict[str, Any]) -> bool:
        """True when the adaptive interval has elapsed on the simulated
        clock since the last checkpoint this rule drove."""
        interval = self.interval(obs, state)
        if interval is None:
            return False
        last = state.setdefault("young_daly.last_fire", obs.sim_time)
        return obs.sim_time - last >= interval

    def consume(self, obs: Observation, state: Dict[str, Any]) -> None:
        """Re-anchor the interval at the checkpoint just taken."""
        state["young_daly.last_fire"] = obs.sim_time

    def observe_cost(self, state: Dict[str, Any], seconds: float) -> None:
        """Fold one observed checkpoint cost into the EWMA ``C``."""
        prev = self._cost(state)
        a = self.cost_smoothing
        state["young_daly.cost_s"] = a * float(seconds) + (1.0 - a) * prev


class DrainBacklogRule:
    """Throttle: veto checkpoints while the L1→PFS drain backlog
    (``health.drain.backlog`` in a
    :class:`~repro.obs.health.HealthRegistry`) exceeds ``max_backlog``.
    The registry can be bound here or arrive per-decision on
    ``Observation.health``; with neither, the rule never vetoes."""

    kind = "drain_backlog"

    def __init__(self, max_backlog: int = 2, health: Optional[Any] = None):
        if max_backlog < 0:
            raise ValueError(f"negative max_backlog {max_backlog}")
        self.max_backlog = int(max_backlog)
        self.health = health

    def backlog(self, obs: Observation) -> float:
        """The current drain backlog gauge, 0 when unknown."""
        registry = self.health if self.health is not None else obs.health
        if registry is None:
            return 0.0
        return registry.metrics.gauge("health.drain.backlog").value

    def veto(self, obs: Observation, state: Dict[str, Any]) -> bool:
        """True while the backlog is above the threshold."""
        return self.backlog(obs) > self.max_backlog
