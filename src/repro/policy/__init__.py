"""Declarative checkpoint-cadence policies (the ROADMAP's cadence item).

The paper's applications hardcode their SOP cadence (``it %
checkpoint_every == 1`` in Fig. 1); muscle3 and OpenCHK argue cadence
belongs to the runtime, specified declaratively.  This package is that
runtime: rules over iteration count, simulated time, wallclock time,
and ``at_end`` — plus *adaptive* rules (Young/Daly intervals derived
from observed failure rates, drain-backlog throttling read from the
fleet :class:`~repro.obs.health.HealthRegistry`) — combined by a
:class:`CheckpointPolicy` that drives ``reconfig_checkpoint`` /
``reconfig_chkenable`` decisions through
:meth:`~repro.drms.context.DRMSContext.policy_checkpoint`.

Rules are *stateless objects over per-run state dicts*: a policy can be
shared by an application across restarts (each
:class:`~repro.drms.app.AppRuntime` owns a fresh ``policy_state``), and
by thousands of simulated jobs in the fleet study
(:mod:`repro.infra.fleet`), each with its own state.
"""

from repro.policy.rules import (
    AtEndRule,
    DrainBacklogRule,
    IterationRule,
    Observation,
    SimulatedTimeRule,
    WallclockRule,
    YoungDalyRule,
    young_daly_interval,
)
from repro.policy.engine import CheckpointPolicy, Decision

__all__ = [
    "AtEndRule",
    "CheckpointPolicy",
    "Decision",
    "DrainBacklogRule",
    "IterationRule",
    "Observation",
    "SimulatedTimeRule",
    "WallclockRule",
    "YoungDalyRule",
    "young_daly_interval",
]
