"""The cadence engine: combine rules into one checkpoint decision.

A :class:`CheckpointPolicy` holds *fire* rules (any one being due
proposes a checkpoint) and *throttle* rules (any one active vetoes the
proposal).  :meth:`decide` is side-effect-free on a negative answer —
a throttled rule stays due, so the checkpoint lands as soon as the
veto lifts — and on a positive answer consumes every due rule at once
(one checkpoint services all of them, the way one muscle3 snapshot
services every overdue trigger).

Decisions publish ``policy.*`` metrics through the ambient tracer:
``policy.evaluations``, ``policy.skipped``, ``policy.fired.<kind>``,
``policy.throttled.<kind>``, and the ``policy.adaptive.interval_s``
gauge tracking the Young/Daly interval in force.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.policy.rules import (
    AtEndRule,
    IterationRule,
    Observation,
    SimulatedTimeRule,
    WallclockRule,
    YoungDalyRule,
)

__all__ = ["CheckpointPolicy", "Decision"]


@dataclass(frozen=True)
class Decision:
    """The outcome of one cadence evaluation."""

    #: take a checkpoint now?
    fire: bool
    #: kinds of the rules that were due (even when vetoed)
    due: Tuple[str, ...] = ()
    #: kinds of the throttle rules that vetoed a due proposal
    throttled_by: Tuple[str, ...] = ()


class CheckpointPolicy:
    """A set of cadence rules plus throttles, evaluated per SOP."""

    def __init__(
        self,
        rules: Sequence[Any] = (),
        throttles: Sequence[Any] = (),
    ):
        self.rules = list(rules)
        self.throttles = list(throttles)

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def every_iterations(cls, every: int, start: int = 1) -> "CheckpointPolicy":
        """The Fig. 1 cadence as a policy: checkpoint at iterations
        ``start, start + every, ...`` — with ``every=1`` meaning every
        iteration (the hardcoded ``it % every == 1`` never fired then).
        ``every=0`` builds an empty policy that never fires."""
        if every < 0:
            raise ValueError(f"negative checkpoint interval {every}")
        if every == 0:
            return cls()
        return cls([IterationRule(every=every, start=start)])

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "CheckpointPolicy":
        """Build a policy from a muscle3-style declarative mapping::

            CheckpointPolicy.from_spec({
                "at_end": True,
                "iterations": [{"every": 10, "start": 1}],
                "simulation_time": [{"every": 10, "start": 0, "stop": 100},
                                    {"every": 20, "start": 100}],
                "wallclock_time": [{"every": 3600}, {"at": [300, 600]}],
            })

        Unknown keys are rejected so a typo'd trigger cannot silently
        disable checkpointing."""
        known = {"at_end", "iterations", "simulation_time", "wallclock_time"}
        unknown = set(spec) - known
        if unknown:
            raise ValueError(
                f"unknown checkpoint trigger(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        rule_cls = {
            "iterations": IterationRule,
            "simulation_time": SimulatedTimeRule,
            "wallclock_time": WallclockRule,
        }
        rules: List[Any] = []
        for key, cls_ in rule_cls.items():
            for entry in spec.get(key, ()) or ():
                rules.append(cls_(**dict(entry)))
        if spec.get("at_end"):
            rules.append(AtEndRule())
        return cls(rules)

    # -- evaluation ------------------------------------------------------------

    def decide(self, obs: Observation, state: Dict[str, Any]) -> Decision:
        """Evaluate every rule at this SOP.  Mutates ``state`` only on
        a positive decision (consuming the due rules); a vetoed or
        not-due evaluation leaves the schedule untouched."""
        from repro.obs import get_tracer

        metrics = get_tracer().metrics
        metrics.counter("policy.evaluations").inc()
        self._publish_adaptive(obs, state, metrics)
        due = [r for r in self.rules if r.due(obs, state)]
        if not due:
            metrics.counter("policy.skipped").inc()
            return Decision(fire=False)
        due_kinds = tuple(r.kind for r in due)
        vetoes = tuple(
            t.kind for t in self.throttles if t.veto(obs, state)
        )
        if vetoes:
            for kind in vetoes:
                metrics.counter(f"policy.throttled.{kind}").inc()
            return Decision(fire=False, due=due_kinds, throttled_by=vetoes)
        for r in due:
            r.consume(obs, state)
        for kind in due_kinds:
            metrics.counter(f"policy.fired.{kind}").inc()
        return Decision(fire=True, due=due_kinds)

    def observe_cost(
        self, state: Dict[str, Any], seconds: float
    ) -> None:
        """Report the cost of a checkpoint this policy fired, so
        adaptive rules can track the real ``C``."""
        for r in self.rules:
            hook = getattr(r, "observe_cost", None)
            if hook is not None:
                hook(state, seconds)

    def _publish_adaptive(self, obs, state, metrics) -> None:
        for r in self.rules:
            if isinstance(r, YoungDalyRule):
                interval = r.interval(obs, state)
                if interval is not None:
                    metrics.gauge("policy.adaptive.interval_s").set(interval)

    def __repr__(self) -> str:
        kinds = [r.kind for r in self.rules]
        vetoes = [t.kind for t in self.throttles]
        return f"CheckpointPolicy(rules={kinds}, throttles={vetoes})"
