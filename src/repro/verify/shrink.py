"""Greedy shrinking of failing fault schedules.

When a fault case fails its oracle, the schedule that produced the
failure is usually noisy: inert events that never fired, generations
that don't matter, write indices larger than needed.  ``shrink_case``
reduces a failing case to a minimal reproducer the same way hypothesis
shrinks a failing example — propose a simpler candidate, keep it iff
the oracle still fails — except the proposal order is deterministic and
purpose-built for fault schedules:

1. **drop events** (one at a time, to a fixpoint) — inert faults vanish;
2. **drop trailing generations** past the last event that matters;
3. **remap events to earlier generations** and shrink the generation
   count further;
4. **normalize numeric fields** (``nth`` → 1, ``keep_bytes`` → 0,
   ``offset``/``bit`` → 0) and **simplify the workload** (single array,
   fewer tasks).

Every accepted candidate still raises
:class:`~repro.verify.oracle.VerifyFailure`, so the shrunk case is a
true reproducer; dump it with ``Case.save`` and it replays forever via
``python -m repro.verify replay``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Iterator, List

from repro.verify.case import Case
from repro.verify.oracle import VerifyFailure, run_case

__all__ = ["ShrinkReport", "shrink_case"]


@dataclass
class ShrinkReport:
    """Outcome of one shrink run."""

    original: Case
    shrunk: Case
    attempts: int = 0
    accepted: int = 0
    steps: List[str] = field(default_factory=list)


def _fails(case: Case) -> bool:
    try:
        run_case(case)
        return False
    except VerifyFailure:
        return True
    except Exception:
        # a candidate that crashes the oracle outright (illegal
        # geometry after simplification) is not a reproducer
        return False


def _without_event(case: Case, i: int) -> Case:
    out = copy.deepcopy(case)
    del out.events[i]
    return out


def _event_candidates(case: Case) -> Iterator[tuple]:
    """(description, candidate) stream of single-step simplifications."""
    # 1. drop one event
    for i in range(len(case.events)):
        yield f"drop event {i}", _without_event(case, i)
    # 2. trailing generations past the last bound event are dead weight
    if case.events:
        last = max(ev.gen for ev in case.events)
        if case.generations > last:
            out = copy.deepcopy(case)
            out.generations = last
            yield f"generations -> {last}", out
    elif case.generations > 1:
        out = copy.deepcopy(case)
        out.generations = 1
        yield "generations -> 1", out
    # 3. remap each event one generation earlier (pulls the schedule
    # toward generation 1, letting step 2 cut the tail again)
    for i, ev in enumerate(case.events):
        if ev.gen > 1:
            out = copy.deepcopy(case)
            out.events[i].gen = ev.gen - 1
            yield f"event {i} gen -> {ev.gen - 1}", out
    # 4. numeric normalization per event
    for i, ev in enumerate(case.events):
        if ev.kind == "write":
            if ev.nth > 1:
                out = copy.deepcopy(case)
                out.events[i].nth = ev.nth - 1
                yield f"event {i} nth -> {ev.nth - 1}", out
            if ev.keep_bytes not in (0, None):
                out = copy.deepcopy(case)
                out.events[i].keep_bytes = 0
                yield f"event {i} keep_bytes -> 0", out
        else:
            if ev.offset:
                out = copy.deepcopy(case)
                out.events[i].offset = 0
                yield f"event {i} offset -> 0", out
            if ev.bit:
                out = copy.deepcopy(case)
                out.events[i].bit = 0
                yield f"event {i} bit -> 0", out
    # 5. workload simplification
    if len(case.arrays) > 1:
        out = copy.deepcopy(case)
        out.arrays = out.arrays[:1]
        yield "single array", out
    if case.t2 > 1:
        out = copy.deepcopy(case)
        out.t2, out.p2 = 1, 1
        out.grid2 = [1] * len(out.shape)
        for arr in out.arrays:
            arr.axes2 = [{"kind": "block"} for _ in out.shape]
            arr.shadow2 = [0] * len(out.shape)
        yield "t2 -> 1", out


def shrink_case(case: Case, max_attempts: int = 400) -> ShrinkReport:
    """Greedy fixpoint shrink of a failing fault case.  ``case`` itself
    must fail its oracle; raises ``ValueError`` otherwise."""
    if not _fails(case):
        raise ValueError("shrink_case needs a case that fails its oracle")
    report = ShrinkReport(original=case, shrunk=copy.deepcopy(case))
    current = report.shrunk
    progress = True
    while progress and report.attempts < max_attempts:
        progress = False
        for desc, candidate in _event_candidates(current):
            if report.attempts >= max_attempts:
                break
            report.attempts += 1
            if _fails(candidate):
                current = candidate
                report.accepted += 1
                report.steps.append(desc)
                progress = True
                break  # restart proposals from the simpler case
    report.shrunk = current
    return report
