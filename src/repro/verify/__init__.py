"""repro.verify — the differential reconfiguration harness.

Property-based equivalence checking for the paper's central claim: a
checkpoint taken with ``t1`` tasks is restartable with any ``t2`` tasks
because array state is streamed in a distribution-independent linear
order.  Seeded generators (:mod:`repro.verify.gen`) draw random
geometry — shapes, per-axis distribution kinds, process grids,
``(t1, p1) → (t2, p2)`` pairs — and the oracle
(:mod:`repro.verify.oracle`) runs checkpoint → restart through all
three engines (drms; spmd where conforming, i.e. ``t2 == t1``;
incremental), asserting bit-identical contents, serial-reference stream
equality, and manifest/metrics/span invariants.  A second mode composes
the generators with :mod:`repro.pfs.faults` schedules and asserts the
recovery policy lands on the newest byte-for-byte valid checkpoint;
failing schedules shrink (:mod:`repro.verify.shrink`) to minimal
reproducers stored as replayable JSON case files::

    python -m repro.verify run --seed 20260806 --cases 220 --fault-cases 40
    python -m repro.verify replay tests/verify/cases/<case>.json

See DESIGN.md §10 for the harness architecture and how to add a new
invariant.
"""

from repro.verify.case import ArrayCase, Case, CaseError, FaultEvent
from repro.verify.gen import (
    CaseGen,
    known_bad_case,
    random_axis,
    random_distribution,
    random_grid,
    random_range,
    random_shape,
    random_slice,
)
from repro.verify.harness import SuiteReport, dump_failures, run_suite
from repro.verify.oracle import CaseResult, VerifyFailure, replay_case, run_case
from repro.verify.shrink import ShrinkReport, shrink_case

__all__ = [
    "ArrayCase",
    "Case",
    "CaseError",
    "CaseGen",
    "CaseResult",
    "FaultEvent",
    "ShrinkReport",
    "SuiteReport",
    "VerifyFailure",
    "dump_failures",
    "known_bad_case",
    "random_axis",
    "random_distribution",
    "random_grid",
    "random_range",
    "random_shape",
    "random_slice",
    "replay_case",
    "run_case",
    "run_suite",
    "shrink_case",
]
