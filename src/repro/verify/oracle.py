"""The differential oracle: run one case, check every invariant.

For **reconfig** cases the oracle runs checkpoint → restart through the
case's engine and checks, against independently computed references:

* *bit-identical contents*: the restored global array equals the
  checkpointed one byte-for-byte on the restored distribution's defined
  mask (raw-byte comparison, so NaN payloads and signaling bit patterns
  count too);
* *stream order*: every stored array file equals the serial reference
  stream ``stream_order_bytes(global, order)`` — the
  distribution-independent linear order of paper Section 3.2 — and the
  manifest's recorded size equals both the file size and the sum of the
  Fig. 5a partition's piece sizes;
* *metrics*: the published ``checkpoint.<kind>.*`` / ``stream.*``
  counters agree with the manifest byte totals;
* *span tree*: the recorded trace satisfies
  :func:`repro.obs.span_tree_violations` (phases tile, nothing
  overhangs);
* *segment round trip*: replicated variables and execution context
  serialize back identically;
* for SPMD, additionally that a *non-conforming* restart (``t2 != t1``)
  raises — the defining limitation the DRMS scheme removes.

For **fault** cases the oracle replays ``generations`` checkpoint
attempts under the case's fault schedule, then computes ground truth
*independently of the recovery code*: a generation is valid iff its
checkpoint call committed a manifest AND every one of its files still
byte-matches the intended content the oracle itself recorded while
writing.  The invariant under the ``validated`` policy
(:func:`repro.checkpoint.recover.select_restart_state`) is that the
decision lands exactly on the newest ground-truth-valid generation and
rejects exactly the newer corrupt ones; the deliberately ``naive``
policy (newest complete manifest, no validation) is the defeatable
target used to demonstrate shrinking.

All violations of one case are collected into a single
:class:`VerifyFailure` so a dump shows the whole picture.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arrays.darray import DistributedArray
from repro.arrays.slices import Slice
from repro.checkpoint.drms import drms_checkpoint, drms_restart
from repro.checkpoint.incremental import IncrementalCheckpointer
from repro.checkpoint.recover import select_restart_state
from repro.checkpoint.rotation import latest_checkpoint
from repro.checkpoint.segment import DataSegment, ExecutionContext, SegmentProfile
from repro.checkpoint.format import array_name, segment_name
from repro.checkpoint.spmd import spmd_checkpoint, spmd_restart
from repro.errors import (
    CheckpointError,
    IOFaultError,
    PFSError,
    RestartError,
)
from repro.obs import Tracer, span_tree_violations, use_tracer
from repro.pfs.faults import FaultInjector, flip_stored_bit
from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine, MachineParams
from repro.streaming.order import stream_order_bytes
from repro.streaming.parallel import stream_out_parallel
from repro.streaming.partition import partition_for_target, piece_offsets
from repro.streaming.serial import strict_gather
from repro.streaming.streams import MemorySink
from repro.verify.case import Case, FaultEvent

__all__ = ["CaseResult", "VerifyFailure", "run_case", "replay_case"]


class VerifyFailure(AssertionError):
    """One case violated at least one invariant."""

    def __init__(self, case: Case, errors: List[str]):
        self.case = case
        self.errors = list(errors)
        detail = "\n  - ".join(self.errors)
        super().__init__(
            f"case [{case.label()}] violated {len(self.errors)} "
            f"invariant(s):\n  - {detail}"
        )


@dataclass
class CaseResult:
    """What one successful case run established."""

    case: Case
    checked: int = 0
    details: Dict[str, object] = field(default_factory=dict)


class _Checker:
    """Accumulates invariant violations for one case."""

    def __init__(self, case: Case):
        self.case = case
        self.errors: List[str] = []
        self.checked = 0

    def check(self, ok: bool, msg: str) -> bool:
        self.checked += 1
        if not ok:
            self.errors.append(msg)
        return bool(ok)

    def finish(self, details: Optional[Dict[str, object]] = None) -> CaseResult:
        if self.errors:
            raise VerifyFailure(self.case, self.errors)
        return CaseResult(self.case, checked=self.checked, details=details or {})


# -- workload construction --------------------------------------------------


def _fill_global(case: Case, arr_index: int, salt: int = 0) -> np.ndarray:
    """Deterministic array content with *every byte nonzero*, so any
    dropped or flipped byte provably changes the value stream (holes in
    a PFS file read back as zeros)."""
    spec = case.arrays[arr_index]
    dtype = np.dtype(spec.dtype)
    nbytes = int(np.prod(case.shape)) * dtype.itemsize
    rng = np.random.default_rng(
        (case.data_seed * 1_000_003 + arr_index * 7919 + salt) & 0x7FFFFFFF
    )
    raw = rng.integers(1, 256, size=nbytes, dtype=np.uint8)
    return raw.view(dtype).reshape(case.shape)


def _build_arrays(case: Case, salt: int = 0) -> List[DistributedArray]:
    out = []
    for i, spec in enumerate(case.arrays):
        arr = DistributedArray(
            spec.name,
            case.shape,
            np.dtype(spec.dtype),
            case.distribution1(spec),
            store_data=True,
        )
        arr.set_global(_fill_global(case, i, salt))
        out.append(arr)
    return out


def _segment(iteration: int) -> DataSegment:
    return DataSegment(
        profile=SegmentProfile(
            local_section_bytes=512, system_bytes=2048, private_bytes=256
        ),
        replicated={"tol": 1e-6, "round": iteration},
        context=ExecutionContext(sop_id=3, iteration=iteration),
    )


def _masked_bytes(arr: DistributedArray, ref: np.ndarray) -> Tuple[bytes, bytes]:
    """(restored, reference) bytes over the restored defined mask."""
    mask = arr.defined_mask()
    got = arr.to_global(fill=0)
    return got[mask].tobytes(), np.asarray(ref)[mask].tobytes()


# -- shared invariant blocks ------------------------------------------------


def _check_drms_files(
    c: _Checker,
    pfs: PIOFS,
    prefix: str,
    manifest: Dict,
    refs: List[np.ndarray],
) -> int:
    """Stored stream files against the serial reference; manifest sizes
    against file sizes and the Fig. 5a piece partition.  Returns the
    total array bytes recorded in the manifest."""
    case = c.case
    total = 0
    for i, entry in enumerate(manifest["arrays"]):
        expected = stream_order_bytes(refs[i], case.order)
        fname = entry["file"]
        size = pfs.file_size(fname)
        c.check(
            entry["nbytes"] == len(expected),
            f"{fname}: manifest nbytes {entry['nbytes']} != serial "
            f"reference stream {len(expected)}",
        )
        c.check(
            size == len(expected),
            f"{fname}: file size {size} != reference stream {len(expected)}",
        )
        stored = pfs.read_at(fname, 0, size) if size else b""
        c.check(
            stored == expected,
            f"{fname}: stored bytes differ from the serial reference stream",
        )
        itemsize = np.dtype(case.arrays[i].dtype).itemsize
        pieces = partition_for_target(
            Slice.full(case.shape),
            itemsize,
            target_bytes=case.target_bytes,
            min_pieces=case.p1,
            order=case.order,
        )
        piece_total = sum(p.size * itemsize for p in pieces)
        c.check(
            piece_total == entry["nbytes"],
            f"{fname}: sum of piece sizes {piece_total} != bytes written "
            f"{entry['nbytes']}",
        )
        offs = piece_offsets(pieces, itemsize)
        c.check(
            offs == sorted(offs) and (not offs or offs[0] == 0),
            f"{fname}: piece offsets are not the running size sum",
        )
        total += entry["nbytes"]
    return total


def _check_restored(
    c: _Checker,
    restored: Dict[str, DistributedArray],
    refs: List[np.ndarray],
) -> None:
    for i, spec in enumerate(c.case.arrays):
        arr = restored.get(spec.name)
        if not c.check(arr is not None, f"array {spec.name!r} not restored"):
            continue
        got, want = _masked_bytes(arr, refs[i])
        c.check(
            got == want,
            f"array {spec.name!r}: restored bytes differ from checkpointed "
            "content on the defined mask",
        )


def _flat_eq(c: _Checker, flat: Dict[str, float], key: str, want: float) -> None:
    c.check(
        abs(flat.get(key, 0.0) - want) < 0.5,
        f"metric {key} = {flat.get(key)} != expected {want}",
    )


# -- reconfig: one oracle per engine ----------------------------------------


def _gather_strictness(arrays):
    """Strict gather for cases whose arrays are fully defined, so
    silent zero-fill of real data becomes a hard failure.  Cases with
    legitimately partial coverage (e.g. the INDEXED distributions of
    ``reconfig_indexed_partial``) keep the paper's zeros-for-undefined
    semantics."""
    if all(a.defined_mask().all() for a in arrays if a.store_data):
        return strict_gather()
    return nullcontext()


def _check_cross_engine(c: _Checker, arrays) -> None:
    """Every parstream engine must emit byte-identical streams with
    matching ``content_sha1`` digests.  Each real-data array is streamed
    through serial, threaded, and vectorized executors into memory
    sinks under throwaway tracers; the bytes must equal the
    distribution-independent ``stream_order_bytes`` reference and the
    op spans' digests must agree across engines."""
    for arr in arrays:
        if not arr.store_data:
            continue
        ref = stream_order_bytes(arr.to_global(fill=0), "F")
        digests = {}
        for engine in ("serial", "threads", "vectorized"):
            with use_tracer(Tracer()) as t:
                sink = MemorySink()
                stream_out_parallel(arr, sink, concurrency=engine)
            c.check(
                sink.getvalue() == ref,
                f"{engine} stream of {arr.name!r} diverges from the "
                f"serial-order reference bytes",
            )
            shas = [
                s.attrs["content_sha1"]
                for s in t.spans
                if "content_sha1" in s.attrs
            ]
            c.check(
                len(shas) == 1,
                f"{engine} stream of {arr.name!r} recorded "
                f"{len(shas)} content_sha1 digests, expected 1",
            )
            digests[engine] = shas[0] if shas else None
        c.check(
            len(set(digests.values())) == 1,
            f"content_sha1 diverges across engines for {arr.name!r}: "
            f"{digests}",
        )


def _run_drms(case: Case) -> CaseResult:
    c = _Checker(case)
    pfs = PIOFS()
    prefix = "verify.ck"
    segment = _segment(iteration=1)
    with use_tracer(Tracer()) as tracer:
        arrays = _build_arrays(case)
        refs = [a.to_global(fill=0) for a in arrays]
        with _gather_strictness(arrays):
            bd = drms_checkpoint(
                pfs,
                prefix,
                segment,
                arrays,
                order=case.order,
                io_tasks=case.p1,
                target_bytes=case.target_bytes,
                app_name="verify",
            )
            state, rbd = drms_restart(
                pfs,
                prefix,
                ntasks=case.t2,
                order=case.order,
                io_tasks=case.p2,
                target_bytes=case.target_bytes,
                distribution_overrides={
                    spec.name: case.distribution2(spec) for spec in case.arrays
                },
            )
    total = _check_drms_files(c, pfs, prefix, state.manifest, refs)
    _check_restored(c, state.arrays, refs)
    _check_cross_engine(c, arrays)
    c.check(
        state.checkpoint_ntasks == case.t1 and state.ntasks == case.t2,
        f"restored task counts ({state.checkpoint_ntasks}->{state.ntasks}) "
        f"!= case ({case.t1}->{case.t2})",
    )
    c.check(
        state.delta == case.t2 - case.t1,
        f"delta {state.delta} != t2-t1 {case.t2 - case.t1}",
    )
    c.check(
        state.segment.serialize() == segment.serialize(),
        "data segment did not round-trip identically",
    )
    c.check(
        bd.arrays_bytes == total and rbd.arrays_bytes == total,
        f"breakdown array bytes ({bd.arrays_bytes} out, {rbd.arrays_bytes} "
        f"in) != manifest total {total}",
    )
    flat = tracer.metrics.flat()
    _flat_eq(c, flat, "checkpoint.drms.count", 1)
    _flat_eq(c, flat, "restart.drms.count", 1)
    _flat_eq(c, flat, "checkpoint.drms.arrays.bytes", total)
    _flat_eq(c, flat, "restart.drms.arrays.bytes", total)
    _flat_eq(c, flat, "stream.out.bytes", total)
    _flat_eq(c, flat, "stream.in.bytes", total)
    _flat_eq(c, flat, "checkpoint.drms.total.bytes", total + bd.segment_bytes)
    violations = span_tree_violations(tracer)
    c.check(not violations, f"span tree violations: {violations[:3]}")
    return c.finish({"engine": "drms", "array_bytes": total})


def _mutate(case: Case, g: np.ndarray, arr_index: int) -> np.ndarray:
    """A deterministic byte-level mutation of ``g`` (possibly identity)
    for the incremental engine's delta round."""
    rng = np.random.default_rng(
        (case.data_seed * 31337 + arr_index * 271 + 17) & 0x7FFFFFFF
    )
    buf = bytearray(g.tobytes())
    n_mut = int(rng.integers(0, 4))
    for _ in range(n_mut):
        pos = int(rng.integers(0, len(buf)))
        buf[pos] = int(rng.integers(1, 256))
    return np.frombuffer(bytes(buf), dtype=g.dtype).reshape(g.shape)


def _run_incremental(case: Case) -> CaseResult:
    c = _Checker(case)
    pfs = PIOFS()
    prefix = "verify.inc"
    with use_tracer(Tracer()) as tracer:
        arrays = _build_arrays(case)
        ic = IncrementalCheckpointer(
            pfs,
            prefix,
            order=case.order,
            target_bytes=case.target_bytes,
            io_tasks=case.p1,
            app_name="verify",
        )
        with _gather_strictness(arrays):
            ic.full(_segment(iteration=1), arrays)
            for i, arr in enumerate(arrays):
                arr.set_global(_mutate(case, arr.to_global(fill=0), i))
            refs = [a.to_global(fill=0) for a in arrays]
            segment2 = _segment(iteration=2)
            ic.incremental(segment2, arrays)
            state, rbd = ic.restore(case.t2)
    _check_restored(c, state.arrays, refs)
    c.check(
        state.segment.serialize() == segment2.serialize(),
        "restore did not surface the newest delta's segment",
    )
    c.check(state.ntasks == case.t2, f"restored on {state.ntasks} != t2")
    # delta manifest: entry offsets must be the running nbytes sum and
    # the delta file exactly their total
    from repro.checkpoint.format import read_manifest

    dm = read_manifest(pfs, f"{prefix}.d1")
    for spec in dm["arrays"]:
        pos = 0
        for e in spec["entries"]:
            c.check(
                e["offset"] == pos,
                f"{spec['file']}: entry offset {e['offset']} != running "
                f"sum {pos}",
            )
            pos += e["nbytes"]
        c.check(
            spec["nbytes"] == pos,
            f"{spec['file']}: recorded nbytes {spec['nbytes']} != entry "
            f"total {pos}",
        )
        size = pfs.file_size(spec["file"])
        c.check(
            size == pos,
            f"{spec['file']}: file size {size} != entry total {pos}",
        )
    sizes = ic.chain_state_bytes()
    c.check(
        sizes["total"] == sizes["base"] + sizes["deltas"],
        "chain accounting does not add up",
    )
    flat = tracer.metrics.flat()
    _flat_eq(c, flat, "checkpoint.drms.count", 1)
    _flat_eq(c, flat, "checkpoint.drms-delta.count", 1)
    _flat_eq(c, flat, "restart.drms.count", 1)
    violations = span_tree_violations(tracer)
    c.check(not violations, f"span tree violations: {violations[:3]}")
    return c.finish({"engine": "incremental", "chain": sizes})


def _run_spmd(case: Case) -> CaseResult:
    c = _Checker(case)
    pfs = PIOFS()
    prefix = "verify.spmd"
    rng = np.random.default_rng(case.data_seed & 0x7FFFFFFF)
    payloads = [
        {"task": t, "blob": rng.integers(0, 256, size=int(rng.integers(1, 64)), dtype=np.uint8).tobytes()}
        for t in range(case.t1)
    ]
    with use_tracer(Tracer()) as tracer:
        bd = spmd_checkpoint(
            pfs,
            prefix,
            ntasks=case.t1,
            segment_bytes=case.segment_bytes,
            payloads=payloads,
            app_name="verify",
        )
        state, rbd = spmd_restart(pfs, prefix, ntasks=case.t1)
        # the defining limitation: any other task count must refuse
        try:
            spmd_restart(pfs, prefix, ntasks=case.t1 + 1)
            conforming_only = False
        except RestartError:
            conforming_only = True
    c.check(
        conforming_only,
        "non-conforming SPMD restart (t2 != t1) did not raise RestartError",
    )
    c.check(
        state.payloads == payloads,
        "per-task payloads did not round-trip identically",
    )
    manifest = state.manifest
    for t, fname in enumerate(manifest["task_files"]):
        c.check(
            pfs.file_size(fname) == manifest["segment_bytes"][t],
            f"{fname}: file size != manifest segment_bytes",
        )
    total = sum(manifest["segment_bytes"])
    c.check(
        bd.segment_bytes == total and rbd.segment_bytes == total,
        "breakdown segment bytes != manifest total",
    )
    flat = tracer.metrics.flat()
    _flat_eq(c, flat, "checkpoint.spmd.count", 1)
    _flat_eq(c, flat, "restart.spmd.count", 1)
    _flat_eq(c, flat, "checkpoint.spmd.segment.bytes", total)
    violations = span_tree_violations(tracer)
    c.check(not violations, f"span tree violations: {violations[:3]}")
    return c.finish({"engine": "spmd", "segment_bytes": total})


# -- fault mode -------------------------------------------------------------


def _arm_events(inj: FaultInjector, events: List[FaultEvent], gen: int) -> None:
    for ev in events:
        if ev.kind == "write" and ev.gen == gen:
            inj.fail_write(
                nth=ev.nth,
                match=ev.match,
                mode=ev.mode,
                keep_bytes=ev.keep_bytes,
            )


def _apply_stored_flips(
    pfs: PIOFS, case: Case, events: List[FaultEvent], gen: int, prefix: str
) -> None:
    """Post-checkpoint persistent corruption.  Flips that find no
    stored byte (virtual pad, missing file) are inert by design."""
    for ev in events:
        if ev.kind != "stored_flip" or ev.gen != gen:
            continue
        if ev.target == "segment":
            fname = segment_name(prefix)
        else:
            idx = ev.array_index % max(len(case.arrays), 1)
            fname = array_name(prefix, case.arrays[idx].name)
        try:
            size = pfs.file_size(fname)
            if size <= 0:
                continue
            flip_stored_bit(pfs, fname, ev.offset % size, ev.bit)
        except PFSError:
            continue


@dataclass
class _Generation:
    prefix: str
    committed: bool
    #: intended bytes per file: {name: exact expected content prefix}
    expected: Dict[str, bytes] = field(default_factory=dict)
    #: intended total size per file
    sizes: Dict[str, int] = field(default_factory=dict)
    refs: List[np.ndarray] = field(default_factory=list)
    segment: Optional[DataSegment] = None

    def is_valid(self, pfs: PIOFS) -> bool:
        """Ground truth, independent of the recovery code: every file
        still holds exactly the bytes the writer intended."""
        if not self.committed:
            return False
        for name, want_size in self.sizes.items():
            if not pfs.exists(name) or pfs.file_size(name) != want_size:
                return False
            want = self.expected[name]
            if want and pfs.read_at(name, 0, len(want)) != want:
                return False
        return True


def _run_fault(case: Case) -> CaseResult:
    c = _Checker(case)
    pfs = PIOFS()
    base = "app.ck"
    gens: List[_Generation] = []
    with use_tracer(Tracer()) as tracer:
        for g in range(1, case.generations + 1):
            prefix = f"{base}.{g:06d}"
            segment = _segment(iteration=g)
            arrays = _build_arrays(case, salt=g)
            refs = [a.to_global(fill=0) for a in arrays]
            inj = FaultInjector()
            _arm_events(inj, case.events, g)
            pfs.attach_faults(inj)
            try:
                drms_checkpoint(
                    pfs,
                    prefix,
                    segment,
                    arrays,
                    order=case.order,
                    io_tasks=case.p1,
                    target_bytes=case.target_bytes,
                    app_name="verify",
                )
                committed = True
            except (IOFaultError, CheckpointError):
                committed = False
                try:
                    pfs.abort_phase()
                except PFSError:
                    pass
            finally:
                pfs.attach_faults(None)
            _apply_stored_flips(pfs, case, case.events, g, prefix)
            gen = _Generation(prefix=prefix, committed=committed, refs=refs,
                              segment=segment)
            if committed:
                header, pad = segment.serialize()
                seg = segment_name(prefix)
                gen.expected[seg] = header
                gen.sizes[seg] = len(header) + pad
                for i, spec in enumerate(case.arrays):
                    fname = array_name(prefix, spec.name)
                    want = stream_order_bytes(refs[i], case.order)
                    gen.expected[fname] = want
                    gen.sizes[fname] = len(want)
            gens.append(gen)

        valid = [g for g in gens if g.is_valid(pfs)]
        expected_prefix = valid[-1].prefix if valid else None
        committed = [g for g in gens if g.committed]

        if case.policy == "validated":
            decision = select_restart_state(pfs, base)
            chosen = decision.prefix
            c.check(
                chosen == expected_prefix,
                f"validated recovery chose {chosen!r}; newest byte-valid "
                f"state is {expected_prefix!r}",
            )
            want_rejected = {
                g.prefix
                for g in committed
                if not g.is_valid(pfs)
                and (expected_prefix is None or g.prefix > expected_prefix)
            }
            got_rejected = {p for p, _ in decision.rejected}
            c.check(
                got_rejected == want_rejected,
                f"rejected set {sorted(got_rejected)} != corrupt-newer set "
                f"{sorted(want_rejected)}",
            )
        else:
            chosen = latest_checkpoint(pfs, base)
            c.check(
                chosen == expected_prefix,
                f"naive recovery (newest complete manifest) chose "
                f"{chosen!r}; newest byte-valid state is {expected_prefix!r}",
            )

        if chosen is not None and chosen == expected_prefix:
            by_prefix = {g.prefix: g for g in gens}
            gen = by_prefix[chosen]
            state, _ = drms_restart(
                pfs,
                chosen,
                ntasks=case.t2,
                order=case.order,
                io_tasks=case.p2,
                target_bytes=case.target_bytes,
                distribution_overrides={
                    spec.name: case.distribution2(spec)
                    for spec in case.arrays
                },
            )
            _check_restored(c, state.arrays, gen.refs)
            c.check(
                state.segment.serialize() == gen.segment.serialize(),
                "restored segment differs from the chosen generation's",
            )
    violations = span_tree_violations(tracer)
    c.check(not violations, f"span tree violations: {violations[:3]}")
    return c.finish(
        {
            "expected_prefix": expected_prefix,
            "chosen": chosen,
            "committed": [g.prefix for g in committed],
            "valid": [g.prefix for g in valid],
        }
    )


# -- multi-level (tier="memory+pfs") fault mode -----------------------------


@dataclass
class _MLCKGeneration:
    """Capture-time intent of one multi-level generation — enough to
    recompute, independently of the recovery code, which tier (if any)
    can still serve it after the fault schedule ran."""

    prefix: str
    #: replica node lists per L1 piece, recorded at capture time
    piece_replicas: List[List[int]] = field(default_factory=list)
    #: the durable copy's intent (manifest committed by the drain)
    l2: Optional[_Generation] = None
    refs: List[np.ndarray] = field(default_factory=list)
    segment: Optional[DataSegment] = None

    def l1_valid(self, failed: set) -> bool:
        """Ground truth: every piece kept at least one replica on a
        node that never died."""
        return all(
            any(n not in failed for n in replicas)
            for replicas in self.piece_replicas
        )

    def l2_valid(self, pfs: PIOFS) -> bool:
        return self.l2 is not None and self.l2.is_valid(pfs)


def _arm_drain_events(inj: FaultInjector, events: List[FaultEvent], gen: int):
    """Write faults against generation ``gen``'s *drain*: both plain
    ``write`` events (silent modes corrupt the durable copy) and
    ``drain_crash`` events (hard failure — the drain must abort).
    Returns the armed drain-crash plans for fired-ness inspection."""
    crash_plans = []
    for ev in events:
        if ev.gen != gen:
            continue
        if ev.kind == "write":
            inj.fail_write(
                nth=ev.nth, match=ev.match, mode=ev.mode,
                keep_bytes=ev.keep_bytes,
            )
        elif ev.kind == "drain_crash":
            crash_plans.append(
                inj.fail_write(nth=ev.nth, match=ev.match, mode="fail")
            )
    return crash_plans


def _run_mlck_schedule(
    c: _Checker,
    case: Case,
    machine: Machine,
    pfs: PIOFS,
    store,
    drainer,
    base: str,
) -> Tuple[List[_MLCKGeneration], set]:
    """The shared capture + synchronous-drain + fault-schedule loop of
    the multi-level oracles.  Returns the per-generation capture-time
    intent records and the set of nodes the schedule killed."""
    from repro.checkpoint.format import manifest_name

    failed: set = set()
    gens: List[_MLCKGeneration] = []
    for g in range(1, case.generations + 1):
        prefix = f"{base}.{g:06d}"
        segment = _segment(iteration=g)
        arrays = _build_arrays(case, salt=g)
        refs = [a.to_global(fill=0) for a in arrays]
        l1gen, _ = store.capture_drms(
            prefix, segment, arrays, order=case.order, app_name="verify"
        )
        rec = _MLCKGeneration(prefix=prefix, refs=refs, segment=segment)
        pieces = list(l1gen.segment_pieces)
        for entry in l1gen.arrays:
            pieces.extend(entry.pieces)
        rec.piece_replicas = [list(p.replicas) for p in pieces]

        inj = FaultInjector()
        crash_plans = _arm_drain_events(inj, case.events, g)
        pfs.attach_faults(inj)
        try:
            drainer.schedule(prefix)
        finally:
            pfs.attach_faults(None)
        crashed = any(p.fired for p in crash_plans)
        committed = pfs.exists(manifest_name(prefix))
        c.check(
            store.gen(prefix).drain_state
            == ("failed" if not committed else "durable"),
            f"gen {g}: drain state "
            f"{store.gen(prefix).drain_state!r} disagrees with manifest "
            f"presence {committed}",
        )
        if crashed:
            c.check(
                not committed,
                f"gen {g}: drain crashed but a manifest committed — "
                "two-phase commit violated",
            )
        if committed:
            l2 = _Generation(prefix=prefix, committed=True)
            header, pad = segment.serialize()
            seg = segment_name(prefix)
            l2.expected[seg] = header
            l2.sizes[seg] = len(header) + pad
            for i, spec in enumerate(case.arrays):
                fname = array_name(prefix, spec.name)
                want = stream_order_bytes(refs[i], case.order)
                l2.expected[fname] = want
                l2.sizes[fname] = len(want)
            rec.l2 = l2
        _apply_stored_flips(pfs, case, case.events, g, prefix)
        for ev in case.events:
            if ev.kind == "node_loss" and ev.gen == g:
                node = ev.node % case.num_nodes
                if node not in failed:
                    machine.fail_node(node)
                    store.drop_node(node)
                    failed.add(node)
        gens.append(rec)
    return gens, failed


def _mlck_ground_truth(
    gens: List[_MLCKGeneration], failed: set, pfs: PIOFS
) -> Tuple[Optional[str], Optional[str]]:
    """Newest generation valid on either tier, computed from
    capture-time intent alone (never from the recovery code)."""
    for rec in reversed(gens):
        if rec.l1_valid(failed):
            return rec.prefix, "l1"
        if rec.l2_valid(pfs):
            return rec.prefix, "l2"
    return None, None


def _run_mlck_fault(case: Case) -> CaseResult:
    """The multi-level oracle: ``generations`` L1 capture + synchronous
    drain rounds under the case's schedule of drain faults and node
    losses, then the tier-aware recovery walk.  Ground truth per
    generation is recomputed from capture-time intent alone: L1-valid
    iff every piece kept a replica on a surviving node, L2-valid iff
    the drain committed a manifest AND every durable file still
    byte-matches what the drain meant to write.  The walk must land on
    the newest generation valid on *either* tier, report the tier the
    ground truth predicts, and — when the newest generation is L1-valid
    — decide without a single PFS read."""
    from repro.mlck.drain import DrainController
    from repro.mlck.store import L1Store

    c = _Checker(case)
    machine = Machine(
        MachineParams(num_nodes=case.num_nodes)
    )
    pfs = PIOFS(machine=machine)
    base = "app.ck"
    with use_tracer(Tracer()) as tracer:
        store = L1Store(machine, k=case.k, target_bytes=case.target_bytes)
        drainer = DrainController(
            store, pfs, synchronous=True, target_bytes=case.target_bytes
        )
        gens, failed = _run_mlck_schedule(
            c, case, machine, pfs, store, drainer, base
        )
        expected_prefix, expected_tier = _mlck_ground_truth(gens, failed, pfs)

        reads_before = tracer.metrics.flat().get("pfs.read.count", 0.0)
        decision = select_restart_state(pfs, base, l1=store)
        reads_during = (
            tracer.metrics.flat().get("pfs.read.count", 0.0) - reads_before
        )
        c.check(
            decision.prefix == expected_prefix,
            f"tiered recovery chose {decision.prefix!r}; newest "
            f"any-tier-valid state is {expected_prefix!r}",
        )
        c.check(
            decision.tier == expected_tier,
            f"tiered recovery used tier {decision.tier!r}; ground truth "
            f"says {expected_tier!r}",
        )
        if gens and expected_prefix == gens[-1].prefix and expected_tier == "l1":
            c.check(
                reads_during == 0,
                f"newest generation is L1-servable but the recovery walk "
                f"issued {reads_during:g} PFS reads",
            )
        flat = tracer.metrics.flat()
        if expected_tier is not None:
            _flat_eq(c, flat, f"mlck.recover.{expected_tier}", 1)

        if decision.prefix is not None and decision.prefix == expected_prefix:
            by_prefix = {rec.prefix: rec for rec in gens}
            rec = by_prefix[decision.prefix]
            overrides = {
                spec.name: case.distribution2(spec) for spec in case.arrays
            }
            if decision.tier == "l1":
                state, _ = store.restore_drms(
                    decision.prefix, case.t2, order=case.order,
                    distribution_overrides=overrides,
                )
            else:
                state, _ = drms_restart(
                    pfs, decision.prefix, ntasks=case.t2,
                    order=case.order, io_tasks=case.p2,
                    target_bytes=case.target_bytes,
                    distribution_overrides=overrides,
                )
            _check_restored(c, state.arrays, rec.refs)
            c.check(
                state.segment.serialize() == rec.segment.serialize(),
                "restored segment differs from the chosen generation's",
            )
    violations = span_tree_violations(tracer)
    c.check(not violations, f"span tree violations: {violations[:3]}")
    return c.finish(
        {
            "expected_prefix": expected_prefix,
            "expected_tier": expected_tier,
            "chosen": decision.prefix,
            "tier": decision.tier,
            "failed_nodes": sorted(failed),
            "pfs_reads_during_walk": reads_during,
        }
    )


# -- localized-vs-full differential mode ------------------------------------


def _run_localized(case: Case) -> CaseResult:
    """The localized equivalence oracle: run the case's fault schedule,
    then recover the chosen generation through BOTH paths — the full
    restore and the localized one (survivors reload locally, only lost
    ranks' sections cross the switch) — and assert the post-recovery
    array bytes, segment, manifest state, and breakdown byte ledgers
    are identical.  Localized recovery changes the *cost model*, never
    the bytes.  Additionally exercises the section-scoped scatter
    primitive (zero the lost ranks' locals, rebuild only them from the
    reference stream) and the post-recovery re-replication repair."""
    from repro.mlck.drain import DrainController
    from repro.mlck.localized import (
        compute_rebuild_scope,
        localized_restore_drms,
        rebuild_lost_sections,
        rereplicate_after_failure,
    )
    from repro.mlck.store import L1Store

    c = _Checker(case)
    machine = Machine(MachineParams(num_nodes=case.num_nodes))
    pfs = PIOFS(machine=machine)
    base = "app.ck"
    with use_tracer(Tracer()) as tracer:
        store = L1Store(machine, k=case.k, target_bytes=case.target_bytes)
        drainer = DrainController(
            store, pfs, synchronous=True, target_bytes=case.target_bytes
        )
        gens, failed = _run_mlck_schedule(
            c, case, machine, pfs, store, drainer, base
        )
        expected_prefix, expected_tier = _mlck_ground_truth(gens, failed, pfs)

        decision = select_restart_state(pfs, base, l1=store)
        c.check(
            decision.prefix == expected_prefix,
            f"tiered recovery chose {decision.prefix!r}; newest "
            f"any-tier-valid state is {expected_prefix!r}",
        )
        c.check(
            decision.tier == expected_tier,
            f"tiered recovery used tier {decision.tier!r}; ground truth "
            f"says {expected_tier!r}",
        )
        details: Dict[str, object] = {
            "expected_prefix": expected_prefix,
            "expected_tier": expected_tier,
            "failed_nodes": sorted(failed),
        }
        if decision.prefix is None or decision.prefix != expected_prefix:
            violations = span_tree_violations(tracer)
            c.check(not violations, f"span tree violations: {violations[:3]}")
            return c.finish(details)

        rec = {g.prefix: g for g in gens}[decision.prefix]
        overrides = {
            spec.name: case.distribution2(spec) for spec in case.arrays
        }
        n = case.t2
        # Restart ranks live on the first n nodes; ranks whose node the
        # schedule killed are the lost ranks.  Replacement nodes are
        # spare up nodes outside the placement (when the machine has
        # them; otherwise accounting falls back to the old node id).
        placement = {r: r % case.num_nodes for r in range(n)}
        failed_in = sorted(set(placement.values()) & failed)
        spares = [
            nd
            for nd in machine.up_nodes()
            if nd not in set(placement.values())
        ]
        node_repl = {nd: spares.pop(0) for nd in failed_in if spares}
        repl = {
            r: node_repl[nd]
            for r, nd in placement.items()
            if nd in node_repl
        }

        if decision.tier == "l1":
            full_state, full_bd = store.restore_drms(
                decision.prefix,
                n,
                order=case.order,
                distribution_overrides=overrides,
            )
            loc_state, loc_bd, scope = localized_restore_drms(
                store,
                decision.prefix,
                n,
                placement,
                failed_in,
                replacements=repl,
                order=case.order,
                distribution_overrides=overrides,
            )
            flat = tracer.metrics.flat()
            _flat_eq(c, flat, "mlck.localized.restores", 1)
        else:
            # Every L1 copy of the chosen generation is unservable, so
            # the survivors' own replica memory is gone too: localized
            # recovery degrades to the same full, metered PFS read.
            full_state, full_bd = drms_restart(
                pfs,
                decision.prefix,
                ntasks=n,
                order=case.order,
                io_tasks=case.p2,
                target_bytes=case.target_bytes,
                distribution_overrides=overrides,
            )
            loc_state, loc_bd = drms_restart(
                pfs,
                decision.prefix,
                ntasks=n,
                order=case.order,
                io_tasks=case.p2,
                target_bytes=case.target_bytes,
                distribution_overrides=overrides,
            )
            scope = compute_rebuild_scope(
                dict(loc_state.manifest, prefix=decision.prefix),
                n,
                placement,
                failed_in,
                replacements=repl,
                order=case.order,
                distribution_overrides=overrides,
            )

        # -- the equivalence block: bytes, segment, manifest, ledgers --
        _check_restored(c, full_state.arrays, rec.refs)
        _check_restored(c, loc_state.arrays, rec.refs)
        for spec in case.arrays:
            fa = full_state.arrays.get(spec.name)
            la = loc_state.arrays.get(spec.name)
            if fa is None or la is None:
                continue  # _check_restored already flagged it
            c.check(
                np.array_equal(fa.defined_mask(), la.defined_mask()),
                f"array {spec.name!r}: defined masks differ between "
                "localized and full recovery",
            )
            c.check(
                fa.to_global(fill=0).tobytes()
                == la.to_global(fill=0).tobytes(),
                f"array {spec.name!r}: localized recovery bytes differ "
                "from the full restore",
            )
        c.check(
            loc_state.segment.serialize() == full_state.segment.serialize(),
            "localized and full recovery restored different segments",
        )
        c.check(
            loc_state.manifest == full_state.manifest,
            "localized and full recovery surfaced different manifests",
        )
        c.check(
            loc_bd.segment_bytes == full_bd.segment_bytes,
            f"segment byte ledgers differ: localized "
            f"{loc_bd.segment_bytes} vs full {full_bd.segment_bytes}",
        )
        c.check(
            loc_bd.arrays_bytes == full_bd.arrays_bytes,
            f"array byte ledgers differ: localized {loc_bd.arrays_bytes} "
            f"vs full {full_bd.arrays_bytes}",
        )
        c.check(
            [(nm, nb) for nm, _, nb in loc_bd.per_array]
            == [(nm, nb) for nm, _, nb in full_bd.per_array],
            "per-array byte ledgers differ between localized and full "
            "recovery",
        )

        # -- scope consistency -----------------------------------------
        want_lost = tuple(
            sorted(r for r, nd in placement.items() if nd in failed)
        )
        c.check(
            scope.lost_ranks == want_lost,
            f"rebuild scope lost ranks {scope.lost_ranks} != placement "
            f"ground truth {want_lost}",
        )
        for a in scope.arrays:
            covered = sum(a.rank_bytes.values())
            c.check(
                covered <= a.nbytes,
                f"scope of {a.name!r}: assigned bytes {covered} exceed "
                f"the array stream {a.nbytes}",
            )
            ilost = sum(hi - lo for lo, hi in a.lost_intervals)
            c.check(
                ilost == a.lost_bytes,
                f"scope of {a.name!r}: interval total {ilost} != "
                f"lost_bytes {a.lost_bytes}",
            )

        # -- the section-scoped scatter primitive ----------------------
        for i, spec in enumerate(case.arrays):
            arr = loc_state.arrays.get(spec.name)
            if arr is None or not arr.store_data:
                continue
            ref = rec.refs[i]
            flat_vals = np.frombuffer(
                stream_order_bytes(ref, case.order), dtype=np.dtype(spec.dtype)
            )
            for r in scope.lost_ranks:
                arr.local_flat(r)[:] = 0
            rebuild_lost_sections(
                arr, flat_vals, scope.lost_ranks, order=case.order
            )
            got, want = _masked_bytes(arr, ref)
            c.check(
                got == want,
                f"array {spec.name!r}: section-scoped rebuild of the lost "
                "ranks did not reproduce the reference bytes",
            )

        # -- re-replication repair -------------------------------------
        if decision.tier == "l1" and failed_in:
            avoid = sorted(
                {machine.domain_of(nd) for nd in node_repl.values()}
            )
            repair = rereplicate_after_failure(
                store, failed_in, avoid_domains=avoid
            )
            short = set(repair.short)
            with store._lock:
                gen = store._gens[decision.prefix]
                for pieces in (
                    [gen.segment_pieces]
                    + [e.pieces for e in gen.arrays]
                    + gen.task_pieces
                ):
                    for piece in pieces:
                        c.check(
                            not (set(piece.replicas) & failed),
                            f"piece {piece.key}: dead node still listed "
                            "as a replica after re-replication",
                        )
                        live = [
                            nd
                            for nd in piece.replicas
                            if store._replica_valid(piece, nd)
                        ]
                        c.check(
                            len(live) >= store.k + 1
                            or piece.key in short,
                            f"piece {piece.key}: {len(live)} valid "
                            f"replicas after repair, need {store.k + 1} "
                            "(and not recorded as short)",
                        )
            details["rereplicated"] = repair.copies
    violations = span_tree_violations(tracer)
    c.check(not violations, f"span tree violations: {violations[:3]}")
    details.update(
        {
            "chosen": decision.prefix,
            "tier": decision.tier,
            "lost_ranks": list(scope.lost_ranks)
            if decision.prefix is not None
            else [],
        }
    )
    return c.finish(details)


# -- coupled-workflow fault mode --------------------------------------------


def _workflow_base_array(case: Case, member_index: int) -> np.ndarray:
    """Deterministic per-member initial state of the workflow oracle's
    evolving array (well-conditioned floats, so the ``+= 1.0`` update
    is byte-deterministic across task counts)."""
    rng = np.random.default_rng(
        (case.data_seed * 1_000_003 + member_index * 7919 + 11) & 0x7FFFFFFF
    )
    return rng.random(tuple(case.shape), dtype=np.float64)


def _workflow_ref(base: np.ndarray, iterations: int) -> np.ndarray:
    """The analytic value of a member's ``u`` after ``iterations``
    applications of the update, replayed with the member's exact
    operation order (one ``+ 1.0`` per iteration, never a fused
    ``+ n``)."""
    ref = base.copy()
    for _ in range(iterations):
        ref = ref + 1.0
    return ref


def _apply_workflow_corruption(
    pfs: PIOFS, case: Case, base: str, members: List[str]
) -> None:
    """Post-run persistent corruption of member generation files.
    Flips that land on no stored byte and deletions of files that do
    not exist are inert by design — the ground-truth snapshot diff sees
    exactly what the recovery walk sees."""
    from repro.checkpoint.format import manifest_name

    for ev in case.events:
        if ev.kind not in ("stored_flip", "gen_loss"):
            continue
        member = members[ev.member % len(members)]
        prefix = f"{base}.{member}.{ev.gen:06d}"
        if ev.kind == "gen_loss":
            try:
                pfs.unlink(manifest_name(prefix))
            except PFSError:
                continue
            continue
        if ev.target == "segment":
            fname = segment_name(prefix)
        else:
            fname = array_name(prefix, ("u", "inbox")[ev.array_index % 2])
        try:
            size = pfs.file_size(fname)
            if size <= 0:
                continue
            flip_stored_bit(pfs, fname, ev.offset % size, ev.bit)
        except PFSError:
            continue


def _run_workflow(case: Case) -> CaseResult:
    """The coupled-workflow oracle: run an ensemble of ``members``
    applications coupled in a ring (each member's ``u`` feeds the next
    member's ``inbox`` at every exchange boundary), committing one
    workflow line per iteration.  After the run the oracle snapshots
    every member generation byte-for-byte, applies the case's post-run
    corruption schedule (stored flips, lost member manifests), and
    computes ground truth *independently of the recovery code*: a line
    is valid iff every member's files still byte-match the snapshot.

    The invariants: the workflow recovery walk must land exactly on the
    newest fully-valid line and reject exactly the torn newer ones *as
    units*; the ensemble restart (each member on an independently drawn
    new task count) must restore every member byte-identically to the
    chosen line's analytic reference — including each ``inbox``
    matching its peer's ``u`` on the same line, the cross-member
    consistency the common boundary guarantees — and resume to the same
    final state as an uninterrupted run, numbering new lines strictly
    after every old one."""
    from repro.checkpoint.format import manifest_name
    from repro.drms import CheckpointStatus
    from repro.drms.api import (
        drms_adjust,
        drms_create_distribution,
        drms_distribute,
        drms_initialize,
    )
    from repro.errors import WorkflowError
    from repro.workflow import WorkflowCoordinator

    c = _Checker(case)
    machine = Machine(MachineParams(num_nodes=case.num_nodes))
    pfs = PIOFS(machine=machine)
    base = "wf.ck"
    members = [f"m{i}" for i in range(case.members)]
    bases_np = {
        m: _workflow_base_array(case, i) for i, m in enumerate(members)
    }
    niter = case.generations
    tasks1 = dict(zip(members, case.workflow_tasks1()))
    tasks2 = dict(zip(members, case.workflow_tasks2()))
    restored: Dict[str, Dict[str, object]] = {}

    def member_main(ctx, name, base_arr):
        drms_initialize(ctx)
        dist = drms_create_distribution(ctx, tuple(case.shape))
        u = drms_distribute(
            ctx, "u", dist, dtype=np.float64,
            init_global=lambda s: base_arr.copy(),
        )
        inbox = drms_distribute(
            ctx, "inbox", dist, dtype=np.float64,
            init_global=lambda s: np.zeros(s),
        )
        for it in ctx.iterations(1, niter + 1):
            status, delta = ctx.workflow_exchange(final=(it == niter))
            if status is CheckpointStatus.RESTARTED:
                if delta != 0:
                    u = drms_distribute(ctx, "u", drms_adjust(ctx, "u"))
                    inbox = drms_distribute(
                        ctx, "inbox", drms_adjust(ctx, "inbox")
                    )
                if ctx.rank == 0:
                    restored[name] = {
                        "u": u.array.to_global(fill=0).tobytes(),
                        "inbox": inbox.array.to_global(fill=0).tobytes(),
                        "iteration": it,
                    }
                # every rank takes this branch on restart, so the
                # barrier is collective: siblings must not start
                # mutating the arrays while rank 0 snapshots them
                ctx.barrier()
            u.set_assigned(u.assigned + 1.0)
            ctx.barrier()
        return None

    with use_tracer(Tracer()):
        coord = WorkflowCoordinator(base, machine=machine, pfs=pfs)
        for m in members:
            coord.add_member(m, member_main, args=(m, bases_np[m]))
        for i, m in enumerate(members):
            coord.couple(m, "u", members[(i + 1) % len(members)], "inbox")

        report = coord.run(tasks1)
        committed = coord.committed_generations()
        c.check(
            committed == list(range(1, niter + 1)),
            f"initial run committed lines {committed}, expected "
            f"1..{niter}",
        )
        c.check(
            len(report.lines) == niter,
            f"run report carries {len(report.lines)} lines, expected {niter}",
        )
        for line in report.lines:
            c.check(
                set(line.members) == set(members),
                f"line {line.generation} covers {sorted(line.members)}, "
                f"expected all of {members}",
            )
            for m in members:
                entry = line.members.get(m, {})
                c.check(
                    entry.get("ntasks") == tasks1[m]
                    and entry.get("iteration") == line.generation,
                    f"line {line.generation} member {m}: recorded "
                    f"(ntasks={entry.get('ntasks')}, "
                    f"iteration={entry.get('iteration')}) != "
                    f"({tasks1[m]}, {line.generation})",
                )

        # byte-level snapshot of every member generation: the intent
        # record the post-corruption ground truth diffs against
        snapshots: Dict[int, Dict[str, Dict[str, bytes]]] = {}
        for g in committed:
            snapshots[g] = {}
            for m in members:
                prefix = f"{base}.{m}.{g:06d}"
                files = {}
                for fname in pfs.listdir(prefix + "."):
                    size = pfs.file_size(fname)
                    files[fname] = pfs.read_at(fname, 0, size) if size else b""
                c.check(
                    manifest_name(prefix) in files,
                    f"member {m} generation {g} committed no manifest",
                )
                snapshots[g][m] = files

        _apply_workflow_corruption(pfs, case, base, members)

        def member_intact(g: int, m: str) -> bool:
            for fname, want in snapshots[g][m].items():
                if not pfs.exists(fname) or pfs.file_size(fname) != len(want):
                    return False
                if want and pfs.read_at(fname, 0, len(want)) != want:
                    return False
            return True

        valid = {
            g: all(member_intact(g, m) for m in members) for g in committed
        }
        expected_gen = max((g for g in committed if valid[g]), default=None)
        want_rejected = {
            g
            for g in committed
            if not valid[g] and (expected_gen is None or g > expected_gen)
        }

        decision = coord.select_restart_line()
        c.check(
            decision.generation == expected_gen,
            f"workflow recovery chose line {decision.generation}; newest "
            f"fully-valid line is {expected_gen}",
        )
        got_rejected = {g for g, _ in decision.rejected}
        c.check(
            got_rejected == want_rejected,
            f"rejected lines {sorted(got_rejected)} != torn-newer set "
            f"{sorted(want_rejected)}",
        )
        details: Dict[str, object] = {
            "expected_gen": expected_gen,
            "chosen": decision.generation,
            "committed": committed,
            "valid": sorted(g for g in committed if valid[g]),
            "rejected": sorted(got_rejected),
        }
        if expected_gen is None:
            try:
                coord.restart_workflow(tasks2)
                c.check(
                    False,
                    "every line is torn but restart_workflow still "
                    "relaunched the ensemble",
                )
            except WorkflowError:
                c.checked += 1
            return c.finish(details)

        c.check(
            all(t == "l2" for t in decision.member_tiers.values())
            and set(decision.member_tiers) == set(members),
            f"pfs-tier ensemble reported member tiers "
            f"{decision.member_tiers}",
        )

        report2 = coord.restart_workflow(tasks2)
        g = expected_gen
        for i, m in enumerate(members):
            rec = restored.get(m)
            if not c.check(
                rec is not None,
                f"member {m} never reported a restored state",
            ):
                continue
            c.check(
                rec["iteration"] == g,
                f"member {m} resumed at iteration {rec['iteration']}, "
                f"line {g} was taken at iteration {g}",
            )
            ref_u = _workflow_ref(bases_np[m], g - 1)
            c.check(
                rec["u"] == ref_u.tobytes(),
                f"member {m}: restored 'u' differs from line {g}'s "
                "analytic reference bytes",
            )
            src = members[(i - 1) % len(members)]
            ref_inbox = _workflow_ref(bases_np[src], g - 1)
            c.check(
                rec["inbox"] == ref_inbox.tobytes(),
                f"member {m}: restored 'inbox' differs from peer "
                f"{src}'s 'u' on line {g} — the line is not mutually "
                "consistent",
            )
        c.check(
            report2.decision is not None
            and report2.decision.generation == expected_gen,
            "restart_workflow recorded a different decision than the "
            "recovery walk",
        )
        new_gens = [line.generation for line in report2.lines]
        c.check(
            len(new_gens) == niter - g,
            f"resumed run committed {len(new_gens)} lines from "
            f"iteration {g}, expected {niter - g}",
        )
        c.check(
            all(ng > niter for ng in new_gens),
            f"resumed lines {new_gens} reuse generation numbers "
            f"<= {niter}",
        )
        final_ref = {
            m: _workflow_ref(bases_np[m], niter) for m in members
        }
        for m in members:
            arr = report2.members[m].arrays.get("u")
            if not c.check(
                arr is not None, f"member {m} finished without 'u'"
            ):
                continue
            c.check(
                arr.to_global(fill=0).tobytes() == final_ref[m].tobytes(),
                f"member {m}: resumed final state differs from an "
                "uninterrupted run's",
            )
        details["restart_tasks"] = tasks2
        details["new_lines"] = new_gens
    return c.finish(details)


# -- entry points -----------------------------------------------------------


def run_case(case: Case) -> CaseResult:
    """Run one case's oracle; raises :class:`VerifyFailure` on any
    invariant violation (regardless of the case's ``expect`` field)."""
    if case.type == "fault":
        if case.workflow:
            return _run_workflow(case)
        if case.localized:
            return _run_localized(case)
        if case.tier == "memory+pfs":
            return _run_mlck_fault(case)
        return _run_fault(case)
    if case.engine == "drms":
        return _run_drms(case)
    if case.engine == "incremental":
        return _run_incremental(case)
    return _run_spmd(case)


def replay_case(case: Case) -> CaseResult:
    """Run one case and hold it to its recorded expectation: an
    ``expect: pass`` case must run clean, an ``expect: fail`` case (a
    shrunk known-bad reproducer) must still fail the same way."""
    try:
        result = run_case(case)
    except VerifyFailure as exc:
        if case.expect == "fail":
            return CaseResult(
                case, checked=1, details={"failed_as_expected": exc.errors}
            )
        raise
    if case.expect == "fail":
        raise VerifyFailure(
            case,
            [
                "case is recorded as a failing reproducer but every "
                "invariant now holds"
            ],
        )
    return result
