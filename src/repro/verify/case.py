"""Replayable case files for the differential reconfiguration harness.

A *case* is the complete, JSON-serializable description of one
generated experiment:

* a **reconfig** case checkpoints a randomly distributed workload with
  ``t1`` tasks (``p1`` I/O tasks) through one engine and restarts it
  with ``t2`` tasks (``p2`` I/O tasks) under an independently drawn
  destination distribution, asserting bit-identical contents plus the
  manifest/metrics/span invariants of :mod:`repro.verify.oracle`;
* a **fault** case additionally runs ``generations`` checkpoint
  attempts under a schedule of injected I/O faults
  (:mod:`repro.pfs.faults`) and asserts that the recovery policy lands
  on the newest checkpoint that is *actually* valid byte-for-byte.

Cases round-trip through JSON (``Case.to_json`` / ``Case.from_json``)
so a failing case shrunk by :mod:`repro.verify.shrink` can be checked
in under ``tests/verify/cases/`` and replayed forever with::

    python -m repro.verify replay tests/verify/cases/<case>.json

Distribution geometry is stored in the same axis-spec vocabulary the
checkpoint manifests use (:func:`repro.checkpoint.format.axis_to_spec`),
so a case file is readable next to a manifest.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.arrays.distributions import Distribution
from repro.checkpoint.format import spec_to_axis
from repro.errors import ReproError


class CaseError(ReproError):
    """A malformed or unreadable case file."""


#: bump when the case schema changes incompatibly
CASE_VERSION = 1

ENGINES = ("drms", "spmd", "incremental")
POLICIES = ("validated", "naive")
EXPECTATIONS = ("pass", "fail")
EVENT_KINDS = ("write", "stored_flip", "node_loss", "drain_crash", "gen_loss")
TIERS = ("pfs", "memory+pfs")


@dataclass
class ArrayCase:
    """One distributed array of a case: its dtype plus the source
    (checkpoint-time) and destination (restart-time) geometry."""

    name: str
    dtype: str
    #: axis specs (manifest vocabulary), one per array axis
    axes1: List[Dict[str, Any]]
    axes2: List[Dict[str, Any]]
    shadow1: List[int]
    shadow2: List[int]


@dataclass
class FaultEvent:
    """One scheduled fault, bound to checkpoint generation ``gen``
    (1-based).  ``kind == "write"`` arms a
    :class:`~repro.pfs.faults.WriteFault` for that generation's
    checkpoint; ``kind == "stored_flip"`` persistently flips a stored
    bit of one of the generation's files after the checkpoint call.
    Events that never match anything (wrong generation, no stored byte
    at the offset) are inert — the shrinker removes them.

    Multi-level (``tier="memory+pfs"``) cases add two kinds:
    ``kind == "node_loss"`` kills node ``node`` after generation
    ``gen``'s capture+drain round — its L1 replica memory is gone;
    ``kind == "drain_crash"`` arms a write fault (the write-fault
    fields) against generation ``gen``'s *drain*, so the generation
    stays memory-only (no manifest ever commits — two-phase commit).
    Plain ``write`` events in an mlck case also target the drain:
    silent modes ("short"/"torn") corrupt the durable copy while the
    memory replicas stay good.

    Workflow cases (``workflow=True``) bind events to one *member* of
    the ensemble (``member``, an index into the member list):
    ``stored_flip`` corrupts that member's slice of workflow generation
    ``gen`` after the run, and ``kind == "gen_loss"`` deletes the
    member's generation manifest outright — either way the whole
    workflow line must be rejected as a unit."""

    kind: str
    gen: int = 1
    # write faults
    nth: int = 1
    match: str = ""
    mode: str = "fail"
    keep_bytes: Optional[int] = None
    # stored flips
    target: str = "array"  # "segment" | "array"
    array_index: int = 0
    offset: int = 0
    bit: int = 0
    # node losses (tier="memory+pfs")
    node: int = 0
    # workflow member the event targets (index into the member list)
    member: int = 0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise CaseError(f"unknown fault-event kind {self.kind!r}")
        if self.gen < 1:
            raise CaseError("fault events bind to 1-based generations")


@dataclass
class Case:
    """One replayable harness case (see module docstring)."""

    type: str  # "reconfig" | "fault"
    engine: str
    order: str
    shape: List[int]
    t1: int
    p1: int
    t2: int
    p2: int
    grid1: List[int]
    grid2: List[int]
    arrays: List[ArrayCase]
    target_bytes: int
    data_seed: int
    #: per-task SPMD segment size (ignored by the other engines)
    segment_bytes: int = 4096
    #: the generator seed this case came from (informational)
    seed: int = 0
    # -- fault mode ------------------------------------------------------
    generations: int = 0
    events: List[FaultEvent] = field(default_factory=list)
    policy: str = "validated"
    expect: str = "pass"
    note: str = ""
    #: checkpoint store tier ("memory+pfs" routes fault cases through
    #: the multi-level oracle: L1 capture + drain + tier-aware recovery)
    tier: str = "pfs"
    #: simulated node count for tier="memory+pfs" cases
    num_nodes: int = 8
    #: replica count of the L1 store (owner + k partners)
    k: int = 1
    #: route this fault case through the localized-vs-full differential
    #: oracle: both recovery paths must produce byte-identical state
    localized: bool = False
    #: route this fault case through the coupled-workflow oracle: an
    #: ensemble of ``members`` applications checkpointed as workflow
    #: lines, post-run corruption tearing lines that the recovery walk
    #: must reject as units
    workflow: bool = False
    #: ensemble size of a workflow case
    members: int = 2
    #: per-member task counts for the initial run / the ensemble
    #: restart (empty lists fall back to ``t1`` / ``t2`` for all)
    member_tasks1: List[int] = field(default_factory=list)
    member_tasks2: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.type not in ("reconfig", "fault"):
            raise CaseError(f"unknown case type {self.type!r}")
        if self.engine not in ENGINES:
            raise CaseError(f"unknown engine {self.engine!r}")
        if self.policy not in POLICIES:
            raise CaseError(f"unknown recovery policy {self.policy!r}")
        if self.expect not in EXPECTATIONS:
            raise CaseError(f"unknown expectation {self.expect!r}")
        if self.tier not in TIERS:
            raise CaseError(f"unknown checkpoint tier {self.tier!r}")
        if self.tier != "pfs" and self.num_nodes < 2:
            raise CaseError("memory-tier cases need at least 2 nodes")
        if self.k < 0:
            raise CaseError(f"replica count k={self.k} must be >= 0")
        if self.localized and (self.type != "fault" or self.tier != "memory+pfs"):
            raise CaseError(
                "localized cases are fault cases on the memory+pfs tier"
            )
        if self.workflow:
            if self.type != "fault" or self.tier != "pfs" or self.localized:
                raise CaseError(
                    "workflow cases are fault cases on the pfs tier"
                )
            if self.members < 2:
                raise CaseError("workflow cases need at least 2 members")
            for fname, tasks in (
                ("member_tasks1", self.member_tasks1),
                ("member_tasks2", self.member_tasks2),
            ):
                if tasks and len(tasks) != self.members:
                    raise CaseError(
                        f"{fname} has {len(tasks)} entries for "
                        f"{self.members} members"
                    )
                if any(t < 1 for t in tasks):
                    raise CaseError(f"{fname} entries must be >= 1")
        if self.engine == "spmd" and self.t2 != self.t1:
            raise CaseError(
                "SPMD restart is only conforming on the checkpointing "
                f"task count (t1={self.t1}, t2={self.t2})"
            )
        if not 1 <= self.p1 <= self.t1:
            raise CaseError(f"p1={self.p1} outside 1..t1={self.t1}")
        if not 1 <= self.p2 <= self.t2:
            raise CaseError(f"p2={self.p2} outside 1..t2={self.t2}")

    # -- workflow geometry ----------------------------------------------

    def workflow_tasks1(self) -> List[int]:
        """Per-member task counts of a workflow case's initial run."""
        return list(self.member_tasks1) or [self.t1] * self.members

    def workflow_tasks2(self) -> List[int]:
        """Per-member task counts of the ensemble restart."""
        return list(self.member_tasks2) or [self.t2] * self.members

    # -- geometry --------------------------------------------------------

    def distribution1(self, arr: ArrayCase) -> Distribution:
        """The checkpoint-time distribution of ``arr`` (t1 tasks)."""
        return Distribution(
            self.shape,
            [spec_to_axis(s) for s in arr.axes1],
            ntasks=self.t1,
            grid=self.grid1,
            shadow=arr.shadow1,
        )

    def distribution2(self, arr: ArrayCase) -> Distribution:
        """The restart-time distribution of ``arr`` (t2 tasks)."""
        return Distribution(
            self.shape,
            [spec_to_axis(s) for s in arr.axes2],
            ntasks=self.t2,
            grid=self.grid2,
            shadow=arr.shadow2,
        )

    # -- JSON ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The case as a version-stamped JSON-able dict."""
        out = asdict(self)
        out["version"] = CASE_VERSION
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, blob: Dict[str, Any]) -> "Case":
        blob = dict(blob)
        version = blob.pop("version", CASE_VERSION)
        if version != CASE_VERSION:
            raise CaseError(
                f"case schema version {version} != supported {CASE_VERSION}"
            )
        try:
            blob["arrays"] = [ArrayCase(**a) for a in blob.get("arrays", [])]
            blob["events"] = [FaultEvent(**e) for e in blob.get("events", [])]
            return cls(**blob)
        except TypeError as exc:
            raise CaseError(f"malformed case: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "Case":
        try:
            blob = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CaseError(f"case file is not JSON: {exc}") from exc
        if not isinstance(blob, dict):
            raise CaseError("case file must hold a JSON object")
        return cls.from_dict(blob)

    def save(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "Case":
        with open(path) as fh:
            return cls.from_json(fh.read())

    def label(self) -> str:
        """One-line human summary for harness output."""
        core = (
            f"{self.engine} {tuple(self.shape)} "
            f"(t1={self.t1},p1={self.p1})->(t2={self.t2},p2={self.p2}) "
            f"order={self.order}"
        )
        if self.type == "fault":
            core += (
                f" gens={self.generations} events={len(self.events)} "
                f"policy={self.policy} expect={self.expect}"
            )
        if self.tier != "pfs":
            core += f" tier={self.tier} nodes={self.num_nodes} k={self.k}"
        if self.localized:
            core += " localized"
        if self.workflow:
            core += (
                f" workflow members={self.members} "
                f"tasks={self.workflow_tasks1()}->{self.workflow_tasks2()}"
            )
        return core


__all__ = [
    "ArrayCase",
    "Case",
    "CaseError",
    "CASE_VERSION",
    "ENGINES",
    "FaultEvent",
    "TIERS",
]
