"""Seeded generators for the differential reconfiguration harness.

Hypothesis-style random construction of the paper's geometry vocabulary
— ranges, slices, per-axis distribution kinds (BLOCK, CYCLIC,
CYCLIC(k), GENBLOCK, INDEXED, replicated), process grids — and of whole
:class:`~repro.verify.case.Case` experiments.  Everything is driven by
one :class:`random.Random` so a suite run is a pure function of its
seed; a failing case is replayable from its JSON dump alone.

The generators deliberately favor the degenerate corners example-based
tests skip: 1-element axes, task counts larger than axis extents (empty
assigned sections), partial INDEXED coverage (undefined elements),
shadowed mapped sections, and ``t1 > t2`` shrinking reconfigurations as
well as ``t1 < t2`` growing ones.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.arrays.distributions import (
    AxisDistribution,
    Block,
    BlockCyclic,
    Cyclic,
    Distribution,
    GenBlock,
    Indexed,
    Replicated,
)
from repro.arrays.ranges import Range
from repro.arrays.slices import Slice
from repro.checkpoint.format import axis_to_spec
from repro.verify.case import ArrayCase, Case, FaultEvent

__all__ = [
    "CaseGen",
    "known_bad_case",
    "localized_equivalence_case",
    "localized_pfs_fallback_case",
    "lost_member_generation_case",
    "mid_drain_crash_case",
    "node_loss_case",
    "random_axis",
    "random_distribution",
    "random_grid",
    "random_range",
    "random_shape",
    "random_slice",
    "torn_workflow_case",
]

_DTYPES = ("float64", "float32", "int64", "int32", "int16", "uint8")
_TARGET_BYTES = (64, 256, 1024, 4096)


def random_shape(rng: random.Random, max_rank: int = 3, max_extent: int = 9) -> List[int]:
    """A small random array shape, biased toward degenerate extents."""
    rank = rng.randint(1, max_rank)
    shape = []
    for _ in range(rank):
        if rng.random() < 0.2:
            shape.append(1)  # degenerate 1-element axis
        else:
            shape.append(rng.randint(2, max_extent))
    return shape


def random_range(rng: random.Random, extent: int) -> Range:
    """A random subrange of ``0..extent-1``: regular (any stride),
    indexed, or empty."""
    roll = rng.random()
    if roll < 0.1 or extent == 0:
        return Range.empty()
    if roll < 0.75:
        lo = rng.randrange(extent)
        hi = rng.randrange(lo, extent)
        step = rng.choice([1, 1, 1, 2, 3])
        return Range.regular(lo, hi, step)
    k = rng.randint(1, extent)
    return Range(sorted(rng.sample(range(extent), k)))


def random_slice(rng: random.Random, shape: Sequence[int]) -> Slice:
    """A random section of an array of the given shape."""
    return Slice([random_range(rng, int(n)) for n in shape])


def random_grid(rng: random.Random, ntasks: int, rank: int) -> List[int]:
    """A random process grid: ``rank`` factors multiplying to
    ``ntasks`` (prime factors thrown onto random axes)."""
    grid = [1] * rank
    m = ntasks
    f = 2
    while m > 1:
        while m % f == 0:
            grid[rng.randrange(rank)] *= f
            m //= f
        f += 1 if f == 2 else 2
        if f * f > m and m > 1:
            grid[rng.randrange(rank)] *= m
            m = 1
    return grid


def _composition(rng: random.Random, total: int, parts: int) -> List[int]:
    """``parts`` non-negative integers summing to ``total``."""
    cuts = sorted(rng.randint(0, total) for _ in range(parts - 1))
    bounds = [0] + cuts + [total]
    return [bounds[i + 1] - bounds[i] for i in range(parts)]


def random_axis(
    rng: random.Random,
    nprocs: int,
    extent: int,
    allow_indexed: bool = True,
    allow_replicated: bool = True,
) -> AxisDistribution:
    """A random per-axis distribution legal for ``nprocs`` grid coords
    over ``extent`` elements."""
    if allow_replicated and nprocs == 1 and rng.random() < 0.15:
        return Replicated()
    kinds = ["block", "cyclic", "block_cyclic", "gen_block"]
    weights = [30, 20, 20, 15]
    if allow_indexed:
        kinds.append("indexed")
        weights.append(15)
    kind = rng.choices(kinds, weights=weights)[0]
    if kind == "block":
        return Block()
    if kind == "cyclic":
        return Cyclic()
    if kind == "block_cyclic":
        return BlockCyclic(block=rng.randint(1, 3))
    if kind == "gen_block":
        return GenBlock(_composition(rng, extent, nprocs))
    # indexed: contiguous chunks with random boundaries; occasionally
    # partial (a chunk shrunk or dropped — undefined elements)
    sizes = _composition(rng, extent, nprocs)
    ranges: List[Range] = []
    start = 0
    for size in sizes:
        if size == 0:
            ranges.append(Range.empty())
        else:
            lo, hi = start, start + size - 1
            if rng.random() < 0.25:  # partial coverage
                if rng.random() < 0.5:
                    ranges.append(Range.empty())
                else:
                    hi = rng.randint(lo, hi)
                    ranges.append(Range.regular(lo, hi, 1))
            else:
                ranges.append(Range.regular(lo, hi, 1))
        start += size
    return Indexed(ranges)


def _random_shadow(
    rng: random.Random, axes: Sequence[AxisDistribution]
) -> List[int]:
    """Shadow widths; nonzero only where assigned ranges are contiguous
    enough for halo expansion to mean anything."""
    out = []
    for ax in axes:
        if isinstance(ax, (Block, GenBlock)) and rng.random() < 0.3:
            out.append(rng.randint(1, 2))
        else:
            out.append(0)
    return out


def random_distribution(
    rng: random.Random,
    shape: Sequence[int],
    ntasks: int,
    allow_indexed: bool = True,
) -> Distribution:
    """A full random :class:`Distribution` of ``shape`` over
    ``ntasks`` tasks (random grid, per-axis kinds, shadows)."""
    grid = random_grid(rng, ntasks, len(shape))
    axes = [
        random_axis(rng, grid[i], int(shape[i]), allow_indexed=allow_indexed)
        for i in range(len(shape))
    ]
    return Distribution(
        shape, axes, ntasks=ntasks, grid=grid, shadow=_random_shadow(rng, axes)
    )


class CaseGen:
    """Deterministic case factory: one seed → one reproducible stream
    of reconfiguration and fault cases."""

    def __init__(self, seed: int):
        self.seed = int(seed)
        self.rng = random.Random(self.seed)

    # -- geometry for one case ------------------------------------------

    def _array_cases(
        self,
        shape: List[int],
        t1: int,
        t2: int,
        grid1: List[int],
        grid2: List[int],
        allow_indexed: bool = True,
        allow_replicated: bool = True,
    ) -> List[ArrayCase]:
        rng = self.rng
        out = []
        for i in range(rng.choice([1, 1, 2])):
            axes1 = [
                random_axis(
                    rng, grid1[k], shape[k],
                    allow_indexed=allow_indexed,
                    allow_replicated=allow_replicated,
                )
                for k in range(len(shape))
            ]
            axes2 = [
                random_axis(
                    rng, grid2[k], shape[k],
                    allow_indexed=allow_indexed,
                    allow_replicated=allow_replicated,
                )
                for k in range(len(shape))
            ]
            out.append(
                ArrayCase(
                    name=f"A{i}",
                    dtype=rng.choice(_DTYPES),
                    axes1=[axis_to_spec(a) for a in axes1],
                    axes2=[axis_to_spec(a) for a in axes2],
                    shadow1=_random_shadow(rng, axes1),
                    shadow2=_random_shadow(rng, axes2),
                )
            )
        return out

    # -- reconfiguration cases ------------------------------------------

    def reconfig_case(self, engine: Optional[str] = None) -> Case:
        """One random ``(t1, p1) -> (t2, p2)`` equivalence case."""
        rng = self.rng
        engine = engine or rng.choices(
            ["drms", "spmd", "incremental"], weights=[55, 15, 30]
        )[0]
        shape = random_shape(rng)
        t1 = rng.randint(1, 6)
        t2 = t1 if engine == "spmd" else rng.randint(1, 6)
        p1 = rng.randint(1, t1)
        if engine == "incremental":
            # restore() streams with the checkpointing I/O task count,
            # which must fit the restart task pool
            p1 = rng.randint(1, min(t1, t2))
        p2 = rng.randint(1, t2)
        grid1 = random_grid(rng, t1, len(shape))
        grid2 = random_grid(rng, t2, len(shape))
        return Case(
            type="reconfig",
            engine=engine,
            order=rng.choice(["F", "C"]),
            shape=shape,
            t1=t1,
            p1=p1,
            t2=t2,
            p2=p2,
            grid1=grid1,
            grid2=grid2,
            # the incremental engine restores through the stored spec's
            # adjust() path (no per-array overrides), which cannot
            # re-host a fully replicated array on a larger task pool
            arrays=self._array_cases(
                shape, t1, t2, grid1, grid2,
                allow_replicated=(engine != "incremental"),
            ),
            target_bytes=rng.choice(_TARGET_BYTES),
            data_seed=rng.randrange(1 << 30),
            segment_bytes=rng.choice([256, 1024, 4096]),
            seed=self.seed,
        )

    # -- fault cases -----------------------------------------------------

    def _fault_event(self, generations: int) -> FaultEvent:
        rng = self.rng
        gen = rng.randint(1, generations)
        if rng.random() < 0.7:
            return FaultEvent(
                kind="write",
                gen=gen,
                nth=rng.randint(1, 3),
                match=rng.choice(["", ".segment", ".array", ".manifest"]),
                mode=rng.choices(
                    ["fail", "torn", "short"], weights=[30, 30, 40]
                )[0],
                keep_bytes=rng.choice([None, 0, 1, 7]),
            )
        return FaultEvent(
            kind="stored_flip",
            gen=gen,
            target=rng.choice(["segment", "array"]),
            array_index=0,
            offset=rng.randrange(4096),
            bit=rng.randrange(8),
        )

    def _mlck_event(self, generations: int, num_nodes: int) -> FaultEvent:
        rng = self.rng
        gen = rng.randint(1, generations)
        roll = rng.random()
        if roll < 0.4:
            return FaultEvent(
                kind="node_loss", gen=gen, node=rng.randrange(num_nodes)
            )
        if roll < 0.7:
            return FaultEvent(
                kind="drain_crash",
                gen=gen,
                nth=rng.randint(1, 3),
                match=rng.choice(["", ".segment", ".array", ".manifest"]),
            )
        return FaultEvent(
            kind="write",
            gen=gen,
            nth=rng.randint(1, 3),
            match=rng.choice(["", ".segment", ".array"]),
            mode=rng.choice(["short", "torn"]),
            keep_bytes=rng.choice([None, 0, 1, 7]),
        )

    def mlck_fault_case(self) -> Case:
        """One random multi-level fault case: node losses, mid-drain
        crashes, and silent durable-copy corruption; the tier-aware
        recovery walk must land on the newest generation servable from
        *either* tier and name the tier the schedule's ground truth
        predicts."""
        rng = self.rng
        shape = random_shape(rng, max_rank=2, max_extent=8)
        t1 = rng.randint(1, 4)
        t2 = rng.randint(1, 4)
        p1 = rng.randint(1, t1)
        p2 = rng.randint(1, t2)
        grid1 = random_grid(rng, t1, len(shape))
        grid2 = random_grid(rng, t2, len(shape))
        generations = rng.randint(2, 4)
        num_nodes = rng.choice([4, 8])
        events = [
            self._mlck_event(generations, num_nodes)
            for _ in range(rng.randint(1, 4))
        ]
        return Case(
            type="fault",
            engine="drms",
            order=rng.choice(["F", "C"]),
            shape=shape,
            t1=t1,
            p1=p1,
            t2=t2,
            p2=p2,
            grid1=grid1,
            grid2=grid2,
            arrays=self._array_cases(shape, t1, t2, grid1, grid2),
            target_bytes=rng.choice(_TARGET_BYTES),
            data_seed=rng.randrange(1 << 30),
            seed=self.seed,
            generations=generations,
            events=events,
            policy="validated",
            expect="pass",
            tier="memory+pfs",
            num_nodes=num_nodes,
        )

    def localized_case(self) -> Case:
        """One random localized-equivalence case: a seeded (failure
        schedule, k-replica, node-count) triple run through *both*
        recovery paths by the differential oracle — localized recovery
        must produce byte-identical state to the full restore, on the
        L1 happy path and through the PFS fallback alike."""
        rng = self.rng
        shape = random_shape(rng, max_rank=2, max_extent=8)
        t1 = rng.randint(1, 4)
        t2 = rng.randint(1, 4)
        p1 = rng.randint(1, t1)
        p2 = rng.randint(1, t2)
        grid1 = random_grid(rng, t1, len(shape))
        grid2 = random_grid(rng, t2, len(shape))
        generations = rng.randint(2, 4)
        num_nodes = rng.choice([6, 8, 12])
        k = rng.choice([1, 1, 2])
        events = [
            self._mlck_event(generations, num_nodes)
            for _ in range(rng.randint(1, 4))
        ]
        return Case(
            type="fault",
            engine="drms",
            order=rng.choice(["F", "C"]),
            shape=shape,
            t1=t1,
            p1=p1,
            t2=t2,
            p2=p2,
            grid1=grid1,
            grid2=grid2,
            arrays=self._array_cases(shape, t1, t2, grid1, grid2),
            target_bytes=rng.choice(_TARGET_BYTES),
            data_seed=rng.randrange(1 << 30),
            seed=self.seed,
            generations=generations,
            events=events,
            policy="validated",
            expect="pass",
            tier="memory+pfs",
            num_nodes=num_nodes,
            k=k,
            localized=True,
        )

    def _workflow_event(self, generations: int, members: int) -> FaultEvent:
        rng = self.rng
        gen = rng.randint(1, generations)
        member = rng.randrange(members)
        if rng.random() < 0.65:
            return FaultEvent(
                kind="stored_flip",
                gen=gen,
                member=member,
                target=rng.choice(["segment", "array", "array"]),
                array_index=rng.randrange(2),
                offset=rng.randrange(4096),
                bit=rng.randrange(8),
            )
        return FaultEvent(kind="gen_loss", gen=gen, member=member)

    def workflow_case(self) -> Case:
        """One random coupled-workflow case: a ring-coupled ensemble
        commits one workflow line per exchange, post-run corruption
        tears random members of random lines, and the oracle checks the
        walk rejects torn lines as units, falls back to the newest
        fully-valid one, and restarts every member byte-identically on
        independently drawn new task counts."""
        rng = self.rng
        members = rng.choice([2, 2, 3])
        shape = random_shape(rng, max_rank=2, max_extent=8)
        generations = rng.randint(2, 4)
        mt1 = [rng.randint(1, 3) for _ in range(members)]
        mt2 = [rng.randint(1, 3) for _ in range(members)]
        events = [
            self._workflow_event(generations, members)
            for _ in range(rng.randint(1, 3))
        ]
        t1, t2 = max(mt1), max(mt2)
        return Case(
            type="fault",
            engine="drms",
            order="F",
            shape=shape,
            t1=t1,
            p1=1,
            t2=t2,
            p2=1,
            grid1=random_grid(rng, t1, len(shape)),
            grid2=random_grid(rng, t2, len(shape)),
            arrays=[],
            target_bytes=rng.choice(_TARGET_BYTES),
            data_seed=rng.randrange(1 << 30),
            seed=self.seed,
            generations=generations,
            events=events,
            policy="validated",
            expect="pass",
            num_nodes=rng.choice([8, 16]),
            workflow=True,
            members=members,
            member_tasks1=mt1,
            member_tasks2=mt2,
        )

    def fault_case(self) -> Case:
        """One random fault-schedule case: the validated recovery policy
        must land on the newest byte-for-byte valid generation."""
        rng = self.rng
        shape = random_shape(rng, max_rank=2, max_extent=8)
        t1 = rng.randint(1, 4)
        t2 = rng.randint(1, 4)
        p1 = rng.randint(1, t1)
        p2 = rng.randint(1, t2)
        grid1 = random_grid(rng, t1, len(shape))
        grid2 = random_grid(rng, t2, len(shape))
        generations = rng.randint(2, 4)
        events = [
            self._fault_event(generations)
            for _ in range(rng.randint(1, 4))
        ]
        return Case(
            type="fault",
            engine="drms",
            order=rng.choice(["F", "C"]),
            shape=shape,
            t1=t1,
            p1=p1,
            t2=t2,
            p2=p2,
            grid1=grid1,
            grid2=grid2,
            arrays=self._array_cases(shape, t1, t2, grid1, grid2),
            target_bytes=rng.choice(_TARGET_BYTES),
            data_seed=rng.randrange(1 << 30),
            seed=self.seed,
            generations=generations,
            events=events,
            policy="validated",
            expect="pass",
        )


def _mlck_case_shell(seed: int, **kw) -> Case:
    """Shared fixed geometry of the canonical multi-level schedules."""
    rng = random.Random(seed)
    return Case(
        type="fault",
        engine="drms",
        order="F",
        shape=[6, 4],
        t1=2,
        p1=2,
        t2=3,
        p2=1,
        grid1=[2, 1],
        grid2=[3, 1],
        arrays=[
            ArrayCase(
                name="A0",
                dtype="float64",
                axes1=[{"kind": "block"}, {"kind": "cyclic"}],
                axes2=[{"kind": "cyclic"}, {"kind": "block"}],
                shadow1=[0, 0],
                shadow2=[0, 0],
            )
        ],
        target_bytes=64,
        data_seed=rng.randrange(1 << 30),
        seed=seed,
        policy="validated",
        expect="pass",
        tier="memory+pfs",
        **kw,
    )


def node_loss_case(seed: int = 0) -> Case:
    """The canonical node-loss schedule: every generation drains, then
    one node dies after the last one.  With ``k=1`` partner replication
    the dead node's pieces survive on partners in other failure
    domains, so the tier-aware walk must serve the *newest* generation
    from L1 — without touching the PFS — and the oracle asserts exactly
    that (tier ``l1``, zero PFS reads during the walk)."""
    return _mlck_case_shell(
        seed,
        generations=3,
        num_nodes=8,
        events=[FaultEvent(kind="node_loss", gen=3, node=1)],
        note=(
            "single node loss after the newest generation: partner "
            "replicas serve recovery from memory, no PFS reads"
        ),
    )


def mid_drain_crash_case(seed: int = 0) -> Case:
    """The canonical mid-drain-crash schedule: generation 3's drain
    dies on its first PFS write (no manifest commits — two-phase
    commit), leaving the generation memory-only; then the two nodes
    holding its first piece's replica set die.  Generation 3 is lost on
    both tiers, generation 2's L1 copy lost the same replica pair — so
    the walk must fall back to generation 2's *durable* copy (tier
    ``l2``), the exact double-fault the multi-level design degrades
    gracefully under."""
    return _mlck_case_shell(
        seed,
        generations=3,
        num_nodes=4,
        events=[
            FaultEvent(kind="drain_crash", gen=3, nth=1),
            FaultEvent(kind="node_loss", gen=3, node=0),
            FaultEvent(kind="node_loss", gen=3, node=1),
        ],
        note=(
            "mid-drain crash orphans the newest generation in memory; "
            "losing its replica pair forces the L2 fallback"
        ),
    )


def localized_equivalence_case(seed: int = 0) -> Case:
    """The canonical localized happy path: every generation drains,
    then node 1 (which hosts restart rank 1) dies after the newest one.
    Partner replicas keep the newest generation L1-servable, so the
    differential oracle compares a zero-PFS-read localized recovery
    (survivors reload locally, rank 1's section crosses the switch to a
    spare) against the full L1 restore — bytes must match exactly."""
    return _mlck_case_shell(
        seed,
        generations=3,
        num_nodes=8,
        events=[FaultEvent(kind="node_loss", gen=3, node=1)],
        k=1,
        localized=True,
        note=(
            "single node loss after the newest generation: localized "
            "recovery rebuilds one rank's section from partner replicas "
            "and must byte-match the full restore"
        ),
    )


def localized_pfs_fallback_case(seed: int = 0) -> Case:
    """The canonical localized degradation: generation 3's drain
    crashes (memory-only), then the replica pair holding its first
    piece dies — nodes 0 and 1, both restart-placement nodes.  The
    newest generation is lost on both tiers and generation 2's L1 copy
    lost the same pair, so *both* recovery paths must fall back to
    generation 2's durable PFS copy and still agree byte-for-byte."""
    return _mlck_case_shell(
        seed,
        generations=3,
        num_nodes=4,
        events=[
            FaultEvent(kind="drain_crash", gen=3, nth=1),
            FaultEvent(kind="node_loss", gen=3, node=0),
            FaultEvent(kind="node_loss", gen=3, node=1),
        ],
        k=1,
        localized=True,
        note=(
            "all replicas of a piece die with the failed pair: localized "
            "recovery must degrade to the same full PFS read and still "
            "byte-match"
        ),
    )


def _workflow_case_shell(seed: int, **kw) -> Case:
    """Shared fixed geometry of the canonical workflow schedules: a
    two-member ring (stencil feeding a consumer), three committed
    lines, mixed task counts on restart."""
    rng = random.Random(seed)
    return Case(
        type="fault",
        engine="drms",
        order="F",
        shape=[6, 4],
        t1=2,
        p1=1,
        t2=3,
        p2=1,
        grid1=[2, 1],
        grid2=[3, 1],
        arrays=[],
        target_bytes=64,
        data_seed=rng.randrange(1 << 30),
        seed=seed,
        generations=3,
        policy="validated",
        expect="pass",
        workflow=True,
        members=2,
        member_tasks1=[2, 1],
        member_tasks2=[3, 2],
        **kw,
    )


def torn_workflow_case(seed: int = 0) -> Case:
    """The canonical torn-line schedule: after three workflow lines
    commit, a stored byte of member 1's newest generation flips.
    Member 0's newest state is still perfectly valid — but the line is
    torn, so the recovery walk must reject generation 3 *as a unit*
    (never mixing member 0's gen-3 state with member 1's gen-2 one) and
    restart the whole ensemble from line 2."""
    return _workflow_case_shell(
        seed,
        events=[
            FaultEvent(
                kind="stored_flip", gen=3, member=1,
                target="array", array_index=0, offset=3, bit=1,
            )
        ],
        note=(
            "one member of the newest workflow line silently corrupted: "
            "the whole line is rejected as a unit and the ensemble "
            "falls back to the previous one"
        ),
    )


def lost_member_generation_case(seed: int = 0) -> Case:
    """The canonical lost-member schedule: member 0's newest generation
    manifest disappears outright (a crash between the member commit and
    the workflow manifest would look the same).  The workflow manifest
    for line 3 still exists and member 1's state is intact, but the
    walk must treat the line as torn and fall back to line 2."""
    return _workflow_case_shell(
        seed,
        events=[FaultEvent(kind="gen_loss", gen=3, member=0)],
        note=(
            "one member generation of the newest line lost: the line "
            "is torn and the ensemble restarts from the previous one"
        ),
    )


def known_bad_case(seed: int = 0) -> Case:
    """The seeded known-bad schedule: a *naive* recovery policy (newest
    complete manifest, no validation) against a generation whose array
    file took a silent short write.  The schedule carries deliberately
    redundant events; :func:`repro.verify.shrink.shrink_case` reduces
    it to a single-event reproducer."""
    rng = random.Random(seed)
    shape = [6, 4]
    arrays = [
        ArrayCase(
            name="A0",
            dtype="float64",
            axes1=[{"kind": "block"}, {"kind": "cyclic"}],
            axes2=[{"kind": "cyclic"}, {"kind": "block"}],
            shadow1=[0, 0],
            shadow2=[0, 0],
        )
    ]
    events = [
        # inert: generation 1's 9th segment write never happens
        FaultEvent(kind="write", gen=1, nth=9, match=".segment", mode="fail"),
        # inert: flips a pad byte that is never stored
        FaultEvent(
            kind="stored_flip", gen=1, target="segment", offset=4000, bit=1
        ),
        # the reproducer: a silent short write truncating the newest
        # generation's array stream — only a checksum can catch it
        FaultEvent(
            kind="write", gen=3, nth=1, match=".array", mode="short",
            keep_bytes=5,
        ),
        # inert: generation 3 has no 7th array write
        FaultEvent(kind="write", gen=3, nth=7, match=".array", mode="torn"),
        # inert: matches no file
        FaultEvent(kind="write", gen=2, nth=1, match=".nosuch", mode="fail"),
    ]
    return Case(
        type="fault",
        engine="drms",
        order="F",
        shape=shape,
        t1=2,
        p1=2,
        t2=3,
        p2=1,
        grid1=[2, 1],
        grid2=[3, 1],
        arrays=arrays,
        target_bytes=64,
        data_seed=rng.randrange(1 << 30),
        seed=seed,
        generations=3,
        events=events,
        policy="naive",
        expect="fail",
        note=(
            "naive newest-complete-manifest recovery restarts from a "
            "generation whose array stream was silently truncated"
        ),
    )
