"""Suite driver: generate N cases from one seed, run each oracle,
shrink and dump anything that fails.

The harness is the standing correctness gate for later performance
work: ``run_suite(seed, ...)`` is a pure function of its arguments, so
``make verify-reconfig`` (fixed seed, bounded case count) is fully
deterministic, while ``make verify-reconfig-deep`` explores a fresh
seed every run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.verify.case import Case
from repro.verify.gen import CaseGen
from repro.verify.oracle import CaseResult, VerifyFailure, run_case
from repro.verify.shrink import ShrinkReport, shrink_case

__all__ = ["SuiteReport", "run_suite"]


@dataclass
class SuiteReport:
    """Aggregate outcome of one harness pass."""

    seed: int
    passed: int = 0
    failed: List[Tuple[Case, VerifyFailure]] = field(default_factory=list)
    engines: Dict[str, int] = field(default_factory=dict)
    invariants_checked: int = 0

    @property
    def total(self) -> int:
        return self.passed + len(self.failed)

    @property
    def ok(self) -> bool:
        return not self.failed

    def summary(self) -> str:
        """One-paragraph human summary (counts, engine mix, first few
        failures)."""
        mix = ", ".join(f"{k}={v}" for k, v in sorted(self.engines.items()))
        line = (
            f"verify: seed={self.seed} cases={self.total} "
            f"passed={self.passed} failed={len(self.failed)} "
            f"invariants={self.invariants_checked} [{mix}]"
        )
        for case, failure in self.failed[:5]:
            line += f"\n  FAIL {case.label()}: {failure.errors[0]}"
        return line


def run_suite(
    seed: int,
    reconfig_cases: int = 200,
    fault_cases: int = 30,
    mlck_cases: int = 0,
    localized_cases: int = 0,
    workflow_cases: int = 0,
    on_case: Optional[Callable[[int, Case], None]] = None,
) -> SuiteReport:
    """Generate and run ``reconfig_cases`` reconfiguration cases,
    ``fault_cases`` fault-schedule cases, ``mlck_cases`` multi-level
    (memory+pfs tier) fault cases, ``localized_cases``
    localized-vs-full recovery equivalence cases, and
    ``workflow_cases`` coupled-workflow torn-line cases, all from
    ``seed``."""
    gen = CaseGen(seed)
    report = SuiteReport(seed=seed)
    cases: List[Case] = [gen.reconfig_case() for _ in range(reconfig_cases)]
    cases += [gen.fault_case() for _ in range(fault_cases)]
    cases += [gen.mlck_fault_case() for _ in range(mlck_cases)]
    cases += [gen.localized_case() for _ in range(localized_cases)]
    cases += [gen.workflow_case() for _ in range(workflow_cases)]
    for i, case in enumerate(cases):
        if on_case is not None:
            on_case(i, case)
        if case.type == "reconfig":
            key = case.engine
        elif case.workflow:
            key = "workflow"
        elif case.localized:
            key = "localized"
        else:
            key = "mlck" if case.tier == "memory+pfs" else "fault"
        report.engines[key] = report.engines.get(key, 0) + 1
        try:
            result = run_case(case)
            report.passed += 1
            report.invariants_checked += result.checked
        except VerifyFailure as failure:
            report.failed.append((case, failure))
    return report


def dump_failures(
    report: SuiteReport, out_dir: str, shrink: bool = True
) -> List[str]:
    """Shrink (fault cases) and save every failure of a suite run as a
    replayable JSON case file; returns the written paths."""
    if not report.failed:
        return []
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for i, (case, _failure) in enumerate(report.failed):
        if shrink and case.type == "fault":
            try:
                case = shrink_case(case).shrunk
            except ValueError:
                pass  # flaky failure; dump the original
        case.expect = "fail"
        path = os.path.join(out_dir, f"fail_seed{report.seed}_{i}.json")
        case.save(path)
        paths.append(path)
    return paths
