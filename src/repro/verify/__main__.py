"""CLI for the differential reconfiguration harness.

Subcommands::

    python -m repro.verify run     [--seed S] [--cases N] [--fault-cases M]
                                   [--mlck-cases K] [--out DIR]
    python -m repro.verify mlck    [--seed S] [--cases N] [--out DIR]
    python -m repro.verify localized [--seed S] [--cases N] [--out DIR]
    python -m repro.verify workflow [--seed S] [--cases N] [--out DIR]
    python -m repro.verify replay  CASE.json [CASE.json ...]
    python -m repro.verify shrink  CASE.json [--out SHRUNK.json]
    python -m repro.verify known-bad [--out CASE.json]

``run`` is the deterministic gate behind ``make verify-reconfig``: a
fixed seed generates the same cases forever, failures are shrunk and
dumped as replayable JSON.  ``known-bad`` demonstrates the shrinker on
the seeded naive-recovery schedule and writes the minimal reproducer.
``mlck`` is the multi-level gate behind ``make verify-mlck``: the two
canonical schedules (node loss served from memory replicas; mid-drain
crash falling back to the durable tier) plus a seeded batch of random
multi-level fault cases.  ``localized`` is the equivalence gate behind
``make verify-localized``: the canonical happy-path and PFS-fallback
schedules plus a seeded sweep of (failure schedule, k-replica,
node-count) triples, each run through BOTH the localized and the full
recovery path — the state must come out byte-identical.  ``workflow``
is the coupled-ensemble gate behind ``make verify-workflow``: the two
canonical torn-line schedules (a silently corrupted member, a lost
member generation) plus a seeded batch of random ring-coupled
workflow cases, each asserting torn lines are rejected as units and
the ensemble restarts byte-identically from the newest fully-valid
line.
"""

from __future__ import annotations

import argparse
import sys

from repro.verify.case import Case
from repro.verify.gen import (
    known_bad_case,
    localized_equivalence_case,
    localized_pfs_fallback_case,
    lost_member_generation_case,
    mid_drain_crash_case,
    node_loss_case,
    torn_workflow_case,
)
from repro.verify.harness import dump_failures, run_suite
from repro.verify.oracle import VerifyFailure, replay_case, run_case
from repro.verify.shrink import shrink_case


def _cmd_run(args: argparse.Namespace) -> int:
    report = run_suite(
        args.seed,
        reconfig_cases=args.cases,
        fault_cases=args.fault_cases,
        mlck_cases=args.mlck_cases,
    )
    print(report.summary())
    if not report.ok:
        paths = dump_failures(report, args.out)
        for p in paths:
            print(f"  reproducer: {p}")
        return 1
    return 0


def _cmd_mlck(args: argparse.Namespace) -> int:
    bad = 0
    for name, case in (
        ("node-loss", node_loss_case(seed=args.seed)),
        ("mid-drain-crash", mid_drain_crash_case(seed=args.seed)),
    ):
        try:
            result = run_case(case)
        except VerifyFailure as exc:
            print(f"FAIL {name}: {exc.errors[0]}")
            bad += 1
            continue
        d = result.details
        print(
            f"ok   {name}: chose {d['chosen']} from tier {d['tier']} "
            f"(failed nodes {d['failed_nodes']}, "
            f"{d['pfs_reads_during_walk']:g} PFS reads during the walk)"
        )
    report = run_suite(args.seed, reconfig_cases=0, fault_cases=0,
                       mlck_cases=args.cases)
    print(report.summary())
    if not report.ok:
        paths = dump_failures(report, args.out)
        for p in paths:
            print(f"  reproducer: {p}")
    return 1 if (bad or not report.ok) else 0


def _cmd_localized(args: argparse.Namespace) -> int:
    bad = 0
    for name, case in (
        ("l1-happy-path", localized_equivalence_case(seed=args.seed)),
        ("pfs-fallback", localized_pfs_fallback_case(seed=args.seed)),
    ):
        try:
            result = run_case(case)
        except VerifyFailure as exc:
            print(f"FAIL {name}: {exc.errors[0]}")
            bad += 1
            continue
        d = result.details
        print(
            f"ok   {name}: chose {d['chosen']} from tier {d['tier']}, "
            f"lost ranks {d['lost_ranks']} "
            f"(failed nodes {d['failed_nodes']}) — localized and full "
            "recovery byte-identical"
        )
    report = run_suite(args.seed, reconfig_cases=0, fault_cases=0,
                       localized_cases=args.cases)
    print(report.summary())
    if not report.ok:
        paths = dump_failures(report, args.out)
        for p in paths:
            print(f"  reproducer: {p}")
    return 1 if (bad or not report.ok) else 0


def _cmd_workflow(args: argparse.Namespace) -> int:
    bad = 0
    for name, case in (
        ("torn-line", torn_workflow_case(seed=args.seed)),
        ("lost-member-generation", lost_member_generation_case(seed=args.seed)),
    ):
        try:
            result = run_case(case)
        except VerifyFailure as exc:
            print(f"FAIL {name}: {exc.errors[0]}")
            bad += 1
            continue
        d = result.details
        print(
            f"ok   {name}: chose line {d['chosen']} "
            f"(committed {d['committed']}, rejected {d['rejected']} as "
            f"units), ensemble restarted on tasks {d['restart_tasks']} "
            "byte-identically"
        )
    report = run_suite(args.seed, reconfig_cases=0, fault_cases=0,
                       workflow_cases=args.cases)
    print(report.summary())
    if not report.ok:
        paths = dump_failures(report, args.out)
        for p in paths:
            print(f"  reproducer: {p}")
    return 1 if (bad or not report.ok) else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    bad = 0
    for path in args.cases:
        case = Case.load(path)
        try:
            result = replay_case(case)
        except VerifyFailure as exc:
            print(f"FAIL {path}: {exc.errors[0]}")
            bad += 1
            continue
        verdict = (
            "failed as recorded"
            if "failed_as_expected" in result.details
            else f"{result.checked} invariants hold"
        )
        print(f"ok   {path}: {case.label()} — {verdict}")
    return 1 if bad else 0


def _cmd_shrink(args: argparse.Namespace) -> int:
    case = Case.load(args.case)
    try:
        report = shrink_case(case)
    except ValueError as exc:
        print(f"error: {exc}")
        return 1
    shrunk = report.shrunk
    shrunk.expect = "fail"
    print(
        f"shrunk {len(case.events)} -> {len(shrunk.events)} events, "
        f"{case.generations} -> {shrunk.generations} generations "
        f"({report.attempts} attempts, {report.accepted} accepted)"
    )
    if args.out:
        shrunk.save(args.out)
        print(f"wrote {args.out}")
    else:
        print(shrunk.to_json())
    return 0


def _cmd_known_bad(args: argparse.Namespace) -> int:
    case = known_bad_case(seed=args.seed)
    report = shrink_case(case)
    shrunk = report.shrunk
    shrunk.expect = "fail"
    print(
        f"known-bad schedule: {len(case.events)} events -> "
        f"{len(shrunk.events)} after shrinking "
        f"({report.attempts} attempts)"
    )
    if len(shrunk.events) > 3:
        print("error: reproducer did not shrink to <= 3 events")
        return 1
    replay_case(shrunk)  # must still fail as recorded
    print("reproducer replays: naive recovery restarts from a silently "
          "truncated checkpoint")
    if args.out:
        shrunk.save(args.out)
        print(f"wrote {args.out}")
    return 0


def main(argv=None) -> int:
    """Entry point for ``python -m repro.verify``; returns the exit
    status (nonzero when any case fails or fails to replay)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("run", help="generate + run a seeded suite")
    p.add_argument("--seed", type=int, default=20260806)
    p.add_argument("--cases", type=int, default=200,
                   help="reconfiguration cases across the three engines")
    p.add_argument("--fault-cases", type=int, default=30,
                   help="fault-schedule recovery cases")
    p.add_argument("--mlck-cases", type=int, default=0,
                   help="multi-level (memory+pfs) fault cases")
    p.add_argument("--out", default="verify_out",
                   help="directory for shrunk failure reproducers")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser(
        "mlck",
        help="run the canonical multi-level schedules plus a seeded "
        "batch of random memory+pfs fault cases",
    )
    p.add_argument("--seed", type=int, default=20260806)
    p.add_argument("--cases", type=int, default=25,
                   help="random multi-level fault cases")
    p.add_argument("--out", default="verify_out",
                   help="directory for failure reproducers")
    p.set_defaults(fn=_cmd_mlck)

    p = sub.add_parser(
        "localized",
        help="run the canonical localized-recovery schedules plus a "
        "seeded sweep of localized-vs-full equivalence cases",
    )
    p.add_argument("--seed", type=int, default=20260806)
    p.add_argument("--cases", type=int, default=25,
                   help="random localized equivalence cases")
    p.add_argument("--out", default="verify_out",
                   help="directory for failure reproducers")
    p.set_defaults(fn=_cmd_localized)

    p = sub.add_parser(
        "workflow",
        help="run the canonical torn-workflow-line schedules plus a "
        "seeded batch of random coupled-workflow cases",
    )
    p.add_argument("--seed", type=int, default=20260806)
    p.add_argument("--cases", type=int, default=25,
                   help="random coupled-workflow cases")
    p.add_argument("--out", default="verify_out",
                   help="directory for failure reproducers")
    p.set_defaults(fn=_cmd_workflow)

    p = sub.add_parser("replay", help="replay saved case files")
    p.add_argument("cases", nargs="+", metavar="CASE.json")
    p.set_defaults(fn=_cmd_replay)

    p = sub.add_parser("shrink", help="shrink a failing fault case")
    p.add_argument("case", metavar="CASE.json")
    p.add_argument("--out", default=None)
    p.set_defaults(fn=_cmd_shrink)

    p = sub.add_parser(
        "known-bad",
        help="shrink the seeded known-bad schedule to its minimal "
        "reproducer",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None)
    p.set_defaults(fn=_cmd_known_bad)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
