"""The L1 tier: replicated in-memory checkpoint storage.

An L1 generation holds the same logical content as a PFS (L2)
checkpoint — the representative task's data segment plus each
distributed array's canonical stream — but keeps it in simulated node
memory, chunked into *pieces* that are replicated onto ``k`` partner
nodes in other failure domains (:mod:`repro.mlck.placement`).  Capture
therefore costs memory copies and switch transfers (hundreds of MB/s)
instead of PFS writes (single-digit MB/s), and recovery from a single
node failure is served entirely from surviving replicas: no PFS read
at all.

Integrity mirrors the v3 manifest discipline: every piece records a
SHA-1 over its bytes at capture time, and both validation and fetch
re-hash the resident bytes — a replica that decayed (or a node that
died) is detected exactly like a torn PFS file, and the tier-aware
recovery walk falls back to the next candidate.

Like the PFS segment file, the bulk byte components (segment pad,
virtual arrays) are *sized*, not stored: timing charges the full
logical bytes while memory holds only the exact header/stream content.

Timing model: per-node busy time is ``local_copied/mem_copy_rate +
sent/link_rate + latency*messages + received/mem_copy_rate``; a capture
or fetch takes the maximum busy time over the nodes involved (they
proceed in parallel, like the parstream I/O tasks).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arrays.darray import DistributedArray
from repro.checkpoint.drms import (
    CheckpointBreakdown,
    RestartBreakdown,
    RestoredState,
    _publish_breakdown,
)
from repro.checkpoint.format import (
    array_name,
    distribution_to_spec,
    np_dtype_name,
    segment_name,
    sha1_hex,
    spec_to_distribution,
    task_segment_name,
)
from repro.checkpoint.segment import DataSegment
from repro.checkpoint.spmd import SPMDRestoredState, _decode_task_file, _encode_task_file
from repro.checkpoint.validate import ValidationReport
from repro.errors import CheckpointError, MemoryTierError, RestartError
from repro.mlck.placement import select_partners
from repro.obs import get_flight, get_tracer
from repro.runtime.machine import Machine
from repro.streaming.order import bytes_to_section, check_order, stream_order_bytes

__all__ = ["L1Piece", "L1ArrayEntry", "L1Generation", "L1Store"]

_MB = 1e6


@dataclass
class L1Piece:
    """One replicated chunk of a stream, resident in node memory."""

    key: str
    offset: int
    nbytes: int
    sha1: str
    #: owner first, then partners — fetch tries them in this order
    replicas: List[int]

    @property
    def owner(self) -> int:
        return self.replicas[0]


@dataclass
class L1ArrayEntry:
    """One distributed array's canonical stream, as resident pieces."""

    name: str
    file: str
    shape: List[int]
    dtype: str
    #: logical stream bytes (charged); equals stored bytes unless virtual
    nbytes: int
    sha1: Optional[str]
    virtual: bool
    distribution: Dict
    pieces: List[L1Piece] = field(default_factory=list)


@dataclass
class L1Generation:
    """In-memory metadata of one captured generation — the L1 analogue
    of a PFS manifest, including the drain state machine's position
    (see :class:`~repro.mlck.drain.DrainController`)."""

    prefix: str
    kind: str  # "drms" | "spmd"
    ntasks: int
    order: str = "F"
    app_name: str = ""
    #: full logical segment bytes (header + sized pad), per task file
    #: for spmd (one entry per task)
    segment_bytes: int = 0
    segment_sha1: str = ""
    segment_sha1_bytes: int = 0
    segment_pieces: List[L1Piece] = field(default_factory=list)
    arrays: List[L1ArrayEntry] = field(default_factory=list)
    #: spmd: per-task header pieces and sizes
    task_pieces: List[List[L1Piece]] = field(default_factory=list)
    task_bytes: List[int] = field(default_factory=list)
    task_sha1: List[str] = field(default_factory=list)
    task_sha1_bytes: List[int] = field(default_factory=list)
    spmd_segment_bytes: int = 0
    capture_seconds: float = 0.0
    #: cluster clock at capture (drives the health cadence gauges)
    captured_at: Optional[float] = None
    #: drain state machine: pending -> draining -> durable | failed
    drain_state: str = "pending"
    drain_error: Optional[str] = None

    @property
    def resident_bytes(self) -> int:
        """Bytes actually held in memory (one copy), not charged bytes."""
        total = sum(p.nbytes for p in self.segment_pieces)
        total += sum(p.nbytes for e in self.arrays for p in e.pieces)
        total += sum(p.nbytes for ps in self.task_pieces for p in ps)
        return total


def _chunk_spans(nbytes: int, target: int) -> List[Tuple[int, int]]:
    """(offset, length) spans covering ``nbytes`` in ``target``-sized
    chunks (at least one span, even for empty streams)."""
    if nbytes <= 0:
        return [(0, 0)]
    spans = []
    pos = 0
    while pos < nbytes:
        n = min(target, nbytes - pos)
        spans.append((pos, n))
        pos += n
    return spans


class _Accounting:
    """Per-node busy-time accumulator for one capture/fetch round."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.local: Dict[int, int] = {}
        self.sent: Dict[int, int] = {}
        self.msgs: Dict[int, int] = {}
        self.recv: Dict[int, int] = {}

    def copy(self, node: int, nbytes: int) -> None:
        self.local[node] = self.local.get(node, 0) + nbytes

    def send(self, src: int, dst: int, nbytes: int) -> None:
        self.sent[src] = self.sent.get(src, 0) + nbytes
        self.msgs[src] = self.msgs.get(src, 0) + 1
        self.recv[dst] = self.recv.get(dst, 0) + nbytes

    def seconds(self) -> float:
        p = self.machine.params
        mem_bw = p.mem_copy_mbps * _MB
        link_bw = p.link_bandwidth_mbps * _MB
        busy = 0.0
        for node in set(self.local) | set(self.sent) | set(self.recv):
            t = (
                self.local.get(node, 0) / mem_bw
                + self.sent.get(node, 0) / link_bw
                + self.msgs.get(node, 0) * p.link_latency_s
                + self.recv.get(node, 0) / mem_bw
            )
            busy = max(busy, t)
        return busy


class L1Store:
    """Replicated in-memory checkpoint storage over one machine.

    ``k`` is the partner-replica count (each piece lives on its owner
    plus ``k`` partners from other failure domains); ``events`` hooks
    placement fallbacks and node-loss drops into a cluster's
    :class:`~repro.infra.events.EventLog`.
    """

    def __init__(
        self,
        machine: Machine,
        k: int = 1,
        events=None,
        target_bytes: int = 1 << 20,
    ):
        if k < 1:
            raise CheckpointError("L1 replication needs at least one partner")
        self.machine = machine
        self.k = int(k)
        self.events = events
        self.target_bytes = int(target_bytes)
        #: node id -> piece key -> bytes (simulated node memory)
        self._mem: Dict[int, Dict[str, bytes]] = {}
        #: node id -> machine incarnation the resident bytes belong to;
        #: a repaired node is a fresh machine, so bytes stamped with an
        #: older incarnation are stale and must never serve a fetch
        self._mem_epoch: Dict[int, int] = {}
        self._gens: "OrderedDict[str, L1Generation]" = OrderedDict()
        self._lock = threading.RLock()

    # -- bookkeeping ---------------------------------------------------------

    def generations(self) -> List[str]:
        """Captured prefixes, oldest first."""
        with self._lock:
            return list(self._gens)

    def latest(self) -> Optional[str]:
        gens = self.generations()
        return gens[-1] if gens else None

    def gen(self, prefix: str) -> L1Generation:
        """The resident generation under ``prefix``; raises
        :class:`~repro.errors.MemoryTierError` if never captured."""
        with self._lock:
            try:
                return self._gens[prefix]
            except KeyError:
                raise MemoryTierError(
                    f"generation {prefix!r} was never captured in L1"
                ) from None

    def has(self, prefix: str) -> bool:
        with self._lock:
            return prefix in self._gens

    def resident_bytes(self) -> int:
        """Total bytes held across all node memories (replicas counted)."""
        with self._lock:
            return sum(
                sum(map(len, d.values())) for d in self._mem.values()
            )

    def _update_resident_gauge(self) -> None:
        get_tracer().metrics.gauge("mlck.l1.resident_bytes").set(
            self.resident_bytes()
        )

    def discard(self, prefix: str) -> None:
        """Drop a generation and free its replicas (retention/eviction)."""
        with self._lock:
            gen = self._gens.pop(prefix, None)
            if gen is None:
                return
            for pieces in (
                [gen.segment_pieces]
                + [e.pieces for e in gen.arrays]
                + gen.task_pieces
            ):
                for piece in pieces:
                    for node in piece.replicas:
                        self._mem.get(node, {}).pop(piece.key, None)
        self._update_resident_gauge()

    # -- node failure --------------------------------------------------------

    def drop_node(self, node_id: int, clock: float = 0.0) -> int:
        """A node died: its memory — and every replica it held — is
        gone.  Returns the number of piece copies lost; emits a
        ``mlck_replicas_lost`` event when any were."""
        with self._lock:
            lost = len(self._mem.pop(node_id, {}))
            self._mem_epoch.pop(node_id, None)
        if lost and self.events is not None:
            self.events.emit(
                clock, "mlck_replicas_lost", node=node_id, pieces=lost
            )
        fr = get_flight()
        if fr.enabled:
            fr.record("l1_node_dropped", node=node_id, time=clock, pieces=lost)
            if lost:
                fr.auto_blackbox(node_id, reason="l1 memory lost", time=clock)
        self._update_resident_gauge()
        return lost

    def sync_with_machine(self, clock: float = 0.0) -> int:
        """Drop the memory of every node the machine reports down, and
        of every node whose incarnation advanced since its bytes were
        stored (it failed and was repaired between syncs: the repaired
        node is a new machine with empty memory, so the recorded bytes
        would be stale resurrections)."""
        lost = 0
        for node in list(self._mem):
            n = self.machine.node(node)
            if not n.up or self._mem_epoch.get(node) != n.incarnation:
                lost += self.drop_node(node, clock=clock)
        return lost

    # -- capture -------------------------------------------------------------

    def _store_piece(
        self,
        acct: _Accounting,
        key: str,
        offset: int,
        data: bytes,
        charged: int,
        owner: int,
        partners: Sequence[int],
        store: bool = True,
    ) -> L1Piece:
        replicas = [owner, *partners]
        if store:
            with self._lock:
                for node in replicas:
                    self._node_mem(node)[key] = data
        acct.copy(owner, charged)
        for partner in partners:
            acct.send(owner, partner, charged)
        return L1Piece(
            key=key,
            offset=offset,
            nbytes=len(data) if store else 0,
            sha1=sha1_hex(data),
            replicas=replicas,
        )

    def _capture_stream(
        self,
        acct: _Accounting,
        file: str,
        data: bytes,
        charged_total: int,
        nodes: Sequence[int],
        partner_cache: Dict[int, List[int]],
        start: int,
        clock: float,
        store: bool = True,
    ) -> Tuple[List[L1Piece], int]:
        """Chunk ``data`` into replicated pieces round-robin over
        ``nodes``; sized bytes beyond ``len(data)`` (pad, virtual
        payload) are charged to the last piece's owner.  Returns the
        pieces and the advanced round-robin counter."""
        spans = _chunk_spans(len(data), self.target_bytes)
        extra = max(0, charged_total - len(data))
        pieces = []
        for i, (off, n) in enumerate(spans):
            owner = nodes[(start + i) % len(nodes)]
            if owner not in partner_cache:
                partner_cache[owner] = select_partners(
                    self.machine, owner, k=self.k,
                    events=self.events, clock=clock,
                )
            charged = n + (extra if i == len(spans) - 1 else 0)
            pieces.append(
                self._store_piece(
                    acct,
                    f"{file}#{i:06d}",
                    off,
                    data[off : off + n],
                    charged,
                    owner,
                    partner_cache[owner],
                    store=store,
                )
            )
        fr = get_flight()
        if fr.enabled:
            for p in pieces:
                fr.record(
                    "replica_placed", node=p.owner, time=clock,
                    key=p.key, nbytes=p.nbytes, replicas=list(p.replicas),
                )
        return pieces, start + len(spans)

    def capture_drms(
        self,
        prefix: str,
        segment: DataSegment,
        arrays: Sequence[DistributedArray],
        order: str = "F",
        nodes: Optional[Sequence[int]] = None,
        app_name: str = "",
        clock: float = 0.0,
    ) -> Tuple[L1Generation, CheckpointBreakdown]:
        """Capture a DRMS-style generation into node memory.

        Same content as :func:`~repro.checkpoint.drms.drms_checkpoint`
        — segment header + canonical per-array streams — but replicated
        across memories at memory/switch speed.  Returns the generation
        and a :class:`CheckpointBreakdown` of kind ``mlck-l1``.
        """
        check_order(order)
        names = {a.name for a in arrays}
        if len(names) != len(arrays):
            raise CheckpointError("distributed array names must be unique")
        ntasks = arrays[0].ntasks if arrays else 1
        for a in arrays:
            if a.ntasks != ntasks:
                raise CheckpointError(
                    f"array {a.name!r} has {a.ntasks} tasks; expected {ntasks}"
                )
        with self._lock:
            if prefix in self._gens:
                raise CheckpointError(
                    f"L1 generation {prefix!r} already captured"
                )
        nodes = list(nodes) if nodes is not None else self.machine.up_nodes()
        if not nodes:
            raise CheckpointError("no up nodes to hold the L1 checkpoint")
        partner_cache: Dict[int, List[int]] = {}
        bd = CheckpointBreakdown(kind="mlck-l1", prefix=prefix, ntasks=ntasks)
        obs = get_tracer()
        m = obs.metrics
        gen = L1Generation(
            prefix=prefix, kind="drms", ntasks=ntasks, order=order,
            app_name=app_name,
        )
        with obs.span(
            "checkpoint", kind="mlck-l1", prefix=prefix, ntasks=ntasks,
            app=app_name,
        ) as op:
            header, pad = segment.serialize()
            gen.segment_bytes = len(header) + pad
            gen.segment_sha1 = sha1_hex(header)
            gen.segment_sha1_bytes = len(header)
            acct = _Accounting(self.machine)
            with obs.span(
                "l1_segment_capture", file=segment_name(prefix)
            ) as sp:
                gen.segment_pieces, rr = self._capture_stream(
                    acct, segment_name(prefix), header, gen.segment_bytes,
                    nodes, partner_cache, 0, clock,
                )
                sec = acct.seconds()
                obs.advance(sec)
                sp.set(nbytes=gen.segment_bytes, seconds=sec)
            bd.segment_seconds = sec
            bd.segment_bytes = gen.segment_bytes

            for a in arrays:
                fname = array_name(prefix, a.name)
                stream = (
                    stream_order_bytes(a.to_global(), order)
                    if a.store_data
                    else b""
                )
                charged = len(stream) if a.store_data else int(a.nbytes_global)
                acct = _Accounting(self.machine)
                with obs.span(f"l1_replicate:{a.name}", file=fname) as sp:
                    pieces, rr = self._capture_stream(
                        acct, fname, stream, charged, nodes, partner_cache,
                        rr, clock, store=a.store_data,
                    )
                    sec = acct.seconds()
                    obs.advance(sec)
                    sp.set(nbytes=charged, pieces=len(pieces), seconds=sec)
                gen.arrays.append(
                    L1ArrayEntry(
                        name=a.name,
                        file=fname,
                        shape=list(a.shape),
                        dtype=np_dtype_name(a.dtype),
                        nbytes=charged,
                        sha1=sha1_hex(stream) if a.store_data else None,
                        virtual=not a.store_data,
                        distribution=distribution_to_spec(a.distribution),
                        pieces=pieces if a.store_data else [],
                    )
                )
                bd.arrays_seconds += sec
                bd.arrays_bytes += charged
                bd.per_array.append((a.name, sec, charged))
            op.set(nbytes=bd.total_bytes, seconds=bd.total_seconds)
        gen.capture_seconds = bd.total_seconds
        gen.captured_at = clock
        with self._lock:
            self._gens[prefix] = gen
        _publish_breakdown("checkpoint", bd)
        m.counter("mlck.l1.captures").inc()
        m.counter("mlck.l1.capture.bytes").inc(bd.total_bytes)
        get_flight().record(
            "l1_captured", time=clock, prefix=prefix, gen_kind="drms",
            nbytes=bd.total_bytes, seconds=bd.total_seconds,
        )
        self._update_resident_gauge()
        return gen, bd

    def capture_spmd(
        self,
        prefix: str,
        ntasks: int,
        segment_bytes: int,
        payloads: Optional[Sequence] = None,
        nodes: Optional[Sequence[int]] = None,
        app_name: str = "",
        clock: float = 0.0,
    ) -> Tuple[L1Generation, CheckpointBreakdown]:
        """Capture an SPMD-style generation: one replicated per-task
        header (exact payload) plus the sized segment bulk."""
        if ntasks < 1:
            raise CheckpointError("SPMD checkpoint needs at least one task")
        if payloads is not None and len(payloads) != ntasks:
            raise CheckpointError(f"{len(payloads)} payloads for {ntasks} tasks")
        with self._lock:
            if prefix in self._gens:
                raise CheckpointError(
                    f"L1 generation {prefix!r} already captured"
                )
        nodes = list(nodes) if nodes is not None else self.machine.up_nodes()
        if not nodes:
            raise CheckpointError("no up nodes to hold the L1 checkpoint")
        partner_cache: Dict[int, List[int]] = {}
        bd = CheckpointBreakdown(kind="mlck-l1", prefix=prefix, ntasks=ntasks)
        obs = get_tracer()
        gen = L1Generation(
            prefix=prefix, kind="spmd", ntasks=ntasks, app_name=app_name,
            spmd_segment_bytes=int(segment_bytes),
        )
        with obs.span(
            "checkpoint", kind="mlck-l1", prefix=prefix, ntasks=ntasks,
            app=app_name,
        ) as op:
            acct = _Accounting(self.machine)
            with obs.span("l1_segment_capture", files=ntasks) as sp:
                rr = 0
                for t in range(ntasks):
                    payload = payloads[t] if payloads is not None else None
                    header, pad = _encode_task_file(payload, segment_bytes)
                    fname = task_segment_name(prefix, t)
                    pieces, rr = self._capture_stream(
                        acct, fname, header, len(header) + pad,
                        [nodes[t % len(nodes)]], partner_cache, rr, clock,
                    )
                    gen.task_pieces.append(pieces)
                    gen.task_bytes.append(len(header) + pad)
                    gen.task_sha1.append(sha1_hex(header))
                    gen.task_sha1_bytes.append(len(header))
                sec = acct.seconds()
                obs.advance(sec)
                sp.set(nbytes=sum(gen.task_bytes), seconds=sec)
            bd.segment_seconds = sec
            bd.segment_bytes = sum(gen.task_bytes)
            op.set(nbytes=bd.total_bytes, seconds=bd.total_seconds)
        gen.capture_seconds = bd.total_seconds
        gen.captured_at = clock
        with self._lock:
            self._gens[prefix] = gen
        _publish_breakdown("checkpoint", bd)
        m = obs.metrics
        m.counter("mlck.l1.captures").inc()
        m.counter("mlck.l1.capture.bytes").inc(bd.total_bytes)
        get_flight().record(
            "l1_captured", time=clock, prefix=prefix, gen_kind="spmd",
            nbytes=bd.total_bytes, seconds=bd.total_seconds,
        )
        self._update_resident_gauge()
        return gen, bd

    def _node_mem(self, node_id: int) -> Dict[str, bytes]:
        """The memory dict of ``node_id``, invalidating any bytes that
        were stored against an earlier incarnation of the node (a fail +
        repair cycle wipes real memory, so it must wipe ours).  Caller
        holds ``_lock``."""
        inc = self.machine.node(node_id).incarnation
        if self._mem_epoch.get(node_id, inc) != inc:
            self._mem[node_id] = {}
        self._mem_epoch[node_id] = inc
        return self._mem.setdefault(node_id, {})

    # -- validation and fetch ------------------------------------------------

    def _replica_valid(self, piece: L1Piece, node: int) -> bool:
        """True when ``node`` is up, on the incarnation its bytes were
        stored under, and holds checksum-valid bytes of ``piece``."""
        if not (0 <= node < self.machine.num_nodes):
            return False
        if not self.machine.node(node).up:
            return False
        if self._mem_epoch.get(node) != self.machine.node(node).incarnation:
            return False
        data = self._mem.get(node, {}).get(piece.key)
        if data is None or len(data) != piece.nbytes:
            return False
        return sha1_hex(data) == piece.sha1

    def _serving_replica(self, piece: L1Piece) -> Optional[int]:
        """First replica node that is up, on the incarnation its bytes
        were stored under, and holds checksum-valid bytes."""
        for node in piece.replicas:
            if self._replica_valid(piece, node):
                return node
        return None

    def validate_generation(self, prefix: str) -> ValidationReport:
        """Audit one L1 generation: every piece must have at least one
        surviving, checksum-valid replica.  Collects problems like
        :func:`~repro.checkpoint.validate.validate_checkpoint` so the
        tier-aware recovery walk can rank candidates."""
        report = ValidationReport(prefix=prefix)
        with self._lock:
            gen = self._gens.get(prefix)
            if gen is None:
                report.errors.append(
                    f"generation {prefix!r} was never captured in L1"
                )
                return report
            streams: List[Tuple[str, List[L1Piece]]] = []
            if gen.kind == "drms":
                streams.append((segment_name(prefix), gen.segment_pieces))
                for e in gen.arrays:
                    if not e.virtual:
                        streams.append((e.file, e.pieces))
            else:
                for t, pieces in enumerate(gen.task_pieces):
                    streams.append((task_segment_name(prefix, t), pieces))
            for fname, pieces in streams:
                report.files += 1
                for piece in pieces:
                    node = self._serving_replica(piece)
                    if node is None:
                        report.errors.append(
                            f"piece {piece.key!r}: no surviving valid "
                            f"replica (replicas {piece.replicas})"
                        )
                    else:
                        report.bytes_hashed += piece.nbytes
        m = get_tracer().metrics
        m.counter("mlck.l1.validations").inc()
        if not report.ok:
            m.counter("mlck.l1.validation_failures").inc()
        return report

    def _fetch_pieces(
        self,
        pieces: Sequence[L1Piece],
        acct: _Accounting,
        requester: int,
        count_hits: bool = True,
    ) -> bytes:
        """Reassemble one stream from surviving replicas, charging each
        transfer to its serving node; raises
        :class:`~repro.errors.MemoryTierError` on any lost piece.
        ``count_hits=False`` keeps background readers (the drain) out of
        the ``mlck.l1.hits`` recovery metric."""
        m = get_tracer().metrics
        out = []
        with self._lock:
            for piece in pieces:
                node = self._serving_replica(piece)
                if node is None:
                    raise MemoryTierError(
                        f"piece {piece.key!r}: no surviving valid replica "
                        f"(replicas {piece.replicas})"
                    )
                out.append(self._mem[node][piece.key])
                if count_hits:
                    m.counter("mlck.l1.hits").inc()
                    if node != piece.owner:
                        m.counter("mlck.l1.partner_serves").inc()
                if node != requester:
                    acct.send(node, requester, piece.nbytes)
                else:
                    acct.copy(node, piece.nbytes)
        return b"".join(out)

    # -- restore -------------------------------------------------------------

    def _drms_manifest_like(self, gen: L1Generation) -> Dict:
        """A manifest-shaped dict so L1 restores satisfy the same
        consumers as :func:`~repro.checkpoint.drms.drms_restart`."""
        return {
            "kind": "drms",
            "tier": "l1",
            "app_name": gen.app_name,
            "ntasks": gen.ntasks,
            "order": gen.order,
            "segment_file": segment_name(gen.prefix),
            "segment_bytes": gen.segment_bytes,
            "segment_sha1": gen.segment_sha1,
            "segment_sha1_bytes": gen.segment_sha1_bytes,
            "arrays": [
                {
                    "name": e.name,
                    "shape": list(e.shape),
                    "dtype": e.dtype,
                    "file": e.file,
                    "nbytes": e.nbytes,
                    "sha1": e.sha1,
                    "virtual": e.virtual,
                    "distribution": e.distribution,
                }
                for e in gen.arrays
            ],
        }

    def restore_drms(
        self,
        prefix: str,
        ntasks: int,
        order: Optional[str] = None,
        distribution_overrides: Optional[Dict[str, object]] = None,
        init_seconds: float = 0.0,
    ) -> Tuple[RestoredState, RestartBreakdown]:
        """Restore a DRMS generation from surviving L1 replicas onto
        ``ntasks`` tasks (reconfiguration included — the canonical
        stream is distribution-independent regardless of tier).

        ``init_seconds`` charges the fixed restart initialization
        (text-segment load), which happens whatever tier serves the
        state.  Raises :class:`~repro.errors.MemoryTierError` when any
        piece has lost every valid replica.
        """
        gen = self.gen(prefix)
        if gen.kind != "drms":
            raise RestartError(
                f"L1 generation {prefix!r} is kind {gen.kind!r}; "
                "a reconfigured restart needs a DRMS checkpoint"
            )
        if ntasks < 1:
            raise RestartError(f"cannot restart on {ntasks} tasks")
        order = order or gen.order
        bd = RestartBreakdown(kind="mlck-l1", prefix=prefix, ntasks=ntasks)
        bd.other_seconds = float(init_seconds)
        obs = get_tracer()
        requesters = (self.machine.up_nodes() or [0])[:ntasks]
        with obs.span(
            "restart", kind="mlck-l1", prefix=prefix, ntasks=ntasks,
            checkpoint_ntasks=gen.ntasks,
        ) as op:
            with obs.span("restart_init") as sp:
                obs.advance(bd.other_seconds)
                sp.set(seconds=bd.other_seconds)

            # Every restarting task needs the segment; surviving
            # replicas serve the fetches in parallel.
            acct = _Accounting(self.machine)
            with obs.span("l1_segment_fetch", file=segment_name(prefix)) as sp:
                header = self._fetch_pieces(
                    gen.segment_pieces, acct, requesters[0]
                )
                # remaining tasks pull the same (sized) segment bytes
                servers = sorted(
                    {
                        self._serving_replica(p)
                        for p in gen.segment_pieces
                    }
                    - {None}
                ) or [requesters[0]]
                for i, task_node in enumerate(requesters[1:], start=1):
                    acct.send(
                        servers[i % len(servers)], task_node, gen.segment_bytes
                    )
                # the sized pad rides the first fetch too
                acct.send(
                    servers[0], requesters[0],
                    max(0, gen.segment_bytes - len(header)),
                )
                sec = acct.seconds()
                obs.advance(sec)
                sp.set(nbytes=gen.segment_bytes * ntasks, seconds=sec)
            if sha1_hex(header) != gen.segment_sha1:
                raise MemoryTierError(
                    f"L1 segment of {prefix!r} failed checksum validation"
                )
            segment = DataSegment.deserialize(header)
            bd.segment_seconds = sec
            bd.segment_bytes = gen.segment_bytes * ntasks

            arrays: Dict[str, DistributedArray] = {}
            overrides = distribution_overrides or {}
            for i, e in enumerate(gen.arrays):
                dist = overrides.get(e.name) or spec_to_distribution(
                    e.distribution, ntasks=ntasks
                )
                if dist.ntasks != ntasks:
                    raise RestartError(
                        f"override distribution for {e.name!r} targets "
                        f"{dist.ntasks} tasks; restart uses {ntasks}"
                    )
                arr = DistributedArray(
                    e.name, e.shape, np.dtype(e.dtype), dist,
                    store_data=not e.virtual,
                )
                acct = _Accounting(self.machine)
                with obs.span(f"l1_fetch:{e.name}", file=e.file) as sp:
                    if not e.virtual:
                        requester = requesters[i % len(requesters)]
                        data = self._fetch_pieces(e.pieces, acct, requester)
                        if e.sha1 is not None and sha1_hex(data) != e.sha1:
                            raise MemoryTierError(
                                f"L1 stream {e.file!r} failed checksum "
                                "validation"
                            )
                        arr.set_global(
                            bytes_to_section(data, e.shape, e.dtype, order)
                        )
                    else:
                        # sized virtual payload: charged over one link
                        acct.send(
                            requesters[0],
                            requesters[-1] if len(requesters) > 1
                            else requesters[0],
                            e.nbytes,
                        )
                    sec = acct.seconds()
                    obs.advance(sec)
                    sp.set(nbytes=e.nbytes, seconds=sec)
                bd.arrays_seconds += sec
                bd.arrays_bytes += e.nbytes
                bd.per_array.append((e.name, sec, e.nbytes))
                arrays[e.name] = arr
            op.set(nbytes=bd.total_bytes, seconds=bd.total_seconds)
        _publish_breakdown("restart", bd)
        m = obs.metrics
        m.counter("mlck.l1.restores").inc()
        m.counter("mlck.restore.l1.seconds").inc(bd.total_seconds)
        state = RestoredState(
            segment=segment,
            arrays=arrays,
            ntasks=ntasks,
            checkpoint_ntasks=gen.ntasks,
            manifest=self._drms_manifest_like(gen),
        )
        return state, bd

    def restore_spmd(
        self, prefix: str, ntasks: int, init_seconds: float = 0.0
    ) -> Tuple[SPMDRestoredState, RestartBreakdown]:
        """Restore an SPMD generation from L1 (task count must match,
        as on the PFS path — SPMD states are not reconfigurable)."""
        gen = self.gen(prefix)
        if gen.kind != "spmd":
            raise RestartError(
                f"L1 generation {prefix!r} is kind {gen.kind!r}, not spmd"
            )
        if ntasks != gen.ntasks:
            raise RestartError(
                f"SPMD checkpoint was taken with {gen.ntasks} tasks; "
                f"restart requested {ntasks}. Reconfigured restart "
                "requires a DRMS checkpoint."
            )
        bd = RestartBreakdown(kind="mlck-l1", prefix=prefix, ntasks=ntasks)
        bd.other_seconds = float(init_seconds)
        obs = get_tracer()
        requesters = (self.machine.up_nodes() or [0])[:ntasks] or [0]
        payloads = []
        with obs.span(
            "restart", kind="mlck-l1", prefix=prefix, ntasks=ntasks,
            checkpoint_ntasks=gen.ntasks,
        ) as op:
            with obs.span("restart_init") as sp:
                obs.advance(bd.other_seconds)
                sp.set(seconds=bd.other_seconds)
            acct = _Accounting(self.machine)
            with obs.span("l1_segment_fetch", files=ntasks) as sp:
                for t in range(ntasks):
                    requester = requesters[t % len(requesters)]
                    head = self._fetch_pieces(
                        gen.task_pieces[t], acct, requester
                    )
                    if sha1_hex(head) != gen.task_sha1[t]:
                        raise MemoryTierError(
                            f"L1 task segment {t} of {prefix!r} failed "
                            "checksum validation"
                        )
                    # sized bulk rides along
                    acct.copy(requester, max(0, gen.task_bytes[t] - len(head)))
                    payloads.append(_decode_task_file(head))
                sec = acct.seconds()
                obs.advance(sec)
                sp.set(nbytes=sum(gen.task_bytes), seconds=sec)
            bd.segment_seconds = sec
            bd.segment_bytes = sum(gen.task_bytes)
            op.set(nbytes=bd.total_bytes, seconds=bd.total_seconds)
        _publish_breakdown("restart", bd)
        m = obs.metrics
        m.counter("mlck.l1.restores").inc()
        m.counter("mlck.restore.l1.seconds").inc(bd.total_seconds)
        return (
            SPMDRestoredState(
                ntasks=ntasks,
                payloads=payloads,
                segment_bytes=list(gen.task_bytes),
                manifest={
                    "kind": "spmd",
                    "tier": "l1",
                    "app_name": gen.app_name,
                    "ntasks": gen.ntasks,
                    "task_files": [
                        task_segment_name(prefix, t) for t in range(gen.ntasks)
                    ],
                    "segment_bytes": list(gen.task_bytes),
                },
            ),
            bd,
        )

    # -- drain support -------------------------------------------------------

    def materialize_drms(
        self, prefix: str
    ) -> Tuple[DataSegment, List[DistributedArray]]:
        """Rebuild the segment and arrays of a DRMS generation from L1
        replicas, under their *original* distributions — what the drain
        hands to :func:`~repro.checkpoint.drms.drms_checkpoint` so the
        L2 state is byte-identical to a direct PFS checkpoint."""
        gen = self.gen(prefix)
        if gen.kind != "drms":
            raise RestartError(
                f"cannot materialize L1 generation of kind {gen.kind!r}"
            )
        acct = _Accounting(self.machine)  # untimed: drain charges PFS time
        requester = (self.machine.up_nodes() or [0])[0]
        header = self._fetch_pieces(
            gen.segment_pieces, acct, requester, count_hits=False
        )
        if sha1_hex(header) != gen.segment_sha1:
            raise MemoryTierError(
                f"L1 segment of {prefix!r} failed checksum validation"
            )
        segment = DataSegment.deserialize(header)
        arrays = []
        for e in gen.arrays:
            dist = spec_to_distribution(e.distribution)
            arr = DistributedArray(
                e.name, e.shape, np.dtype(e.dtype), dist,
                store_data=not e.virtual,
            )
            if not e.virtual:
                data = self._fetch_pieces(
                    e.pieces, acct, requester, count_hits=False
                )
                if e.sha1 is not None and sha1_hex(data) != e.sha1:
                    raise MemoryTierError(
                        f"L1 stream {e.file!r} failed checksum validation"
                    )
                arr.set_global(
                    bytes_to_section(data, e.shape, e.dtype, gen.order)
                )
            arrays.append(arr)
        return segment, arrays
