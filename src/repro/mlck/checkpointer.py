"""MultiLevelCheckpointer: the application-facing two-tier façade.

One object owns the whole multi-level pipeline for one application:

* a :class:`~repro.checkpoint.rotation.CheckpointRotation` allocating
  generation prefixes and applying retention on the durable tier;
* an :class:`~repro.mlck.store.L1Store` capturing each generation into
  replicated node memory at memory/switch speed;
* a :class:`~repro.mlck.drain.DrainController` promoting generations
  to the PFS in the background.

``checkpoint()`` returns after the L1 capture — the application's next
SOP proceeds while the drain writes the PFS — and ``restart()`` runs
the tier-aware recovery walk, restoring from surviving memory replicas
when possible and falling back to the newest byte-valid PFS state.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arrays.darray import DistributedArray
from repro.checkpoint.drms import (
    CheckpointBreakdown,
    RestartBreakdown,
    RestoredState,
    drms_restart,
)
from repro.checkpoint.recover import RecoveryDecision
from repro.checkpoint.rotation import _GEN_RE, CheckpointRotation
from repro.checkpoint.segment import DataSegment
from repro.errors import RestartError
from repro.mlck.drain import DrainController, DrainState
from repro.mlck.recovery import select_tiered_restart_state
from repro.mlck.store import L1Store
from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine

__all__ = ["MLCKBreakdown", "MultiLevelCheckpointer"]


@dataclass
class MLCKBreakdown:
    """What one multi-level checkpoint cost the *application*: the L1
    capture only — the drain runs behind its back."""

    prefix: str
    capture: CheckpointBreakdown
    drain_state: str = DrainState.PENDING

    @property
    def blocking_seconds(self) -> float:
        """Simulated seconds the application was stalled."""
        return self.capture.total_seconds


class MultiLevelCheckpointer:
    """Two-tier checkpointing for one application under one base prefix.

    ``drain="async"`` (default) promotes generations on the shared
    streaming pool; ``drain="sync"`` drains inline before
    :meth:`checkpoint` returns — deterministic, used by the verify
    oracle and the benchmarks.  ``k`` is the L1 partner-replica count;
    ``keep`` the durable-tier retention budget.
    """

    def __init__(
        self,
        pfs: PIOFS,
        base: str,
        machine: Optional[Machine] = None,
        k: int = 1,
        keep: int = 2,
        order: str = "F",
        target_bytes: int = 1 << 20,
        io_tasks: Optional[int] = None,
        app_name: str = "",
        events=None,
        drain: str = "async",
        evict_after_drain: bool = False,
    ):
        if drain not in ("async", "sync"):
            raise ValueError(f"drain mode must be 'async' or 'sync', not {drain!r}")
        self.pfs = pfs
        self.base = base
        self.machine = machine or pfs.machine
        self.order = order
        self.io_tasks = io_tasks
        self.app_name = app_name
        self.events = events
        self.rotation = CheckpointRotation(pfs, base, keep=keep)
        self.store = L1Store(
            self.machine, k=k, events=events, target_bytes=target_bytes
        )
        self.drainer = DrainController(
            self.store,
            pfs,
            rotation=self.rotation,
            synchronous=(drain == "sync"),
            io_tasks=io_tasks,
            target_bytes=target_bytes,
            evict_after_drain=evict_after_drain,
        )

    # -- prefix allocation ---------------------------------------------------

    def next_prefix(self) -> str:
        """A prefix strictly newer than every generation on *either*
        tier — an L1 generation whose drain has not yet written a single
        PFS byte must still reserve its number."""
        pfs_next = self.rotation.next_prefix()
        newest = int(_GEN_RE.match(pfs_next).group("gen")) - 1
        pat = re.compile(re.escape(self.base) + r"\.(?P<gen>\d{6})$")
        for prefix in self.store.generations():
            m = pat.match(prefix)
            if m:
                newest = max(newest, int(m.group("gen")))
        return f"{self.base}.{newest + 1:06d}"

    # -- checkpoint ----------------------------------------------------------

    def checkpoint(
        self,
        segment: DataSegment,
        arrays: Sequence[DistributedArray],
        nodes: Optional[Sequence[int]] = None,
        clock: float = 0.0,
    ) -> MLCKBreakdown:
        """Capture a new generation into L1 and queue its drain.  The
        returned breakdown charges the application only the capture."""
        prefix = self.next_prefix()
        _, capture_bd = self.store.capture_drms(
            prefix, segment, arrays,
            order=self.order, nodes=nodes,
            app_name=self.app_name, clock=clock,
        )
        self.drainer.schedule(prefix, clock=clock)
        return MLCKBreakdown(
            prefix=prefix,
            capture=capture_bd,
            drain_state=self.store.gen(prefix).drain_state,
        )

    def checkpoint_spmd(
        self,
        ntasks: int,
        segment_bytes: int,
        payloads: Optional[Sequence] = None,
        nodes: Optional[Sequence[int]] = None,
        clock: float = 0.0,
    ) -> MLCKBreakdown:
        """SPMD-kind capture + drain (restart task count must match)."""
        prefix = self.next_prefix()
        _, capture_bd = self.store.capture_spmd(
            prefix, ntasks, segment_bytes,
            payloads=payloads, nodes=nodes,
            app_name=self.app_name, clock=clock,
        )
        self.drainer.schedule(prefix, clock=clock)
        return MLCKBreakdown(
            prefix=prefix,
            capture=capture_bd,
            drain_state=self.store.gen(prefix).drain_state,
        )

    # -- failure handling ----------------------------------------------------

    def on_node_failure(self, node_id: int, clock: float = 0.0) -> int:
        """A node died: drop its (volatile) L1 memory.  Returns the
        number of replica copies lost with it."""
        return self.store.drop_node(node_id, clock=clock)

    # -- restart -------------------------------------------------------------

    def select_restart_state(
        self, clock: float = 0.0, job: Optional[str] = None
    ) -> RecoveryDecision:
        """The tier-aware recovery walk for this application's states."""
        self.store.sync_with_machine(clock=clock)
        return select_tiered_restart_state(
            self.pfs, self.base, self.store,
            events=self.events, clock=clock, job=job,
        )

    def restart(
        self,
        ntasks: int,
        distribution_overrides: Optional[Dict[str, object]] = None,
        clock: float = 0.0,
        job: Optional[str] = None,
        verify: bool = True,
    ) -> Tuple[RestoredState, RestartBreakdown, RecoveryDecision]:
        """Restore the newest generation satisfiable from any tier onto
        ``ntasks`` tasks.  L1-served restores still charge the fixed
        restart initialization (program text loads from the PFS
        regardless of which tier serves the checkpoint data)."""
        decision = self.select_restart_state(clock=clock, job=job)
        if decision.prefix is None:
            detail = "; ".join(
                f"{p}: {errs[0]}" for p, errs in decision.rejected[:3]
            )
            raise RestartError(
                f"no checkpoint under {self.base!r} passes validation on "
                "any tier" + (f" ({detail})" if detail else "")
            )
        if decision.tier == "l1":
            state, bd = self.store.restore_drms(
                decision.prefix, ntasks,
                order=self.order,
                distribution_overrides=distribution_overrides,
                init_seconds=self.pfs.params.restart_init_s,
            )
        else:
            state, bd = drms_restart(
                self.pfs, decision.prefix, ntasks,
                order=self.order, io_tasks=self.io_tasks,
                distribution_overrides=distribution_overrides,
                verify=verify,
            )
        return state, bd, decision

    def restart_localized(
        self,
        ntasks: int,
        placement: Dict[int, int],
        failed_nodes: Sequence[int],
        replacements: Optional[Dict[int, int]] = None,
        distribution_overrides: Optional[Dict[str, object]] = None,
        clock: float = 0.0,
        job: Optional[str] = None,
        verify: bool = True,
    ):
        """Localized recovery: restore the newest satisfiable
        generation with survivor-local cost accounting
        (:func:`~repro.mlck.localized.localized_restore_drms`), then
        re-place the dead nodes' replicas outside the replacement
        nodes' failure domains.  When the walk lands on the L2 tier
        (surviving replicas cannot serve — e.g. a whole-frame loss took
        every copy of some piece), the survivors' own L1 state of that
        generation is gone too, so recovery degrades to a full,
        correctly-metered PFS read of the newest byte-valid generation.
        Returns ``(state, breakdown, decision, scope)``."""
        from repro.mlck.localized import (
            compute_rebuild_scope,
            localized_restore_drms,
            rereplicate_after_failure,
        )
        from repro.obs import get_tracer

        decision = self.select_restart_state(clock=clock, job=job)
        if decision.prefix is None:
            detail = "; ".join(
                f"{p}: {errs[0]}" for p, errs in decision.rejected[:3]
            )
            raise RestartError(
                f"no checkpoint under {self.base!r} passes validation on "
                "any tier" + (f" ({detail})" if detail else "")
            )
        if decision.tier == "l1":
            state, bd, scope = localized_restore_drms(
                self.store, decision.prefix, ntasks,
                placement, failed_nodes,
                replacements=replacements,
                order=self.order,
                distribution_overrides=distribution_overrides,
                init_seconds=self.pfs.params.restart_init_s,
            )
            avoid = sorted(
                {
                    self.machine.domain_of(n)
                    for n in (replacements or {}).values()
                    if 0 <= n < self.machine.num_nodes
                }
            )
            rereplicate_after_failure(
                self.store, failed_nodes, avoid_domains=avoid, clock=clock
            )
        else:
            state, bd = drms_restart(
                self.pfs, decision.prefix, ntasks,
                order=self.order, io_tasks=self.io_tasks,
                distribution_overrides=distribution_overrides,
                verify=verify,
            )
            scope = compute_rebuild_scope(
                dict(state.manifest, prefix=decision.prefix),
                ntasks, placement, failed_nodes,
                replacements=replacements,
                order=self.order,
                distribution_overrides=distribution_overrides,
            )
            get_tracer().metrics.counter(
                "mlck.localized.pfs_fallbacks"
            ).inc()
        return state, bd, decision, scope

    # -- drain control -------------------------------------------------------

    def drain_pending(self) -> int:
        return self.drainer.pending

    def wait_for_drains(self, timeout: Optional[float] = None) -> None:
        self.drainer.wait(timeout=timeout)

    def drain_states(self) -> Dict[str, str]:
        """Drain state of every resident L1 generation."""
        return {
            p: self.store.gen(p).drain_state for p in self.store.generations()
        }
