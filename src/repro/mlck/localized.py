"""Localized recovery: rebuild only what the dead nodes took with them.

The full-restart protocol (paper Section 4) kills the whole application
and restores every task's state, even though the multi-level store's L1
replicas mean most of that state never left surviving memory.  This
module implements the localized alternative (Fohry-style, cf. ReStore's
in-memory replicas): on a node-failure event the survivors quiesce at
the next synchronization point, the recovery protocol computes the
*rebuild scope* — exactly the stream bytes whose assigned owner rank
was placed on a dead node — rebuilds only those sections from surviving
L1 replicas (zero PFS reads on the happy path), re-places the lost
replicas outside the replacement node's failure domain, and resumes.

Semantics are unchanged: all tasks roll back to the same checkpoint
generation, so the post-recovery state is byte-identical to a full
restart from the same generation (the :mod:`repro.verify` oracle's
``localized`` mode proves this differentially).  What changes is the
*cost model*: survivors reload their own sections from node-local
replica memory at ``mem_copy_mbps``, only the lost ranks' bytes cross
the switch, and no whole-pool TC restart happens — which is why
localized L1 recovery beats the full restart's latency
(``benchmarks/bench_localized_recovery.py``).

When the chosen generation cannot be served from L1 (e.g. every replica
of some piece sat inside one failed frame), the survivors' own copies
of that generation are gone too, so localized recovery degrades to the
newest byte-valid PFS generation — a full read, correctly charged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arrays.darray import DistributedArray
from repro.arrays.slices import Slice
from repro.checkpoint.drms import (
    RestartBreakdown,
    RestoredState,
    _publish_breakdown,
)
from repro.checkpoint.format import (
    segment_name,
    sha1_hex,
    spec_to_distribution,
)
from repro.checkpoint.segment import DataSegment
from repro.errors import MemoryTierError, RestartError
from repro.mlck.placement import _rotate_past
from repro.mlck.store import L1Store, _Accounting
from repro.obs import get_flight, get_tracer
from repro.runtime.machine import Machine
from repro.streaming.order import bytes_to_section, check_order
from repro.streaming.vectorized import _cached_index_plan

__all__ = [
    "ArrayScope",
    "RebuildScope",
    "compute_rebuild_scope",
    "rebuild_lost_sections",
    "localized_restore_drms",
    "rereplicate_after_failure",
]


@dataclass(frozen=True)
class ArrayScope:
    """One array's share of a rebuild scope."""

    name: str
    #: logical stream bytes of the whole array
    nbytes: int
    #: stream bytes whose assigned owner rank was lost
    lost_bytes: int
    #: merged, sorted ``(start, stop)`` byte intervals of the lost
    #: stream positions — the only intervals a localized rebuild moves
    lost_intervals: Tuple[Tuple[int, int], ...]
    #: stream bytes assigned per rank (partial-INDEXED holes excluded)
    rank_bytes: Dict[int, int] = field(default_factory=dict)


@dataclass(frozen=True)
class RebuildScope:
    """What a localized recovery must rebuild, and for whom.

    ``lost_ranks`` are the ranks whose placement node died;
    ``replacements`` maps each lost rank to the node taking it over.
    Byte accounting comes from the checkpoint's "assigned" section
    index plans (:mod:`repro.streaming.vectorized`), so the scope is
    exact down to partial-INDEXED holes.
    """

    prefix: str
    ntasks: int
    failed_nodes: Tuple[int, ...]
    lost_ranks: Tuple[int, ...]
    survivor_ranks: Tuple[int, ...]
    #: lost rank -> replacement node id
    replacements: Dict[int, int]
    #: surviving rank -> node id (unchanged placement)
    placement: Dict[int, int]
    segment_bytes: int
    arrays: Tuple[ArrayScope, ...]

    @property
    def lost_bytes(self) -> int:
        return sum(a.lost_bytes for a in self.arrays)

    @property
    def total_bytes(self) -> int:
        return sum(a.nbytes for a in self.arrays)

    @property
    def lost_fraction(self) -> float:
        total = self.total_bytes
        return self.lost_bytes / total if total else 0.0

    def describe(self) -> Dict:
        """Event/flight detail payload summarizing the scope."""
        return {
            "prefix": self.prefix,
            "ntasks": self.ntasks,
            "failed_nodes": list(self.failed_nodes),
            "lost_ranks": list(self.lost_ranks),
            "survivor_ranks": list(self.survivor_ranks),
            "replacements": {int(r): int(n) for r, n in self.replacements.items()},
            "lost_bytes": self.lost_bytes,
            "total_bytes": self.total_bytes,
        }


def _byte_intervals(spos_sorted: np.ndarray, itemsize: int) -> List[Tuple[int, int]]:
    """Contiguous byte intervals of sorted stream positions."""
    if spos_sorted.size == 0:
        return []
    breaks = np.flatnonzero(np.diff(spos_sorted) != 1)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [spos_sorted.size - 1]))
    return [
        (int(spos_sorted[s]) * itemsize, (int(spos_sorted[e]) + 1) * itemsize)
        for s, e in zip(starts, ends)
    ]


def _merge_intervals(intervals: List[Tuple[int, int]]) -> Tuple[Tuple[int, int], ...]:
    merged: List[Tuple[int, int]] = []
    for lo, hi in sorted(intervals):
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return tuple(merged)


def _array_specs(gen_or_manifest) -> List[Dict]:
    """Uniform array-spec dicts from an L1Generation or a manifest."""
    if isinstance(gen_or_manifest, dict):
        return list(gen_or_manifest.get("arrays", []))
    return [
        {
            "name": e.name,
            "shape": list(e.shape),
            "dtype": e.dtype,
            "nbytes": e.nbytes,
            "distribution": e.distribution,
        }
        for e in gen_or_manifest.arrays
    ]


def _segment_bytes(gen_or_manifest) -> int:
    if isinstance(gen_or_manifest, dict):
        return int(gen_or_manifest.get("segment_bytes", 0))
    return int(gen_or_manifest.segment_bytes)


def compute_rebuild_scope(
    gen_or_manifest,
    ntasks: int,
    placement: Dict[int, int],
    failed_nodes: Sequence[int],
    replacements: Optional[Dict[int, int]] = None,
    order: str = "F",
    distribution_overrides: Optional[Dict[str, object]] = None,
) -> RebuildScope:
    """The rebuild scope of a failure: which ranks died with
    ``failed_nodes`` under ``placement`` (rank -> node), and exactly
    which stream byte intervals of each checkpointed array they owned
    under the restart distributions.

    ``gen_or_manifest`` is an :class:`~repro.mlck.store.L1Generation`
    or a manifest-shaped dict (the PFS-fallback path).  ``replacements``
    maps lost ranks to their replacement nodes; lost ranks without an
    entry fall back to their old (repaired-later) node id, which only
    affects accounting attribution, never bytes.
    """
    check_order(order)
    failed = set(int(n) for n in failed_nodes)
    lost = tuple(sorted(r for r, nd in placement.items() if nd in failed))
    survivors = tuple(sorted(r for r in placement if r not in lost))
    prefix = (
        gen_or_manifest.get("prefix", "")
        if isinstance(gen_or_manifest, dict)
        else gen_or_manifest.prefix
    )
    repl = {int(r): int(n) for r, n in (replacements or {}).items()}
    for r in lost:
        repl.setdefault(r, placement[r])
    overrides = distribution_overrides or {}
    lost_set = set(lost)
    scopes: List[ArrayScope] = []
    for spec in _array_specs(gen_or_manifest):
        dist = overrides.get(spec["name"]) or spec_to_distribution(
            spec["distribution"], ntasks=ntasks
        )
        if dist.ntasks != ntasks:
            raise RestartError(
                f"override distribution for {spec['name']!r} targets "
                f"{dist.ntasks} tasks; localized restart uses {ntasks}"
            )
        itemsize = np.dtype(spec["dtype"]).itemsize
        section = Slice.full(spec["shape"])
        plan = _cached_index_plan(dist, section, order, "assigned")
        rank_bytes: Dict[int, int] = {}
        intervals: List[Tuple[int, int]] = []
        lost_bytes = 0
        for entry in plan.entries:
            nb = int(entry.spos.size) * itemsize
            rank_bytes[entry.task] = nb
            if entry.task in lost_set:
                lost_bytes += nb
                intervals.extend(_byte_intervals(entry.spos_sorted, itemsize))
        scopes.append(
            ArrayScope(
                name=spec["name"],
                nbytes=int(spec["nbytes"]),
                lost_bytes=lost_bytes,
                lost_intervals=_merge_intervals(intervals),
                rank_bytes=rank_bytes,
            )
        )
    return RebuildScope(
        prefix=prefix,
        ntasks=ntasks,
        failed_nodes=tuple(sorted(failed)),
        lost_ranks=lost,
        survivor_ranks=survivors,
        replacements=repl,
        placement={int(r): int(n) for r, n in placement.items()},
        segment_bytes=_segment_bytes(gen_or_manifest),
        arrays=tuple(scopes),
    )


def rebuild_lost_sections(
    darray: DistributedArray,
    flat: np.ndarray,
    lost_ranks: Sequence[int],
    order: str = "F",
) -> int:
    """Scatter only the lost ranks' mapped pieces of a stream-ordered
    value vector into ``darray``, leaving every survivor's local section
    untouched — the section-scoped rebuild primitive, built on the
    vectorized "mapped" index plans.  Returns elements delivered."""
    check_order(order)
    section = Slice.full(darray.shape)
    plan = _cached_index_plan(darray.distribution, section, order, "mapped")
    lost = set(int(r) for r in lost_ranks)
    flat = np.ascontiguousarray(flat).reshape(-1)
    delivered = 0
    for entry in plan.entries:
        if entry.task not in lost or entry.spos.size == 0:
            continue
        darray.local_flat(entry.task)[entry.lflat] = flat[entry.spos]
        delivered += int(entry.spos.size)
    return delivered


def localized_restore_drms(
    store: L1Store,
    prefix: str,
    ntasks: int,
    placement: Dict[int, int],
    failed_nodes: Sequence[int],
    replacements: Optional[Dict[int, int]] = None,
    order: Optional[str] = None,
    distribution_overrides: Optional[Dict[str, object]] = None,
    init_seconds: float = 0.0,
) -> Tuple[RestoredState, RestartBreakdown, RebuildScope]:
    """Restore a DRMS generation with localized cost accounting.

    The restored state is byte-identical to
    :meth:`~repro.mlck.store.L1Store.restore_drms` of the same
    generation — everyone rolls back to the checkpoint.  The charging
    differs: each surviving rank reloads its assigned section from its
    own node's replica memory (``mem_copy_mbps`` local copies, zero
    switch traffic), only the lost ranks' sections are served over the
    switch from surviving replicas to their replacement nodes, and
    ``init_seconds`` (program-text load) is charged only when there is
    a replacement task to initialize.  Raises
    :class:`~repro.errors.MemoryTierError` when any piece has lost
    every valid replica — the caller then falls back to the PFS tier.
    """
    gen = store.gen(prefix)
    if gen.kind != "drms":
        raise RestartError(
            f"L1 generation {prefix!r} is kind {gen.kind!r}; "
            "localized restart needs a DRMS checkpoint"
        )
    if ntasks < 1:
        raise RestartError(f"cannot restart on {ntasks} tasks")
    order = order or gen.order
    scope = compute_rebuild_scope(
        gen,
        ntasks,
        placement,
        failed_nodes,
        replacements=replacements,
        order=order,
        distribution_overrides=distribution_overrides,
    )
    bd = RestartBreakdown(
        kind="mlck-l1-localized", prefix=prefix, ntasks=ntasks
    )
    # Survivors never reload program text; only replacement tasks do.
    bd.other_seconds = float(init_seconds) if scope.lost_ranks else 0.0
    obs = get_tracer()
    machine = store.machine
    untimed = _Accounting(machine)
    any_up = (machine.up_nodes() or [0])[0]
    with obs.span(
        "restart", kind="mlck-l1-localized", prefix=prefix, ntasks=ntasks,
        checkpoint_ntasks=gen.ntasks, lost_ranks=list(scope.lost_ranks),
    ) as op:
        with obs.span("restart_init") as sp:
            obs.advance(bd.other_seconds)
            sp.set(seconds=bd.other_seconds)

        # Segment: every rank rolls back to the generation's segment.
        # Survivors copy it from local replica memory; replacements
        # pull it over the switch from the serving nodes.
        acct = _Accounting(machine)
        with obs.span(
            "l1_segment_fetch", file=segment_name(prefix), localized=True
        ) as sp:
            header = store._fetch_pieces(
                gen.segment_pieces, untimed, any_up, count_hits=False
            )
            servers = sorted(
                {store._serving_replica(p) for p in gen.segment_pieces}
                - {None}
            ) or [any_up]
            for r in scope.survivor_ranks:
                acct.copy(scope.placement[r], gen.segment_bytes)
            for i, r in enumerate(scope.lost_ranks):
                acct.send(
                    servers[i % len(servers)],
                    scope.replacements[r],
                    gen.segment_bytes,
                )
            sec = acct.seconds()
            obs.advance(sec)
            sp.set(nbytes=gen.segment_bytes * ntasks, seconds=sec)
        if sha1_hex(header) != gen.segment_sha1:
            raise MemoryTierError(
                f"L1 segment of {prefix!r} failed checksum validation"
            )
        segment = DataSegment.deserialize(header)
        bd.segment_seconds = sec
        bd.segment_bytes = gen.segment_bytes * ntasks

        overrides = distribution_overrides or {}
        scope_by_name = {a.name: a for a in scope.arrays}
        arrays: Dict[str, DistributedArray] = {}
        for e in gen.arrays:
            ascope = scope_by_name[e.name]
            dist = overrides.get(e.name) or spec_to_distribution(
                e.distribution, ntasks=ntasks
            )
            arr = DistributedArray(
                e.name, e.shape, np.dtype(e.dtype), dist,
                store_data=not e.virtual,
            )
            acct = _Accounting(machine)
            with obs.span(
                f"l1_localized_fetch:{e.name}", file=e.file
            ) as sp:
                if not e.virtual:
                    data = store._fetch_pieces(
                        e.pieces, untimed, any_up, count_hits=False
                    )
                    if e.sha1 is not None and sha1_hex(data) != e.sha1:
                        raise MemoryTierError(
                            f"L1 stream {e.file!r} failed checksum validation"
                        )
                    arr.set_global(
                        bytes_to_section(data, e.shape, e.dtype, order)
                    )
                    servers = sorted(
                        {store._serving_replica(p) for p in e.pieces}
                        - {None}
                    ) or [any_up]
                else:
                    servers = [
                        scope.placement[r] for r in scope.survivor_ranks
                    ] or [any_up]
                for r in scope.survivor_ranks:
                    acct.copy(
                        scope.placement[r], ascope.rank_bytes.get(r, 0)
                    )
                for i, r in enumerate(scope.lost_ranks):
                    nb = ascope.rank_bytes.get(r, 0)
                    if nb:
                        acct.send(
                            servers[i % len(servers)],
                            scope.replacements[r],
                            nb,
                        )
                sec = acct.seconds()
                obs.advance(sec)
                sp.set(
                    nbytes=e.nbytes, lost_bytes=ascope.lost_bytes,
                    seconds=sec,
                )
            bd.arrays_seconds += sec
            bd.arrays_bytes += e.nbytes
            bd.per_array.append((e.name, sec, e.nbytes))
            arrays[e.name] = arr
        op.set(nbytes=bd.total_bytes, seconds=bd.total_seconds)
    _publish_breakdown("restart", bd)
    m = obs.metrics
    m.counter("mlck.localized.restores").inc()
    m.counter("mlck.localized.lost.bytes").inc(scope.lost_bytes)
    m.counter("mlck.localized.survivor.bytes").inc(
        max(0, scope.total_bytes - scope.lost_bytes)
    )
    m.counter("mlck.restore.localized.seconds").inc(bd.total_seconds)
    fr = get_flight()
    if fr.enabled:
        fr.record(
            "localized_rebuilt", time=0.0, prefix=prefix,
            lost_ranks=list(scope.lost_ranks),
            lost_bytes=scope.lost_bytes, seconds=bd.total_seconds,
        )
    state = RestoredState(
        segment=segment,
        arrays=arrays,
        ntasks=ntasks,
        checkpoint_ntasks=gen.ntasks,
        manifest=store._drms_manifest_like(gen),
    )
    return state, bd, scope


@dataclass
class ReplicationRepair:
    """What re-replication after a failure copied where."""

    copies: int = 0
    nbytes: int = 0
    seconds: float = 0.0
    #: piece keys that could not reach full replication (no candidate)
    short: List[str] = field(default_factory=list)


def _repair_candidates(
    machine: Machine,
    source: int,
    exclude: Sequence[int],
    avoid_domains: Sequence[int],
) -> List[int]:
    """New-replica candidates: up nodes, not already replicas, outside
    the avoided domains (the replacement node's frame), preferring
    nodes outside the source's own domain; same-domain nodes fill in
    last so a degenerate cluster still re-replicates."""
    excluded = set(exclude)
    avoid = set(avoid_domains)
    src_domain = machine.domain_of(source)
    outside = [
        n
        for n in machine.up_nodes()
        if n not in excluded
        and machine.domain_of(n) not in avoid
        and machine.domain_of(n) != src_domain
    ]
    inside = [
        n
        for n in machine.up_nodes()
        if n not in excluded
        and machine.domain_of(n) not in avoid
        and machine.domain_of(n) == src_domain
    ]
    return _rotate_past(outside, source) + _rotate_past(inside, source)


def rereplicate_after_failure(
    store: L1Store,
    failed_nodes: Sequence[int],
    avoid_domains: Sequence[int] = (),
    clock: float = 0.0,
) -> ReplicationRepair:
    """Restore the replication factor of every resident generation
    after ``failed_nodes`` died: dead nodes are scrubbed from each
    piece's replica list and fresh copies are placed on up nodes
    outside ``avoid_domains`` (the replacement node's failure domain,
    so a repeat of the same correlated failure cannot take both the
    replacement task and its recovery data).  Byte copies are charged
    as switch transfers; returns the repair accounting."""
    failed = set(int(n) for n in failed_nodes)
    machine = store.machine
    acct = _Accounting(machine)
    repair = ReplicationRepair()
    fr = get_flight()
    with store._lock:
        for prefix in store.generations():
            gen = store._gens.get(prefix)
            if gen is None:
                continue
            all_pieces = (
                [gen.segment_pieces]
                + [e.pieces for e in gen.arrays]
                + gen.task_pieces
            )
            for pieces in all_pieces:
                for piece in pieces:
                    # Scrub every unservable entry, not just this
                    # incident's victims: nodes that died in earlier
                    # incidents (or were repaired empty) still linger
                    # in replica lists until a repair pass cleans them.
                    piece.replicas[:] = [
                        n
                        for n in piece.replicas
                        if n not in failed and store._replica_valid(piece, n)
                    ]
                    source = store._serving_replica(piece)
                    if source is None:
                        # Every copy is gone: validation will reject
                        # this generation; nothing to re-replicate.
                        continue
                    need = (store.k + 1) - len(piece.replicas)
                    if need <= 0:
                        continue
                    candidates = _repair_candidates(
                        machine, source, piece.replicas, avoid_domains
                    )
                    if len(candidates) < need:
                        repair.short.append(piece.key)
                    data = store._mem[source][piece.key]
                    for new in candidates[:need]:
                        store._node_mem(new)[piece.key] = data
                        piece.replicas.append(new)
                        acct.send(source, new, piece.nbytes)
                        repair.copies += 1
                        repair.nbytes += piece.nbytes
                        if fr.enabled:
                            fr.record(
                                "replica_replaced", node=new, time=clock,
                                key=piece.key, source=source,
                                nbytes=piece.nbytes,
                            )
    repair.seconds = acct.seconds()
    m = get_tracer().metrics
    m.counter("mlck.localized.rereplicate.copies").inc(repair.copies)
    m.counter("mlck.localized.rereplicate.bytes").inc(repair.nbytes)
    store._update_resident_gauge()
    return repair
