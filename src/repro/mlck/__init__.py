"""repro.mlck — multi-level (memory + PFS) checkpoint store.

The paper's recovery path always round-trips through the parallel file
system, and its own Table 6 shows PFS write/read time dominating both
checkpoint and restart.  This package adds the tier the paper's
hardware could not afford: **L1**, an in-memory checkpoint store that
keeps each generation's stream pieces in simulated node memory with
partner replication across failure domains (so a single node failure
loses no data), and **L2**, the existing crash-consistent PFS path,
populated by an *asynchronous drain* that promotes an L1 generation to
a durable v3 manifest on the shared streaming thread pool — without
blocking the application's next SOP.

* :mod:`repro.mlck.placement` — partner selection over the machine's
  failure domains (owner + k partners, domains disjoint);
* :mod:`repro.mlck.store`     — the replicated L1 tier: capture,
  checksum validation, fetch, node-loss handling;
* :mod:`repro.mlck.drain`     — the L1->L2 drain state machine;
* :mod:`repro.mlck.recovery`  — tier-aware restart-state selection
  (newest generation satisfiable from *any* tier, L1 preferred);
* :mod:`repro.mlck.checkpointer` — :class:`MultiLevelCheckpointer`,
  the rotation-integrated façade applications use;
* :mod:`repro.mlck.localized`  — localized recovery: rebuild only the
  dead nodes' sections from surviving replicas, then restore the
  replication factor outside the replacement's failure domain.

Quickstart::

    from repro.mlck import MultiLevelCheckpointer

    ck = MultiLevelCheckpointer(pfs, "app.ck", machine=machine)
    ck.checkpoint(segment, arrays)        # memory-speed, drain queued
    state, bd, decision = ck.restart(ntasks)   # L1 when it survives
"""

from repro.mlck.checkpointer import MLCKBreakdown, MultiLevelCheckpointer
from repro.mlck.drain import DrainController, DrainState
from repro.mlck.localized import (
    ArrayScope,
    RebuildScope,
    ReplicationRepair,
    compute_rebuild_scope,
    localized_restore_drms,
    rebuild_lost_sections,
    rereplicate_after_failure,
)
from repro.mlck.placement import replica_nodes, select_partners
from repro.mlck.recovery import select_tiered_restart_state
from repro.mlck.store import L1ArrayEntry, L1Generation, L1Piece, L1Store

__all__ = [
    "ArrayScope",
    "DrainController",
    "DrainState",
    "L1ArrayEntry",
    "L1Generation",
    "L1Piece",
    "L1Store",
    "MLCKBreakdown",
    "MultiLevelCheckpointer",
    "RebuildScope",
    "ReplicationRepair",
    "compute_rebuild_scope",
    "localized_restore_drms",
    "rebuild_lost_sections",
    "replica_nodes",
    "rereplicate_after_failure",
    "select_partners",
    "select_tiered_restart_state",
]
