"""The L1 -> L2 drain: asynchronous promotion to durable PFS state.

After an L1 capture the application continues immediately; the drain
promotes the generation to the parallel file system in the background,
on the shared :mod:`repro.streaming.executor` thread pool — so the slow
PFS write (the paper's dominant checkpoint cost, Table 6) overlaps the
next SOPs instead of stalling them.

State machine per generation::

    pending --> draining --> durable
                        \\-> failed     (fault, node loss mid-drain)

The drain reconstructs segment and arrays *from the L1 replicas* and
writes them through the ordinary
:func:`~repro.checkpoint.drms.drms_checkpoint` /
:func:`~repro.checkpoint.spmd.spmd_checkpoint` paths, so the durable
state is byte-identical to a direct PFS checkpoint — manifest two-phase
commit included.  A drain that dies mid-flight therefore leaves *no*
manifest: the half-written generation is invisible to recovery, which
falls back to the newest byte-valid L2 state (or a surviving L1 one).

Retention interlock: while a drain is in flight, the rotation's newest
durable generation is **pinned** — it is the only durable fallback
until the draining generation supersedes it, so
:meth:`~repro.checkpoint.rotation.CheckpointRotation.prune` must not
delete it, however many newer generations commit meanwhile.

Drains are serialized on one lock: PFS I/O phases do not nest, and a
single writer keeps generation commit order monotone.  ``synchronous``
mode runs the drain inline in :meth:`DrainController.schedule` — the
deterministic mode the verify oracle and the benchmarks use.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Dict, List, Optional

from repro.checkpoint.drms import drms_checkpoint
from repro.checkpoint.rotation import CheckpointRotation
from repro.checkpoint.spmd import _decode_task_file, spmd_checkpoint
from repro.errors import CheckpointError
from repro.mlck.store import L1Store
from repro.obs import get_flight, get_tracer
from repro.pfs.piofs import PIOFS
from repro.streaming.executor import submit_task

__all__ = ["DrainState", "DrainController"]


class DrainState:
    """Drain states recorded on :class:`~repro.mlck.store.L1Generation`."""

    PENDING = "pending"
    DRAINING = "draining"
    DURABLE = "durable"
    FAILED = "failed"


class DrainController:
    """Promotes L1 generations to durable L2 (PFS) state.

    ``rotation``, when given, supplies retention: the controller pins
    the newest durable generation for the duration of each drain and
    commits (prune included) once the drained generation's manifest is
    on the PFS.  Without a rotation the drain only writes.
    """

    def __init__(
        self,
        store: L1Store,
        pfs: PIOFS,
        rotation: Optional[CheckpointRotation] = None,
        synchronous: bool = False,
        io_tasks: Optional[int] = None,
        target_bytes: int = 1 << 20,
        evict_after_drain: bool = False,
    ):
        self.store = store
        self.pfs = pfs
        self.rotation = rotation
        self.synchronous = bool(synchronous)
        self.io_tasks = io_tasks
        self.target_bytes = int(target_bytes)
        #: drop the L1 replicas once a generation is durable (frees
        #: memory; recovery then serves that generation from L2)
        self.evict_after_drain = bool(evict_after_drain)
        self._serial = threading.Lock()  # PFS phases do not nest
        self._state_lock = threading.Lock()
        self._futures: Dict[str, Future] = {}
        self._pending = 0
        #: prefix -> clock at schedule time, while the drain is in
        #: flight (drives the health backlog-age gauge)
        self.scheduled_at: Dict[str, float] = {}
        #: optional HealthRegistry re-sampled as drains settle
        self.health = None

    # -- bookkeeping ---------------------------------------------------------

    @property
    def pending(self) -> int:
        """Generations scheduled but not yet durable/failed."""
        with self._state_lock:
            return self._pending

    def _set_pending(self, delta: int) -> None:
        with self._state_lock:
            self._pending += delta
            value = self._pending
        get_tracer().metrics.gauge("mlck.drain.pending").set(value)

    def wait(self, timeout: Optional[float] = None) -> None:
        """Block until every scheduled drain has finished (drains swallow
        their own failures into the generation's drain state)."""
        with self._state_lock:
            futures = list(self._futures.values())
        for f in futures:
            f.result(timeout=timeout)

    # -- scheduling ----------------------------------------------------------

    def schedule(self, prefix: str, clock: float = 0.0) -> Optional[Future]:
        """Queue the drain of ``prefix``.  Asynchronous mode returns the
        Future running on the shared streaming pool; synchronous mode
        drains inline and returns None.  ``clock`` stamps the backlog
        entry for the health gauges."""
        gen = self.store.gen(prefix)
        if gen.drain_state not in (DrainState.PENDING, DrainState.FAILED):
            raise CheckpointError(
                f"generation {prefix!r} is {gen.drain_state}; "
                "only pending or failed generations can be drained"
            )
        gen.drain_state = DrainState.PENDING
        gen.drain_error = None
        # Pin the newest durable fallback before the drain can race it.
        protect = self.rotation.latest() if self.rotation is not None else None
        if protect is not None:
            self.rotation.pin(protect)
        self._set_pending(+1)
        with self._state_lock:
            self.scheduled_at[prefix] = float(clock)
        get_flight().record(
            "drain_scheduled", time=clock, prefix=prefix,
            pending=self.pending,
        )
        if self.synchronous:
            self._drain(prefix, protect)
            return None
        future = submit_task(lambda: self._drain(prefix, protect))
        with self._state_lock:
            self._futures[prefix] = future
        return future

    # -- the drain itself ----------------------------------------------------

    def _drain(self, prefix: str, protect: Optional[str]) -> str:
        """Runs on the pool (or inline): returns the final drain state.
        Failures are recorded on the generation, never raised — a broken
        drain must not take the application down; recovery falls back."""
        m = get_tracer().metrics
        fr = get_flight()
        with self._serial:
            gen = self.store.gen(prefix)
            gen.drain_state = DrainState.DRAINING
            fr.record("drain_state", prefix=prefix, state=DrainState.DRAINING)
            try:
                if gen.kind == "drms":
                    segment, arrays = self.store.materialize_drms(prefix)
                    drms_checkpoint(
                        self.pfs, prefix, segment, arrays,
                        order=gen.order, io_tasks=self.io_tasks,
                        target_bytes=self.target_bytes,
                        app_name=gen.app_name,
                    )
                else:
                    # exact payloads survive in the L1 task headers
                    payloads = []
                    for t in range(gen.ntasks):
                        head = self.store._fetch_pieces(
                            gen.task_pieces[t],
                            # untimed: drain charges PFS write time
                            _untimed_acct(self.store),
                            0,
                            count_hits=False,
                        )
                        payloads.append(_decode_task_file(head))
                    spmd_checkpoint(
                        self.pfs, prefix, gen.ntasks,
                        gen.spmd_segment_bytes,
                        payloads=payloads
                        if any(p is not None for p in payloads)
                        else None,
                        app_name=gen.app_name,
                    )
                gen.drain_state = DrainState.DURABLE
                m.counter("mlck.drain.completed").inc()
                fr.record(
                    "drain_state", prefix=prefix, state=DrainState.DURABLE
                )
                if self.rotation is not None:
                    # retention now that the new generation is durable
                    # (prune, not commit: an interleaved direct PFS
                    # checkpoint may already be newer than this drain)
                    self.rotation.prune()
                if self.evict_after_drain:
                    self.store.discard(prefix)
            except Exception as exc:  # noqa: BLE001 - recorded, not raised
                gen.drain_state = DrainState.FAILED
                gen.drain_error = str(exc)
                m.counter("mlck.drain.failed").inc()
                fr.record(
                    "drain_state", prefix=prefix, state=DrainState.FAILED,
                    error=str(exc),
                )
                # the fault may have killed the checkpoint mid-phase;
                # leave the PFS usable for the next drain
                self.pfs.abort_phase()
            finally:
                if protect is not None and self.rotation is not None:
                    self.rotation.unpin(protect)
                self._set_pending(-1)
                with self._state_lock:
                    self._futures.pop(prefix, None)
                    self.scheduled_at.pop(prefix, None)
                if self.health is not None:
                    self.health.sample_drainer(self)
        return gen.drain_state


def _untimed_acct(store: L1Store):
    """A throwaway accounting sink for drain-side fetches (the drain's
    measured cost is its PFS write, not the memory reads)."""
    from repro.mlck.store import _Accounting

    return _Accounting(store.machine)
