"""Replica placement over the machine's failure domains.

The SP packs nodes into frames that share power and switch boards, so
correlated failures strike *within* a frame.  L1 replica placement
therefore pairs each piece's owner with ``k`` partner nodes drawn from
**other** failure domains: a whole-frame failure (or any single node
failure) still leaves at least one live copy of every piece.

Selection is deterministic — sorted candidates rotated to start just
past the owner — so capture, tests, and the verify oracle all agree on
where every replica lives without recording placement decisions.

Degenerate clusters (one failure domain, or every other domain down)
cannot satisfy domain disjointness.  Rather than refuse to checkpoint,
:func:`select_partners` falls back to any other up node and emits a
``mlck_partner_fallback`` warning event on the cluster's
:class:`~repro.infra.events.EventLog`: the checkpoint is still
replicated, just without the cross-domain guarantee.
"""

from __future__ import annotations

from typing import List, Optional

from repro.runtime.machine import Machine

__all__ = ["select_partners", "replica_nodes"]


def _rotate_past(candidates: List[int], owner: int) -> List[int]:
    """Sorted candidates, rotated so selection starts just past the
    owner — spreads partner load instead of piling onto node 0."""
    ordered = sorted(candidates)
    return [n for n in ordered if n > owner] + [n for n in ordered if n <= owner]


def select_partners(
    machine: Machine,
    owner: int,
    k: int = 1,
    events=None,
    clock: float = 0.0,
) -> List[int]:
    """The ``k`` partner nodes replicating pieces owned by ``owner``.

    Partners are up nodes outside the owner's failure domain, chosen
    deterministically.  When fewer than ``k`` such nodes exist (single
    domain, mass failure), any other up node fills in and a
    ``mlck_partner_fallback`` event is emitted on ``events``; when the
    owner is the only up node, the (possibly empty) partner list is
    returned with the same warning — the caller keeps the sole copy.
    """
    domain = machine.domain_of(owner)
    pool = _rotate_past(
        [n for n in machine.up_nodes_outside_domain(domain) if n != owner], owner
    )
    partners = pool[:k]
    if len(partners) < k:
        same_domain = _rotate_past(
            [
                n
                for n in machine.up_nodes()
                if n != owner and n not in partners
            ],
            owner,
        )
        partners = partners + same_domain[: k - len(partners)]
        if events is not None:
            events.emit(
                clock,
                "mlck_partner_fallback",
                owner=owner,
                domain=domain,
                partners=list(partners),
                wanted=k,
                reason=(
                    "no up node outside the owner's failure domain"
                    if machine.num_domains > 1
                    else "cluster has a single failure domain"
                ),
            )
    return partners


def replica_nodes(
    machine: Machine,
    owner: int,
    k: int = 1,
    events=None,
    clock: float = 0.0,
) -> List[int]:
    """Owner-first replica set for one piece: ``[owner, *partners]``."""
    return [owner, *select_partners(machine, owner, k=k, events=events, clock=clock)]
