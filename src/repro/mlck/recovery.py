"""Tier-aware recovery: newest generation satisfiable from any tier.

Extends the PFS recovery walk (:mod:`repro.checkpoint.recover`) to the
two-level store.  Candidates from both tiers merge into one
newest-first sequence; at each generation L1 is tried before L2
(fetching surviving memory replicas over the switch beats re-reading
the PFS by more than an order of magnitude on the simulated machine):

1. an L1 replica set is *checksum-validated* exactly like a manifest —
   every piece must have a surviving, SHA-1-valid replica;
2. a generation whose L1 copy is lost (node failure took both
   replicas, or it was evicted after draining) falls back to its L2
   copy, if the manifest committed and the bytes verify;
3. a generation lost in *both* tiers — e.g. a mid-drain crash left no
   manifest and the L1 copy died with its node — is rejected and the
   walk continues to the older generation.

Deciding never reads checkpoint *data* from the PFS until L1 has
already failed for some generation: L2 candidates are enumerated from
manifest **names** only (the two-phase commit makes name presence imply
a committed manifest), so a recovery fully served by L1 performs zero
PFS reads — the property the verify oracle's node-loss schedules
assert via the ``pfs.read.count`` metric.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.checkpoint.format import manifest_name
from repro.checkpoint.recover import RecoveryDecision
from repro.checkpoint.rotation import _GEN_RE
from repro.checkpoint.validate import validate_checkpoint
from repro.mlck.store import L1Store
from repro.obs import get_flight, get_tracer
from repro.pfs.piofs import PIOFS

__all__ = ["tiered_candidates", "select_tiered_restart_state"]


def _gen_number(prefix: str, base: str) -> int:
    """Rotation generation number of ``prefix`` (0 for ``base`` itself,
    so the un-rotated state sorts oldest)."""
    m = _GEN_RE.match(prefix)
    if m is not None and m.group("base") == base:
        return int(m.group("gen"))
    return 0


def _l2_prefixes_by_name(pfs: PIOFS, base: str) -> List[str]:
    """Committed L2 prefixes under ``base``, discovered from manifest
    *names* alone — no manifest is read, so enumerating candidates
    costs no PFS read.  Sound because the manifest two-phase commit
    renames ``.manifest.tmp`` to ``.manifest`` only after read-back
    validation: a listed name is a committed manifest."""
    suffix = ".manifest"
    out = []
    for name in pfs.listdir(base + "."):
        if not name.endswith(suffix):
            continue
        prefix = name[: -len(suffix)]
        m = _GEN_RE.match(prefix)
        if m is not None and m.group("base") == base:
            out.append(prefix)
    if pfs.exists(manifest_name(base)):
        out.append(base)
    return out


def tiered_candidates(
    pfs: PIOFS, base: str, l1: L1Store
) -> List[Tuple[str, List[str]]]:
    """Merged candidate list, newest generation first: ``(prefix,
    tiers)`` with tiers ordered ``["l1", "l2"]`` — the preference order
    within one generation."""
    l1_prefixes = {
        p
        for p in l1.generations()
        if p == base or _GEN_RE.match(p) and _GEN_RE.match(p).group("base") == base
    }
    l2_prefixes = set(_l2_prefixes_by_name(pfs, base))
    merged = sorted(
        l1_prefixes | l2_prefixes,
        key=lambda p: _gen_number(p, base),
        reverse=True,
    )
    out = []
    for prefix in merged:
        tiers = []
        if prefix in l1_prefixes:
            tiers.append("l1")
        if prefix in l2_prefixes:
            tiers.append("l2")
        out.append((prefix, tiers))
    return out


def select_tiered_restart_state(
    pfs: PIOFS,
    base: str,
    l1: L1Store,
    events=None,
    clock: float = 0.0,
    job: Optional[str] = None,
) -> RecoveryDecision:
    """Pick the newest generation under ``base`` satisfiable from any
    tier, preferring L1 within a generation.  Returns a
    :class:`~repro.checkpoint.recover.RecoveryDecision` whose ``tier``
    names the serving tier; every rejected (generation, tier) pair is
    recorded with tier-tagged errors, and the walk emits the same
    ``checkpoint_verified`` / ``checkpoint_rejected`` /
    ``restart_fallback`` events as the PFS-only policy."""
    decision = RecoveryDecision(base=base, prefix=None)
    obs = get_tracer()
    fr = get_flight()
    m = obs.metrics
    with obs.span("recovery_walk", base=base, job=job, tiered=True) as sp:
        candidates = tiered_candidates(pfs, base, l1)
        fr.record(
            "recovery_walk_started", time=clock, base=base, job=job,
            candidates=len(candidates),
        )
        for prefix, tiers in candidates:
            for tier in tiers:
                if tier == "l1":
                    report = l1.validate_generation(prefix)
                else:
                    report = validate_checkpoint(pfs, prefix)
                if report.ok:
                    decision.prefix = prefix
                    decision.tier = tier
                    m.counter("recover.verified").inc()
                    m.counter(f"mlck.recover.{tier}").inc()
                    if tier == "l2" and any(
                        err.startswith("l1:")
                        for _, errs in decision.rejected
                        for err in errs
                    ):
                        # an L1 candidate existed but could not serve
                        m.counter("mlck.l2.fallbacks").inc()
                    if events is not None:
                        events.emit(
                            clock, "checkpoint_verified",
                            job=job, prefix=prefix, tier=tier,
                            files=report.files,
                            bytes_hashed=report.bytes_hashed,
                        )
                        if decision.rejected:
                            events.emit(
                                clock, "restart_fallback",
                                job=job, prefix=prefix, tier=tier,
                                skipped=[p for p, _ in decision.rejected],
                            )
                    if decision.rejected:
                        obs.mark(
                            "restart_fallback", chosen=prefix, tier=tier,
                            skipped=[p for p, _ in decision.rejected],
                        )
                        m.counter("recover.fallback").inc()
                    break
                tagged = [f"{tier}: {e}" for e in report.errors]
                decision.rejected.append((prefix, tagged))
                obs.mark(
                    "checkpoint_rejected", prefix=prefix, tier=tier,
                    errors=len(report.errors),
                )
                fr.record(
                    "checkpoint_rejected", time=clock, prefix=prefix,
                    tier=tier, errors=len(report.errors),
                )
                m.counter("recover.rejected").inc()
                if events is not None:
                    events.emit(
                        clock, "checkpoint_rejected",
                        job=job, prefix=prefix, tier=tier, errors=tagged,
                    )
            if decision.prefix is not None:
                break
        sp.set(
            candidates=len(candidates),
            rejected=len(decision.rejected),
            chosen=decision.prefix,
            tier=decision.tier,
        )
        fr.record(
            "recovery_walk_done", time=clock, base=base, job=job,
            chosen=decision.prefix, tier=decision.tier,
            rejected=len(decision.rejected),
        )
    return decision
