"""PIOFS-like parallel file system simulator.

Files hold real bytes (striped across server nodes) so checkpoint data
round-trips exactly; *timing* comes from a phase-based throughput model
(:mod:`repro.pfs.phase`) calibrated against the paper's 16-node SP
testbed, reproducing its three I/O phenomena: writes are
server-limited, shared-file reads are client-limited (PIOFS prefetch),
and reads of many large distinct files collapse once the working set
exceeds the available buffer memory.
"""

from repro.pfs.params import PIOFSParams
from repro.pfs.file import PFSFile
from repro.pfs.phase import IOKind, IOPhaseResult
from repro.pfs.piofs import PIOFS
from repro.pfs.localfs import SerialFS
from repro.pfs.hostfs import HostFS
from repro.pfs.faults import FaultInjector, ReadFault, WriteFault, flip_stored_bit

__all__ = [
    "PIOFSParams",
    "PFSFile",
    "IOKind",
    "IOPhaseResult",
    "PIOFS",
    "SerialFS",
    "HostFS",
    "FaultInjector",
    "WriteFault",
    "ReadFault",
    "flip_stored_bit",
]
