"""A serial single-server file system (NFS-like baseline).

The paper notes its approach "works with any file system" but only
reaches full performance on a parallel one.  :class:`SerialFS` is the
contrast case: one server, one channel, so *every* phase — regardless of
how many clients participate — is limited by a single sequential rate.
Used by the streaming ablation bench to show why parallel streaming
needs a parallel file system (paper Section 3.2: serial streaming works
through a sequential channel such as a UNIX socket or tape drive).
"""

from __future__ import annotations

from typing import Optional

from repro.pfs.params import PIOFSParams
from repro.pfs.phase import IOKind, IOPhaseResult, solve_phase
from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine

__all__ = ["SerialFS"]


class SerialFS(PIOFS):
    """PIOFS-compatible interface backed by one serial server."""

    def __init__(
        self,
        machine: Optional[Machine] = None,
        sequential_mbps: float = 7.0,
        seekable: bool = False,
    ):
        params = PIOFSParams(num_servers=1)
        super().__init__(machine=machine, params=params)
        self.sequential_mbps = float(sequential_mbps)
        #: sockets/tape drives cannot seek; parallel streaming needs it
        self.seekable = bool(seekable)

    def supports_parallel_streaming(self) -> bool:
        return self.seekable

    def end_phase(self) -> IOPhaseResult:
        """All traffic funnels through one channel at one rate."""
        with self._lock:
            kind = self._phase_kind
            transfers = self._phase_transfers
            self._phase_kind = None
            self._phase_transfers = []
            self._phase_server_bytes = {}
        if kind is None:
            from repro.errors import PFSError

            raise PFSError("no phase open")
        total_mb = sum(t.nbytes for t in transfers) / 1e6
        files = {t.filename for t in transfers}
        result = IOPhaseResult(
            kind=kind,
            seconds=total_mb / self.sequential_mbps
            + self.params.file_open_overhead_s * len(files),
            total_bytes=sum(t.nbytes for t in transfers),
            clients={t.client for t in transfers},
            files=files,
        )
        self.phase_log.append(result)
        return result
