"""The PIOFS namespace: open/read/write/unlink plus phase accounting.

:class:`PIOFS` glues the striped files (:mod:`repro.pfs.file`) to the
phase timing model (:mod:`repro.pfs.phase`).  Task code performs real
reads and writes at any time; to get *timed* I/O, the caller brackets a
group of transfers in ``begin_phase(kind)`` / ``end_phase()``, which
returns the phase's simulated duration.  Phases make the timing
deterministic under thread scheduling: duration depends only on the set
of transfers, never on their interleaving.

Thread safety: all mutating entry points take one internal lock; task
threads of an SPMD run may call concurrently.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.errors import IOFaultError, PFSError
from repro.obs import get_tracer
from repro.pfs.file import PFSFile
from repro.pfs.params import PIOFSParams
from repro.pfs.phase import IOKind, IOPhaseResult, PhaseTransfer, solve_phase
from repro.runtime.machine import Machine

__all__ = ["PIOFS"]


class PIOFS:
    """A simulated parallel file system instance."""

    def __init__(
        self,
        machine: Optional[Machine] = None,
        params: Optional[PIOFSParams] = None,
    ):
        self.machine = machine or Machine()
        self.params = params or PIOFSParams(num_servers=self.machine.num_nodes)
        self._files: Dict[str, PFSFile] = {}
        self._lock = threading.Lock()
        self._phase_cv = threading.Condition(self._lock)
        self._phase_owner: Optional[int] = None
        self._phase_kind: Optional[IOKind] = None
        self._phase_transfers: List[PhaseTransfer] = []
        self._phase_server_bytes: Dict[int, int] = {}
        self.phase_log: List[IOPhaseResult] = []
        #: armed I/O fault injector (see repro.pfs.faults); None = healthy
        self.faults = None

    # -- namespace ---------------------------------------------------------

    def create(self, name: str, virtual: bool = False, overwrite: bool = True) -> PFSFile:
        """Create (or, by default, replace) a logical file."""
        with self._lock:
            if name in self._files and not overwrite:
                raise PFSError(f"file exists: {name!r}")
            f = PFSFile(
                name,
                num_servers=self.params.num_servers,
                stripe_kb=self.params.stripe_kb,
                virtual=virtual,
            )
            self._files[name] = f
            get_tracer().metrics.counter("pfs.create.count").inc()
            return f

    def open(self, name: str) -> PFSFile:
        """The PFSFile for ``name``; raises PFSError when missing."""
        with self._lock:
            try:
                return self._files[name]
            except KeyError:
                raise PFSError(f"no such file: {name!r}") from None

    def exists(self, name: str) -> bool:
        with self._lock:
            return name in self._files

    def listdir(self, prefix: str = "") -> List[str]:
        with self._lock:
            return sorted(n for n in self._files if n.startswith(prefix))

    def unlink(self, name: str) -> None:
        """Remove a file from the namespace."""
        with self._lock:
            if name not in self._files:
                raise PFSError(f"no such file: {name!r}")
            del self._files[name]
        get_tracer().metrics.counter("pfs.unlink.count").inc()

    def rename(self, old: str, new: str) -> None:
        """Atomically rename ``old`` to ``new``, replacing any existing
        ``new`` (POSIX rename).  This is the primitive behind the
        two-phase manifest commit: ``new`` observably holds either its
        previous content or the complete new content, never a prefix."""
        with self._lock:
            f = self._files.get(old)
            if f is None:
                raise PFSError(f"no such file: {old!r}")
            del self._files[old]
            f.name = new
            self._files[new] = f
        get_tracer().metrics.counter("pfs.rename.count").inc()

    def file_size(self, name: str) -> int:
        return self.open(name).size

    def total_bytes(self, prefix: str = "") -> int:
        """Sum of file sizes under a name prefix (checkpoint state size)."""
        with self._lock:
            return sum(f.size for n, f in self._files.items() if n.startswith(prefix))

    # -- fault injection ----------------------------------------------------

    def attach_faults(self, injector) -> None:
        """Arm a :class:`~repro.pfs.faults.FaultInjector` on this file
        system (pass ``None`` to disarm).  Hooks run under the namespace
        lock, so fault counting is exact under concurrent task threads."""
        with self._lock:
            self.faults = injector

    def _faulted_write(self, name, data, nbytes):
        # caller holds the lock; returns (data, nbytes, deferred_error)
        if self.faults is None:
            return data, nbytes, None
        plan = self.faults.match_write(name)
        if plan is None:
            return data, nbytes, None
        if plan.mode == "fail":
            intended = len(data) if data is not None else int(nbytes or 0)
            self.faults.record_write_effect(plan, intended, 0)
            raise IOFaultError(f"injected write failure on {name!r}")
        intended = len(data) if data is not None else int(nbytes or 0)
        keep = plan.keep_bytes if plan.keep_bytes is not None else intended // 2
        keep = max(0, min(int(keep), intended))
        self.faults.record_write_effect(plan, intended, keep)
        if data is not None:
            data = data[:keep]
            nbytes = None
        else:
            nbytes = keep
        err = None
        if plan.mode == "torn":
            err = IOFaultError(
                f"injected torn write on {name!r} ({keep}/{intended} bytes)"
            )
        return data, nbytes, err

    # -- timed I/O ----------------------------------------------------------

    def begin_phase(self, kind: IOKind, timeout: float = 60.0) -> None:
        """Open a timed I/O phase of the given operation kind.

        Phases are file-system-wide critical sections: a thread opening
        a phase while it already owns one is a programming error
        (phases do not nest), but a phase opened by *another* thread —
        a concurrent workflow member checkpointing, a drain in flight —
        simply queues behind it, the way independent jobs share a real
        PFS's service capacity."""
        with self._phase_cv:
            me = threading.get_ident()
            if self._phase_kind is not None and self._phase_owner == me:
                raise PFSError(
                    f"phase {self._phase_kind} already open; phases do not nest"
                )
            while self._phase_kind is not None:
                if not self._phase_cv.wait(timeout=timeout):
                    raise PFSError(
                        f"timed out waiting {timeout}s for phase "
                        f"{self._phase_kind} to close"
                    )
            self._phase_owner = me
            self._phase_kind = kind
            self._phase_transfers = []
            self._phase_server_bytes = {}

    def end_phase(self) -> IOPhaseResult:
        """Close the phase: solve its simulated duration and log it."""
        with self._lock:
            if self._phase_kind is None:
                raise PFSError("no phase open")
            kind = self._phase_kind
            transfers = self._phase_transfers
            server_bytes = self._phase_server_bytes
            file_sizes = {
                t.filename: self._files[t.filename].size
                for t in transfers
                if t.filename in self._files
            }
            self._phase_kind = None
            self._phase_owner = None
            self._phase_transfers = []
            self._phase_server_bytes = {}
            self._phase_cv.notify_all()
        busy = sum(1 for n in self.machine.nodes if n.busy)
        result = solve_phase(
            kind,
            transfers,
            self.params,
            busy_nodes=busy,
            server_bytes=server_bytes,
            file_sizes=file_sizes,
        )
        self.phase_log.append(result)
        m = get_tracer().metrics
        m.counter("pfs.phase.count").inc()
        m.counter("pfs.phase.bytes").inc(result.total_bytes)
        m.counter("pfs.phase.seconds").inc(result.seconds)
        m.histogram(f"pfs.phase.seconds.{kind.value}").observe(result.seconds)
        if result.pressured:
            m.counter("pfs.phase.pressured").inc()
        return result

    def abort_phase(self) -> None:
        """Discard an open phase without timing it — cleanup after an
        I/O fault aborted the operation that opened the phase.  A no-op
        when no phase is open."""
        with self._lock:
            self._phase_kind = None
            self._phase_owner = None
            self._phase_transfers = []
            self._phase_server_bytes = {}
            self._phase_cv.notify_all()

    def _meter(self, op: str, fname: str, nbytes: int, t0: Optional[float]) -> None:
        """Per-operation observability: global and per-file counters
        plus a wall-clock latency histogram (real I/O shows up for
        HostFS; the in-memory PIOFS measures bookkeeping cost).  The
        per-file series and latency histogram only exist when a real
        tracer is active."""
        m = get_tracer().metrics
        m.counter(f"pfs.{op}.count").inc()
        m.counter(f"pfs.{op}.bytes").inc(nbytes)
        if m.enabled:
            m.counter(f"pfs.{op}.count[{fname}]").inc()
            m.counter(f"pfs.{op}.bytes[{fname}]").inc(nbytes)
            if t0 is not None:
                m.histogram(f"pfs.{op}.wall_seconds").observe(
                    time.perf_counter() - t0
                )

    def _record(self, client: int, f: PFSFile, offset: int, nbytes: int) -> None:
        # caller holds the lock
        if self._phase_kind is not None:
            self._phase_transfers.append(
                PhaseTransfer(client, f.name, offset, nbytes)
            )
            for srv, b in f.server_byte_spans(offset, nbytes).items():
                self._phase_server_bytes[srv] = (
                    self._phase_server_bytes.get(srv, 0) + b
                )

    def write_at(
        self,
        name: str,
        offset: int,
        data: Optional[bytes],
        nbytes: Optional[int] = None,
        client: int = 0,
    ) -> int:
        """Write into a file (recorded against the open phase, if any)."""
        t0 = time.perf_counter() if get_tracer().enabled else None
        with self._lock:
            f = self._files.get(name)
            if f is None:
                raise PFSError(f"no such file: {name!r}")
            data, nbytes, fault = self._faulted_write(name, data, nbytes)
            n = f.write_at(offset, data, nbytes)
            self._record(client, f, offset, n)
            self._meter("write", name, n, t0)
            if fault is not None:
                raise fault
            return n

    def append(
        self,
        name: str,
        data: Optional[bytes],
        nbytes: Optional[int] = None,
        client: int = 0,
    ) -> int:
        """Sequential write at EOF (recorded against the open phase)."""
        t0 = time.perf_counter() if get_tracer().enabled else None
        with self._lock:
            f = self._files.get(name)
            if f is None:
                raise PFSError(f"no such file: {name!r}")
            offset = f.size
            data, nbytes, fault = self._faulted_write(name, data, nbytes)
            n = f.write_at(offset, data, nbytes)
            self._record(client, f, offset, n)
            self._meter("write", name, n, t0)
            if fault is not None:
                raise fault
            return n

    def read_at(self, name: str, offset: int, nbytes: int, client: int = 0) -> bytes:
        """Read from a file (recorded against the open phase, if any)."""
        t0 = time.perf_counter() if get_tracer().enabled else None
        with self._lock:
            f = self._files.get(name)
            if f is None:
                raise PFSError(f"no such file: {name!r}")
            out = f.read_at(offset, nbytes)
            if self.faults is not None:
                out = self.faults.apply_read(name, out)
            self._record(client, f, offset, nbytes)
            self._meter("read", name, nbytes, t0)
            return out

    def read_virtual(self, name: str, offset: int, nbytes: int, client: int = 0) -> None:
        """Account a read without returning data (virtual files)."""
        with self._lock:
            f = self._files.get(name)
            if f is None:
                raise PFSError(f"no such file: {name!r}")
            self._record(client, f, offset, nbytes)
            self._meter("read", name, nbytes, None)

    # -- statistics ------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Cumulative phase statistics: counts/bytes/seconds by
        operation kind, plus how many phases hit the buffer-memory
        pressure regime — the quick health readout of an experiment."""
        by_kind: Dict[str, Dict[str, float]] = {}
        pressured = 0
        for res in self.phase_log:
            k = res.kind.value
            agg = by_kind.setdefault(
                k, {"phases": 0, "bytes": 0, "seconds": 0.0}
            )
            agg["phases"] += 1
            agg["bytes"] += res.total_bytes
            agg["seconds"] += res.seconds
            pressured += bool(res.pressured)
        with self._lock:
            nfiles = len(self._files)
            stored = sum(f.size for f in self._files.values())
        return {
            "files": nfiles,
            "bytes_stored": stored,
            "phases": len(self.phase_log),
            "pressured_phases": pressured,
            "by_kind": by_kind,
        }

    def __repr__(self) -> str:
        return f"PIOFS({len(self._files)} files, {self.params.num_servers} servers)"
