"""Logical files striped across PIOFS server nodes.

A :class:`PFSFile` is one logical byte stream physically striped
round-robin in ``stripe_kb`` units over the server nodes (the paper:
"each array stored in a single logical file that is physically
distributed among the server nodes").  Files either hold real bytes
(checkpoint data round-trips exactly) or are *virtual* (size-only, for
Class-A-scale benchmarks that must not allocate gigabytes).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import PFSError

__all__ = ["PFSFile"]


class PFSFile:
    """One logical file in the parallel file system."""

    def __init__(self, name: str, num_servers: int, stripe_kb: int, virtual: bool = False):
        if num_servers < 1:
            raise PFSError("file needs at least one server")
        self.name = name
        self.num_servers = num_servers
        self.stripe_bytes = int(stripe_kb) * 1024
        if self.stripe_bytes < 1:
            raise PFSError("stripe size must be positive")
        self.virtual = bool(virtual)
        self._data = bytearray() if not virtual else None
        self._size = 0

    @property
    def size(self) -> int:
        return self._size

    @property
    def stored_bytes(self) -> int:
        """Bytes with materialized content; the rest of the file (up to
        :attr:`size`) is sparse or virtual and reads back as zeros."""
        return len(self._data) if self._data is not None else 0

    # -- stripe geometry --------------------------------------------------

    def server_of_offset(self, offset: int) -> int:
        """The server node holding the stripe containing ``offset``."""
        if offset < 0:
            raise PFSError(f"negative offset {offset}")
        return (offset // self.stripe_bytes) % self.num_servers

    def server_byte_spans(self, offset: int, nbytes: int) -> Dict[int, int]:
        """Bytes of ``[offset, offset+nbytes)`` that land on each server
        — used by the phase model for per-server load balance checks."""
        out: Dict[int, int] = {}
        pos, end = offset, offset + nbytes
        while pos < end:
            stripe_end = (pos // self.stripe_bytes + 1) * self.stripe_bytes
            chunk = min(end, stripe_end) - pos
            srv = self.server_of_offset(pos)
            out[srv] = out.get(srv, 0) + chunk
            pos += chunk
        return out

    # -- data access -------------------------------------------------------

    def write_at(self, offset: int, data: Optional[bytes], nbytes: Optional[int] = None) -> int:
        """Write ``data`` at ``offset``; returns bytes written.  Writing
        past EOF zero-fills the gap (POSIX seek+write).  With
        ``data=None`` and ``nbytes`` set, the write is *sparse*: the file
        grows but no content is stored; sparse regions read back as
        zeros.  Virtual files store nothing either way."""
        if offset < 0:
            raise PFSError(f"negative offset {offset}")
        if self.virtual or data is None:
            if nbytes is None:
                if data is None:
                    raise PFSError("content-free write needs nbytes")
                nbytes = len(data)
            self._size = max(self._size, offset + int(nbytes))
            return int(nbytes)
        end = offset + len(data)
        if end > len(self._data):
            self._data.extend(b"\x00" * (end - len(self._data)))
        self._data[offset:end] = data
        self._size = max(self._size, end)
        return len(data)

    def append(self, data: Optional[bytes], nbytes: Optional[int] = None) -> int:
        """Sequential write at EOF (what serial streaming uses; needs no
        seek capability)."""
        return self.write_at(self._size, data, nbytes)

    def read_at(self, offset: int, nbytes: int) -> bytes:
        """Read ``nbytes`` at ``offset``; sparse spans read back as zeros."""
        if self.virtual:
            raise PFSError(f"file {self.name!r} is virtual; no data to read")
        if offset < 0 or offset + nbytes > self._size:
            raise PFSError(
                f"read [{offset}, {offset + nbytes}) outside file "
                f"{self.name!r} of size {self._size}"
            )
        stored_end = min(offset + nbytes, len(self._data))
        out = bytes(self._data[offset:stored_end]) if stored_end > offset else b""
        if len(out) < nbytes:  # sparse tail reads back as zeros
            out += b"\x00" * (nbytes - len(out))
        return out

    def flip_bit(self, offset: int, bit: int = 0) -> None:
        """Flip one bit of a stored byte in place — the fault-injection
        model of silent media corruption (see :mod:`repro.pfs.faults`).
        Only materialized bytes can be corrupted: virtual files and
        sparse tails have no stored byte to flip."""
        if self.virtual or self._data is None:
            raise PFSError(f"file {self.name!r} is virtual; nothing stored to corrupt")
        if not 0 <= offset < len(self._data):
            raise PFSError(
                f"offset {offset} outside the {len(self._data)} stored "
                f"bytes of {self.name!r}"
            )
        self._data[offset] ^= 1 << (bit & 7)

    def read_all(self) -> bytes:
        return self.read_at(0, self._size)

    def __repr__(self) -> str:
        kind = "virtual" if self.virtual else "data"
        return f"PFSFile({self.name!r}, {self._size}B, {kind})"
