"""Calibrated PIOFS performance parameters.

Every constant below is fitted to the component I/O rates the paper
reports in Tables 5 and 6 for the 16-node RS/6000 SP (PIOFS servers on
all 16 nodes, 128 MB per node).  The calibration targets live in
:mod:`repro.perfmodel.paper_data`; ``tests/perfmodel/test_calibration.py``
asserts that the model reproduces the paper's orderings and ratios.

Mechanisms (paper Section 5):

* *Interference*: when application tasks run on file-server nodes they
  steal CPU/memory from the servers; write rates scale by
  ``1 - interference * busy_fraction``.
* *Prefetch*: PIOFS prefetches on reads, so reading is client-limited —
  per-client read rates are flat and aggregate rates grow with clients
  ("more clients can read data faster").
* *Buffer-memory pressure*: reading many large distinct files (SPMD
  restart) collapses to a slow per-client rate once the phase working
  set exceeds the buffer memory left on the server nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PIOFSParams"]


@dataclass(frozen=True)
class PIOFSParams:
    """Throughput-model constants (MB/s, MB, seconds)."""

    #: number of file-server nodes (paper: all 16 SP nodes)
    num_servers: int = 16
    #: stripe unit; PIOFS default was 64 KB
    stripe_kb: int = 64

    # -- writes ------------------------------------------------------------
    #: single-client file-write injection rate (DRMS segment write)
    client_write_mbps: float = 16.4
    #: interference coefficient for single-writer traffic
    write_interference: float = 0.49
    #: aggregate server-side capacity for parstream parallel writes
    array_write_agg_mbps: float = 10.0
    #: milder interference for parallel writes (I/O overlaps
    #: redistribution, hiding part of the CPU steal)
    array_write_interference: float = 0.20
    #: aggregate capacity when P clients each write a private file
    #: (SPMD checkpoint)
    distinct_write_agg_mbps: float = 17.0
    #: per-task segments larger than this thrash the writing node's
    #: memory (LU's ~89 MB segments, vs 128 MB nodes)
    write_pressure_file_mb: float = 70.0
    #: single-writer (DRMS segment) rate multiplier under pressure —
    #: calibrated from LU's 6.6 MB/s segment writes (Table 6)
    serial_write_pressure_factor: float = 0.55
    #: under pressure each concurrent private-file writer degrades to a
    #: thrash-limited rate; the phase aggregate caps at
    #: ``nclients * write_thrash_per_client_mbps`` (LU, Table 5)
    write_thrash_per_client_mbps: float = 0.66

    # -- reads -------------------------------------------------------------
    #: per-client rate when all clients read the same file (DRMS
    #: restart data segment; prefetch-friendly)
    shared_read_per_client_mbps: float = 3.55
    #: per-client rate for parallel array-section reads (includes
    #: redistribution work)
    array_read_per_client_mbps: float = 0.48
    #: per-client rate reading distinct files below the memory threshold
    distinct_read_fast_mbps: float = 3.5
    #: per-client rate once the working set exceeds the buffer memory
    distinct_read_slow_mbps: float = 0.70

    # -- buffer memory -------------------------------------------------------
    #: PIOFS buffer memory on a node with no application task
    buffer_free_node_mb: float = 62.0
    #: PIOFS buffer memory on a node shared with an application task
    buffer_busy_node_mb: float = 12.0

    # -- fixed costs ---------------------------------------------------------
    #: metadata cost charged once per distinct file touched in a phase
    #: (per client for the concurrent per-task-file operations)
    file_open_overhead_s: float = 0.10
    #: application restart initialization (text-segment load; the
    #: "other" band of Figure 7)
    restart_init_s: float = 3.5

    def buffer_total_mb(self, busy_nodes: int) -> float:
        """Buffer memory available across servers given how many server
        nodes also run application tasks."""
        busy = min(max(busy_nodes, 0), self.num_servers)
        free = self.num_servers - busy
        return free * self.buffer_free_node_mb + busy * self.buffer_busy_node_mb

    def write_eff(self, busy_fraction: float) -> float:
        """Single-writer interference multiplier."""
        return max(0.05, 1.0 - self.write_interference * busy_fraction)

    def array_write_eff(self, busy_fraction: float) -> float:
        """Parallel-write interference multiplier."""
        return max(0.05, 1.0 - self.array_write_interference * busy_fraction)
