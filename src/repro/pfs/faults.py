"""I/O fault injection for the simulated parallel file system.

The node-failure plans of :mod:`repro.infra.failure` model *processor*
faults; this module models the *storage* faults that motivate
checkpoint rotation and restart-time validation: a checkpoint is only
useful if it survives the failure it guards against, and a failure may
strike the I/O path itself while the checkpoint is being written.

Three fault families, all deterministic:

* **fail-at-Nth-write** — the Nth write touching a matching file raises
  :class:`~repro.errors.IOFaultError` before any byte lands (a node
  crash between ``create`` and ``write``);
* **torn / short writes** — the write persists only a prefix of its
  payload, then either raises (*torn*: the crash is observed) or
  silently reports success (*short*: latent corruption only a checksum
  can catch);
* **bit-flip on read** — the Nth matching read returns data with one
  bit flipped (media/transfer corruption on the restart path).

An armed :class:`FaultInjector` is attached to a PIOFS instance with
:meth:`~repro.pfs.piofs.PIOFS.attach_faults`; the hooks run under the
file-system lock, so counting is exact even under concurrent SPMD task
threads.  :func:`flip_stored_bit` complements the transient read fault
with *persistent* corruption of a stored byte.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import IOFaultError, PFSError
from repro.obs import get_flight, get_tracer

__all__ = ["WriteFault", "ReadFault", "FaultInjector", "flip_stored_bit"]

_WRITE_MODES = ("fail", "torn", "short")


@dataclass
class WriteFault:
    """One armed write fault: fires on the ``nth`` write whose file name
    contains ``match`` (every write matches an empty pattern).

    ``mode``:

    * ``"fail"``  — raise :class:`IOFaultError`; nothing is written;
    * ``"torn"``  — persist ``keep_bytes`` of the payload, then raise;
    * ``"short"`` — persist ``keep_bytes`` and silently return the short
      count (POSIX short write; no exception).

    ``keep_bytes`` defaults to half of the write's payload.
    """

    nth: int = 1
    match: str = ""
    mode: str = "fail"
    keep_bytes: Optional[int] = None
    #: matching writes seen so far / whether this fault already fired
    seen: int = 0
    fired: bool = False
    #: filled in when the fault fires: the write's full payload size and
    #: how many bytes actually landed (fail: 0) — ground truth for the
    #: verification harness, which must know whether a short write
    #: really dropped bytes
    intended: Optional[int] = None
    kept: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in _WRITE_MODES:
            raise PFSError(f"unknown write-fault mode {self.mode!r}")
        if self.nth < 1:
            raise PFSError("write fault must target the 1st or later write")


@dataclass
class ReadFault:
    """One armed read fault: the ``nth`` read whose file name contains
    ``match`` has bit ``bit`` of buffer byte ``offset`` flipped in the
    returned data (the stored file is untouched)."""

    nth: int = 1
    match: str = ""
    offset: int = 0
    bit: int = 0
    seen: int = 0
    fired: bool = False

    def __post_init__(self) -> None:
        if self.nth < 1:
            raise PFSError("read fault must target the 1st or later read")
        if not 0 <= self.bit <= 7:
            raise PFSError("bit index must be within 0..7")


class FaultInjector:
    """Deterministic I/O fault plans for one PIOFS instance.

    The injector is passive until attached
    (:meth:`~repro.pfs.piofs.PIOFS.attach_faults`); each plan fires at
    most once.  ``log`` records every fired fault as
    ``(kind, file, detail)`` so tests can assert what actually
    happened.
    """

    def __init__(self):
        self.write_faults: List[WriteFault] = []
        self.read_faults: List[ReadFault] = []
        #: fired faults, as (kind, filename, human detail)
        self.log: List[Tuple[str, str, str]] = []
        self._lock = threading.Lock()

    # -- arming -----------------------------------------------------------

    def fail_write(
        self,
        nth: int = 1,
        match: str = "",
        mode: str = "fail",
        keep_bytes: Optional[int] = None,
    ) -> WriteFault:
        """Arm a write fault; returns the plan for later inspection."""
        plan = WriteFault(nth=nth, match=match, mode=mode, keep_bytes=keep_bytes)
        with self._lock:
            self.write_faults.append(plan)
        return plan

    def flip_read(
        self, nth: int = 1, match: str = "", offset: int = 0, bit: int = 0
    ) -> ReadFault:
        """Arm a bit-flip-on-read fault; returns the plan."""
        plan = ReadFault(nth=nth, match=match, offset=offset, bit=bit)
        with self._lock:
            self.read_faults.append(plan)
        return plan

    @property
    def pending(self) -> int:
        """Armed plans that have not fired yet."""
        with self._lock:
            return sum(
                1
                for p in self.write_faults + self.read_faults
                if not p.fired
            )

    # -- hooks (called by PIOFS under its namespace lock) ------------------

    def match_write(self, name: str) -> Optional[WriteFault]:
        """Count one write against every armed plan; return the plan
        that fires on it (or None)."""
        with self._lock:
            for plan in self.write_faults:
                if plan.fired or plan.match not in name:
                    continue
                plan.seen += 1
                if plan.seen == plan.nth:
                    plan.fired = True
                    self.log.append(("write", name, plan.mode))
                    get_tracer().metrics.counter(
                        f"pfs.faults.write.{plan.mode}"
                    ).inc()
                    get_flight().record(
                        "pfs_fault", op="write", file=name, mode=plan.mode
                    )
                    return plan
        return None

    def record_write_effect(
        self, plan: WriteFault, intended: int, kept: int
    ) -> None:
        """Record what a fired write fault actually did to the payload
        (called by PIOFS once the torn/short prefix length is known)."""
        with self._lock:
            plan.intended = int(intended)
            plan.kept = int(kept)

    def apply_read(self, name: str, data: bytes) -> bytes:
        """Count one read against every armed plan; corrupt and return
        the buffer if a plan fires on it."""
        if not data:
            return data
        with self._lock:
            for plan in self.read_faults:
                if plan.fired or plan.match not in name:
                    continue
                plan.seen += 1
                if plan.seen == plan.nth:
                    plan.fired = True
                    pos = min(plan.offset, len(data) - 1)
                    self.log.append(
                        ("read", name, f"bit {plan.bit} of byte {pos} flipped")
                    )
                    get_tracer().metrics.counter("pfs.faults.read.bitflip").inc()
                    get_flight().record(
                        "pfs_fault", op="read", file=name,
                        mode="bitflip", offset=pos, bit=plan.bit,
                    )
                    buf = bytearray(data)
                    buf[pos] ^= 1 << plan.bit
                    return bytes(buf)
        return data


def flip_stored_bit(pfs, name: str, offset: int, bit: int = 0) -> None:
    """Persistently flip one bit of a *stored* byte of ``name`` — silent
    media corruption that every subsequent read observes.  Raises
    :class:`PFSError` for virtual files or offsets past the stored
    content (there is no byte to corrupt there)."""
    if not 0 <= bit <= 7:
        raise PFSError("bit index must be within 0..7")
    f = pfs.open(name)
    f.flip_bit(offset, bit)
    get_tracer().metrics.counter("pfs.faults.stored_bitflip").inc()
