"""The I/O phase timing model.

Checkpoint and restart are globally synchronous operations (the paper
uses *blocking* checkpoints), so I/O naturally groups into *phases*: the
data-segment write, then each distributed array in sequence; on restart
the segment reads, then the arrays.  A phase collects every transfer
performed between ``begin`` and ``end``; at ``end`` the model computes a
deterministic duration from the transfer set, the operation class, and
the machine state (how many server nodes also run application tasks).

Operation classes mirror the component breakdown of Table 6:

* ``WRITE_SERIAL``  — one task writes one file (DRMS data segment);
  limited by the writer's injection rate, degraded by interference.
* ``WRITE_PARALLEL`` — parstream array write; server-limited aggregate.
* ``WRITE_DISTINCT`` — P tasks each write a private file (SPMD
  checkpoint); server-limited, plus memory-pressure slowdown when a
  per-task segment exceeds the node's free memory.
* ``READ_SHARED``   — every task reads the same file (DRMS restart
  segment); client-limited thanks to prefetch, so it *speeds up* with
  more tasks.
* ``READ_PARALLEL`` — parstream array read; client-limited.
* ``READ_DISTINCT`` — P tasks each read a private file (SPMD restart);
  fast per-client below the buffer-memory threshold, collapsed above it
  — the paper's BT five-fold restart blow-up from 8 to 16 PEs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import PFSError
from repro.pfs.params import PIOFSParams

__all__ = ["IOKind", "PhaseTransfer", "IOPhaseResult", "solve_phase"]

_MB = 1e6  # the paper reports decimal MB/s


class IOKind(enum.Enum):
    """Operation class of an I/O phase (the Table 6 components)."""
    WRITE_SERIAL = "write_serial"
    WRITE_PARALLEL = "write_parallel"
    WRITE_DISTINCT = "write_distinct"
    READ_SHARED = "read_shared"
    READ_PARALLEL = "read_parallel"
    READ_DISTINCT = "read_distinct"

    @property
    def is_write(self) -> bool:
        return self in (
            IOKind.WRITE_SERIAL,
            IOKind.WRITE_PARALLEL,
            IOKind.WRITE_DISTINCT,
        )


@dataclass(frozen=True)
class PhaseTransfer:
    """One client-side read or write inside a phase."""

    client: int  # task rank performing the I/O
    filename: str
    offset: int
    nbytes: int


@dataclass
class IOPhaseResult:
    """Deterministic outcome of a solved phase."""

    kind: IOKind
    seconds: float
    total_bytes: int
    clients: Set[int] = field(default_factory=set)
    files: Set[str] = field(default_factory=set)
    #: per-server byte loads (stripe accounting)
    server_bytes: Dict[int, int] = field(default_factory=dict)
    #: True when the buffer-memory threshold was exceeded
    pressured: bool = False

    @property
    def rate_mbps(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.total_bytes / _MB / self.seconds


def solve_phase(
    kind: IOKind,
    transfers: List[PhaseTransfer],
    params: PIOFSParams,
    busy_nodes: int,
    server_bytes: Optional[Dict[int, int]] = None,
    file_sizes: Optional[Dict[str, int]] = None,
) -> IOPhaseResult:
    """Compute the simulated duration of one I/O phase.

    ``busy_nodes`` is the number of server nodes co-running application
    tasks; ``file_sizes`` (total size of each file touched) feeds the
    working-set computations for the pressure mechanisms.
    """
    result = IOPhaseResult(
        kind=kind,
        seconds=0.0,
        total_bytes=sum(t.nbytes for t in transfers),
        clients={t.client for t in transfers},
        files={t.filename for t in transfers},
        server_bytes=dict(server_bytes or {}),
    )
    if not transfers:
        return result

    busy_fraction = busy_nodes / max(1, params.num_servers)
    nclients = len(result.clients)
    per_client_mb: Dict[int, float] = {}
    for t in transfers:
        per_client_mb[t.client] = per_client_mb.get(t.client, 0.0) + t.nbytes / _MB
    max_client_mb = max(per_client_mb.values())
    total_mb = result.total_bytes / _MB
    # Metadata cost: distinct per-task-file operations open their files
    # concurrently (one per client); cooperative operations pay per file.
    files_per_client: Dict[int, Set[str]] = {}
    for t in transfers:
        files_per_client.setdefault(t.client, set()).add(t.filename)
    if kind in (IOKind.WRITE_DISTINCT, IOKind.READ_DISTINCT):
        open_cost = params.file_open_overhead_s * max(
            len(fs) for fs in files_per_client.values()
        )
    else:
        open_cost = params.file_open_overhead_s * len(result.files)

    if kind is IOKind.WRITE_SERIAL:
        rate = params.client_write_mbps * params.write_eff(busy_fraction)
        if max_client_mb > params.write_pressure_file_mb:
            # Writing a segment larger than the node's free memory
            # thrashes the writer (LU's ~89 MB segments).
            rate *= params.serial_write_pressure_factor
            result.pressured = True
        result.seconds = max_client_mb / rate + open_cost

    elif kind is IOKind.WRITE_PARALLEL:
        agg = params.array_write_agg_mbps * params.array_write_eff(busy_fraction)
        # A single straggler client cannot exceed its injection rate.
        client_bound = max_client_mb / params.client_write_mbps
        result.seconds = max(total_mb / agg, client_bound) + open_cost

    elif kind is IOKind.WRITE_DISTINCT:
        agg = params.distinct_write_agg_mbps * params.write_eff(busy_fraction)
        if max_client_mb > params.write_pressure_file_mb:
            # Each writer degrades to a thrash-limited rate; the phase
            # runs at whichever bound is tighter.
            agg = min(agg, nclients * params.write_thrash_per_client_mbps)
            result.pressured = True
        result.seconds = total_mb / agg + open_cost

    elif kind is IOKind.READ_SHARED:
        if len(result.files) != 1:
            raise PFSError(
                f"READ_SHARED phase touched {len(result.files)} files; expected 1"
            )
        result.seconds = (
            max_client_mb / params.shared_read_per_client_mbps + open_cost
        )

    elif kind is IOKind.READ_PARALLEL:
        agg = nclients * params.array_read_per_client_mbps
        result.seconds = total_mb / agg + open_cost

    elif kind is IOKind.READ_DISTINCT:
        workset_mb = _workset_mb(result.files, file_sizes, transfers)
        buffer_mb = params.buffer_total_mb(busy_nodes)
        if workset_mb > buffer_mb:
            rate = params.distinct_read_slow_mbps
            result.pressured = True
        else:
            rate = params.distinct_read_fast_mbps
        result.seconds = max_client_mb / rate + open_cost

    else:  # pragma: no cover - enum is closed
        raise PFSError(f"unknown phase kind {kind}")

    return result


def _workset_mb(
    files: Set[str],
    file_sizes: Optional[Dict[str, int]],
    transfers: List[PhaseTransfer],
) -> float:
    """Distinct-file working set of the phase in MB."""
    if file_sizes:
        return sum(file_sizes.get(f, 0) for f in files) / _MB
    seen: Dict[str, int] = {}
    for t in transfers:
        seen[t.filename] = max(seen.get(t.filename, 0), t.offset + t.nbytes)
    return sum(seen.values()) / _MB
