"""Host-directory-backed PIOFS: durable checkpoints.

:class:`HostFS` keeps the full PIOFS interface (namespace, phases, the
calibrated timing model) but stores file contents in a real directory,
so checkpointed states survive the Python process — a second process
(or a later session) can open the same directory and perform a
reconfigured restart.  Sparse spans use real OS sparse files
(seek + truncate); virtual files keep only their size, in a sidecar
metadata file.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Optional

from repro.errors import PFSError
from repro.obs import get_tracer
from repro.pfs.file import PFSFile
from repro.pfs.params import PIOFSParams
from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine

__all__ = ["HostFile", "HostFS"]

_META = "__piofs_meta__.json"


class HostFile(PFSFile):
    """A striped logical file stored at a real path."""

    def __init__(self, name: str, num_servers: int, stripe_kb: int,
                 virtual: bool, path: pathlib.Path, size: int = 0):
        if os.sep in name or (os.altsep and os.altsep in name):
            raise PFSError(f"file name {name!r} may not contain path separators")
        self.name = name
        self.num_servers = num_servers
        self.stripe_bytes = int(stripe_kb) * 1024
        if self.stripe_bytes < 1:
            raise PFSError("stripe size must be positive")
        self.virtual = bool(virtual)
        self._data = None  # contents live on disk, not in memory
        self._path = path
        if self.virtual:
            self._size = int(size)
        else:
            self._size = path.stat().st_size if path.exists() else 0
            if not path.exists():
                path.touch()

    @property
    def size(self) -> int:
        return self._size

    @property
    def stored_bytes(self) -> int:
        # on-disk files cannot distinguish sparse tails portably
        return 0 if self.virtual else self._size

    def write_at(self, offset: int, data, nbytes: Optional[int] = None) -> int:
        """Write (persisting virtual-file sizes to the sidecar metadata)."""
        if offset < 0:
            raise PFSError(f"negative offset {offset}")
        if self.virtual or data is None:
            if nbytes is None:
                if data is None:
                    raise PFSError("content-free write needs nbytes")
                nbytes = len(data)
            end = offset + int(nbytes)
            if not self.virtual and end > self._size:
                with open(self._path, "r+b") as fh:
                    fh.truncate(end)  # OS sparse extension
            self._size = max(self._size, end)
            return int(nbytes)
        with open(self._path, "r+b") as fh:
            fh.seek(offset)
            fh.write(data)
        self._size = max(self._size, offset + len(data))
        return len(data)

    def flip_bit(self, offset: int, bit: int = 0) -> None:
        """Flip one bit of the on-disk file (fault-injection support)."""
        if self.virtual:
            raise PFSError(f"file {self.name!r} is virtual; nothing stored to corrupt")
        if not 0 <= offset < self._size:
            raise PFSError(
                f"offset {offset} outside file {self.name!r} of size {self._size}"
            )
        with open(self._path, "r+b") as fh:
            fh.seek(offset)
            b = fh.read(1)
            fh.seek(offset)
            fh.write(bytes([(b[0] if b else 0) ^ (1 << (bit & 7))]))

    def read_at(self, offset: int, nbytes: int) -> bytes:
        """Read from the on-disk file; sparse tails read as zeros."""
        if self.virtual:
            raise PFSError(f"file {self.name!r} is virtual; no data to read")
        if offset < 0 or offset + nbytes > self._size:
            raise PFSError(
                f"read [{offset}, {offset + nbytes}) outside file "
                f"{self.name!r} of size {self._size}"
            )
        with open(self._path, "rb") as fh:
            fh.seek(offset)
            out = fh.read(nbytes)
        if len(out) < nbytes:  # sparse tail past EOF-of-content
            out += b"\x00" * (nbytes - len(out))
        return out


class HostFS(PIOFS):
    """PIOFS persisted in ``root`` on the host file system."""

    def __init__(
        self,
        root,
        machine: Optional[Machine] = None,
        params: Optional[PIOFSParams] = None,
    ):
        super().__init__(machine=machine, params=params)
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._load_namespace()

    # -- persistence -----------------------------------------------------------

    def _meta_path(self) -> pathlib.Path:
        return self.root / _META

    def _save_meta(self) -> None:
        meta = {
            name: {"virtual": f.virtual, "size": f.size}
            for name, f in self._files.items()
            if f.virtual
        }
        self._meta_path().write_text(json.dumps(meta, sort_keys=True))

    def _load_namespace(self) -> None:
        meta = {}
        if self._meta_path().exists():
            meta = json.loads(self._meta_path().read_text())
        for name, info in meta.items():
            self._files[name] = HostFile(
                name, self.params.num_servers, self.params.stripe_kb,
                virtual=True, path=self.root / name, size=info["size"],
            )
        for path in self.root.iterdir():
            if path.name == _META or path.name in self._files:
                continue
            self._files[path.name] = HostFile(
                path.name, self.params.num_servers, self.params.stripe_kb,
                virtual=False, path=path,
            )

    # -- namespace overrides ------------------------------------------------------

    def create(self, name: str, virtual: bool = False, overwrite: bool = True):
        """Create/replace a file under the root directory."""
        with self._lock:
            if name in self._files and not overwrite:
                raise PFSError(f"file exists: {name!r}")
            path = self.root / name
            if path.exists():
                path.unlink()
            f = HostFile(
                name, self.params.num_servers, self.params.stripe_kb,
                virtual=virtual, path=path,
            )
            self._files[name] = f
        get_tracer().metrics.counter("pfs.create.count").inc()
        if virtual:
            self._save_meta()
        return f

    def unlink(self, name: str) -> None:
        """Remove the file from the namespace and the disk."""
        with self._lock:
            if name not in self._files:
                raise PFSError(f"no such file: {name!r}")
            f = self._files.pop(name)
        path = self.root / name
        if path.exists():
            path.unlink()
        get_tracer().metrics.counter("pfs.unlink.count").inc()
        if f.virtual:
            self._save_meta()

    def rename(self, old: str, new: str) -> None:
        """Atomic rename via ``os.replace`` plus namespace update."""
        with self._lock:
            f = self._files.get(old)
            if f is None:
                raise PFSError(f"no such file: {old!r}")
            newpath = self.root / new
            if not f.virtual:
                os.replace(f._path, newpath)
            elif newpath.exists():
                newpath.unlink()
            f._path = newpath
            del self._files[old]
            f.name = new
            self._files[new] = f
        get_tracer().metrics.counter("pfs.rename.count").inc()
        self._save_meta()

    def write_at(self, name, offset, data, nbytes=None, client=0):
        n = super().write_at(name, offset, data, nbytes=nbytes, client=client)
        if self._files[name].virtual:
            self._save_meta()
        return n

    def append(self, name, data, nbytes=None, client=0):
        """Append (persisting virtual-file sizes to the sidecar metadata)."""
        n = super().append(name, data, nbytes=nbytes, client=client)
        if self._files[name].virtual:
            self._save_meta()
        return n
