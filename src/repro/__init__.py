"""repro: a full reproduction of DRMS reconfigurable checkpointing.

Naik, Midkiff & Moreira, "A Checkpointing Strategy for Scalable Recovery
on Distributed Parallel Systems", SC 1997.

The package builds every layer of the paper's system in Python:

* :mod:`repro.runtime`   — simulated message-passing machine (SP-like);
* :mod:`repro.pfs`       — PIOFS parallel file system with a calibrated
  performance model;
* :mod:`repro.arrays`    — ranges, slices, distributions, distributed
  arrays, and the array-assignment redistribution engine;
* :mod:`repro.streaming` — distribution-independent parallel array
  section streaming (partition + parstream);
* :mod:`repro.checkpoint`— DRMS (reconfigurable) and SPMD
  (conventional) checkpoint/restart engines;
* :mod:`repro.drms`      — the DRMS programming model and API (the
  paper's core contribution);
* :mod:`repro.infra`     — the RC/TC/JSA/UIC architecture with failure
  injection and recovery;
* :mod:`repro.apps`      — NPB BT/LU/SP proxy applications;
* :mod:`repro.perfmodel` — the paper's reference numbers plus the
  Section 6 and Wong–Franklin analytic models;
* :mod:`repro.obs`       — unified tracing + metrics: hierarchical
  spans over the whole pipeline, a metrics registry, and Chrome-trace /
  JSON / Table 6-style exporters (``python -m repro.tools.trace``).

Quickstart::

    from repro import DRMSApplication, CheckpointStatus
    from repro.drms.api import *

    def main(ctx, niter, prefix):
        drms_initialize(ctx)
        dist = drms_create_distribution(ctx, (64, 64), shadow=(1, 1))
        u = drms_distribute(ctx, "u", dist, init_global=my_initializer)
        for it in ctx.iterations(1, niter + 1):
            if it % 10 == 1:
                status, delta = drms_reconfig_checkpoint(ctx, "ckpt")
                if status is CheckpointStatus.RESTARTED and delta != 0:
                    u = drms_distribute(ctx, "u", drms_adjust(ctx, "u"))
            ...  # compute on u.local / u.assigned

    app = DRMSApplication(main)
    app.start(8, args=(100, "ckpt"))
    app.restart("ckpt", 12, args=(100, "ckpt"))   # reconfigured restart
"""

from repro.arrays import (
    Block,
    BlockCyclic,
    Cyclic,
    DistributedArray,
    Distribution,
    GenBlock,
    Indexed,
    Range,
    Replicated,
    Slice,
    block_distribution,
)
from repro.checkpoint import (
    DataSegment,
    SegmentProfile,
    drms_checkpoint,
    drms_restart,
    select_restart_state,
    spmd_checkpoint,
    spmd_restart,
    validate_checkpoint,
)
from repro.drms import CheckpointStatus, DRMSApplication, DRMSContext, SOQSpec
from repro.infra import DRMSCluster, FailurePlan
from repro.obs import (
    MetricsRegistry,
    Tracer,
    breakdown_report,
    chrome_trace,
    get_tracer,
    set_tracer,
    use_tracer,
)
from repro.pfs import PIOFS, PIOFSParams, FaultInjector
from repro.runtime import Machine, MachineParams

__version__ = "1.0.0"

__all__ = [
    "Range",
    "Slice",
    "Distribution",
    "Block",
    "Cyclic",
    "BlockCyclic",
    "GenBlock",
    "Indexed",
    "Replicated",
    "DistributedArray",
    "block_distribution",
    "DataSegment",
    "SegmentProfile",
    "drms_checkpoint",
    "drms_restart",
    "select_restart_state",
    "spmd_checkpoint",
    "spmd_restart",
    "validate_checkpoint",
    "FaultInjector",
    "CheckpointStatus",
    "DRMSApplication",
    "DRMSContext",
    "SOQSpec",
    "DRMSCluster",
    "FailurePlan",
    "PIOFS",
    "PIOFSParams",
    "Machine",
    "MachineParams",
    "Tracer",
    "MetricsRegistry",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "chrome_trace",
    "breakdown_report",
    "__version__",
]
