"""The DRMS array assignment operation ``B <- A``.

Given two distributed arrays with the same shape but (possibly)
different distributions, the assignment sets every element of ``B`` to
the corresponding element of ``A`` (paper Section 3.1).  If an element
of ``B`` is present in several tasks (one assigned + several mapped
copies), *all* copies are updated consistently.  Values always come from
the *assigned* owner in ``A`` (assigned sections are disjoint, so owners
are unique); elements undefined in ``A`` stay untouched in ``B``.

Array assignment is the single primitive behind data redistribution,
shadow (halo) refresh, computational steering, inter-application
communication, and checkpoint streaming's canonical redistribution.

The *schedule* is the set of point-to-point transfers
``(src_task, dst_task, section)`` with
``section = a_src(i) * m_dst(j)``; its byte volume feeds the simulated
communication cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import Distribution
from repro.arrays.slices import Slice
from repro.errors import ArrayError

__all__ = [
    "Transfer",
    "build_schedule",
    "transfer_schedule",
    "apply_schedule",
    "array_assign",
    "schedule_bytes",
]


@dataclass(frozen=True)
class Transfer:
    """One point-to-point piece of an array assignment."""

    src_task: int
    dst_task: int
    section: Slice

    def nbytes(self, itemsize: int) -> int:
        return self.section.size * itemsize

    @property
    def is_local(self) -> bool:
        """True when source and destination are the same task (memcpy,
        no wire traffic)."""
        return self.src_task == self.dst_task


def build_schedule(src: Distribution, dst: Distribution) -> List[Transfer]:
    """All non-empty transfers for an assignment from ``src`` to ``dst``.

    For every destination task ``j`` and source task ``i`` the moved
    section is ``assigned_src(i) * mapped_dst(j)``: owners send, every
    mapped copy receives, so overlapping mapped sections end up
    consistent by construction.
    """
    if src.shape != dst.shape:
        raise ArrayError(
            f"assignment shape mismatch: src {src.shape} vs dst {dst.shape}"
        )
    out: List[Transfer] = []
    for j in range(dst.ntasks):
        m = dst.mapped(j)
        if m.is_empty:
            continue
        for i in src.owner_tasks(m):
            sec = src.assigned(i).intersect(m)
            if not sec.is_empty:
                out.append(Transfer(i, j, sec))
    return out


#: canonical name for the schedule of an assignment ``dst <- src``; the
#: verified property (tests/verify) is that for every destination task
#: the scheduled sections exactly partition its assigned section
transfer_schedule = build_schedule


def schedule_bytes(schedule: List[Transfer], itemsize: int, remote_only: bool = False) -> int:
    """Total bytes moved by a schedule (optionally wire traffic only)."""
    return sum(
        tr.nbytes(itemsize)
        for tr in schedule
        if not (remote_only and tr.is_local)
    )


def apply_schedule(
    dst: DistributedArray, src: DistributedArray, schedule: List[Transfer]
) -> None:
    """Execute a prebuilt schedule, moving real data between locals."""
    for tr in schedule:
        values = src.section_from_task(tr.src_task, tr.section)
        dst.section_to_task(tr.dst_task, tr.section, values)


def array_assign(
    dst: DistributedArray,
    src: DistributedArray,
    schedule: Optional[List[Transfer]] = None,
) -> List[Transfer]:
    """``dst <- src`` across distributions; returns the schedule used so
    callers can account for communication volume."""
    if dst.shape != src.shape:
        raise ArrayError(
            f"assignment shape mismatch: src {src.shape} vs dst {dst.shape}"
        )
    if dst.dtype != src.dtype:
        raise ArrayError(
            f"assignment dtype mismatch: src {src.dtype} vs dst {dst.dtype}"
        )
    if schedule is None:
        # memoized by structural distribution fingerprints — repeated
        # assignments between the same geometries (shadow refresh,
        # periodic checkpoints) replan only once.  Local import: the
        # cache layer sits above this pure layer.
        from repro.plancache.plans import transfer_schedule as cached_schedule

        schedule = cached_schedule(src.distribution, dst.distribution)
    if dst.store_data and src.store_data:
        apply_schedule(dst, src, schedule)
    return schedule
