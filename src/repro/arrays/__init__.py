"""DRMS distributed arrays: ranges, slices, distributions, arrays.

This subpackage implements Section 3.1 of the paper: the range/slice
algebra, distribution specifications with assigned and mapped (shadow)
sections, the :class:`~repro.arrays.darray.DistributedArray` abstraction,
and the general array assignment (redistribution) operation.
"""

from repro.arrays.ranges import Range
from repro.arrays.slices import Slice
from repro.arrays.distributions import (
    AxisDistribution,
    Block,
    Cyclic,
    BlockCyclic,
    GenBlock,
    Indexed,
    Replicated,
    Distribution,
    block_distribution,
)
from repro.arrays.darray import DistributedArray
from repro.arrays.assignment import array_assign, build_schedule, Transfer

__all__ = [
    "Range",
    "Slice",
    "AxisDistribution",
    "Block",
    "Cyclic",
    "BlockCyclic",
    "GenBlock",
    "Indexed",
    "Replicated",
    "Distribution",
    "block_distribution",
    "DistributedArray",
    "array_assign",
    "build_schedule",
    "Transfer",
]
