"""DistributedArray: the DRMS global-view array abstraction.

A distributed array (paper Section 3.1) is an abstract Cartesian index
space whose *sections* are concretely present in tasks.  In this
reproduction the simulated machine is in-process, so the
:class:`DistributedArray` object holds every task's local array (shaped
like that task's *mapped* section); SPMD task code only ever touches its
own local array through :meth:`local`.

Two storage modes:

* ``store_data=True`` (default): local numpy arrays are allocated and
  all data operations work — used by functional tests and examples.
* ``store_data=False`` ("virtual"): only geometry is kept; size and
  byte accounting still work, which is what the Class-A benchmark
  reproductions need without allocating gigabytes.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.arrays.distributions import Distribution
from repro.arrays.slices import Slice
from repro.errors import ArrayError

__all__ = ["DistributedArray"]


class DistributedArray:
    """A global array distributed over the tasks of an application."""

    def __init__(
        self,
        name: str,
        shape: Sequence[int],
        dtype=np.float64,
        distribution: Optional[Distribution] = None,
        store_data: bool = True,
    ):
        self.name = str(name)
        self.shape = tuple(int(n) for n in shape)
        self.dtype = np.dtype(dtype)
        if distribution is None:
            raise ArrayError(f"array {self.name!r} needs a distribution")
        if distribution.shape != self.shape:
            raise ArrayError(
                f"array {self.name!r}: distribution shape {distribution.shape} "
                f"!= array shape {self.shape}"
            )
        self.distribution = distribution
        self.store_data = bool(store_data)
        self._locals: List[Optional[np.ndarray]] = []
        self._alloc_locals()

    def _alloc_locals(self) -> None:
        self._locals = []
        for t in range(self.distribution.ntasks):
            if self.store_data:
                self._locals.append(
                    np.zeros(self.distribution.mapped(t).shape, dtype=self.dtype)
                )
            else:
                self._locals.append(None)

    # -- geometry ---------------------------------------------------------

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def ntasks(self) -> int:
        return self.distribution.ntasks

    @property
    def size(self) -> int:
        """Global element count."""
        return math.prod(self.shape)

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    @property
    def nbytes_global(self) -> int:
        """Bytes of the global index space — what a DRMS checkpoint
        writes for this array (distribution independent)."""
        return self.size * self.itemsize

    def nbytes_local(self, task: int) -> int:
        """Bytes of ``task``'s mapped section (includes shadows) — what
        an SPMD checkpoint carries per task for this array."""
        return self.distribution.mapped(task).size * self.itemsize

    @property
    def nbytes_total_local(self) -> int:
        """Sum of per-task local storage; >= :attr:`nbytes_global` when
        shadow regions are present (paper Section 6)."""
        return self.distribution.total_local_elements() * self.itemsize

    # -- local access -------------------------------------------------------

    def local(self, task: int) -> np.ndarray:
        """The local array of ``task`` (shaped as its mapped section)."""
        self._need_data()
        return self._locals[task]

    def local_flat(self, task: int) -> np.ndarray:
        """1-D C-order view of ``task``'s local array — the address
        space the vectorized gather/scatter index plans target.  Writes
        through to local storage; a local that is not C-contiguous (not
        produced here, but possible via direct mutation) is normalized
        first so the flat view is guaranteed to alias it."""
        self._need_data()
        arr = self._locals[task]
        if not arr.flags.c_contiguous:
            arr = np.ascontiguousarray(arr)
            self._locals[task] = arr
        return arr.reshape(-1)

    def assigned_view(self, task: int) -> np.ndarray:
        """View of the task's *assigned* (owned) elements within its
        local array."""
        self._need_data()
        d = self.distribution
        idx = d.assigned(task).local_index_within(d.mapped(task))
        return self._locals[task][idx]

    def set_assigned(self, task: int, values: np.ndarray) -> None:
        """Write the task's assigned elements (owner write)."""
        self._need_data()
        d = self.distribution
        idx = d.assigned(task).local_index_within(d.mapped(task))
        self._locals[task][idx] = values

    def section_from_task(self, task: int, section: Slice) -> np.ndarray:
        """Copy ``section`` (a subset of the task's mapped slice) out of
        the task's local array."""
        self._need_data()
        m = self.distribution.mapped(task)
        if not section.issubset(m):
            raise ArrayError(
                f"section {section!r} not within mapped slice of task {task}"
            )
        return np.ascontiguousarray(self._locals[task][section.local_index_within(m)])

    def section_to_task(self, task: int, section: Slice, values: np.ndarray) -> None:
        """Write ``section`` (a subset of the task's mapped slice) into
        the task's local array."""
        self._need_data()
        m = self.distribution.mapped(task)
        if not section.issubset(m):
            raise ArrayError(
                f"section {section!r} not within mapped slice of task {task}"
            )
        self._locals[task][section.local_index_within(m)] = values.reshape(section.shape)

    # -- global access (drivers and tests) -----------------------------------

    def set_global(self, values: np.ndarray) -> None:
        """Scatter a global numpy array into every task's mapped section."""
        self._need_data()
        values = np.asarray(values, dtype=self.dtype)
        if values.shape != self.shape:
            raise ArrayError(
                f"global values shape {values.shape} != array shape {self.shape}"
            )
        for t in range(self.ntasks):
            m = self.distribution.mapped(t)
            self._locals[t][...] = values[m.np_index()].reshape(m.shape)

    def to_global(self, fill=0) -> np.ndarray:
        """Gather the defined (assigned) elements into a global array.
        Elements assigned to no task are set to ``fill``."""
        self._need_data()
        out = np.full(self.shape, fill, dtype=self.dtype)
        for t in range(self.ntasks):
            a = self.distribution.assigned(t)
            if a.is_empty:
                continue
            out[a.np_index()] = self.assigned_view(t).reshape(a.shape)
        return out

    def defined_mask(self) -> np.ndarray:
        """Boolean global mask of elements assigned to some task."""
        mask = np.zeros(self.shape, dtype=bool)
        for t in range(self.ntasks):
            a = self.distribution.assigned(t)
            if not a.is_empty:
                mask[a.np_index()] = True
        return mask

    def update_shadows(self) -> int:
        """Refresh every mapped copy from its owner (halo exchange).
        Returns the number of elements copied between distinct tasks —
        the communication volume of one shadow update."""
        self._need_data()
        from repro.arrays.assignment import apply_schedule
        from repro.plancache.plans import transfer_schedule

        sched = transfer_schedule(self.distribution, self.distribution)
        apply_schedule(self, self, sched)
        return sum(tr.section.size for tr in sched if tr.src_task != tr.dst_task)

    def is_consistent(self) -> bool:
        """True when every mapped copy of every element equals the
        owner's value (the invariant the assignment operation maintains)."""
        self._need_data()
        ref = self.to_global()
        mask = self.defined_mask()
        for t in range(self.ntasks):
            m = self.distribution.mapped(t)
            if m.is_empty:
                continue
            sub_ref = ref[m.np_index()].reshape(m.shape)
            sub_mask = mask[m.np_index()].reshape(m.shape)
            if not np.array_equal(
                np.asarray(self._locals[t])[sub_mask], sub_ref[sub_mask]
            ):
                return False
        return True

    # -- redistribution --------------------------------------------------------

    def redistributed(self, new_distribution: Distribution) -> "DistributedArray":
        """A new array with the same global content under a different
        distribution — the data-movement core of reconfiguration."""
        if new_distribution.shape != self.shape:
            raise ArrayError("redistribution must preserve the global shape")
        out = DistributedArray(
            self.name,
            self.shape,
            self.dtype,
            new_distribution,
            store_data=self.store_data,
        )
        if self.store_data:
            from repro.arrays.assignment import array_assign

            array_assign(out, self)
        return out

    # -- misc ---------------------------------------------------------------

    def _need_data(self) -> None:
        if not self.store_data:
            raise ArrayError(
                f"array {self.name!r} is virtual (store_data=False); "
                "data operations are unavailable"
            )

    def __repr__(self) -> str:
        mode = "data" if self.store_data else "virtual"
        return (
            f"DistributedArray({self.name!r}, shape={self.shape}, "
            f"dtype={self.dtype.name}, ntasks={self.ntasks}, {mode})"
        )
