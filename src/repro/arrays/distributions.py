"""Distribution specifications: mapping array sections to tasks.

A distribution (paper Section 3.1) of a rank-``d`` array over ``P``
tasks is a pair of slice vectors ``(a, m)``: ``a_i`` is the section
*assigned* to task ``i`` (element values defined by task ``i``) and
``m_i`` the section *mapped* into task ``i``'s address space.  Legality:

* assigned sections are pairwise disjoint: ``a_i * a_j = empty`` (i≠j);
* every assigned section is contained in its mapped section:
  ``a_i * m_i = a_i``.

Mapped sections typically extend assigned sections by *shadow regions*
(ghost cells) used for stencil communication; shadows are what make the
per-task state of an SPMD checkpoint larger than the global array
(paper Section 6).

Tasks are arranged in a ``d``-dimensional process grid; per-axis
distributions (BLOCK, CYCLIC, BLOCK(k), GENBLOCK, INDEXED) compose into
a full :class:`Distribution`.  ``adjust`` re-derives an analogous
distribution for a different number of tasks — the operation behind
``drms_adjust`` used on a reconfigured restart.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.arrays.ranges import Range
from repro.arrays.slices import Slice
from repro.errors import DistributionError

__all__ = [
    "AxisDistribution",
    "Block",
    "Cyclic",
    "BlockCyclic",
    "GenBlock",
    "Indexed",
    "Replicated",
    "Distribution",
    "block_distribution",
    "process_grid",
]


class AxisDistribution:
    """How one array axis is partitioned across one process-grid axis."""

    def assigned(self, nprocs: int, extent: int) -> List[Range]:
        """Disjoint ranges, one per grid coordinate, covering
        ``0..extent-1``.  Coordinate ``c`` gets ``assigned(...)[c]``."""
        raise NotImplementedError

    def adjust(self, nprocs: int) -> "AxisDistribution":
        """The analogous axis distribution for a new grid extent; the
        default is the distribution itself (parameter-free kinds)."""
        return self

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Block(AxisDistribution):
    """Contiguous blocks of near-equal size (HPF ``BLOCK``)."""

    def assigned(self, nprocs: int, extent: int) -> List[Range]:
        _check_axis(nprocs, extent)
        bounds = np.linspace(0, extent, nprocs + 1).astype(np.int64)
        return [
            Range.regular(int(bounds[c]), int(bounds[c + 1]) - 1, 1)
            if bounds[c + 1] > bounds[c]
            else Range.empty()
            for c in range(nprocs)
        ]

    def describe(self) -> str:
        return "BLOCK"


@dataclass(frozen=True)
class Cyclic(AxisDistribution):
    """Round-robin single elements (HPF ``CYCLIC``)."""

    def assigned(self, nprocs: int, extent: int) -> List[Range]:
        _check_axis(nprocs, extent)
        out = []
        for c in range(nprocs):
            if c >= extent:
                out.append(Range.empty())
            else:
                out.append(Range.regular(c, extent - 1, nprocs))
        return out

    def describe(self) -> str:
        return "CYCLIC"


@dataclass(frozen=True)
class BlockCyclic(AxisDistribution):
    """Round-robin blocks of ``block`` elements (HPF ``CYCLIC(k)``)."""

    block: int

    def assigned(self, nprocs: int, extent: int) -> List[Range]:
        _check_axis(nprocs, extent)
        if self.block < 1:
            raise DistributionError(f"block must be >= 1, got {self.block}")
        out = []
        for c in range(nprocs):
            idx = []
            start = c * self.block
            stride = nprocs * self.block
            while start < extent:
                idx.extend(range(start, min(start + self.block, extent)))
                start += stride
            out.append(Range(idx))
        return out

    def describe(self) -> str:
        return f"CYCLIC({self.block})"


@dataclass(frozen=True)
class GenBlock(AxisDistribution):
    """Explicit per-coordinate block sizes (irregular block sizes for
    load balancing; HPF-2 ``GEN_BLOCK``)."""

    sizes: Tuple[int, ...]

    def __init__(self, sizes: Sequence[int]):
        object.__setattr__(self, "sizes", tuple(int(s) for s in sizes))

    def assigned(self, nprocs: int, extent: int) -> List[Range]:
        _check_axis(nprocs, extent)
        if len(self.sizes) != nprocs:
            raise DistributionError(
                f"GenBlock has {len(self.sizes)} sizes for {nprocs} coords"
            )
        if any(s < 0 for s in self.sizes):
            raise DistributionError("GenBlock sizes must be >= 0")
        if sum(self.sizes) != extent:
            raise DistributionError(
                f"GenBlock sizes sum to {sum(self.sizes)}, extent is {extent}"
            )
        out, pos = [], 0
        for s in self.sizes:
            out.append(Range.of_size(s, pos))
            pos += s
        return out

    def adjust(self, nprocs: int) -> "AxisDistribution":
        # Irregular sizes cannot be meaningfully re-derived; fall back to
        # near-equal blocks, which is what DRMS does for a plain adjust.
        return Block()

    def describe(self) -> str:
        return f"GENBLOCK{self.sizes}"


@dataclass(frozen=True)
class Indexed(AxisDistribution):
    """Fully general: an explicit :class:`Range` per coordinate.  This is
    the mechanism behind the paper's claim of supporting sparse and
    unstructured non-uniform data (index-list sections)."""

    ranges: Tuple[Range, ...]

    def __init__(self, ranges: Sequence):
        object.__setattr__(
            self, "ranges", tuple(r if isinstance(r, Range) else Range(r) for r in ranges)
        )

    def assigned(self, nprocs: int, extent: int) -> List[Range]:
        _check_axis(nprocs, extent)
        if len(self.ranges) != nprocs:
            raise DistributionError(
                f"Indexed has {len(self.ranges)} ranges for {nprocs} coords"
            )
        full = Range.of_size(extent)
        for r in self.ranges:
            if not r.issubset(full):
                raise DistributionError(f"{r!r} outside axis extent {extent}")
        return list(self.ranges)

    def adjust(self, nprocs: int) -> "AxisDistribution":
        return Block()

    def describe(self) -> str:
        return "INDEXED"


@dataclass(frozen=True)
class Replicated(AxisDistribution):
    """The axis is not partitioned (grid extent must be 1); every task
    holds the whole axis."""

    def assigned(self, nprocs: int, extent: int) -> List[Range]:
        if nprocs != 1:
            raise DistributionError(
                "Replicated axis requires process-grid extent 1"
            )
        return [Range.of_size(extent)]

    def describe(self) -> str:
        return "*"


def _range_canon(r: Range) -> tuple:
    """Exact canonical encoding of a range for fingerprint digests
    (``repr`` truncates long indexed ranges, so it cannot be used)."""
    if r.is_empty:
        return ("e",)
    if r.is_regular:
        return ("r", r.first, r.last, r.step)
    return ("i", r.indices().tobytes())


def _slice_canon(s: Slice) -> tuple:
    return tuple(_range_canon(r) for r in s.ranges)


def _check_axis(nprocs: int, extent: int) -> None:
    if nprocs < 1:
        raise DistributionError(f"grid extent must be >= 1, got {nprocs}")
    if extent < 0:
        raise DistributionError(f"axis extent must be >= 0, got {extent}")


def process_grid(ntasks: int, rank: int, fixed: Optional[Sequence[int]] = None) -> Tuple[int, ...]:
    """A near-square ``rank``-dimensional grid with ``prod == ntasks``.

    ``fixed`` may pin axes (entries > 0 are kept, 0/None entries are
    derived).  Axes are filled from the last axis first, matching the
    FORTRAN convention of distributing the slowest-varying axis.
    """
    if ntasks < 1:
        raise DistributionError(f"ntasks must be >= 1, got {ntasks}")
    grid = [0] * rank
    remaining = ntasks
    if fixed is not None:
        if len(fixed) != rank:
            raise DistributionError("fixed grid rank mismatch")
        for i, f in enumerate(fixed):
            if f:
                if remaining % int(f) != 0:
                    raise DistributionError(
                        f"fixed grid axis {i}={f} does not divide {ntasks}"
                    )
                grid[i] = int(f)
                remaining //= int(f)
    free = [i for i in range(rank) if grid[i] == 0]
    for k, i in enumerate(reversed(free)):
        nfree = len(free) - k
        target = remaining ** (1.0 / nfree)
        # smallest divisor of `remaining` >= the balanced target, so the
        # later (slower-varying) axes carry the larger factors
        f = remaining
        for cand in range(1, remaining + 1):
            if remaining % cand == 0 and cand + 1e-9 >= target:
                f = cand
                break
        grid[i] = f
        remaining //= f
    if remaining != 1:
        if free:
            grid[free[0]] *= remaining
        else:
            raise DistributionError(
                f"fixed grid axes do not account for all {ntasks} tasks"
            )
    if math.prod(grid) != ntasks:
        raise DistributionError(f"cannot factor {ntasks} into grid {grid}")
    return tuple(grid)


class Distribution:
    """A full distribution: per-axis kinds + process grid + shadows.

    Produces, for each task ``0..ntasks-1`` (row-major over the process
    grid), the assigned :class:`Slice` and the mapped :class:`Slice`
    (assigned expanded by per-axis shadow widths, clipped to the array
    bounds) — the ``(a, m)`` vectors of the paper.
    """

    def __init__(
        self,
        shape: Sequence[int],
        axes: Sequence[AxisDistribution],
        ntasks: int,
        grid: Optional[Sequence[int]] = None,
        shadow: Optional[Sequence[int]] = None,
        mapped: Optional[Sequence[Slice]] = None,
    ):
        """``mapped`` optionally overrides the mapped sections with
        explicit slices (one per task) — irregular ghost sets for
        sparse/unstructured data, where shadow-width expansion cannot
        express the halo.  Each override must contain the task's
        assigned section (the paper's legality condition)."""
        self.shape: Tuple[int, ...] = tuple(int(n) for n in shape)
        if len(axes) != len(self.shape):
            raise DistributionError(
                f"{len(axes)} axis kinds for rank-{len(self.shape)} shape"
            )
        self.axes: Tuple[AxisDistribution, ...] = tuple(axes)
        self.ntasks = int(ntasks)
        if self.ntasks < 1:
            raise DistributionError("ntasks must be >= 1")
        if grid is None:
            fixed = [1 if isinstance(a, Replicated) else 0 for a in self.axes]
            self.grid = process_grid(self.ntasks, len(self.shape), fixed)
        else:
            self.grid = tuple(int(g) for g in grid)
            if math.prod(self.grid) != self.ntasks:
                raise DistributionError(
                    f"grid {self.grid} does not multiply to ntasks={self.ntasks}"
                )
        self.shadow: Tuple[int, ...] = (
            tuple(int(s) for s in shadow) if shadow is not None else (0,) * len(self.shape)
        )
        if len(self.shadow) != len(self.shape):
            raise DistributionError("shadow rank mismatch")
        if any(s < 0 for s in self.shadow):
            raise DistributionError("shadow widths must be >= 0")
        self._per_axis: List[List[Range]] = [
            ax.assigned(self.grid[i], self.shape[i]) for i, ax in enumerate(self.axes)
        ]
        if mapped is not None and len(mapped) != self.ntasks:
            raise DistributionError(
                f"{len(mapped)} mapped overrides for {self.ntasks} tasks"
            )
        self.mapped_overridden = mapped is not None
        self._assigned: List[Slice] = []
        self._mapped: List[Slice] = []
        for t in range(self.ntasks):
            coords = self.task_coords(t)
            a = Slice(self._per_axis[i][c] for i, c in enumerate(coords))
            self._assigned.append(a)
            self._mapped.append(mapped[t] if mapped is not None else self._expand(a))
        self._fingerprint: Optional[str] = None
        self.validate()

    # -- geometry --------------------------------------------------------

    @property
    def rank(self) -> int:
        return len(self.shape)

    def task_coords(self, task: int) -> Tuple[int, ...]:
        """Row-major coordinates of ``task`` in the process grid."""
        if not 0 <= task < self.ntasks:
            raise DistributionError(f"task {task} outside 0..{self.ntasks - 1}")
        coords = []
        for g in reversed(self.grid):
            coords.append(task % g)
            task //= g
        return tuple(reversed(coords))

    def task_of_coords(self, coords: Sequence[int]) -> int:
        """Row-major task id of a process-grid coordinate."""
        t = 0
        for c, g in zip(coords, self.grid):
            if not 0 <= c < g:
                raise DistributionError(f"coords {coords} outside grid {self.grid}")
            t = t * g + c
        return t

    def _expand(self, a: Slice) -> Slice:
        rs = []
        for i, r in enumerate(a.ranges):
            w = self.shadow[i]
            if w == 0 or r.is_empty or not r.is_contiguous:
                rs.append(r)
            else:
                rs.append(
                    Range.regular(
                        max(0, r.first - w), min(self.shape[i] - 1, r.last + w), 1
                    )
                )
        return Slice(rs)

    # -- the (a, m) vectors ------------------------------------------------

    def assigned(self, task: int) -> Slice:
        """Slice assigned to ``task`` (the paper's ``a_task``)."""
        return self._assigned[task]

    def mapped(self, task: int) -> Slice:
        """Slice mapped into ``task``'s address space (``m_task``)."""
        return self._mapped[task]

    def all_assigned(self) -> List[Slice]:
        return list(self._assigned)

    def all_mapped(self) -> List[Slice]:
        return list(self._mapped)

    def owner_tasks(self, section: Slice) -> List[int]:
        """Tasks whose assigned section intersects ``section``."""
        return [
            t
            for t in range(self.ntasks)
            if not self._assigned[t].intersect(section).is_empty
        ]

    def mapped_tasks(self, section: Slice) -> List[int]:
        """Tasks whose mapped section (assigned plus shadows) intersects
        ``section`` — the delivery set of a scatter."""
        return [
            t
            for t in range(self.ntasks)
            if not self._mapped[t].intersect(section).is_empty
        ]

    # -- legality (paper's two conditions) ----------------------------------

    def validate(self) -> None:
        """Raise :class:`DistributionError` unless the distribution is
        legal: disjoint assigned sections, assigned ⊆ mapped, and the
        assigned sections tile the whole index space."""
        full_slice = Slice.full(self.shape)
        for t in range(self.ntasks):
            a, m = self._assigned[t], self._mapped[t]
            if m.rank != self.rank:
                raise DistributionError(
                    f"task {t}: mapped section rank {m.rank} != array rank {self.rank}"
                )
            if not m.issubset(full_slice):
                raise DistributionError(
                    f"task {t}: mapped section outside the array bounds"
                )
            if a.intersect(m) != a:
                raise DistributionError(
                    f"task {t}: assigned section not contained in mapped section"
                )
        # Disjointness + coverage per axis (cheaper and equivalent for
        # per-axis tensor-product distributions).
        for i in range(self.rank):
            total = 0
            full = Range.of_size(self.shape[i])
            for c in range(self.grid[i]):
                r = self._per_axis[i][c]
                if not r.issubset(full):
                    raise DistributionError(
                        f"axis {i} coord {c}: range outside array bounds"
                    )
                total += r.size
                for c2 in range(c + 1, self.grid[i]):
                    if not r.intersect(self._per_axis[i][c2]).is_empty:
                        raise DistributionError(
                            f"axis {i}: coords {c}/{c2} assigned ranges overlap"
                        )
            # Indexed distributions may be partial: elements assigned to
            # no task are simply undefined (paper Section 3.1).  The
            # algorithmic kinds must tile the axis exactly.
            if (
                total != self.shape[i]
                and not isinstance(self.axes[i], (Replicated, Indexed))
            ):
                raise DistributionError(
                    f"axis {i}: assigned ranges cover {total} of {self.shape[i]}"
                )

    # -- sizes (Tables 3/4/6 inputs) ----------------------------------------

    def local_elements(self, task: int) -> int:
        """Mapped-section element count (local storage incl. shadows)."""
        return self._mapped[task].size

    def total_local_elements(self) -> int:
        """Sum over tasks of mapped elements; exceeds the global element
        count when shadows are present (paper Section 6)."""
        return sum(s.size for s in self._mapped)

    def global_elements(self) -> int:
        return math.prod(self.shape)

    # -- reconfiguration ------------------------------------------------------

    def adjust(self, ntasks: int, grid: Optional[Sequence[int]] = None) -> "Distribution":
        """The DRMS ``drms_adjust`` operation: an analogous distribution
        of the same array over a different number of tasks.

        Deliberately *undistributed* axes (grid extent 1) stay
        undistributed — an LU-style pencil decomposition adjusted to a
        new task count remains a pencil decomposition — unless the task
        count cannot be factored that way, in which case all non-
        replicated axes become eligible.
        """
        if grid is None:
            fixed = [1 if g == 1 else 0 for g in self.grid]
            try:
                grid = process_grid(ntasks, self.rank, fixed)
            except DistributionError:
                grid = None
        return Distribution(
            self.shape,
            [ax.adjust(ntasks) for ax in self.axes],
            ntasks,
            grid=grid,
            shadow=self.shadow,
        )

    def fingerprint(self) -> str:
        """Structural digest of the ``(a, m)`` geometry — the plan-cache
        key component for this distribution (see :mod:`repro.plancache`).

        Two distributions compare ``==`` iff their fingerprints match:
        the digest covers exactly the fields equality covers (shape,
        grid, shadow, every assigned and mapped slice), canonically
        encoded, so BLOCK-over-8 and a GENBLOCK spelling the same blocks
        share one fingerprint while any geometric change produces a new
        one.  Computed once per instance (distributions are immutable
        after construction)."""
        if self._fingerprint is None:
            canon = (
                self.shape,
                self.grid,
                self.shadow,
                tuple(_slice_canon(s) for s in self._assigned),
                tuple(_slice_canon(s) for s in self._mapped),
            )
            self._fingerprint = hashlib.sha1(repr(canon).encode()).hexdigest()
        return self._fingerprint

    def describe(self) -> str:
        axes = ", ".join(a.describe() for a in self.axes)
        return f"Distribution(shape={self.shape}, axes=[{axes}], grid={self.grid}, shadow={self.shadow})"

    __repr__ = describe

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Distribution):
            return NotImplemented
        return (
            self.shape == other.shape
            and self.grid == other.grid
            and self.shadow == other.shadow
            and self._assigned == other._assigned
            and self._mapped == other._mapped
        )

    def __hash__(self) -> int:
        return hash((self.shape, self.grid, self.shadow))


def block_distribution(
    shape: Sequence[int],
    ntasks: int,
    shadow: Optional[Sequence[int]] = None,
    grid: Optional[Sequence[int]] = None,
) -> Distribution:
    """Convenience: BLOCK along every axis (the paper's running example:
    the BT array ``u`` is block-distributed along all three dimensions)."""
    return Distribution(
        shape, [Block() for _ in shape], ntasks, grid=grid, shadow=shadow
    )
