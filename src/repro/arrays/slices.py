"""Slices: ordered tuples of ranges describing array sections.

A *slice* (paper Section 3.1) of rank ``d`` is an ordered set of ``d``
ranges ``s = (r_1, ..., r_d)``; it describes a (generally non-contiguous)
section of a ``d``-dimensional array.  ``|s|`` is the rank and the number
of elements is ``prod(|r_i|)``.  Slice intersection is range-wise.

Slices also carry the lo/hi split functions of the streaming partition
algorithm (paper Fig. 5a): for FORTRAN-style column-major streaming the
*last* axis varies slowest, so a slice is split along the highest axis
whose range has more than one element; for C-style row-major order the
first axis is split first.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

from repro.arrays.ranges import Range
from repro.errors import SliceError

__all__ = ["Slice"]


class Slice:
    """An ordered tuple of :class:`Range`, i.e., an array section."""

    __slots__ = ("_ranges",)

    def __init__(self, ranges: Iterable):
        rs = []
        for r in ranges:
            if isinstance(r, Range):
                rs.append(r)
            else:
                rs.append(Range(r))
        if not rs:
            raise SliceError("a slice needs at least one range")
        self._ranges: Tuple[Range, ...] = tuple(rs)

    @classmethod
    def full(cls, shape: Sequence[int]) -> "Slice":
        """The slice covering an entire array of the given shape."""
        return cls([Range.of_size(int(n)) for n in shape])

    @classmethod
    def empty(cls, rank: int) -> "Slice":
        """A rank-``rank`` slice with no elements."""
        return cls([Range.empty() for _ in range(rank)])

    # -- protocol -------------------------------------------------------

    @property
    def rank(self) -> int:
        """``|s|`` in the paper: the number of ranges."""
        return len(self._ranges)

    @property
    def ranges(self) -> Tuple[Range, ...]:
        return self._ranges

    @property
    def size(self) -> int:
        """Number of elements: the product of the range sizes."""
        n = 1
        for r in self._ranges:
            n *= r.size
            if n == 0:
                return 0
        return n

    @property
    def shape(self) -> Tuple[int, ...]:
        """Per-axis element counts — the shape of the local array that
        holds this section."""
        return tuple(r.size for r in self._ranges)

    @property
    def is_empty(self) -> bool:
        return any(r.is_empty for r in self._ranges)

    def __len__(self) -> int:
        return self.rank

    def __getitem__(self, axis: int) -> Range:
        return self._ranges[axis]

    def __iter__(self) -> Iterator[Range]:
        return iter(self._ranges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Slice):
            return NotImplemented
        if self.rank != other.rank:
            return False
        if self.is_empty and other.is_empty:
            return True
        return self._ranges == other._ranges

    def __hash__(self) -> int:
        if self.is_empty:
            return hash(("Slice", self.rank, "empty"))
        return hash(("Slice", self._ranges))

    def __repr__(self) -> str:
        return "Slice(" + ", ".join(repr(r) for r in self._ranges) + ")"

    # -- algebra ---------------------------------------------------------

    def intersect(self, other: "Slice") -> "Slice":
        """Range-wise intersection ``s * t`` (paper's ``*`` operator).

        An empty result is *normalized* to the canonical empty slice
        (every axis empty).  Without normalization the result of, say,
        ``(0:1, 5:7) * (0:1, 0:3)`` would keep a non-empty range on
        axis 0 while axis 1 is empty — a zero-element section whose
        per-axis ranges are not subsets of either operand's, which
        breaks downstream local addressing.  Empty slices of equal rank
        compare equal, so normalizing preserves slice-level semantics.
        """
        if self.rank != other.rank:
            raise SliceError(
                f"rank mismatch: {self.rank} vs {other.rank} in intersection"
            )
        out = Slice(a.intersect(b) for a, b in zip(self._ranges, other._ranges))
        if out.is_empty:
            return Slice.empty(self.rank)
        return out

    def __mul__(self, other: "Slice") -> "Slice":
        if not isinstance(other, Slice):
            return NotImplemented
        return self.intersect(other)

    def issubset(self, other: "Slice") -> bool:
        """True when the section lies entirely inside ``other``."""
        if self.is_empty:
            return True
        return self.intersect(other) == self

    def contains_point(self, point: Sequence[int]) -> bool:
        """True when the d-dimensional point lies in the section."""
        if len(point) != self.rank:
            raise SliceError("point rank mismatch")
        return all(int(p) in r for p, r in zip(point, self._ranges))

    def replace(self, axis: int, r: Range) -> "Slice":
        """A copy with the range on ``axis`` replaced."""
        rs = list(self._ranges)
        rs[axis] = r
        return Slice(rs)

    def shift(self, offsets: Sequence[int]) -> "Slice":
        """The slice with per-axis offsets added to every range."""
        if len(offsets) != self.rank:
            raise SliceError("offset rank mismatch")
        return Slice(r.shift(int(o)) for r, o in zip(self._ranges, offsets))

    def clip(self, shape: Sequence[int]) -> "Slice":
        """Restrict every axis to ``[0, shape[i]-1]``."""
        if len(shape) != self.rank:
            raise SliceError("shape rank mismatch")
        return Slice(r.clip(0, int(n) - 1) for r, n in zip(self._ranges, shape))

    # -- streaming order (paper Section 3.2) -----------------------------

    def split_axis(self, order: str = "F") -> int:
        """The axis along which :meth:`lo`/:meth:`hi` split, i.e., the
        slowest-varying axis (among axes with >1 element) for the given
        streaming order: last axis for FORTRAN column-major ``"F"``,
        first axis for C row-major ``"C"``.  Returns -1 for singleton or
        empty slices (nothing to split)."""
        if self.is_empty or self.size <= 1:
            return -1
        axes = range(self.rank - 1, -1, -1) if order == "F" else range(self.rank)
        for ax in axes:
            if self._ranges[ax].size > 1:
                return ax
        return -1

    def lo(self, order: str = "F") -> "Slice":
        """Lower half in streaming order: every element of ``lo`` comes
        before every element of :meth:`hi` in the stream."""
        ax = self.split_axis(order)
        if ax < 0:
            return self
        return self.replace(ax, self._ranges[ax].lo())

    def hi(self, order: str = "F") -> "Slice":
        """Upper half in streaming order (may be empty for size-1)."""
        ax = self.split_axis(order)
        if ax < 0:
            return Slice.empty(self.rank)
        return self.replace(ax, self._ranges[ax].hi())

    # -- numpy interop ----------------------------------------------------

    def np_index(self) -> tuple:
        """An ``np.ix_``-style open-mesh index selecting this section
        from a global numpy array."""
        return np.ix_(*[r.indices() for r in self._ranges])

    def local_index_within(self, outer: "Slice") -> tuple:
        """An ``np.ix_`` index selecting this section from the *local*
        array that stores the ``outer`` section.  ``self`` must be a
        subset of ``outer``.

        An empty section selects nothing regardless of its per-axis
        ranges (a zero-extent slice may carry non-empty ranges on other
        axes that are not per-axis subsets of ``outer``)."""
        if self.rank != outer.rank:
            raise SliceError("rank mismatch")
        if self.is_empty:
            return np.ix_(*[np.empty(0, dtype=np.int64)] * self.rank)
        return np.ix_(
            *[
                o.positions_of(r)
                for r, o in zip(self._ranges, outer._ranges)
            ]
        )

    def flat_positions_within(
        self,
        outer: "Slice",
        enum_order: str = "F",
        address_order: str = "C",
    ) -> np.ndarray:
        """Flat positions of this section's elements within the dense
        index mesh of ``outer``, as one int64 vector.

        ``address_order`` fixes how ``outer``'s mesh is linearized (the
        storage order of the array holding it); ``enum_order`` fixes the
        order in which this section's own elements are enumerated (its
        stream order).  With both set to the stream order this is the
        stream-position map of :func:`repro.streaming.order.
        section_stream_positions`; with ``address_order="C"`` it is the
        fancy index into a C-contiguous local array — the two halves of
        a vectorized gather/scatter plan.

        ``self`` must be a per-axis subset of ``outer``; an empty
        section yields an empty vector regardless of its ranges."""
        if self.rank != outer.rank:
            raise SliceError("rank mismatch")
        if self.is_empty:
            return np.empty(0, dtype=np.int64)
        axis_pos = [
            o.positions_of(r) for r, o in zip(self._ranges, outer._ranges)
        ]
        mesh = np.meshgrid(*axis_pos, indexing="ij")
        shape = outer.shape
        # strides in elements of the chosen address order over outer's mesh
        strides = [1] * len(shape)
        acc = 1
        if address_order == "F":
            for i in range(len(shape)):
                strides[i] = acc
                acc *= shape[i]
        else:
            for i in range(len(shape) - 1, -1, -1):
                strides[i] = acc
                acc *= shape[i]
        flat = sum(m * s for m, s in zip(mesh, strides))
        return np.asarray(flat, dtype=np.int64).reshape(-1, order=enum_order)

    def enumerate_stream(self, order: str = "F") -> np.ndarray:
        """All points of the section in streaming order, as an
        ``(size, rank)`` int64 matrix.  Intended for tests and small
        sections — O(size) memory."""
        grids = [r.indices() for r in self._ranges]
        if order == "F":
            mesh = np.meshgrid(*grids, indexing="ij")
            cols = [m.reshape(-1, order="F") for m in mesh]
        else:
            mesh = np.meshgrid(*grids, indexing="ij")
            cols = [m.reshape(-1, order="C") for m in mesh]
        if not cols:
            return np.empty((0, 0), dtype=np.int64)
        return np.stack(cols, axis=1)
