"""Ranges: monotonically increasing ordered integer sets.

A *range* in DRMS (paper Section 3.1) is a monotonically increasing
ordered set of integers ``r = (r_1, ..., r_n)``.  Regular ranges — those
expressible as a Fortran-style triplet ``l:u:s`` — are the common case
and are stored without materializing their elements; general ranges are
stored as sorted numpy index vectors.

The operations required by the paper are:

* ``|r|`` — the number of elements (:attr:`Range.size`),
* intersection ``q * r`` (:meth:`Range.intersect`, also the ``*``
  operator), producing the ordered common elements,
* the lo/hi split used by the streaming partition algorithm
  (:meth:`Range.lo`, :meth:`Range.hi`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import RangeError

__all__ = ["Range"]


class Range:
    """A monotonically increasing ordered set of integers.

    Two internal representations are used:

    * *regular*: ``l:u:s`` triplet (first element ``l``, last element
      ``<= u``, stride ``s >= 1``), O(1) storage;
    * *indexed*: an explicit sorted ``numpy.ndarray`` of unique int64s.

    Ranges are immutable and hashable.
    """

    __slots__ = ("_lo", "_hi", "_step", "_indices", "_size")

    def __init__(self, spec: "Range | Iterable[int] | int | slice" = ()):
        """Build a range from another range, an int (singleton), a
        ``slice`` with concrete ``start``/``stop`` (stop exclusive, like
        Python), or an iterable of strictly increasing integers."""
        if isinstance(spec, Range):
            self._lo = spec._lo
            self._hi = spec._hi
            self._step = spec._step
            self._indices = spec._indices
            self._size = spec._size
            return
        if isinstance(spec, (int, np.integer)):
            self._init_regular(int(spec), int(spec), 1)
            return
        if isinstance(spec, slice):
            if spec.start is None or spec.stop is None:
                raise RangeError("slice spec needs concrete start and stop")
            step = 1 if spec.step is None else int(spec.step)
            if step < 1:
                raise RangeError(f"stride must be >= 1, got {step}")
            start, stop = int(spec.start), int(spec.stop)
            if stop <= start:
                self._init_empty()
            else:
                last = start + ((stop - 1 - start) // step) * step
                self._init_regular(start, last, step)
            return
        idx = np.asarray(list(spec), dtype=np.int64)
        if idx.size == 0:
            self._init_empty()
            return
        if idx.size > 1 and not np.all(np.diff(idx) > 0):
            raise RangeError("range elements must be strictly increasing")
        # Detect a regular pattern so that algebra stays O(1).
        if idx.size == 1:
            self._init_regular(int(idx[0]), int(idx[0]), 1)
        else:
            d = np.diff(idx)
            if np.all(d == d[0]):
                self._init_regular(int(idx[0]), int(idx[-1]), int(d[0]))
            else:
                self._lo = int(idx[0])
                self._hi = int(idx[-1])
                self._step = 0  # sentinel: indexed
                self._indices = idx
                self._indices.setflags(write=False)
                self._size = int(idx.size)

    # -- constructors -------------------------------------------------

    def _init_empty(self) -> None:
        self._lo = 0
        self._hi = -1
        self._step = 1
        self._indices = None
        self._size = 0

    def _init_regular(self, lo: int, hi: int, step: int) -> None:
        if step < 1:
            raise RangeError(f"stride must be >= 1, got {step}")
        if hi < lo:
            self._init_empty()
            return
        hi = lo + ((hi - lo) // step) * step
        self._lo = lo
        self._hi = hi
        # normalize: a singleton has no meaningful stride (keeps equality
        # and hashing representation-independent)
        self._step = 1 if hi == lo else step
        self._indices = None
        self._size = (hi - lo) // step + 1

    @classmethod
    def regular(cls, lo: int, hi: int, step: int = 1) -> "Range":
        """Fortran-style triplet ``lo:hi:step`` with *inclusive* ``hi``."""
        r = cls.__new__(cls)
        r._init_regular(int(lo), int(hi), int(step))
        return r

    @classmethod
    def empty(cls) -> "Range":
        r = cls.__new__(cls)
        r._init_empty()
        return r

    @classmethod
    def of_size(cls, n: int, offset: int = 0) -> "Range":
        """The contiguous range ``offset .. offset+n-1``."""
        if n <= 0:
            return cls.empty()
        return cls.regular(offset, offset + n - 1, 1)

    # -- basic protocol ------------------------------------------------

    @property
    def size(self) -> int:
        """Number of elements ``|r|``."""
        return self._size

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def is_empty(self) -> bool:
        return self._size == 0

    @property
    def is_regular(self) -> bool:
        """True when representable as an ``l:u:s`` triplet."""
        return self._indices is None

    @property
    def is_contiguous(self) -> bool:
        """True when the range is ``l, l+1, ..., u``."""
        return self.is_regular and (self._step == 1 or self._size <= 1)

    @property
    def first(self) -> int:
        if self.is_empty:
            raise RangeError("empty range has no first element")
        return self._lo

    @property
    def last(self) -> int:
        if self.is_empty:
            raise RangeError("empty range has no last element")
        return self._hi

    @property
    def step(self) -> int:
        """Stride for regular ranges; raises for indexed ranges."""
        if not self.is_regular:
            raise RangeError("indexed range has no uniform stride")
        return self._step

    def indices(self) -> np.ndarray:
        """All elements as a (read-only) int64 vector."""
        if self._indices is not None:
            return self._indices
        if self._size == 0:
            return np.empty(0, dtype=np.int64)
        out = np.arange(self._lo, self._hi + 1, self._step, dtype=np.int64)
        out.setflags(write=False)
        return out

    def __iter__(self) -> Iterator[int]:
        return iter(int(i) for i in self.indices())

    def __getitem__(self, k: int) -> int:
        if not 0 <= k < self._size:
            raise IndexError(k)
        if self.is_regular:
            return self._lo + k * self._step
        return int(self._indices[k])

    def __contains__(self, value: int) -> bool:
        v = int(value)
        if self.is_empty or v < self._lo or v > self._hi:
            return False
        if self.is_regular:
            return (v - self._lo) % self._step == 0
        i = int(np.searchsorted(self._indices, v))
        return i < self._size and int(self._indices[i]) == v

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Range):
            return NotImplemented
        if self._size != other._size:
            return False
        if self._size == 0:
            return True
        if self.is_regular and other.is_regular:
            return (self._lo, self._hi, self._step) == (
                other._lo,
                other._hi,
                other._step,
            )
        return bool(np.array_equal(self.indices(), other.indices()))

    def __hash__(self) -> int:
        if self._size == 0:
            return hash(("Range", 0))
        if self.is_regular:
            return hash(("Range", self._lo, self._hi, self._step))
        return hash(("Range", self.indices().tobytes()))

    def __repr__(self) -> str:
        if self.is_empty:
            return "Range(<empty>)"
        if self.is_regular:
            if self._step == 1:
                return f"Range({self._lo}:{self._hi})"
            return f"Range({self._lo}:{self._hi}:{self._step})"
        body = ",".join(str(int(i)) for i in self._indices[:8])
        more = ",..." if self._size > 8 else ""
        return f"Range([{body}{more}])"

    # -- algebra -------------------------------------------------------

    def intersect(self, other: "Range") -> "Range":
        """Ordered set intersection ``q * r`` (paper's ``*`` operator)."""
        if self.is_empty or other.is_empty:
            return Range.empty()
        if self._hi < other._lo or other._hi < self._lo:
            return Range.empty()
        if self.is_regular and other.is_regular:
            return _intersect_regular(self, other)
        common = np.intersect1d(self.indices(), other.indices(), assume_unique=True)
        return Range(common)

    def __mul__(self, other: "Range") -> "Range":
        if not isinstance(other, Range):
            return NotImplemented
        return self.intersect(other)

    def union(self, other: "Range") -> "Range":
        """Ordered set union (used for mapped-section bookkeeping)."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Range(np.union1d(self.indices(), other.indices()))

    def difference(self, other: "Range") -> "Range":
        """Elements of ``self`` not present in ``other``."""
        if self.is_empty or other.is_empty:
            return self
        return Range(np.setdiff1d(self.indices(), other.indices(), assume_unique=True))

    def shift(self, offset: int) -> "Range":
        """The range with ``offset`` added to every element."""
        if self.is_empty:
            return self
        if self.is_regular:
            return Range.regular(self._lo + offset, self._hi + offset, self._step)
        return Range(self.indices() + int(offset))

    def clip(self, lo: int, hi: int) -> "Range":
        """Restrict to the closed interval ``[lo, hi]``."""
        return self.intersect(Range.regular(lo, hi, 1))

    # -- streaming-order split (paper Fig. 5a helpers) -----------------

    def lo(self) -> "Range":
        """The lower half: the first ``ceil(|r|/2)`` elements."""
        return self.take(0, (self._size + 1) // 2)

    def hi(self) -> "Range":
        """The upper half: the remaining ``floor(|r|/2)`` elements."""
        return self.take((self._size + 1) // 2, self._size)

    def take(self, start: int, stop: int) -> "Range":
        """Elements with positions ``start <= k < stop``."""
        start = max(0, start)
        stop = min(self._size, stop)
        if stop <= start:
            return Range.empty()
        if self.is_regular:
            return Range.regular(
                self._lo + start * self._step,
                self._lo + (stop - 1) * self._step,
                self._step,
            )
        return Range(self._indices[start:stop])

    # -- local addressing ----------------------------------------------

    def positions_of(self, sub: "Range") -> np.ndarray:
        """Positions (0-based ordinals) of ``sub``'s elements within
        ``self``.  ``sub`` must be a subset of ``self``; this is how a
        global index subset is translated to local array offsets.

        An empty ``sub`` is a subset of every range (including the empty
        range) and yields an empty position vector rather than an
        error."""
        if sub.is_empty:
            return np.empty(0, dtype=np.int64)
        if self.is_empty:
            raise RangeError(f"{sub!r} is not a subset of {self!r}")
        if self.is_regular:
            v = sub.indices()
            pos = (v - self._lo) // self._step
            ok = (
                (v >= self._lo)
                & (v <= self._hi)
                & ((v - self._lo) % self._step == 0)
            )
            if not bool(np.all(ok)):
                raise RangeError(f"{sub!r} is not a subset of {self!r}")
            return pos
        pos = np.searchsorted(self._indices, sub.indices())
        if bool(np.any(pos >= self._size)) or not bool(
            np.array_equal(self._indices[pos], sub.indices())
        ):
            raise RangeError(f"{sub!r} is not a subset of {self!r}")
        return pos.astype(np.int64)

    def issubset(self, other: "Range") -> bool:
        """True when every element of ``self`` belongs to ``other``."""
        if self.is_empty:
            return True
        return self.intersect(other).size == self.size


def _intersect_regular(q: Range, r: Range) -> Range:
    """Intersection of two regular ranges, solved as a linear congruence
    so no elements are materialized for the common stride-1 cases."""
    if q.step == 1 and r.step == 1:
        lo = max(q.first, r.first)
        hi = min(q.last, r.last)
        return Range.regular(lo, hi, 1) if lo <= hi else Range.empty()
    # General case: elements q.first + i*q.step == r.first + j*r.step.
    import math

    g = math.gcd(q.step, r.step)
    if (r.first - q.first) % g != 0:
        return Range.empty()
    lcm = q.step // g * r.step
    # Find the smallest element >= max(firsts) in both progressions via CRT.
    # Solve q.first + i*q.step ≡ r.first (mod r.step).
    a, m = q.step // g, r.step // g
    rhs = (r.first - q.first) // g
    i0 = (rhs * pow(a, -1, m)) % m if m > 1 else 0
    start = q.first + i0 * q.step
    lo_bound = max(q.first, r.first)
    if start < lo_bound:
        start += ((lo_bound - start + lcm - 1) // lcm) * lcm
    hi = min(q.last, r.last)
    if start > hi:
        return Range.empty()
    return Range.regular(start, hi, lcm)
